"""Setup shim for environments whose setuptools predates PEP 660 support.

All real metadata lives in pyproject.toml; this file only enables
``python setup.py develop`` / legacy editable installs on toolchains
without the ``wheel`` package (e.g. offline machines).
"""

from setuptools import setup

setup()
