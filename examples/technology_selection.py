"""Technology selection (paper Section 5): why the moderate flavour wins.

Evaluates the Wallace multiplier family on the three ST CMOS09 flavours
(ULL / LL / HS), reproducing the Tables 1/3/4 story, then sweeps a
synthetic flavour space around LL to show the paper's conclusion that
"extreme technology flavors are penalized".

Run:  python examples/technology_selection.py
"""

import numpy as np

from repro import (
    ST_CMOS09_HS,
    ST_CMOS09_LL,
    ST_CMOS09_ULL,
    best_technology,
    flavour_line,
    numerical_optimum,
    selection_matrix,
)
from repro.core.calibration import calibrate_row
from repro.experiments.paper_data import (
    PAPER_FREQUENCY,
    TABLE1_BY_NAME,
    TABLE3_ROWS,
    TABLE4_ROWS,
    WALLACE_FAMILY,
)

FLAVOURS = [ST_CMOS09_ULL, ST_CMOS09_LL, ST_CMOS09_HS]


def calibrated_family():
    """The three Wallace architectures, calibrated per flavour's tables."""
    family = {}
    for name in WALLACE_FAMILY:
        family[name] = calibrate_row(
            TABLE1_BY_NAME[name], ST_CMOS09_LL, PAPER_FREQUENCY
        )
    return family


def main() -> None:
    family = calibrated_family()

    print("Wallace family across ST CMOS09 flavours (uW at 31.25 MHz)\n")
    matrix = selection_matrix(list(family.values()), FLAVOURS, PAPER_FREQUENCY)
    header = f"{'architecture':18s}" + "".join(
        f"{tech.name.split('-')[-1]:>10s}" for tech in FLAVOURS
    )
    print(header)
    for name in WALLACE_FAMILY:
        cells = "".join(
            f"{matrix[(name, tech.name)].ptot * 1e6:10.2f}" for tech in FLAVOURS
        )
        print(f"{name:18s}{cells}")

    winner = best_technology(family["Wallace"], FLAVOURS, PAPER_FREQUENCY)
    print(
        f"\nBest flavour for the basic Wallace multiplier: "
        f"{winner.technology.name} at {winner.ptot * 1e6:.2f} uW"
    )
    print(
        "Note the Section 5 signature: calibrating the LL architecture on "
        "each flavour's own table reproduces the published LL < ULL < HS "
        "ordering and the parallelisation flip on HS."
    )

    # Published cross-flavour rows for reference.
    print("\nPublished cross-flavour optima (uW):")
    print(f"{'architecture':18s}{'ULL':>10s}{'LL':>10s}{'HS':>10s}")
    for index, name in enumerate(WALLACE_FAMILY):
        print(
            f"{name:18s}{TABLE3_ROWS[index]['ptot'] * 1e6:10.2f}"
            f"{TABLE1_BY_NAME[name].ptot * 1e6:10.2f}"
            f"{TABLE4_ROWS[index]['ptot'] * 1e6:10.2f}"
        )

    # The "moderate trade-off" map: walk the flavour line ULL <- LL -> HS
    # (and extrapolate beyond both ends).  A real flavour trades all of
    # (Io, zeta, alpha) together: more extreme low-leakage means slower
    # and more extreme high-speed means a lower alpha-power exponent —
    # and the optimum power forms a valley at the moderate flavour,
    # exactly the paper's conclusion.
    print("\nOptimal power of the basic Wallace along the flavour line")
    print("(t = -1: ULL, t = 0: LL, t = +1: HS; extrapolated beyond both ends)\n")
    arch = family["Wallace"]
    print(f"{'t':>6s} {'Io[uA]':>8s} {'zeta[pF]':>9s} {'alpha':>6s} {'Ptot[uW]':>9s}")
    results = []
    for t in np.linspace(-1.6, 1.6, 13):
        flavour = flavour_line(t)
        try:
            power = numerical_optimum(arch, flavour, PAPER_FREQUENCY).ptot * 1e6
        except ValueError:
            power = float("nan")
        results.append((t, power))
        print(
            f"{t:6.2f} {flavour.io * 1e6:8.2f} {flavour.zeta * 1e12:9.2f} "
            f"{flavour.alpha:6.3f} {power:9.2f}"
        )
    finite = [(t, p) for t, p in results if np.isfinite(p)]
    best_t = min(finite, key=lambda item: item[1])[0]
    print(
        f"\nThe valley sits at t = {best_t:+.2f} — the moderate flavour; both "
        f"extremes (very low leakage = slow, very high speed = low alpha, "
        f"leaky) cost power, as Section 5 concludes."
    )


if __name__ == "__main__":
    main()
