"""Glitch study: why the diagonal pipeline loses (paper Section 4).

The diagonal register insertion of Figure 4 cuts the array's critical
path harder than the horizontal insertion of Figure 3 — yet Table 1 shows
it costs almost the same power, because the wider spread of path delays
inside each stage breeds glitches that raise the activity.  This script
measures the whole causal chain on generated netlists:

  path-delay spread  ->  glitch ratio  ->  activity  ->  optimal power.

Run:  python examples/glitch_study.py
"""

from repro import numerical_optimum
from repro.characterization import native_technology
from repro.experiments.paper_data import PAPER_FREQUENCY
from repro.generators import build_array_multiplier
from repro.sim import extract_parameters, measure_activity, uniform_pairs
from repro.sta import analyze_timing


def study(width: int = 16, n_vectors: int = 200) -> None:
    tech = native_technology("LL")
    stimulus = uniform_pairs(width, n_vectors)

    variants = [
        ("basic", 1, None),
        ("horizontal x2", 2, "horizontal"),
        ("diagonal x2", 2, "diagonal"),
        ("horizontal x4", 4, "horizontal"),
        ("diagonal x4", 4, "diagonal"),
    ]

    print(
        f"{'variant':14s} {'LD':>6s} {'spread':>7s} {'a':>7s} "
        f"{'glitch':>7s} {'Ptot[uW]':>9s}"
    )
    for label, stages, style in variants:
        impl = build_array_multiplier(width, n_stages=stages, style=style)
        timing = analyze_timing(impl.netlist)
        activity = measure_activity(impl, operand_pairs=stimulus)
        arch = extract_parameters(impl, activity_report=activity, name=label)
        power = numerical_optimum(arch, tech, PAPER_FREQUENCY).ptot
        print(
            f"{label:14s} {arch.logical_depth:6.1f} "
            f"{timing.mean_arrival_spread:7.2f} {activity.activity:7.4f} "
            f"{activity.glitch_ratio:7.2f} {power * 1e6:9.2f}"
        )

    print(
        "\nReading: the diagonal cut achieves a shorter critical path (LD)"
        "\nbut leaves a larger mean arrival spread at each gate, which the"
        "\nevent-driven simulation converts into a higher glitch ratio and"
        "\nactivity — eroding the power advantage exactly as Section 4"
        "\nobserves on the synthesised versions."
    )


if __name__ == "__main__":
    study()
