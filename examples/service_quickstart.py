"""Serving quickstart: the exploration engine behind an HTTP endpoint.

Starts an in-process ``repro serve`` instance on an ephemeral port,
then asks it the paper's question through :class:`ServiceClient` — the
same fluent Study API, running server-side, returning the same typed
``ResultSet``.  The second, identical query is served from the
service's in-memory cache tier without touching the engine.

Run:  python examples/service_quickstart.py

(Outside of examples you would run the server as its own process:
``repro serve --port 8731`` — the client code below is unchanged.)
"""

from repro.service import ServiceClient
from repro.service.server import ExplorationServer, ServiceConfig
import tempfile

# A 16-bit Wallace-tree multiplier, same numbers as examples/quickstart.py.
WALLACE = {
    "name": "wallace16",
    "n_cells": 729,
    "activity": 0.2976,
    "logical_depth": 17.0,
    "capacitance": 70e-15,
    "io_factor": 18.0,
    "zeta_factor": 0.2,
}


def main() -> None:
    with tempfile.TemporaryDirectory() as cache_dir:
        # [1] Start the service: ephemeral port, private cache directory.
        server = ExplorationServer(
            ServiceConfig(port=0, workers=4, cache_dir=cache_dir)
        )
        server.start_background()
        client = ServiceClient(server.url)

        health = client.healthz()
        print(
            f"[1] service up at {server.url} "
            f"(repro {health['version']}, {health['workers']} workers)"
        )

        # [2] What can it do?  One listing, shared with `repro list`.
        listing = client.solvers()
        print(
            f"[2] serves {len(listing['architectures'])} architectures, "
            f"{len(listing['solvers'])} solvers, "
            f"{len(listing['transforms'])} transform ops"
        )

        # [3] The paper's question, asked over HTTP: which flavour wins
        # for the Wallace multiplier at the paper's 31.25 MHz data rate?
        answer = (
            client.study("which-flavour")
            .architectures(WALLACE)
            .technologies("ULL", "LL", "HS")
            .frequencies(31.25e6)
            .solver("auto")
            .run()
        )
        print(f"[3] best: {answer.best().describe()}")
        print(answer.table(top=3))

        # [4] Ask again: the tiered cache answers, the engine sleeps.
        again = (
            client.study("which-flavour")
            .architectures(WALLACE)
            .technologies("ULL", "LL", "HS")
            .frequencies(31.25e6)
            .solver("auto")
            .run()
        )
        print(f"[4] repeat query cache hit = {again.cache_hit}")
        assert again.records == answer.records

        # [5] Where did requests land?  Both tiers are observable.
        stats = client.cache_stats()
        memory = stats["memory"]
        print(
            f"[5] cache stats: memory {memory['hits']} hits / "
            f"{memory['misses']} misses, disk {stats['disk']['entries']} "
            f"entries, {stats['engine_runs']} engine runs total"
        )

        server.shutdown()
        server.server_close()
        print("[6] server stopped")


if __name__ == "__main__":
    main()
