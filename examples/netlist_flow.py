"""The full native flow for one architecture, step by step.

Everything the paper's tool chain did — synthesis, functional simulation,
timing analysis, technology characterisation, optimisation — run by this
library's own substrates, with no published numbers involved:

  generate netlist -> verify against integer multiply -> static timing ->
  event-driven activity measurement -> parameter extraction ->
  optimal working point (numerical + Eq. 13).

Run:  python examples/netlist_flow.py [architecture-name]
"""

import sys

from repro import approximation_error_percent, numerical_optimum, ptot_eq13_adaptive
from repro.characterization import native_technology
from repro.experiments.paper_data import PAPER_FREQUENCY
from repro.generators import MULTIPLIER_NAMES, build_multiplier
from repro.netlist import verify_multiplier
from repro.sim import extract_parameters, measure_activity
from repro.sta import analyze_timing, effective_logical_depth


def main(name: str = "Wallace") -> None:
    print(f"[1/6] generating netlist for {name!r}")
    impl = build_multiplier(name)
    print("      ", impl.netlist.describe())

    print("[2/6] functional verification against integer multiplication")
    report = verify_multiplier(impl, n_vectors=40)
    print("      ", report.describe())

    print("[3/6] static timing analysis")
    timing = analyze_timing(impl.netlist)
    print("      ", timing.describe())
    print(f"       effective logical depth: {effective_logical_depth(impl):.1f}")

    print("[4/6] event-driven activity measurement (glitches included)")
    activity = measure_activity(impl, n_vectors=150)
    print("      ", activity.describe())

    print("[5/6] technology characterisation (synthetic SPICE, LL flavour)")
    tech = native_technology("LL")
    print("      ", tech.describe())

    print("[6/6] optimal working point")
    arch = extract_parameters(impl, activity_report=activity)
    print("      ", arch.describe())
    numerical = numerical_optimum(arch, tech, PAPER_FREQUENCY)
    eq13, fit = ptot_eq13_adaptive(arch, tech, PAPER_FREQUENCY)
    print("       numerical:", numerical.point.describe())
    print(
        f"       Eq. 13   : {eq13 * 1e6:.2f} uW "
        f"(error {approximation_error_percent(numerical.ptot, eq13):+.2f} %, "
        f"A/B fitted on {fit.vdd_min:.1f}-{fit.vdd_max:.1f} V)"
    )


if __name__ == "__main__":
    requested = sys.argv[1] if len(sys.argv) > 1 else "Wallace"
    if requested not in MULTIPLIER_NAMES:
        raise SystemExit(
            f"unknown architecture {requested!r}; choose from {MULTIPLIER_NAMES}"
        )
    main(requested)
