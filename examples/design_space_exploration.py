"""Design-space exploration engine end to end (ROADMAP: batch + cache).

Builds a multiplier design space — RCA and Wallace bases under the
Section 4 transforms, all three ST CMOS09 flavours, a log frequency
grid — and runs it through :mod:`repro.explore`:

1. declarative scenario with an exact JSON round-trip;
2. vectorized Eq. 9–13 batch evaluation with exact-numerical fallback;
3. a second run served entirely from the content-hash result cache;
4. Pareto frontier over (power ↓, frequency ↑, area ↓) and a ranking
   report.

Run:  python examples/design_space_exploration.py
"""

import tempfile
from pathlib import Path

from repro.explore import (
    FrequencyGrid,
    Scenario,
    demo_scenario,
    explore,
    pareto_frontier,
    parallelize_step,
    pipeline_step,
    report,
)


def build_scenario() -> Scenario:
    """The demo space, narrowed to a briskly-evaluating sweep."""
    base = demo_scenario()
    return Scenario(
        name="example-multiplier-space",
        description=base.description,
        architectures=base.architectures,
        technologies=base.technologies,
        frequencies=FrequencyGrid.logspace(4e6, 50e6, 24),
        transform_chains=((), (pipeline_step(2),), (parallelize_step(2),)),
    )


def main() -> None:
    scenario = build_scenario()
    print("Design space:", scenario.describe())

    # The spec is declarative data: files, wires and cache keys all use
    # the same JSON form.
    restored = Scenario.from_json(scenario.to_json())
    assert restored == scenario
    print("JSON round-trip exact; content hash", scenario.content_hash()[:16])
    print()

    with tempfile.TemporaryDirectory() as cache_dir:
        first = explore(scenario, cache=Path(cache_dir))
        print("First run :", first.stats.describe())

        second = explore(scenario, cache=Path(cache_dir))
        print("Second run: cache hit =", second.cache_hit,
              f"({len(second.points)} results loaded, no re-evaluation)")
        print()

        print(report(first.points, top=10))
        print()

        frontier = pareto_frontier(first.points)
        print(f"Pareto frontier ({len(frontier)} candidates); extremes:")
        cheapest, fastest = frontier[0], max(
            frontier, key=lambda p: p.frequency
        )
        print("  cheapest:", cheapest.describe())
        print("  fastest :", fastest.describe())

        best = first.best
        print()
        print("Selection answer (cheapest feasible):", best.describe())


if __name__ == "__main__":
    main()
