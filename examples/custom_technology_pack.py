"""A user-defined technology, end to end, without touching repro source.

The paper's method is parameter substitution: put *your* process numbers
into Eq. 13 and re-optimise.  This example defines a fictional 28nm
flavour and a MAC datapath summary in a plugin pack file, loads the
pack, and drives both by bare name through the `Study` facade — exactly
what `--packs` does for the CLI and `repro serve`.

Run:  python examples/custom_technology_pack.py
"""

import json
import tempfile
from pathlib import Path

from repro import Study, default_catalog, load_pack

#: The pack payload — normally this lives in a .json/.toml file you keep
#: next to your project (or in ./repro.d/ for automatic discovery).
PACK = {
    "name": "example-foundry",
    "description": "fictional 28nm planning numbers for the example",
    "technologies": [
        {
            "name": "FDX28-LP",
            "io": 1.1e-6,
            "zeta": 4.2e-12,
            "alpha": 1.7,
            "n": 1.35,
            "vdd_nominal": 1.0,
            "vth0_nominal": 0.42,
            "summary": "fictional 28nm FD-SOI low-power flavour",
            "aliases": ["FDX28"],
        }
    ],
    "architectures": [
        {
            "name": "dsp-mac32",
            "n_cells": 4100,
            "activity": 0.21,
            "logical_depth": 34,
            "capacitance": 55e-15,
            "summary": "32-bit MAC datapath summary (Eq. 13 inputs)",
        }
    ],
}


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        pack_path = Path(tmp) / "example_foundry.json"
        pack_path.write_text(json.dumps(PACK, indent=2))

        # [1] Load the pack: entries register with provenance "file".
        report = load_pack(pack_path)
        print(f"[1] loaded {report.describe()}")

        # [2] The catalog now resolves the new names (any spelling).
        catalog = default_catalog()
        tech = catalog.get("technology", "fdx28")  # the pack's alias
        print(f"[2] catalog lookup: {tech.describe()}")
        entry = catalog.entry("architecture", "DSP_MAC32")
        print(f"    provenance: {entry.provenance} ({entry.source})")

        # [3] Drive both by bare name through Study — the same strings
        #     work in scenario JSON, `repro optimize --arch/--tech` and
        #     the HTTP service's /v1/explore and /v1/optimize.
        answer = (
            Study("custom-pack")
            .architectures("dsp-mac32")
            .technologies("FDX28", "LL")  # user flavour vs. the paper's
            .frequency_range(1e6, 8e6, 7)
            .solver("numerical")
            .run()
        )
        print("[3] best working point per technology:")
        for tech_name in ("FDX28-LP", "ST-CMOS09-LL"):
            best = answer.filter(lambda r, t=tech_name: r.technology == t).best()
            print(f"    {best.describe()}")

        winner = answer.best()
        print(f"[4] overall winner: {winner.technology} "
              f"(Ptot={winner.ptot * 1e6:.2f} uW at "
              f"{winner.frequency / 1e6:g} MHz)")


if __name__ == "__main__":
    main()
