"""Architecture selection (paper Section 4): transforms and crossovers.

Starting from the basic array multiplier, apply the paper's three
transformations — parallelisation, pipelining, sequentialisation — at the
parameter level, rank the resulting design space at 31.25 MHz, and sweep
frequency to find where cheap-but-slow beats big-but-relaxed.

Run:  python examples/architecture_exploration.py
"""

import numpy as np

from repro import (
    ST_CMOS09_LL,
    ArchitectureParameters,
    crossover_frequency,
    frequency_sweep,
    parallelize,
    pipeline,
    rank_architectures,
    sequentialize,
)

FREQUENCY = 31.25e6

# The basic RCA array multiplier (Table 1 shape, DESIGN.md calibration).
rca = ArchitectureParameters(
    name="RCA",
    n_cells=608,
    activity=0.5056,
    logical_depth=61.0,
    capacitance=70e-15,
    io_factor=18.0,
    zeta_factor=0.2,
)


def main() -> None:
    candidates = [
        rca,
        parallelize(rca, 2),
        parallelize(rca, 4),
        pipeline(rca, 2, style="horizontal"),
        pipeline(rca, 4, style="horizontal"),
        pipeline(rca, 2, style="diagonal"),
        pipeline(rca, 4, style="diagonal"),
        sequentialize(rca, 16),
    ]

    print(f"Design space around the RCA multiplier at {FREQUENCY / 1e6:g} MHz\n")
    ranked = rank_architectures(candidates, ST_CMOS09_LL, FREQUENCY)
    for position, candidate in enumerate(ranked, start=1):
        arch = candidate.architecture
        if candidate.feasible:
            print(
                f"{position}. {arch.name:14s} Ptot = {candidate.ptot * 1e6:8.2f} uW   "
                f"(N={arch.n_cells:.0f}, a={arch.activity:.3f}, "
                f"LD={arch.logical_depth:.1f})"
            )
        else:
            print(f"{position}. {arch.name:14s} infeasible: {candidate.reason}")

    # Section 4's frequency argument: sequential only pays off when the
    # clock is slow.  Sweep and locate the basic-vs-parallel crossover.
    print("\nOptimal power vs frequency (uW):")
    frequencies = np.geomspace(0.5e6, 60e6, 9)
    table = frequency_sweep([rca, parallelize(rca, 4)], ST_CMOS09_LL, frequencies)
    header = "f [MHz]  " + "  ".join(f"{name:>12s}" for name in list(table)[1:])
    print(header)
    for index, frequency in enumerate(frequencies):
        cells = "  ".join(
            f"{table[name][index] * 1e6:12.2f}" for name in list(table)[1:]
        )
        print(f"{frequency / 1e6:7.2f}  {cells}")

    crossover = crossover_frequency(
        rca, parallelize(rca, 4), ST_CMOS09_LL, 0.5e6, FREQUENCY
    )
    if crossover is not None:
        print(
            f"\nBelow ~{crossover / 1e6:.1f} MHz the basic multiplier wins "
            f"(parallel overhead outweighs relaxed timing); above it, "
            f"4-way parallelism is cheaper — Section 4's trade-off, located."
        )
    else:
        print("\nNo crossover found in the swept range.")


if __name__ == "__main__":
    main()
