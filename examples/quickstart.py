"""Quickstart: find a circuit's optimal (Vdd, Vth) working point.

The minimal end-to-end use of the library: describe a circuit by the
paper's four architectural numbers, pick a technology flavour, and ask
for the supply/threshold pair that minimises total power at the target
frequency — numerically and with the paper's closed form (Eq. 13).

Run:  python examples/quickstart.py
"""

from repro import (
    ST_CMOS09_LL,
    ArchitectureParameters,
    approximation_error_percent,
    closed_form_optimum,
    numerical_optimum,
    ptot_eq13,
)

# A 16-bit Wallace-tree multiplier, as synthesised in the paper's Table 1:
# 729 cells, 0.2976 average activity, 17 gate-delays of logical depth.
# The io_factor/zeta_factor defaults of 18x/0.2x reflect that a multiplier
# "cell" (full adder) leaks ~18 inverters' worth and that the effective
# per-stage delay coefficient is well below the inverter-chain fit — see
# DESIGN.md for how these were established.
wallace = ArchitectureParameters(
    name="wallace16",
    n_cells=729,
    activity=0.2976,
    logical_depth=17.0,
    capacitance=70e-15,
    io_factor=18.0,
    zeta_factor=0.2,
)

FREQUENCY = 31.25e6  # the paper's data rate


def main() -> None:
    print(f"Circuit: {wallace.describe()}")
    print(f"Technology: {ST_CMOS09_LL.describe()}")
    print(f"Target frequency: {FREQUENCY / 1e6:g} MHz")
    print()

    # Reference answer: exact constrained minimisation (Eqs. 1-6).
    numerical = numerical_optimum(wallace, ST_CMOS09_LL, FREQUENCY)
    print("Numerical optimum :", numerical.point.describe())

    # The paper's contribution: the same answer in closed form.
    closed = closed_form_optimum(wallace, ST_CMOS09_LL, FREQUENCY)
    print("Closed-form (Eq.10):", closed.point.describe())

    eq13 = ptot_eq13(wallace, ST_CMOS09_LL, FREQUENCY)
    error = approximation_error_percent(numerical.ptot, eq13)
    print()
    print(f"Eq. 13 total power : {eq13 * 1e6:.2f} uW")
    print(f"approximation error: {error:+.2f} %  (paper claims < 3 %)")

    # What the optimum buys: compare against running at nominal voltage.
    from repro import power_breakdown

    scaled = ST_CMOS09_LL.scaled(io_factor=wallace.io_factor, name="LL")
    _, _, nominal = power_breakdown(
        wallace.n_cells, wallace.activity, wallace.capacitance,
        ST_CMOS09_LL.vdd_nominal, ST_CMOS09_LL.vth0_nominal, FREQUENCY, scaled,
    )
    print()
    print(
        f"At nominal 1.2 V / Vth0 the same circuit burns "
        f"{float(nominal) * 1e6:.0f} uW -> the optimal point saves "
        f"{(1 - numerical.ptot / float(nominal)) * 100:.0f} %."
    )


if __name__ == "__main__":
    main()
