"""Ablation A8 (extension) — energy per operation and the minimum-energy point.

Recasts the paper's power optimum as energy per operation across five
decades of clock frequency, in both threshold regimes (free vs. capped at
0.45 V).  Shows (a) an interior minimum-energy point exists even with
ideal threshold control — Eq. 10's ln(1/f) supply growth — and (b) the
capped regime's low-frequency side is leakage-dominated and orders of
magnitude steeper, the classic sub-threshold-design MEP picture built
directly on the paper's model.
"""

import numpy as np

from repro.core.calibration import calibrate_row
from repro.core.energy import energy_sweep, minimum_energy_point
from repro.core.technology import ST_CMOS09_LL
from repro.experiments.paper_data import PAPER_FREQUENCY, TABLE1_BY_NAME
from repro.experiments.report import render_table

FREQUENCIES = np.geomspace(50.0, 31.25e6, 12)
VTH_CAP = 0.45


def test_energy_per_operation(benchmark, save_artifact):
    arch = calibrate_row(TABLE1_BY_NAME["Wallace"], ST_CMOS09_LL, PAPER_FREQUENCY)

    def sweep():
        free = energy_sweep(arch, ST_CMOS09_LL, FREQUENCIES)
        capped = energy_sweep(arch, ST_CMOS09_LL, FREQUENCIES, vth_max=VTH_CAP)
        return free, capped

    free, capped = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [
            f"{point_free.frequency:.3g}",
            f"{point_free.energy_per_op * 1e12:.2f}",
            f"{point_free.result.point.vdd:.3f}",
            f"{point_capped.energy_per_op * 1e12:.2f}",
            f"{point_capped.leakage_energy_per_op / point_capped.energy_per_op:.2f}",
        ]
        for point_free, point_capped in zip(free, capped)
    ]
    mep = minimum_energy_point(arch, ST_CMOS09_LL, 50.0, PAPER_FREQUENCY, VTH_CAP)
    save_artifact(
        "energy_per_op",
        render_table(
            ["f [Hz]", "free E [pJ/op]", "free Vdd*", "capped E [pJ/op]",
             "capped leak share"],
            rows,
            title=(
                "A8: energy per operation, free vs capped Vth (Wallace, LL)"
                f"\nminimum-energy point under the cap: "
                f"{mep.frequency / 1e6:.3f} MHz at {mep.energy_per_op * 1e12:.2f} pJ/op"
            ),
        ),
    )

    free_energy = [point.energy_per_op for point in free]
    capped_energy = [point.energy_per_op for point in capped]
    # Interior minimum in both regimes.
    assert min(free_energy) < free_energy[0] and min(free_energy) < free_energy[-1]
    assert min(capped_energy) < capped_energy[0]
    # The capped low-frequency side is orders of magnitude worse.
    assert capped_energy[0] > 20 * free_energy[0]
    # Above the cap-activation frequency the two regimes coincide.
    assert capped_energy[-1] == free_energy[-1]
    # The located MEP beats the sweep's endpoints.
    assert mep.energy_per_op <= min(capped_energy) * 1.01