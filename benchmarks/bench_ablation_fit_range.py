"""Ablation A1 — Eq. 13 accuracy vs the (A, B) fitting range.

The paper fits Eq. 7's linearisation over 0.3-1.0 V and reports <3 %
error.  This ablation re-runs the calibrated Table 1 with different
fitting ranges, quantifying how much of the closed form's accuracy is
owed to choosing a range that brackets the actual optima (0.33-0.83 V in
Table 1).
"""

from repro.core.calibration import calibrate_row
from repro.core.closed_form import ptot_eq13
from repro.core.constraint import chi_for_architecture
from repro.core.linearization import fit_vdd_root
from repro.core.numerical import numerical_optimum
from repro.core.optimum import approximation_error_percent
from repro.core.technology import ST_CMOS09_LL
from repro.experiments.paper_data import PAPER_FREQUENCY, TABLE1_ROWS
from repro.experiments.report import render_table

RANGES = [(0.3, 1.0), (0.2, 1.2), (0.3, 0.6), (0.6, 1.0), (0.33, 0.85)]


def _max_error_for_range(vdd_range):
    fit = fit_vdd_root(ST_CMOS09_LL.alpha, vdd_range)
    worst = 0.0
    for published in TABLE1_ROWS:
        arch = calibrate_row(published, ST_CMOS09_LL, PAPER_FREQUENCY)
        chi_value = chi_for_architecture(arch, ST_CMOS09_LL, PAPER_FREQUENCY)
        numerical = numerical_optimum(arch, ST_CMOS09_LL, PAPER_FREQUENCY)
        eq13 = ptot_eq13(arch, ST_CMOS09_LL, PAPER_FREQUENCY, chi_value, fit)
        error = approximation_error_percent(numerical.ptot, eq13)
        worst = max(worst, abs(error))
    return worst


def test_fit_range_sensitivity(benchmark, save_artifact):
    def sweep():
        return {vdd_range: _max_error_for_range(vdd_range) for vdd_range in RANGES}

    errors = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = [
        [f"{low:.2f}-{high:.2f}", f"{errors[(low, high)]:.2f}"]
        for low, high in RANGES
    ]
    save_artifact(
        "ablation_fit_range",
        render_table(
            ["fit range [V]", "max |Eq13 err| over Table 1 [%]"],
            rows,
            title="A1: closed-form error vs linearisation fitting range",
        ),
    )

    # The paper's range keeps the abstract's 3% bound...
    assert errors[(0.3, 1.0)] < 3.0
    # ...while ranges missing part of the optima (sequential rows sit at
    # ~0.71-0.83 V, parallel rows at ~0.33-0.40 V) do worse.
    assert errors[(0.3, 0.6)] > errors[(0.3, 1.0)]
    assert errors[(0.6, 1.0)] > errors[(0.3, 1.0)]
    # Perhaps surprisingly, hugging the optima (0.33-0.85 V) does *not*
    # improve on the paper's range: the least-squares fit's error sign
    # structure matters as much as its magnitude.  Record, don't idealise.
    assert errors[(0.33, 0.85)] < 4.0
