"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artefact (table or figure), prints
its rows, and archives the rendered text under ``benchmarks/output/`` so
the regenerated artefacts survive the run.  Performance benchmarks
additionally record machine-readable metrics as
``benchmarks/output/BENCH_<name>.json`` via :func:`record_benchmark`,
which is what the CI speedup gate consumes.

``REPRO_BENCH_SMOKE=1`` switches the heavy benchmarks to a reduced
problem size (same code path, smaller grids) so CI can run them on
every push.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"

#: Environment switch for CI-sized benchmark runs.
SMOKE_ENV = "REPRO_BENCH_SMOKE"


def smoke_mode() -> bool:
    """True when benchmarks should run at CI (reduced) problem size."""
    return os.environ.get(SMOKE_ENV, "").strip() not in ("", "0", "false")


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def save_artifact(artifact_dir):
    """``save_artifact(name, text)`` — print and persist a rendered artefact."""

    def _save(name: str, text: str) -> None:
        path = artifact_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save


@pytest.fixture
def record_benchmark(artifact_dir):
    """``record_benchmark(name, **metrics)`` — write ``BENCH_<name>.json``.

    Metrics are plain JSON scalars (throughput, seconds, speedup, …);
    the CI gate loads these files and fails the build when a speedup
    regresses below its floor.  A ``phases`` keyword (an engine
    phase → wall-seconds mapping, e.g. ``EvaluationStats.phases``) is
    embedded as a rounded snapshot, so the archived metrics say *where*
    a regression happened, not just that one did.
    """

    def _record(name: str, phases=None, **metrics) -> Path:
        payload = dict(metrics)
        if phases:
            payload["phases"] = {
                phase: round(float(seconds), 6)
                for phase, seconds in dict(phases).items()
            }
        path = artifact_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        print(f"[benchmark metrics saved to {path}]")
        return path

    return _record
