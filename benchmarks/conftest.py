"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper artefact (table or figure), prints
its rows, and archives the rendered text under ``benchmarks/output/`` so
the regenerated artefacts survive the run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture
def save_artifact(artifact_dir):
    """``save_artifact(name, text)`` — print and persist a rendered artefact."""

    def _save(name: str, text: str) -> None:
        path = artifact_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
