"""Ablation A2 — DIBL independence of the optimal point (paper Section 3).

The paper remarks that Eq. 13 "does no longer depend on η (DIBL
coefficient) although this parameter was introduced during calculation".
This ablation verifies the claim numerically: sweeping η changes *which
Vth0 realises the optimum* but neither the optimal effective threshold
nor the optimal power.
"""

import dataclasses

from repro.core.calibration import calibrate_row
from repro.core.closed_form import ptot_eq13
from repro.core.numerical import numerical_optimum
from repro.core.technology import ST_CMOS09_LL
from repro.experiments.paper_data import PAPER_FREQUENCY, TABLE1_BY_NAME
from repro.experiments.report import render_table

ETAS = [0.0, 0.05, 0.1, 0.2, 0.3]


def test_dibl_independence(benchmark, save_artifact):
    arch = calibrate_row(TABLE1_BY_NAME["Wallace"], ST_CMOS09_LL, PAPER_FREQUENCY)

    def sweep():
        rows = []
        for eta in ETAS:
            tech = dataclasses.replace(ST_CMOS09_LL, eta=eta)
            numerical = numerical_optimum(arch, tech, PAPER_FREQUENCY)
            eq13 = ptot_eq13(arch, tech, PAPER_FREQUENCY)
            vth0 = tech.zero_bias_vth(numerical.point.vth, numerical.point.vdd)
            rows.append((eta, numerical.ptot, eq13, numerical.point.vth, vth0))
        return rows

    rows = benchmark(sweep)

    save_artifact(
        "ablation_dibl",
        render_table(
            ["eta", "Ptot num [uW]", "Ptot Eq13 [uW]", "Vth* eff [V]", "Vth0 knob [V]"],
            [
                [f"{eta:.2f}", f"{ptot * 1e6:.3f}", f"{eq13 * 1e6:.3f}",
                 f"{vth:.4f}", f"{vth0:.4f}"]
                for eta, ptot, eq13, vth, vth0 in rows
            ],
            title="A2: the optimum is invariant under the DIBL coefficient",
        ),
    )

    reference = rows[0]
    for eta, ptot, eq13, vth, vth0 in rows[1:]:
        assert abs(ptot - reference[1]) / reference[1] < 1e-9
        assert abs(eq13 - reference[2]) / reference[2] < 1e-12
        assert abs(vth - reference[3]) < 1e-9
        # The process knob that realises the optimum *does* move with eta.
        assert vth0 > reference[4]
