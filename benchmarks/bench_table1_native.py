"""Benchmark T1-native — regenerate Table 1 end to end, zero paper inputs.

Generates all thirteen netlists, verifies them, measures activity by
event-driven simulation, extracts parameters and optimises on the
characterised native technology.  Validates the paper's shape claims
(orderings, the diagonal-glitch effect) rather than absolute numbers.
"""

from repro.experiments.paper_data import TABLE1_BY_NAME
from repro.experiments.table1 import compare_to_published, run_table1_native

VECTORS = 120


def test_table1_native(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: run_table1_native(n_vectors=VECTORS), rounds=1, iterations=1
    )

    save_artifact(
        "table1_native",
        result.render() + "\n\n" + compare_to_published(result),
    )

    powers = {row.name: row.ptot for row in result.rows}
    activity = {row.name: row.activity for row in result.rows}

    # Section 4 orderings, end to end.
    assert powers["Wallace"] < powers["RCA"] < powers["Sequential"]
    assert powers["RCA parallel"] < powers["RCA"]
    assert powers["RCA hor.pipe2"] < powers["RCA"]
    assert powers["Seq4_16"] < powers["Sequential"]
    assert activity["RCA diagpipe2"] > activity["RCA hor.pipe2"]
    assert activity["Sequential"] > 1.0

    # Combinational rows land near the published totals with no calibration.
    for row in result.rows:
        if row.name.startswith("Seq"):
            continue
        published = TABLE1_BY_NAME[row.name]
        assert 0.6 < row.ptot / published.ptot < 1.4, row.name
