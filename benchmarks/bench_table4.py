"""Benchmark T4 — regenerate Table 4 (Wallace family on HS)."""

from repro.experiments.table1 import run_table1_calibrated
from repro.experiments.wallace_family import run_table4


def test_table4_hs(benchmark, save_artifact):
    result = benchmark(run_table4)
    save_artifact("table4", result.render())

    assert result.max_abs_error_percent() < 3.0
    # Section 5 on HS: parallelisation now *hurts* (leakage of 2x cells).
    assert result.row("Wallace").ptot < result.row("Wallace parallel").ptot
    assert result.row("Wallace parallel").ptot < result.row("Wallace par4").ptot
    for row in result.rows:
        assert abs(row.ptot - row.published_ptot) / row.published_ptot < 0.01


def test_flavour_comparison(benchmark, save_artifact):
    """LL beats both extremes for the whole Wallace family."""
    from repro.experiments.wallace_family import run_table3

    ll, ull, hs = benchmark.pedantic(
        lambda: (run_table1_calibrated(), run_table3(), run_table4()),
        rounds=1,
        iterations=1,
    )
    lines = ["flavour comparison (uW): LL vs ULL vs HS"]
    for name in ("Wallace", "Wallace parallel", "Wallace par4"):
        ll_power = ll.row(name).ptot
        ull_power = ull.row(name).ptot
        hs_power = hs.row(name).ptot
        lines.append(
            f"{name:18s} LL={ll_power * 1e6:7.2f}  ULL={ull_power * 1e6:7.2f}  "
            f"HS={hs_power * 1e6:7.2f}"
        )
        assert ll_power < ull_power < hs_power
    save_artifact("table34_flavour_comparison", "\n".join(lines))
