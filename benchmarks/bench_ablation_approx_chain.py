"""Ablation A4 — decomposing the Eq. 13 approximation error.

Section 3 stacks three approximations between the exact optimum and the
closed form: (i) the Eq. 7 linearisation of Vdd^(1/alpha), (ii) the
high-supply stationarity simplification (Eq. 9), (iii) the square
completion (Eq. 11 -> 12).  This ablation evaluates the chain's rungs —

  exact numerical  ->  numerical on the linearised constraint  ->
  Eq. 11 at Eq. 10's Vdd  ->  Eq. 12  ->  Eq. 13

— for every Table 1 row, showing where the error enters.
"""

from repro.core.calibration import calibrate_row
from repro.core.closed_form import closed_form_breakdown
from repro.core.numerical import numerical_optimum, numerical_optimum_linearized
from repro.core.optimum import approximation_error_percent
from repro.core.technology import ST_CMOS09_LL
from repro.experiments.paper_data import PAPER_FREQUENCY, TABLE1_ROWS
from repro.experiments.report import render_table


def _chain_row(published):
    arch = calibrate_row(published, ST_CMOS09_LL, PAPER_FREQUENCY)
    exact = numerical_optimum(arch, ST_CMOS09_LL, PAPER_FREQUENCY).ptot
    linearized = numerical_optimum_linearized(arch, ST_CMOS09_LL, PAPER_FREQUENCY).ptot
    breakdown = closed_form_breakdown(arch, ST_CMOS09_LL, PAPER_FREQUENCY)
    return {
        "name": published.name,
        "exact": exact,
        "linearized": approximation_error_percent(exact, linearized),
        "eq11": approximation_error_percent(exact, breakdown.ptot_eq11),
        "eq12": approximation_error_percent(exact, breakdown.ptot_eq12),
        "eq13": approximation_error_percent(exact, breakdown.ptot_eq13),
    }


def test_approximation_chain(benchmark, save_artifact):
    rows = benchmark.pedantic(
        lambda: [_chain_row(published) for published in TABLE1_ROWS],
        rounds=1,
        iterations=1,
    )

    save_artifact(
        "ablation_approx_chain",
        render_table(
            ["architecture", "exact [uW]", "lin.constraint err%", "Eq11 err%",
             "Eq12 err%", "Eq13 err%"],
            [
                [r["name"], f"{r['exact'] * 1e6:.2f}", f"{r['linearized']:+.3f}",
                 f"{r['eq11']:+.3f}", f"{r['eq12']:+.3f}", f"{r['eq13']:+.3f}"]
                for r in rows
            ],
            title="A4: error contribution of each approximation step",
        ),
    )

    for r in rows:
        # The linearised-constraint numerical optimum stays within ~2%
        # (worst: Seq4_16 at +2.1%): Eq. 7 is the chain's dominant error
        # source; the stationarity and square-completion steps add only
        # fractions of a percent on top.
        assert abs(r["linearized"]) < 2.5, r["name"]
        # Eq. 12 and Eq. 13 agree by construction at Eq. 10's Vdd.
        assert abs(r["eq12"] - r["eq13"]) < 1e-6
        # The full chain stays inside the abstract's band.
        assert abs(r["eq13"]) < 3.0
