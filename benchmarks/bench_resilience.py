"""Benchmark R1 — deadline checkpoints must be free when idle.

ISSUE 10's acceptance bar: the cooperative deadline machinery (the
thread-local read in :func:`repro.resilience.checkpoint` and the
chunked kernel loop it enables) may cost **at most 2%** end to end on
the 100,800-point mixed sweep — measured here as best-of-N
``evaluate_table`` wall time with a generous active deadline versus
none — and the two runs must produce byte-identical columns.

The faults-off half of the contract rides along: with no plan
installed, ``faults.check``/``faults.mangle`` are one global load, and
this benchmark times a million of them to record the per-call cost.

``REPRO_BENCH_SMOKE=1`` shrinks the sweep ~8x for CI.
"""

from __future__ import annotations

import time

import numpy as np
from bench_columnar import mixed_scenario
from conftest import smoke_mode

from repro.explore.engine import evaluate_table
from repro.resilience import Deadline, active_deadline
from repro.resilience.faults import check as fault_check

#: Acceptance ceiling for the deadline-checkpoint overhead.
OVERHEAD_CEILING_PCT = 2.0

#: A deadline generous enough to never fire during the sweep: the
#: overhead measured is pure checkpoint cost, not early termination.
GENEROUS_SECONDS = 3600.0


def _best_of(runs: int, evaluate) -> tuple[float, object]:
    best = float("inf")
    table = None
    for _ in range(runs):
        started = time.perf_counter()
        candidate = evaluate()
        elapsed = time.perf_counter() - started
        if elapsed < best:
            best, table = elapsed, candidate
    return best, table


def _assert_identical(baseline, guarded) -> None:
    left = baseline.to_payload_columns()
    right = guarded.to_payload_columns()
    assert left.keys() == right.keys()
    for name in left:
        assert np.array_equal(
            np.asarray(left[name]), np.asarray(right[name])
        ), f"column {name!r} differs under an active deadline"


def test_deadline_checkpoint_overhead(record_benchmark):
    scenario = mixed_scenario()
    n_points = scenario.size
    runs = 2 if smoke_mode() else 3

    # Untimed warm-up so the first timed run does not pay one-off costs
    # (imports, allocator growth, solver caches) that would skew the
    # baseline-vs-deadline comparison.
    evaluate_table(scenario, method="auto")

    baseline_seconds, baseline_table = _best_of(
        runs, lambda: evaluate_table(scenario, method="auto")
    )

    def guarded():
        with active_deadline(Deadline.after(GENEROUS_SECONDS)):
            return evaluate_table(scenario, method="auto")

    deadline_seconds, deadline_table = _best_of(runs, guarded)

    _assert_identical(baseline_table, deadline_table)
    overhead_pct = (deadline_seconds / baseline_seconds - 1.0) * 100.0

    # -- faults-off checkpoint cost (no plan installed) --------------------
    calls = 1_000_000
    started = time.perf_counter()
    for _ in range(calls):
        fault_check("cache.read")
    fault_check_ns = (time.perf_counter() - started) / calls * 1e9

    record_benchmark(
        "resilience",
        points=n_points,
        runs=runs,
        baseline_seconds=round(baseline_seconds, 4),
        deadline_seconds=round(deadline_seconds, 4),
        overhead_pct=round(overhead_pct, 3),
        gate_pct=OVERHEAD_CEILING_PCT,
        fault_check_off_ns=round(fault_check_ns, 1),
        smoke=smoke_mode(),
    )
    assert overhead_pct <= OVERHEAD_CEILING_PCT, (
        f"deadline checkpoints cost {overhead_pct:.2f}% on the "
        f"{n_points}-point sweep (ceiling {OVERHEAD_CEILING_PCT:g}%)"
    )
