"""Benchmark C1 — the columnar end-to-end pipeline vs the object engine.

ISSUE 5's acceptance bar: on a ~100k-candidate *mixed* sweep (feasible
interior + flagged boundary + infeasible tail), the columnar pipeline —
array expansion, vectorized kernel, vectorized exact-numerical fallback,
mask assembly into a ``ResultTable`` — must beat the pre-columnar engine
path by ≥10x end to end.

The baseline reproduces the old hot loop faithfully: expand to
``DesignPoint`` objects, group by technology, run the kernel, build a
``PointOutcome`` per trusted point, fan every flagged point through
``executor.run_numerical`` (one scipy ``minimize_scalar`` per point,
multiprocessing pool), and convert everything to ``PointResult``
objects.  Running that on all ~100k points would take the better part
of a minute, so it is timed on a stride-sampled subset (which preserves
the feasible/flagged mix) and extrapolated by rate — exactly how
``bench_explore`` treats the scalar loop.

A second section times serialisation: column-wise NDJSON chunking vs
per-record object ``json.dumps`` — the serving path's hot loop.

``REPRO_BENCH_SMOKE=1`` shrinks the sweep ~8x for CI.
"""

from __future__ import annotations

import json
import time

from conftest import smoke_mode

from repro.explore.engine import (
    EvaluationStats,
    FALLBACK_METHOD,
    PointOutcome,
    PointResult,
    _group_indices_by_technology,
    _vectorized_outcome,
    evaluate_table,
)
from repro.explore.executor import run_numerical
from repro.explore.scenario import FrequencyGrid, Scenario, demo_scenario
from repro.explore.vectorized import batch_arrays_for_points, closed_form_batch

#: Acceptance floor for the end-to-end columnar speedup.
SPEEDUP_FLOOR = 10.0

#: Target size of the legacy-path timing sample.
LEGACY_SAMPLE = 2500


def mixed_scenario() -> Scenario:
    """A ~100k-candidate sweep spanning every evaluation regime.

    The frequency grid runs deep into infeasible territory for the slow
    transform chains while staying comfortable for the fast ones, so
    the sweep mixes trusted-vectorized, flagged-fallback and infeasible
    points (roughly 64/36 vectorized/fallback with the full grid).
    """
    base = demo_scenario()
    frequency_points = 500 if smoke_mode() else 4200
    return Scenario(
        name="bench-columnar",
        architectures=base.architectures,
        technologies=base.technologies,
        frequencies=FrequencyGrid.logspace(2e6, 1.5e9, frequency_points),
        transform_chains=base.transform_chains,
    )


def legacy_evaluate(points) -> list[PointResult]:
    """The pre-columnar engine hot loop, verbatim."""
    outcomes: list[PointOutcome | None] = [None] * len(points)
    fallback_indices: list[int] = []
    for tech, indices in _group_indices_by_technology(points).items():
        group = [points[i] for i in indices]
        batch = closed_form_batch(tech, **batch_arrays_for_points(group))
        for position, index in enumerate(indices):
            trusted = bool(batch.feasible[position]) and not bool(
                batch.needs_fallback[position]
            )
            if trusted:
                outcomes[index] = _vectorized_outcome(
                    points[index], batch, position
                )
            else:
                fallback_indices.append(index)
    for index, (result, reason) in zip(
        fallback_indices,
        run_numerical([points[i] for i in fallback_indices]),
    ):
        outcomes[index] = PointOutcome(
            point=points[index],
            result=result,
            reason=reason,
            method=FALLBACK_METHOD,
        )
    return [PointResult.from_outcome(outcome) for outcome in outcomes]


def test_columnar_end_to_end_speedup(save_artifact, record_benchmark):
    scenario = mixed_scenario()
    n_points = scenario.size
    assert n_points >= (10_000 if smoke_mode() else 100_000)

    # -- columnar pipeline, full sweep ------------------------------------
    from repro import obs

    timer = obs.PhaseTimer("engine")
    started = time.perf_counter()
    table = evaluate_table(scenario, method="auto", timer=timer)
    columnar_seconds = time.perf_counter() - started
    stats = EvaluationStats.from_table(
        table, columnar_seconds, phases=timer.phases
    )
    columnar_rate = n_points / columnar_seconds

    # -- legacy object path, sampled + extrapolated ------------------------
    points = scenario.expand()
    stride = max(1, n_points // LEGACY_SAMPLE)
    sample = points[::stride]
    started = time.perf_counter()
    legacy_records = legacy_evaluate(sample)
    legacy_sample_seconds = time.perf_counter() - started
    legacy_rate = len(sample) / legacy_sample_seconds
    legacy_seconds = n_points / legacy_rate
    speedup = legacy_seconds / columnar_seconds

    # -- serialisation: columns vs per-record objects ----------------------
    # The object side is what the pre-columnar NDJSON stream did per
    # request: materialise every record, introspect it to a dict, dump.
    started = time.perf_counter()
    chunk_bytes = sum(
        len(chunk) for chunk in table.iter_ndjson_chunks(chunk_rows=2048)
    )
    columnar_serialise_seconds = time.perf_counter() - started
    started = time.perf_counter()
    object_bytes = sum(
        len(json.dumps({"kind": "record", **record.to_dict()}, sort_keys=True))
        for record in table.rows()  # fresh lazy view: materialises each row
    )
    object_serialise_seconds = time.perf_counter() - started
    serialise_speedup = object_serialise_seconds / columnar_serialise_seconds

    lines = [
        "Benchmark C1 — columnar end-to-end pipeline",
        f"sweep: {scenario.describe()}",
        f"mix:   {stats.n_vectorized} vectorized, {stats.n_fallback} "
        f"exact-numerical fallback, {n_points - stats.n_feasible} infeasible",
        "",
        f"{'path':<36} {'points':>8} {'seconds':>9} {'cand/s':>12}",
        "-" * 70,
        f"{'columnar (arrays end to end)':<36} {n_points:>8} "
        f"{columnar_seconds:>9.3f} {columnar_rate:>12,.0f}",
        f"{'legacy objects + scipy pool (sample)':<36} {len(sample):>8} "
        f"{legacy_sample_seconds:>9.3f} {legacy_rate:>12,.0f}",
        f"{'legacy extrapolated to full sweep':<36} {n_points:>8} "
        f"{legacy_seconds:>9.3f} {legacy_rate:>12,.0f}",
        "-" * 70,
        f"end-to-end speedup:      {speedup:,.1f}x (floor {SPEEDUP_FLOOR:g}x)",
        f"NDJSON serialisation:    {serialise_speedup:,.1f}x "
        f"({chunk_bytes} bytes streamed)",
    ]
    save_artifact("bench_columnar", "\n".join(lines))
    record_benchmark(
        "columnar",
        n_points=n_points,
        n_fallback=stats.n_fallback,
        n_feasible=stats.n_feasible,
        columnar_seconds=round(columnar_seconds, 4),
        columnar_rate=round(columnar_rate),
        legacy_sample_points=len(sample),
        legacy_seconds_extrapolated=round(legacy_seconds, 2),
        speedup=round(speedup, 1),
        serialise_speedup=round(serialise_speedup, 1),
        smoke=smoke_mode(),
        phases=stats.phases,
    )

    # Sanity: both sides evaluated the same problem the same way.
    rows = table.rows()
    for offset, record in zip(range(0, n_points, stride), legacy_records):
        columnar_record = rows[offset]
        assert columnar_record.feasible == record.feasible
        if record.feasible:
            assert abs(columnar_record.ptot - record.ptot) <= 1e-9 * record.ptot
    assert object_bytes > 0
    # Acceptance: >= 10x end to end on the mixed sweep.
    assert speedup >= SPEEDUP_FLOOR, (
        f"columnar speedup {speedup:.1f}x below the {SPEEDUP_FLOOR:g}x floor"
    )
