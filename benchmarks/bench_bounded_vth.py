"""Ablation A6 (extension) — frequency sweep under a threshold ceiling.

The unbounded model (ablation A3) never lets the sequential multiplier
win: free Vth always re-balances leakage.  This benchmark repeats the
sweep with a realistic threshold ceiling (0.45 V, roughly the ULL
flavour's nominal Vth0) and shows the ordering the paper's Section 4
prose appeals to: once Vth saturates, leakage scales with cell count and
the smallest circuit wins at very low data rates.
"""

import numpy as np

from repro.core.bounded import bounded_optimum
from repro.core.calibration import calibrate_row
from repro.core.technology import ST_CMOS09_LL
from repro.experiments.paper_data import PAPER_FREQUENCY, TABLE1_BY_NAME
from repro.experiments.report import render_table

NAMES = ["RCA", "Wallace", "Sequential"]
FREQUENCIES = np.geomspace(10.0, 31.25e6, 14)
VTH_MAX = 0.45


def test_bounded_frequency_sweep(benchmark, save_artifact):
    architectures = {
        name: calibrate_row(TABLE1_BY_NAME[name], ST_CMOS09_LL, PAPER_FREQUENCY)
        for name in NAMES
    }

    def sweep():
        table = {}
        for name, arch in architectures.items():
            table[name] = [
                bounded_optimum(
                    arch, ST_CMOS09_LL, float(frequency), vth_max=VTH_MAX
                ).ptot
                for frequency in FREQUENCIES
            ]
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)

    rows = []
    winners = []
    for index, frequency in enumerate(FREQUENCIES):
        powers = {name: table[name][index] for name in NAMES}
        winner = min(powers, key=powers.get)
        winners.append(winner)
        rows.append(
            [f"{frequency:.3g}"]
            + [f"{powers[name] * 1e9:.2f}" for name in NAMES]
            + [winner]
        )
    save_artifact(
        "bounded_vth_sweep",
        render_table(
            ["f [Hz]"] + [f"{n} [nW]" for n in NAMES] + ["winner"],
            rows,
            title=f"A6: optimal power vs frequency with Vth <= {VTH_MAX} V",
        ),
    )

    # At the paper's operating point nothing changes (the cap is loose)...
    assert winners[-1] == "Wallace"
    # ...but at very low data rates the sequential multiplier finally
    # wins — the regime Section 4's "unless ... very low data frequency"
    # refers to, unreachable in the unbounded model (see ablation A3).
    assert winners[0] == "Sequential"
    # The ordering flips exactly once along the sweep.
    flips = sum(1 for a, b in zip(winners, winners[1:]) if a != b)
    assert flips == 1
