"""Benchmark S1 — `Study` facade dispatch overhead vs the explore engine.

The unified API must be free: ``Study(...).run()`` compiles a builder to
a scenario, looks a solver up in the registry, and wraps outcomes into a
``ResultSet`` — none of which may cost meaningful time next to the
evaluation itself.  This benchmark runs the PR 1 demo sweep (1,008
candidates) through both doors with identical settings (auto method,
serial fallback, no cache) and asserts the facade stays within 5 % of
calling the explore engine (:func:`repro.explore.engine.explore`, the
PR 1 entry point that expands, evaluates and packages the same sweep)
directly.

Best-of-N timing on both sides so scheduler noise does not decide the
verdict.
"""

from __future__ import annotations

import time

from repro.explore.engine import explore
from repro.explore.scenario import demo_scenario
from repro.study import Study

#: Paired timing rounds; the best (smallest) per-round ratio is compared.
ROUNDS = 7

#: Evaluations batched into one timing sample.  A single sweep runs in
#: tens of milliseconds, so a 5 % budget on one run would be a few ms —
#: inside shared-CI-runner jitter; batching widens the absolute budget
#: ~LOOPS-fold without weakening the relative bound.
LOOPS = 5

#: Acceptance threshold: Study may cost at most this fraction extra.
MAX_OVERHEAD = 0.05


def _sample(fn) -> float:
    """Seconds per evaluation, averaged over one ``LOOPS`` batch."""
    started = time.perf_counter()
    for _ in range(LOOPS):
        fn()
    return (time.perf_counter() - started) / LOOPS


def _paired_overhead(rounds: int, baseline, candidate):
    """Overhead from each path's *fastest* round: best-of-N vs best-of-N.

    Scheduler noise and frequency drift only ever make a sample slower,
    so each minimum converges on that path's true runtime floor and the
    floor ratio is robust in both directions: one descheduled round
    cannot fail the build (that sample simply is not the minimum) and
    cannot mask real overhead either (a genuinely slower facade keeps
    its floor above the baseline's in every round).  Rounds alternate
    which path runs first because the second-timed path inherits warm
    caches and an already-boosted clock — a consistent position
    advantage worth several percent on its own.
    """
    pairs = []
    for round_index in range(rounds):
        if round_index % 2 == 0:
            b, c = _sample(baseline), _sample(candidate)
        else:
            c, b = _sample(candidate), _sample(baseline)
        pairs.append((b, c))
    best_baseline = min(b for b, _ in pairs)
    best_candidate = min(c for _, c in pairs)
    return best_candidate / best_baseline - 1.0, best_baseline, best_candidate


def test_study_dispatch_overhead(save_artifact):
    scenario = demo_scenario()
    points = scenario.expand()
    assert len(points) == 1008

    def run_engine():
        return explore(scenario, method="auto", jobs=1, use_cache=False)

    def run_study():
        return (
            Study.from_scenario(scenario).solver("auto").jobs(1).run()
        )

    # Warm both paths once (imports, numpy dispatch tables, scipy).
    engine_result = run_engine()
    study_result = run_study()

    overhead, engine_seconds, study_seconds = _paired_overhead(
        ROUNDS, run_engine, run_study
    )

    lines = [
        "Benchmark S1 — Study facade dispatch overhead",
        f"sweep: {scenario.describe()}",
        "",
        f"{'path':<34} {'seconds':>9} {'cand/s':>12}",
        "-" * 58,
        f"{'explore (engine direct)':<34} {engine_seconds:>9.4f} "
        f"{len(points) / engine_seconds:>12,.0f}",
        f"{'Study.run (facade)':<34} {study_seconds:>9.4f} "
        f"{len(points) / study_seconds:>12,.0f}",
        "-" * 58,
        f"facade overhead: {overhead * 100:+.2f} % "
        f"(acceptance: < {MAX_OVERHEAD * 100:.0f} %)",
    ]
    save_artifact("bench_study", "\n".join(lines))

    # Same problem, same answers: record-for-record identical results.
    assert len(study_result) == len(engine_result.points)
    assert study_result.records == engine_result.points
    best = study_result.best()
    assert best is not None and best.ptot is not None

    assert overhead < MAX_OVERHEAD, (
        f"Study dispatch overhead {overhead * 100:.2f} % exceeds the "
        f"{MAX_OVERHEAD * 100:.0f} % budget"
    )
