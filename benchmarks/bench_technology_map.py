"""Ablation A5 — the continuous flavour line (paper Section 5's map).

Section 5 concludes that "extreme technology flavors (ULL and HS) are
penalized" for the Wallace workload.  This benchmark sweeps the
continuous flavour axis through ULL (t=-1), LL (t=0) and HS (t=+1) —
trading Io, zeta and alpha jointly as real flavours do — and asserts the
optimal power forms a valley at the moderate flavour.
"""

import numpy as np

from repro.core.calibration import calibrate_row
from repro.core.numerical import numerical_optimum
from repro.core.technology import ST_CMOS09_LL, flavour_line
from repro.experiments.paper_data import PAPER_FREQUENCY, TABLE1_BY_NAME
from repro.experiments.report import render_table

POSITIONS = np.linspace(-1.6, 1.6, 17)


def test_flavour_line_valley(benchmark, save_artifact):
    arch = calibrate_row(TABLE1_BY_NAME["Wallace"], ST_CMOS09_LL, PAPER_FREQUENCY)

    def sweep():
        powers = []
        for t in POSITIONS:
            tech = flavour_line(float(t))
            try:
                powers.append(numerical_optimum(arch, tech, PAPER_FREQUENCY).ptot)
            except ValueError:
                powers.append(float("nan"))
        return powers

    powers = benchmark(sweep)

    rows = []
    for t, power in zip(POSITIONS, powers):
        tech = flavour_line(float(t))
        rows.append([
            f"{t:+.2f}", f"{tech.io * 1e6:.2f}", f"{tech.zeta * 1e12:.2f}",
            f"{tech.alpha:.3f}",
            f"{power * 1e6:.2f}" if np.isfinite(power) else "inf",
        ])
    save_artifact(
        "technology_map",
        render_table(
            ["t", "Io [uA]", "zeta [pF]", "alpha", "Ptot [uW]"],
            rows,
            title="A5: Wallace optimal power along the ULL-LL-HS flavour line",
        ),
    )

    finite = np.asarray(powers)
    best = int(np.nanargmin(finite))
    # The valley sits at the moderate flavour (t ~ 0), not at an extreme.
    assert abs(POSITIONS[best]) < 0.3
    # Power rises towards both ends of the swept line.
    assert finite[0] > finite[best] and finite[-1] > finite[best]
    # Both published extreme flavours cost more than LL for this circuit.
    # (Their order relative to *each other* depends on the per-flavour
    # activity/capacitance annotation, which Tables 3/4 redo per flavour
    # and this single-annotation sweep deliberately does not.)
    ll_power = numerical_optimum(arch, flavour_line(0.0), PAPER_FREQUENCY).ptot
    ull_power = numerical_optimum(arch, flavour_line(-1.0), PAPER_FREQUENCY).ptot
    hs_power = numerical_optimum(arch, flavour_line(1.0), PAPER_FREQUENCY).ptot
    assert ll_power < ull_power and ll_power < hs_power
