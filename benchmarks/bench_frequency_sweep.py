"""Ablation A3 — who wins at which frequency (paper Section 4).

"Sequential multipliers are not suited for low power design, unless the
circuits have to work at a very low data frequency."  This sweep maps the
cheapest Table 1 architecture across four decades of data rate and
locates the basic-vs-parallel crossover.

A model finding this exposes (documented in EXPERIMENTS.md): with Vdd and
Vth *freely* adjustable, the optimum always balances leakage against
switching (Eq. 9), so the sequential multiplier's small cell count never
compensates its ~3x higher energy per multiply — it only wins once a
threshold-voltage ceiling is imposed (future-work extension below).
"""

import numpy as np

from repro.core.calibration import calibrate_row
from repro.core.sensitivity import crossover_frequency, frequency_sweep
from repro.core.technology import ST_CMOS09_LL
from repro.experiments.paper_data import PAPER_FREQUENCY, TABLE1_BY_NAME
from repro.experiments.report import render_table

NAMES = ["RCA", "RCA parallel4", "Wallace", "Wallace par4", "Sequential"]
FREQUENCIES = np.geomspace(1e4, 1e8, 17)


def test_frequency_sweep(benchmark, save_artifact):
    architectures = [
        calibrate_row(TABLE1_BY_NAME[name], ST_CMOS09_LL, PAPER_FREQUENCY)
        for name in NAMES
    ]

    table = benchmark.pedantic(
        lambda: frequency_sweep(architectures, ST_CMOS09_LL, FREQUENCIES),
        rounds=1,
        iterations=1,
    )

    headers = ["f [MHz]"] + NAMES + ["winner"]
    rows = []
    winners = []
    for index, frequency in enumerate(FREQUENCIES):
        powers = {name: table[name][index] for name in NAMES}
        finite = {k: v for k, v in powers.items() if np.isfinite(v)}
        winner = min(finite, key=finite.get) if finite else "-"
        winners.append(winner)
        rows.append(
            [f"{frequency / 1e6:.3f}"]
            + [
                f"{powers[name] * 1e6:.2f}" if np.isfinite(powers[name]) else "inf"
                for name in NAMES
            ]
            + [winner]
        )
    save_artifact(
        "frequency_sweep",
        render_table(headers, rows, title="A3: optimal power vs data frequency (uW)"),
    )

    # The basic RCA must beat its par4 version at low frequency and lose
    # at Table 1's 31.25 MHz, with a crossover in between.
    crossover = crossover_frequency(
        architectures[0], architectures[1], ST_CMOS09_LL, 1e5, PAPER_FREQUENCY
    )
    assert crossover is not None and 1e5 < crossover < PAPER_FREQUENCY
    # Wallace family wins everywhere in this freely-adjustable-Vth model.
    assert all(winner.startswith("Wallace") for winner in winners)
    # Sequential is never the winner without a Vth ceiling (model finding).
    assert "Sequential" not in winners
