"""Benchmark F3/F4 — pipeline structure comparison (Figures 3 and 4)."""

from repro.experiments.figures3_4 import run_figures34


def test_figures34(benchmark, save_artifact):
    result = benchmark.pedantic(
        lambda: run_figures34(width=8, n_vectors=120), rounds=1, iterations=1
    )
    save_artifact("figures3_4", result.render())

    base = result.variants[0]
    hor2 = result.variant("rca8-horipipe2")
    diag2 = result.variant("rca8-diagpipe2")
    hor4 = result.variant("rca8-horipipe4")
    diag4 = result.variant("rca8-diagpipe4")

    # Register planes appear (the figures' flip-flop rows).
    for variant in (hor2, diag2, hor4, diag4):
        assert variant.registers_added > 0
        assert variant.critical_path < base.critical_path

    # The diagonal cut reaches a shorter critical path...
    assert diag2.critical_path < hor2.critical_path
    assert diag4.critical_path < hor4.critical_path
    # ...but glitches more (Section 4's activity observation).
    assert diag2.glitch_ratio > hor2.glitch_ratio
    assert diag4.glitch_ratio > hor4.glitch_ratio
