"""Benchmark F1 — regenerate Figure 1 (constrained power curves)."""

import numpy as np

from repro.experiments.figure1 import run_figure1


def test_figure1(benchmark, save_artifact):
    result = benchmark(run_figure1)
    save_artifact("figure1", result.render())

    curves = result.curves
    # Lower activity: lower optimal power, higher optimal voltages.
    optima = [curve.optimum for curve in curves]
    assert optima[0].ptot > optima[1].ptot > optima[2].ptot
    assert optima[0].vdd < optima[1].vdd < optima[2].vdd
    assert optima[0].vth < optima[1].vth < optima[2].vth
    # Every curve is U-shaped with an interior minimum at the cross mark.
    for curve in curves:
        index = int(np.argmin(curve.ptot))
        assert 0 < index < len(curve.vdd) - 1
        assert curve.ptot[index] <= curve.optimum.ptot * 1.01
        assert curve.dynamic_static_ratio > 1.0
