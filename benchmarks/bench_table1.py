"""Benchmark T1 — regenerate Table 1 (calibrated mode).

Prints the thirteen-multiplier table with every column the paper reports
and validates the headline <3% Eq. 13 claim plus the published totals.
"""

from repro.experiments.paper_data import TABLE1_BY_NAME
from repro.experiments.table1 import compare_to_published, run_table1_calibrated


def test_table1_calibrated(benchmark, save_artifact):
    result = benchmark(run_table1_calibrated)

    save_artifact(
        "table1_calibrated",
        result.render() + "\n\n" + compare_to_published(result),
    )

    # Validation: headline claim and per-row agreement with the paper.
    assert result.max_abs_error_percent() < 3.0
    for row in result.rows:
        published = TABLE1_BY_NAME[row.name]
        assert abs(row.ptot - published.ptot) / published.ptot < 0.01
        assert abs(row.ptot_eq13 - published.ptot_eq13) / published.ptot_eq13 < 0.01
