"""Benchmark T3 — regenerate Table 3 (Wallace family on ULL)."""

from repro.experiments.wallace_family import run_table3


def test_table3_ull(benchmark, save_artifact):
    result = benchmark(run_table3)
    save_artifact("table3", result.render())

    assert result.max_abs_error_percent() < 3.0
    # Section 5 on ULL: parallelisation still pays, par4 overshoots.
    assert result.row("Wallace parallel").ptot < result.row("Wallace").ptot
    assert result.row("Wallace par4").ptot > result.row("Wallace parallel").ptot
    for row in result.rows:
        assert abs(row.ptot - row.published_ptot) / row.published_ptot < 0.01
