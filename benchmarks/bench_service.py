"""Benchmark SV1 — the serving layer: coalescing and the warm cache tier.

Two acceptance claims for ``repro serve``:

(a) **Coalescing** — k = 8 concurrent identical scenarios cause exactly
    one engine evaluation.  The server runs with caching disabled and a
    gated evaluation hook, so every request *would* evaluate were it not
    for the single-flight coalescer; the engine-run counter decides.

(b) **Warm cache** — once the in-memory tier holds a sweep, a request
    is served at least 10x faster than a cold engine run of the same
    sweep.  Cold is the first request (full exact-numerical evaluation),
    warm is the best of the following requests (memory-LRU lookup +
    serialization); both timed end to end through HTTP.

Both parts run entirely in-process against an ephemeral-port server —
stdlib HTTP on both sides, no external processes.
"""

from __future__ import annotations

import threading
import time

from repro.explore.scenario import demo_scenario
from repro.service.client import ServiceClient
from repro.service.server import ExplorationServer, ServiceConfig
from repro.study import Study

#: Concurrent identical requests in the coalescing demonstration.
CONCURRENT_REQUESTS = 8

#: Warm requests sampled (best one is compared against the cold run).
WARM_ROUNDS = 5

#: Acceptance: warm in-memory hits must be at least this much faster
#: than the cold engine run they replace.
MIN_WARM_SPEEDUP = 10.0


def _serve(config: ServiceConfig, evaluate=None) -> ExplorationServer:
    server = ExplorationServer(config, evaluate=evaluate)
    server.start_background()
    return server


def test_coalescing_k_concurrent_one_run(save_artifact):
    """(a) 8 concurrent identical sweeps → exactly 1 engine evaluation."""
    release = threading.Event()

    def gated_evaluate(scenario, solver, jobs, options):
        # Hold the leader until every follower has joined its flight, so
        # the demonstration is deterministic rather than a race we
        # usually win; the coalescer, cache policy and HTTP path are
        # exactly the production ones.
        release.wait(30.0)
        return (
            Study.from_scenario(scenario)
            .solver(solver, **options)
            .jobs(jobs)
            .run()
        )

    server = _serve(
        ServiceConfig(port=0, workers=CONCURRENT_REQUESTS, use_cache=False),
        evaluate=gated_evaluate,
    )
    try:
        scenario = demo_scenario(frequency_points=2)
        results = []
        errors = []

        def post():
            try:
                client = ServiceClient(server.url, timeout=60.0)
                results.append(client.explore(scenario, solver="auto", jobs=1))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=post) for _ in range(CONCURRENT_REQUESTS)
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 30.0
        while (
            server.state.coalescer.stats()["coalesced"]
            < CONCURRENT_REQUESTS - 1
        ):
            assert time.monotonic() < deadline, (
                f"followers never coalesced: {server.state.coalescer.stats()}"
            )
            time.sleep(0.005)
        release.set()
        for thread in threads:
            thread.join(60.0)
        elapsed = time.perf_counter() - started

        assert not errors, errors
        stats = server.state.coalescer.stats()
        engine_runs = server.state.engine_runs

        lines = [
            "Benchmark SV1a — request coalescing",
            f"sweep: {scenario.describe()} (service cache disabled)",
            "",
            f"{'concurrent identical requests':<34} {CONCURRENT_REQUESTS:>9}",
            f"{'engine evaluations':<34} {engine_runs:>9}",
            f"{'coalesced (served by leader)':<34} {stats['coalesced']:>9}",
            f"{'wall clock [s]':<34} {elapsed:>9.3f}",
            "-" * 46,
            f"acceptance: {CONCURRENT_REQUESTS} requests == 1 engine run: "
            f"{'PASS' if engine_runs == 1 else 'FAIL'}",
        ]
        save_artifact("bench_service_coalescing", "\n".join(lines))

        assert engine_runs == 1, (
            f"{CONCURRENT_REQUESTS} identical concurrent requests caused "
            f"{engine_runs} engine runs; expected exactly 1"
        )
        assert stats["coalesced"] == CONCURRENT_REQUESTS - 1
        assert len(results) == CONCURRENT_REQUESTS
        reference = results[0]
        assert all(r.records == reference.records for r in results)
    finally:
        release.set()
        server.shutdown()
        server.server_close()


def test_warm_cache_throughput(save_artifact, tmp_path):
    """(b) warm in-memory-cache requests ≥ 10x faster than a cold run."""
    server = _serve(
        ServiceConfig(port=0, workers=4, cache_dir=str(tmp_path / "cache"))
    )
    try:
        client = ServiceClient(server.url, timeout=120.0)
        # The exact-numerical reference on a 240-candidate sweep: a real
        # engine workload (a few hundred ms of scipy) with a modest
        # payload, so the comparison measures evaluation vs cache lookup
        # rather than JSON serialization on both sides.
        scenario = demo_scenario(frequency_points=10)

        started = time.perf_counter()
        cold = client.explore(scenario, solver="numerical", jobs=1)
        cold_seconds = time.perf_counter() - started
        assert not cold.cache_hit

        warm_samples = []
        for _ in range(WARM_ROUNDS):
            started = time.perf_counter()
            warm = client.explore(scenario, solver="numerical", jobs=1)
            warm_samples.append(time.perf_counter() - started)
            assert warm.cache_hit
            assert warm.records == cold.records
        warm_seconds = min(warm_samples)
        speedup = cold_seconds / warm_seconds

        memory = client.cache_stats()["memory"]
        lines = [
            "Benchmark SV1b — warm-cache serving throughput",
            f"sweep: {scenario.describe()} (exact-numerical solver)",
            "",
            f"{'path':<34} {'seconds':>9} {'req/s':>10}",
            "-" * 56,
            f"{'cold (engine evaluation)':<34} {cold_seconds:>9.4f} "
            f"{1.0 / cold_seconds:>10.1f}",
            f"{'warm (memory LRU hit)':<34} {warm_seconds:>9.4f} "
            f"{1.0 / warm_seconds:>10.1f}",
            "-" * 56,
            f"speedup: {speedup:.1f}x "
            f"(acceptance: >= {MIN_WARM_SPEEDUP:.0f}x)",
            f"memory tier: {memory['hits']} hits / "
            f"{memory['misses']} misses / {memory['entries']} entries",
        ]
        save_artifact("bench_service_warm_cache", "\n".join(lines))

        assert memory["hits"] >= WARM_ROUNDS
        assert speedup >= MIN_WARM_SPEEDUP, (
            f"warm requests only {speedup:.1f}x faster than a cold engine "
            f"run; acceptance requires {MIN_WARM_SPEEDUP:.0f}x"
        )
    finally:
        server.shutdown()
        server.server_close()
