"""Benchmark SG1 — the surrogate solver's single-point answer path.

Two acceptance claims for solver ``surrogate``:

(a) **Answer-path speedup** — a warm surrogate answers a single
    in-range optimize query at least 5x faster (p50) than the exact
    numerical path it replaces: :func:`~repro.solvers.batch_numerical.
    solve_points`, the bit-identical vectorized Brent port that labels
    the training data and serves every gated fallback.  That ratio is
    the price of a shut gate — a flagged point pays the surrogate *and*
    the exact solve — and the dividend of an open one.

(b) **Correctness at speed** — every trusted answer in the measured
    sample is within 1% relative total power of the exact optimum
    (the subsystem's acceptance bound; held-out calibration targets
    0.4%).

For context, the same points are also pushed through a live server as
single-point ``POST /v1/optimize`` requests (solver ``surrogate`` vs
``numerical``) and the end-to-end + server-side ``study.run`` p50s are
reported.  Those numbers are dominated by HTTP framing and per-request
bookkeeping shared by both solvers, which is why the gate is placed on
the solver layer where the answer paths actually differ.

Runs entirely in-process; ``REPRO_BENCH_SMOKE=1`` shrinks the sample.
"""

from __future__ import annotations

import time

import numpy as np

from conftest import smoke_mode
from repro.explore.scenario import FrequencyGrid, Scenario, demo_scenario
from repro.service.client import ServiceClient
from repro.service.server import ExplorationServer, ServiceConfig
from repro.solvers import get_solver
from repro.solvers.batch_numerical import solve_points
from repro.surrogate import train_bundle
from repro.surrogate.solver import METHOD as SURROGATE_METHOD

#: Acceptance: surrogate p50 vs the exact path it replaces.
MIN_SPEEDUP = 5.0

#: Relative total-power error bound every trusted answer must meet.
MAX_POWER_ERROR = 0.01

#: Single-point queries sampled per solver (p50 over these).
SAMPLE_POINTS = 12 if smoke_mode() else 50

#: Frequency band of the sample — the heart of the trained range.
FREQUENCY_BAND = (4e6, 6.4e7)


def _sample_points():
    """One point per frequency: a demo-base architecture on CMOS09-LL."""
    base = demo_scenario(frequency_points=2)
    frequencies = np.logspace(
        np.log10(FREQUENCY_BAND[0]),
        np.log10(FREQUENCY_BAND[1]),
        SAMPLE_POINTS,
    )
    scenario = Scenario(
        name="surrogate-bench",
        architectures=base.architectures[:1],
        technologies=base.technologies[:1],
        frequencies=FrequencyGrid(values=tuple(float(f) for f in frequencies)),
    )
    return scenario.expand()


def _p50_ms(samples) -> float:
    return float(np.percentile(samples, 50) * 1e3)


def _optimize_p50_ms(client, arch_payload, points, solver: str) -> float:
    client.optimize(
        arch_payload, "LL", points[0].frequency, solver=solver
    )  # warm
    samples = []
    for point in points:
        started = time.perf_counter()
        record = client.optimize(
            arch_payload, "LL", point.frequency, solver=solver
        )
        samples.append(time.perf_counter() - started)
        assert record.feasible, record
    return _p50_ms(samples)


def _study_run_p50_ms(client, limit: int) -> float:
    """Server-side evaluation time from the trace store (newest first)."""

    def walk(nodes):
        for node in nodes:
            if node["name"] == "study.run":
                return node["wall_seconds"]
            found = walk(node.get("children", []))
            if found is not None:
                return found
        return None

    summaries = client._get(f"/v1/traces?route=/v1/optimize&limit={limit}")
    samples = []
    for summary in summaries["traces"][:limit]:
        trace = client._get(f"/v1/traces/{summary['trace_id']}")["trace"]
        wall = walk(trace["tree"])
        if wall is not None:
            samples.append(wall)
    return _p50_ms(samples)


def test_single_point_speedup_vs_exact_path(
    save_artifact, record_benchmark, tmp_path, monkeypatch
):
    monkeypatch.setenv("REPRO_SURROGATE_CACHE", str(tmp_path / "surrogate"))
    bundle_path = tmp_path / "surrogate" / "default.npz"
    monkeypatch.setenv("REPRO_SURROGATE_BUNDLE", str(bundle_path))

    train_started = time.perf_counter()
    train_bundle().bundle.save(bundle_path)
    train_seconds = time.perf_counter() - train_started

    points = _sample_points()
    solver = get_solver("surrogate")
    solver.invalidate()
    solver.solve([points[0]])  # warm: load the bundle once, off the clock

    # (a) the answer path, one point at a time, p50 over the band.
    # Each path runs in its own homogeneous loop so the percentile
    # reflects steady-state cost, not interleaving churn.
    surrogate_samples, outcomes = [], []
    for point in points:
        started = time.perf_counter()
        outcome = solver.solve([point])[0]
        surrogate_samples.append(time.perf_counter() - started)
        outcomes.append(outcome)
    solve_points([points[0]])  # warm the exact path too
    exact_samples = []
    for point in points:
        started = time.perf_counter()
        solve_points([point])
        exact_samples.append(time.perf_counter() - started)
    surrogate_p50 = _p50_ms(surrogate_samples)
    exact_p50 = _p50_ms(exact_samples)
    speedup = exact_p50 / surrogate_p50

    # (b) correctness of exactly those answers against the exact solver.
    exact = solve_points(points)
    trusted = [o.method == SURROGATE_METHOD for o in outcomes]
    errors = [
        abs(outcome.result.point.ptot - exact.ptot[index]) / exact.ptot[index]
        for index, outcome in enumerate(outcomes)
        if trusted[index]
    ]
    worst_error = max(errors) if errors else 0.0

    # Context: the same queries over live HTTP, both solvers.
    arch = points[0].architecture
    arch_payload = {
        "name": arch.name,
        "n_cells": arch.n_cells,
        "activity": arch.activity,
        "logical_depth": arch.logical_depth,
        "capacitance": arch.capacitance,
        "io_factor": arch.io_factor,
        "zeta_factor": arch.zeta_factor,
    }
    server = ExplorationServer(
        ServiceConfig(port=0, workers=2, use_cache=False, telemetry=True)
    )
    server.start_background()
    try:
        client = ServiceClient(server.url, timeout=60.0)
        http_surrogate = _optimize_p50_ms(
            client, arch_payload, points, "surrogate"
        )
        served_surrogate = _study_run_p50_ms(client, len(points))
        http_numerical = _optimize_p50_ms(
            client, arch_payload, points, "numerical"
        )
        served_numerical = _study_run_p50_ms(client, len(points))
    finally:
        server.shutdown()
        server.server_close()

    n_trusted = sum(trusted)
    lines = [
        "Benchmark SG1 — surrogate single-point answer path",
        f"sample: {len(points)} points, "
        f"{FREQUENCY_BAND[0]/1e6:g}-{FREQUENCY_BAND[1]/1e6:g} MHz, "
        f"bundle trained in {train_seconds:.2f} s",
        "",
        f"{'surrogate answer p50 [ms]':<38} {surrogate_p50:>9.3f}",
        f"{'exact path (solve_points) p50 [ms]':<38} {exact_p50:>9.3f}",
        f"{'answer-path speedup':<38} {speedup:>8.1f}x",
        f"{'trusted answers':<38} {n_trusted:>6}/{len(points)}",
        f"{'worst trusted power error':<38} {worst_error:>9.2e}",
        "",
        "context (single-point POST /v1/optimize, warm):",
        f"{'  surrogate end-to-end p50 [ms]':<38} {http_surrogate:>9.3f}",
        f"{'  numerical end-to-end p50 [ms]':<38} {http_numerical:>9.3f}",
        f"{'  surrogate server-side p50 [ms]':<38} {served_surrogate:>9.3f}",
        f"{'  numerical server-side p50 [ms]':<38} {served_numerical:>9.3f}",
        "-" * 50,
        f"acceptance: >= {MIN_SPEEDUP:g}x answer-path speedup and every "
        f"trusted answer within {MAX_POWER_ERROR:.0%}: "
        f"{'PASS' if speedup >= MIN_SPEEDUP and worst_error <= MAX_POWER_ERROR else 'FAIL'}",
    ]
    save_artifact("bench_surrogate", "\n".join(lines))
    record_benchmark(
        "surrogate",
        p50_surrogate_ms=round(surrogate_p50, 4),
        p50_exact_ms=round(exact_p50, 4),
        speedup=round(speedup, 2),
        gate_floor=MIN_SPEEDUP,
        points=len(points),
        n_trusted=n_trusted,
        worst_trusted_power_error=worst_error,
        http_p50_surrogate_ms=round(http_surrogate, 4),
        http_p50_numerical_ms=round(http_numerical, 4),
        served_p50_surrogate_ms=round(served_surrogate, 4),
        served_p50_numerical_ms=round(served_numerical, 4),
        train_seconds=round(train_seconds, 3),
    )

    assert n_trusted == len(points), (
        f"expected every in-band point trusted, got {n_trusted}/{len(points)}"
    )
    assert worst_error <= MAX_POWER_ERROR, (
        f"trusted answer off by {worst_error:.2%} (> {MAX_POWER_ERROR:.0%})"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"surrogate p50 {surrogate_p50:.3f} ms vs exact "
        f"{exact_p50:.3f} ms: {speedup:.1f}x < {MIN_SPEEDUP:g}x"
    )
