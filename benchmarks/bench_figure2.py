"""Benchmark F2 — regenerate Figure 2 (the Eq. 7 linearisation)."""

import numpy as np

from repro.experiments.figure2 import run_figure2


def test_figure2(benchmark, save_artifact):
    result = benchmark(run_figure2)
    save_artifact("figure2", result.render())

    assert result.alpha == 1.5
    assert np.max(np.abs(result.linear - result.exact)) < 0.02
    assert result.fit.a > 0 and result.fit.b > 0
