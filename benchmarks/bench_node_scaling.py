"""Ablation A7 — the paper's closing remark on technology nodes.

Section 5 ends: "a smaller technology node with ultra-high speed and
large leakage might consume more than a larger techno with better
balanced α, Io, ζ, etc. at its optimal working point when considering
the same performances."

We model an aggressive smaller node from the 0.13 µm LL flavour with
classic scaling trends: faster gates (ζ down), much leakier devices
(Io up, Vth0 down) and stronger velocity saturation (α down), then
compare optimal total power at the *same* 31.25 MHz workload.
"""

from repro.core.calibration import calibrate_row
from repro.core.numerical import numerical_optimum
from repro.core.technology import ST_CMOS09_LL
from repro.experiments.paper_data import PAPER_FREQUENCY, TABLE1_BY_NAME
from repro.experiments.report import render_table

#: An aggressive "90 nm HS-like" node derived from the 130 nm LL flavour.
#: Wire-dominated interconnect eats most of the device speed gain (ζ only
#: x0.9) while leakage explodes (Io x40, Vth0 -120 mV) and velocity
#: saturation deepens (α -0.45) — an imbalanced shrink, the case the
#: paper's remark warns about.
AGGRESSIVE_NODE = ST_CMOS09_LL.scaled(
    name="synthetic-90nm-HS",
    io_factor=40.0,
    zeta_factor=0.9,
    alpha_shift=-0.45,
    vth0_shift=-0.12,
)

#: A balanced smaller node: a real net speed gain with only a moderate
#: leakage increase and a mild alpha reduction.
BALANCED_NODE = ST_CMOS09_LL.scaled(
    name="synthetic-90nm-LP",
    io_factor=3.0,
    zeta_factor=0.6,
    alpha_shift=-0.10,
    vth0_shift=-0.03,
)

ARCHITECTURES = ["Wallace", "RCA"]


def test_node_scaling(benchmark, save_artifact):
    rows_spec = {
        name: calibrate_row(TABLE1_BY_NAME[name], ST_CMOS09_LL, PAPER_FREQUENCY)
        for name in ARCHITECTURES
    }
    nodes = [ST_CMOS09_LL, BALANCED_NODE, AGGRESSIVE_NODE]

    def sweep():
        return {
            (arch_name, node.name): numerical_optimum(
                arch, node, PAPER_FREQUENCY
            ).ptot
            for arch_name, arch in rows_spec.items()
            for node in nodes
        }

    powers = benchmark(sweep)

    rows = [
        [arch_name] + [f"{powers[(arch_name, node.name)] * 1e6:.2f}" for node in nodes]
        for arch_name in ARCHITECTURES
    ]
    save_artifact(
        "node_scaling",
        render_table(
            ["architecture"] + [node.name for node in nodes],
            rows,
            title=(
                "A7: optimal power [uW] at 31.25 MHz — 130nm LL vs "
                "synthetic smaller nodes"
            ),
        ),
    )

    # The paper's remark materialises for the *fast* architecture: the
    # Wallace multiplier (short LD, no timing pressure) pays for the
    # imbalanced node's leakage/alpha extremes and ends up above the
    # older balanced technology...
    assert powers[("Wallace", AGGRESSIVE_NODE.name)] > powers[
        ("Wallace", ST_CMOS09_LL.name)
    ]
    # ...while the slow RCA still benefits (its large chi gives the speed
    # gain real value) — the same architecture-dependence Section 5 found
    # between Tables 3 and 4.
    assert powers[("RCA", AGGRESSIVE_NODE.name)] < powers[("RCA", ST_CMOS09_LL.name)]
    # A balanced shrink helps everyone.
    for arch_name in ARCHITECTURES:
        assert powers[(arch_name, BALANCED_NODE.name)] < powers[
            (arch_name, ST_CMOS09_LL.name)
        ], arch_name
