"""Benchmark T2 — regenerate Table 2 (technology characterisation)."""

from repro.experiments.table2 import run_table2


def test_table2_characterisation(benchmark, save_artifact):
    result = benchmark(run_table2)
    save_artifact("table2", result.render())

    checks = result.ordering_checks()
    assert all(checks.values()), checks
    # The extraction must recover alpha within a few percent per flavour.
    from repro.experiments.paper_data import TABLE2

    for label, fitted in result.fitted.items():
        assert abs(fitted.alpha - TABLE2[label]["alpha"]) < 0.06
        assert abs(fitted.vth0_nominal - TABLE2[label]["vth0_nominal"]) < 0.02
