"""Benchmark J1 — shard-count scaling of the async job subsystem.

ISSUE 7's acceptance bar: on a ≥100k-point sweep submitted through
:class:`~repro.jobs.JobManager`, 4-shard execution must beat 1-shard
execution by ≥2x end to end — *on hardware with at least 4 cores*.  The
shard workers are threads and the columnar kernel releases the GIL, so
the scaling ceiling is the core count; this benchmark therefore records
``cpu_count`` and a core-scaled ``gate_floor`` next to the measured
speedup, and the CI gate enforces the floor the measuring machine can
actually reach (2.0 with ≥4 cores, lower overhead-bound floors below
that — a 1-core container can only prove that sharding overhead stays
small, not that it scales).

Caching is disabled throughout: every timed run is a real engine run,
so the 4-shard time is not a disguised cache replay of the 1-shard one.

``REPRO_BENCH_SMOKE=1`` keeps the sweep at the 100,800-point floor
(the full run doubles it).
"""

from __future__ import annotations

import os
import time

from conftest import smoke_mode

from repro.explore.scenario import demo_scenario
from repro.jobs import JobManager, JobStore, WorkerPool

#: Shard counts to sweep; the gate compares SHARDS_GATE against 1.
SHARD_COUNTS = (1, 2, 4, 8)
SHARDS_GATE = 4

#: Timed repetitions per shard count (best-of, to shed scheduler noise).
REPEATS = 3


def gate_floor(cpu_count: int) -> float:
    """The speedup floor this machine is expected to clear.

    ≥4 cores must show real scaling; 2-3 cores at least parallel gain;
    a single core can only be held to bounded sharding overhead.
    """
    if cpu_count >= 4:
        return 2.0
    if cpu_count >= 2:
        return 1.2
    return 0.4


def timed_job(manager: JobManager, scenario, shards: int) -> float:
    started = time.perf_counter()
    record = manager.submit(scenario, solver="auto", shards=shards)
    status = manager.wait(record.id, timeout=600.0)
    elapsed = time.perf_counter() - started
    assert status["state"] == "done", status
    assert status["progress"]["points_done"] == scenario.size, status
    return elapsed


def test_shard_scaling(tmp_path, record_benchmark):
    frequency_points = 4200 if smoke_mode() else 8400
    scenario = demo_scenario(frequency_points=frequency_points)
    assert scenario.size >= 100_000  # the acceptance-bar sweep floor

    manager = JobManager(
        store=JobStore(tmp_path / "jobs"),
        cache=tmp_path / "cache",
        use_cache=False,  # every timed run is a real engine run
        pool=WorkerPool(max_workers=max(SHARD_COUNTS)),
    )
    timings: dict[int, float] = {}
    try:
        timed_job(manager, scenario, 1)  # warm-up: imports, pool spin-up
        for count in SHARD_COUNTS:
            timings[count] = min(
                timed_job(manager, scenario, count) for _ in range(REPEATS)
            )
    finally:
        manager.close()

    speedup = timings[1] / timings[SHARDS_GATE]
    cpu_count = os.cpu_count() or 1
    floor = gate_floor(cpu_count)

    lines = [
        f"jobs shard scaling — {scenario.size} points, "
        f"{cpu_count} cores (gate floor {floor}x)",
    ]
    for count in SHARD_COUNTS:
        lines.append(
            f"  {count} shard{'s' if count > 1 else ' '}: "
            f"{timings[count] * 1e3:8.1f} ms  "
            f"({timings[1] / timings[count]:.2f}x vs 1 shard)"
        )
    print("\n" + "\n".join(lines))

    record_benchmark(
        "jobs",
        points=scenario.size,
        cpu_count=cpu_count,
        gate_floor=floor,
        speedup=round(speedup, 3),
        **{
            f"seconds_{count}_shard": round(timings[count], 4)
            for count in SHARD_COUNTS
        },
    )
    assert speedup >= floor, (
        f"4-shard speedup {speedup:.2f}x below the {floor}x floor for "
        f"{cpu_count} cores: {timings}"
    )
