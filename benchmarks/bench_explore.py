"""Benchmark E1 — batch exploration vs. the scalar selection loop.

Measures candidates/second on a ≥1,000-point sweep through three paths:

* the vectorized Eq. 13 kernel (``method="closed-form"``),
* the auto engine (vectorized + exact-numerical fallback),
* the seed's one-scipy-call-per-point loop (the historical
  ``evaluate_candidates`` behaviour), timed on a subsample and reported
  as a rate because running all 1,000+ points serially is exactly the
  bottleneck this engine removes.

Acceptance (ISSUE 1): the vectorized batch must beat the scalar loop by
at least 10× in throughput.
"""

from __future__ import annotations

import time

from conftest import smoke_mode

from repro.core.numerical import numerical_optimum
from repro.explore.engine import evaluate_points
from repro.explore.scenario import FrequencyGrid, Scenario, demo_scenario

#: How many points of the sweep the scalar reference loop times.
SCALAR_SAMPLE = 120

#: Scalar sample in CI smoke mode (the scalar loop is the slow side).
SCALAR_SAMPLE_SMOKE = 40


def interior_scenario() -> Scenario:
    """A ≥1,000-candidate sweep kept inside the feasible interior, so
    every path evaluates every point (no infeasible short-circuits
    flattering either side)."""
    base = demo_scenario()
    return Scenario(
        name="bench-explore",
        architectures=base.architectures,
        technologies=base.technologies,
        frequencies=FrequencyGrid.logspace(5e6, 40e6, 84),
        transform_chains=base.transform_chains[:2],  # identity + pipe2
    )


def _rate(n_points: int, seconds: float) -> float:
    return n_points / seconds if seconds > 0 else float("inf")


def test_vectorized_vs_scalar_throughput(save_artifact, record_benchmark):
    scenario = interior_scenario()
    points = scenario.expand()
    assert len(points) >= 1000

    started = time.perf_counter()
    vectorized = evaluate_points(points, method="closed-form")
    vectorized_seconds = time.perf_counter() - started
    vectorized_rate = _rate(len(points), vectorized_seconds)

    started = time.perf_counter()
    auto = evaluate_points(points, method="auto", jobs=1)
    auto_seconds = time.perf_counter() - started
    auto_rate = _rate(len(points), auto_seconds)

    # The scalar reference loop: one scipy solve per point, exactly the
    # pre-engine evaluate_candidates inner loop.
    scalar_sample = SCALAR_SAMPLE_SMOKE if smoke_mode() else SCALAR_SAMPLE
    sample = points[:: max(1, len(points) // scalar_sample)][:scalar_sample]
    started = time.perf_counter()
    scalar_results = [
        numerical_optimum(p.architecture, p.technology, p.frequency)
        for p in sample
    ]
    scalar_seconds = time.perf_counter() - started
    scalar_rate = _rate(len(sample), scalar_seconds)

    speedup = vectorized_rate / scalar_rate
    lines = [
        "Benchmark E1 — design-space exploration throughput",
        f"sweep: {scenario.describe()}",
        "",
        f"{'path':<28} {'points':>7} {'seconds':>9} {'cand/s':>12}",
        "-" * 60,
        f"{'vectorized closed-form':<28} {len(points):>7} "
        f"{vectorized_seconds:>9.4f} {vectorized_rate:>12,.0f}",
        f"{'auto (vector + fallback)':<28} {len(points):>7} "
        f"{auto_seconds:>9.4f} {auto_rate:>12,.0f}",
        f"{'scalar numerical loop':<28} {len(sample):>7} "
        f"{scalar_seconds:>9.4f} {scalar_rate:>12,.0f}",
        "-" * 60,
        f"vectorized / scalar speedup: {speedup:,.0f}x",
    ]
    save_artifact("bench_explore", "\n".join(lines))
    record_benchmark(
        "explore",
        n_points=len(points),
        vectorized_rate=round(vectorized_rate),
        auto_rate=round(auto_rate),
        scalar_rate=round(scalar_rate),
        speedup=round(speedup, 1),
    )

    # Sanity: both sides actually evaluated the same problem.
    assert all(outcome.feasible for outcome in vectorized)
    assert all(outcome.feasible for outcome in auto)
    assert len(scalar_results) == len(sample)
    # Acceptance: >= 10x throughput for the batched path.
    assert speedup >= 10.0, f"speedup {speedup:.1f}x below the 10x floor"
