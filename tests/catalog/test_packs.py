"""Unit tests for the plugin-pack loader (JSON/TOML, discovery, errors)."""

from __future__ import annotations

import json
import os
import sys

import pytest

from repro.catalog import (
    Catalog,
    PackError,
    discover_pack_files,
    install_packs,
    load_pack,
    register_builtins,
)

from .conftest import TECH_PACK


@pytest.fixture
def catalog():
    catalog = Catalog()
    register_builtins(catalog)
    return catalog


class TestLoadPack:
    def test_json_pack_registers_with_file_provenance(self, catalog, pack_file):
        report = load_pack(pack_file, catalog=catalog)
        assert report.name == "test-foundry"
        assert report.counts == {"technology": 1, "architecture": 1}
        entry = catalog.entry("technology", "FDX28-LP")
        assert entry.provenance == "file"
        assert entry.source == str(pack_file)
        assert catalog.get("technology", "fdx28").alpha == 1.7
        assert catalog.get("architecture", "dsp_mac32").n_cells == 4100

    def test_reloading_the_same_pack_is_idempotent(self, catalog, pack_file):
        load_pack(pack_file, catalog=catalog)
        load_pack(pack_file, catalog=catalog)
        assert len([e for e in catalog.technologies if e.provenance == "file"]) == 1

    @pytest.mark.skipif(
        sys.version_info < (3, 11), reason="stdlib tomllib needs Python 3.11"
    )
    def test_toml_pack(self, catalog, tmp_path):
        path = tmp_path / "foundry.toml"
        path.write_text(
            'name = "toml-foundry"\n'
            "[[technologies]]\n"
            'name = "TOML-Tech"\n'
            "io = 2.0e-6\nzeta = 5.0e-12\nalpha = 1.8\nn = 1.3\n"
            "vdd_nominal = 1.1\nvth0_nominal = 0.35\n"
        )
        report = load_pack(path, catalog=catalog)
        assert report.counts == {"technology": 1}
        assert catalog.get("technology", "toml tech").io == 2.0e-6

    def test_invalid_field_values_fail_with_path_and_index(self, catalog, tmp_path):
        bad = dict(TECH_PACK, technologies=[
            dict(TECH_PACK["technologies"][0], io=-1.0)
        ])
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(bad))
        with pytest.raises(PackError, match=r"technologies\[0\]") as excinfo:
            load_pack(path, catalog=catalog)
        assert "bad.json" in str(excinfo.value)
        assert "io" in str(excinfo.value)

    def test_typo_in_entry_field_fails_loud(self, catalog, tmp_path):
        # A misspelled field must not silently fall back to the
        # dataclass default — wrong physics would go unnoticed.
        bad = dict(TECH_PACK, technologies=[
            dict(TECH_PACK["technologies"][0], temprature=350.0)
        ])
        path = tmp_path / "typo.json"
        path.write_text(json.dumps(bad))
        with pytest.raises(PackError, match="temprature"):
            load_pack(path, catalog=catalog)

    def test_string_aliases_rejected_not_exploded(self, catalog, tmp_path):
        # "aliases": "FDX28" must not become per-character aliases.
        bad = dict(TECH_PACK, technologies=[
            dict(TECH_PACK["technologies"][0], aliases="FDX28")
        ])
        path = tmp_path / "aliases.json"
        path.write_text(json.dumps(bad))
        with pytest.raises(PackError, match="'aliases' must be a list"):
            load_pack(path, catalog=catalog)

    def test_unknown_top_level_keys_rejected(self, catalog, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"name": "x", "solvers": []}))
        with pytest.raises(PackError, match="unknown top-level keys"):
            load_pack(path, catalog=catalog)

    def test_malformed_json_rejected(self, catalog, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(PackError, match="cannot parse"):
            load_pack(path, catalog=catalog)

    def test_wrong_suffix_rejected(self, catalog, tmp_path):
        path = tmp_path / "pack.yaml"
        path.write_text("{}")
        with pytest.raises(PackError, match="must end in"):
            load_pack(path, catalog=catalog)

    def test_conflict_with_builtin_name_is_loud(self, catalog, tmp_path):
        clash = {
            "name": "clash",
            "technologies": [
                dict(TECH_PACK["technologies"][0], name="ST-CMOS09-LL")
            ],
        }
        path = tmp_path / "clash.json"
        path.write_text(json.dumps(clash))
        with pytest.raises(PackError, match="already registered"):
            load_pack(path, catalog=catalog)
        # ... unless the user takes sides explicitly (the replaced
        # entry's aliases go with it — "LL" no longer resolves).
        load_pack(path, catalog=catalog, overwrite=True)
        assert catalog.get("technology", "st-cmos09-ll").alpha == 1.7
        assert "ll" not in catalog.technologies


class TestDiscovery:
    def test_explicit_missing_path_is_an_error(self, tmp_path):
        with pytest.raises(PackError, match="does not exist"):
            discover_pack_files([tmp_path / "nope.json"], environ={}, cwd=tmp_path)

    def test_directory_expands_to_sorted_pack_files(self, tmp_path, pack_file):
        (tmp_path / "z.json").write_text(json.dumps({"name": "z"}))
        found = discover_pack_files([tmp_path], environ={}, cwd=tmp_path / "x")
        names = [p.name for p in found]
        assert names == sorted(names)
        assert pack_file in found

    def test_env_var_and_dropin_directory(self, tmp_path, pack_file):
        dropin = tmp_path / "cwd" / "repro.d"
        dropin.mkdir(parents=True)
        (dropin / "local.json").write_text(json.dumps({"name": "local"}))
        environ = {"REPRO_PACKS": str(pack_file)}
        found = discover_pack_files([], environ=environ, cwd=tmp_path / "cwd")
        assert pack_file in found
        assert dropin / "local.json" in found

    def test_env_var_pathsep_separated(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        for p in (a, b):
            p.write_text(json.dumps({"name": p.stem}))
        environ = {"REPRO_PACKS": f"{a}{os.pathsep}{b}"}
        found = discover_pack_files([], environ=environ, cwd=tmp_path)
        assert [a, b] == [p for p in found if p.suffix == ".json"]

    def test_duplicates_collapse(self, tmp_path, pack_file):
        environ = {"REPRO_PACKS": str(pack_file)}
        found = discover_pack_files([pack_file], environ=environ, cwd=tmp_path)
        assert found.count(pack_file) == 1

    def test_install_packs_loads_everything_found(self, catalog, tmp_path, pack_file):
        reports = install_packs(
            [pack_file], catalog=catalog, environ={}, cwd=tmp_path
        )
        assert [r.name for r in reports] == ["test-foundry"]
        assert "fdx28_lp" in catalog.technologies
