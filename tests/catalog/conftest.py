"""Catalog test fixtures: default-catalog isolation and sample packs."""

from __future__ import annotations

import pytest

from repro.catalog import default_catalog


@pytest.fixture
def restored_catalog():
    """The process-wide catalog, restored to its pre-test entries after."""
    catalog = default_catalog()
    state = catalog.snapshot()
    try:
        yield catalog
    finally:
        catalog.restore(state)


TECH_PACK = {
    "name": "test-foundry",
    "description": "fixtures for the pack loader",
    "technologies": [
        {
            "name": "FDX28-LP",
            "io": 1.1e-6,
            "zeta": 4.2e-12,
            "alpha": 1.7,
            "n": 1.35,
            "vdd_nominal": 1.0,
            "vth0_nominal": 0.42,
            "summary": "28nm FD-SOI low power",
            "aliases": ["FDX28"],
        }
    ],
    "architectures": [
        {
            "name": "dsp-mac32",
            "n_cells": 4100,
            "activity": 0.21,
            "logical_depth": 34,
            "capacitance": 55e-15,
            "summary": "32-bit MAC datapath summary",
        }
    ],
}


@pytest.fixture
def pack_file(tmp_path):
    """A valid two-entity JSON pack on disk."""
    import json

    path = tmp_path / "test_foundry.json"
    path.write_text(json.dumps(TECH_PACK))
    return path
