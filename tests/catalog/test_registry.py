"""Unit tests for the generic namespaced registry."""

from __future__ import annotations

import pytest

from repro.catalog import (
    Catalog,
    CatalogKeyError,
    NAMESPACES,
    default_catalog,
    normalise_name,
    register_builtins,
)
from repro.core.technology import ST_CMOS09_LL, Technology


class TestNormalisation:
    def test_case_dash_underscore_fold_together(self):
        variants = ["ST-CMOS09-LL", "st_cmos09_ll", "St Cmos09 Ll", "ST_CMOS09-ll"]
        keys = {normalise_name(v) for v in variants}
        assert keys == {"st_cmos09_ll"}

    def test_separator_runs_collapse(self):
        assert normalise_name("RCA  hor.pipe2") == "rca_hor.pipe2"
        assert normalise_name("a -_ b") == "a_b"

    def test_leading_trailing_separators_stripped(self):
        assert normalise_name("  -auto_ ") == "auto"

    def test_empty_and_non_string_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            normalise_name("  ")
        with pytest.raises(ValueError, match="strings"):
            normalise_name(42)


class TestNamespace:
    @pytest.fixture
    def catalog(self):
        return Catalog()

    def test_register_and_lookup_any_spelling(self, catalog):
        tech = ST_CMOS09_LL
        catalog.register("technology", "My-Flavour", tech, summary="s")
        for spelling in ("my-flavour", "MY_FLAVOUR", "my flavour"):
            assert catalog.get("technology", spelling) is tech

    def test_aliases_resolve_to_the_same_entry(self, catalog):
        catalog.register("technology", "Full-Name", ST_CMOS09_LL, aliases=("FN",))
        assert catalog.get("technology", "fn") is ST_CMOS09_LL
        assert catalog.entry("technology", "fn").name == "Full-Name"

    def test_duplicate_name_rejected_without_overwrite(self, catalog):
        catalog.register("technology", "t", ST_CMOS09_LL)
        with pytest.raises(ValueError, match="already registered"):
            catalog.register("technology", "T", ST_CMOS09_LL, source="elsewhere")

    def test_same_source_reregistration_is_idempotent(self, catalog):
        catalog.register("technology", "t", ST_CMOS09_LL, source="pack.json")
        catalog.register("technology", "t", ST_CMOS09_LL, source="pack.json")
        assert len(catalog.technologies) == 1

    def test_overwrite_replaces(self, catalog):
        other = Technology(
            name="other", io=1e-6, zeta=1e-12, alpha=1.5, n=1.3,
            vdd_nominal=1.0, vth0_nominal=0.3,
        )
        catalog.register("technology", "t", ST_CMOS09_LL)
        catalog.register("technology", "t", other, overwrite=True)
        assert catalog.get("technology", "t") is other

    def test_unregister_removes_entry_and_aliases(self, catalog):
        catalog.register("technology", "t", ST_CMOS09_LL, aliases=("tt",))
        assert catalog.namespace("technology").unregister("TT")
        assert "t" not in catalog.technologies
        assert not catalog.namespace("technology").unregister("t")

    def test_miss_raises_with_known_and_suggestions(self, catalog):
        catalog.register("technology", "ST-CMOS09-LL", ST_CMOS09_LL)
        with pytest.raises(CatalogKeyError) as excinfo:
            catalog.get("technology", "st-cmos9-ll")
        error = excinfo.value
        assert "unknown technology" in str(error)
        assert "ST-CMOS09-LL" in str(error)
        assert "did you mean" in str(error)
        assert error.suggestions == ("ST-CMOS09-LL",)

    def test_miss_is_a_keyerror(self, catalog):
        with pytest.raises(KeyError):
            catalog.get("solver", "nope")

    def test_builtin_solver_typo_suggests_surrogate(self):
        catalog = Catalog()
        register_builtins(catalog)
        with pytest.raises(CatalogKeyError) as excinfo:
            catalog.get("solver", "surogate")
        assert "did you mean" in str(excinfo.value)
        assert "surrogate" in excinfo.value.suggestions

    def test_unknown_namespace_rejected(self, catalog):
        with pytest.raises(ValueError, match="unknown namespace"):
            catalog.namespace("flavours")
        with pytest.raises(ValueError, match="unknown namespace"):
            catalog.register("flavours", "x", object())

    def test_provenance_validation(self, catalog):
        with pytest.raises(ValueError, match="unknown provenance"):
            catalog.register("technology", "t", ST_CMOS09_LL, provenance="vendor")

    def test_entries_sorted_by_normalised_key(self, catalog):
        catalog.register("transform", "b-op", lambda a: a)
        catalog.register("transform", "A-op", lambda a: a)
        assert catalog.transforms.names() == ("A-op", "b-op")

    def test_rejected_registration_leaves_namespace_untouched(self, catalog):
        catalog.register("technology", "Taken", ST_CMOS09_LL, aliases=("LL",))
        fresh = ST_CMOS09_LL.scaled(name="fresh")
        with pytest.raises(ValueError, match="alias"):
            catalog.register("technology", "NewTech-X", fresh, aliases=("LL",))
        assert "newtech_x" not in catalog.technologies
        assert catalog.get("technology", "ll") is ST_CMOS09_LL

    def test_empty_lookup_is_a_miss_not_a_crash(self, catalog):
        catalog.register("technology", "t", ST_CMOS09_LL)
        with pytest.raises(CatalogKeyError, match="unknown technology ''"):
            catalog.get("technology", "")
        with pytest.raises(CatalogKeyError):
            catalog.get("technology", "   ")
        assert "" not in catalog.technologies

    def test_string_aliases_rejected(self, catalog):
        with pytest.raises(ValueError, match="list/tuple"):
            catalog.register("technology", "t", ST_CMOS09_LL, aliases="TT")

    def test_concurrent_first_reads_see_the_full_catalog(self):
        import threading
        import time

        catalog = Catalog()

        def slow_loader(cat):
            cat.register("solver", "auto", object(), provenance="builtin")
            time.sleep(0.2)
            cat.register("solver", "late", object(), provenance="builtin")

        catalog.add_loader(slow_loader)
        results = {}

        def reader(tag):
            results[tag] = catalog.solvers.names()

        first = threading.Thread(target=reader, args=("first",))
        second = threading.Thread(target=reader, args=("second",))
        first.start()
        time.sleep(0.05)  # let the first thread start loading
        second.start()
        first.join()
        second.join()
        # The second reader must block for the load, not observe the
        # half-populated catalog.
        assert results["first"] == results["second"] == ("auto", "late")

    def test_failing_loader_is_retried_and_loud(self):
        calls = []

        def bad(cat):
            calls.append(1)
            raise RuntimeError("boom")

        catalog = Catalog()
        catalog.add_loader(bad)
        for _ in range(2):
            with pytest.raises(RuntimeError, match="boom"):
                catalog.solvers.names()
        # Not consumed-and-forgotten: every read retries, none serves a
        # silently half-populated catalog.
        assert calls == [1, 1]


class TestBuiltins:
    def test_fresh_catalog_populates_all_five_namespaces(self):
        catalog = Catalog()
        register_builtins(catalog)
        assert len(catalog.technologies) == 3
        assert len(catalog.architectures) >= 2
        assert len(catalog.solvers) == 8
        assert len(catalog.transforms) == 3
        assert len(catalog.generators) == 13

    def test_builtins_never_clobber_earlier_user_entries(self):
        catalog = Catalog()
        mine = Technology(
            name="ST-CMOS09-LL", io=9e-6, zeta=9e-12, alpha=1.5, n=1.3,
            vdd_nominal=1.2, vth0_nominal=0.3,
        )
        catalog.register("technology", "ST-CMOS09-LL", mine)
        register_builtins(catalog)
        assert catalog.get("technology", "st_cmos09_ll") is mine

    def test_user_entry_squatting_a_builtin_alias_does_not_break_loading(self):
        # "LL" is the builtin ST-CMOS09-LL's alias; a user entry *named*
        # LL must win the name while the builtin still registers (sans
        # that alias) and population must not raise.
        catalog = Catalog()
        mine = Technology(
            name="LL", io=1e-6, zeta=1e-12, alpha=1.5, n=1.3,
            vdd_nominal=1.0, vth0_nominal=0.3,
        )
        catalog.register("technology", "LL", mine)
        register_builtins(catalog)
        assert catalog.get("technology", "ll") is mine
        assert catalog.get("technology", "st-cmos09-ll").alpha == 1.86
        assert len(catalog.solvers) == 8 and len(catalog.generators) == 13

    def test_default_catalog_lazy_loads_builtins(self):
        catalog = default_catalog()
        assert catalog.get("technology", "ll").name == "ST-CMOS09-LL"
        entry = catalog.entry("solver", "closed-form")
        assert entry.provenance == "builtin"

    def test_payload_covers_every_namespace(self):
        payload = default_catalog().payload()
        assert set(payload) == set(NAMESPACES)
        ll = payload["technology"]["st_cmos09_ll"]
        assert ll["provenance"] == "builtin"
        assert ll["value"]["alpha"] == 1.86
        assert ll["aliases"] == ["LL"]
        # code entities serialise as references
        assert payload["solver"]["auto"]["value"] == {"$ref": "auto"}


class TestSerialization:
    def test_technology_round_trip(self):
        from repro.catalog import entity_from_dict, entity_to_dict

        payload = entity_to_dict("technology", ST_CMOS09_LL)
        assert entity_from_dict("technology", payload) == ST_CMOS09_LL

    def test_reference_round_trip_returns_registered_object(self):
        from repro.catalog import entity_from_dict, entity_to_dict

        solver = default_catalog().get("solver", "auto")
        payload = entity_to_dict("solver", solver)
        assert entity_from_dict("solver", payload) is solver

    def test_bare_string_resolves(self):
        from repro.catalog import entity_from_dict

        assert entity_from_dict("technology", "LL").name == "ST-CMOS09-LL"

    def test_code_namespace_field_payload_rejected(self):
        from repro.catalog import entity_from_dict

        with pytest.raises(TypeError, match="references"):
            entity_from_dict("solver", {"name": "auto"})
