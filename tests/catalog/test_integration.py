"""End-to-end: pack-defined entities by name through Study, CLI and HTTP.

This is the PR's acceptance surface: a technology and an architecture
defined *only* in a pack file must be usable by bare name through
``Study``, ``repro optimize``/``repro list`` and the service, with the
catalog endpoints enumerating all five namespaces including the user
entries.
"""

from __future__ import annotations

import json

import pytest

from repro import Scenario, Study
from repro.catalog import NAMESPACES, load_pack
from repro.cli import main
from repro.service.client import ServiceClient
from repro.service.server import ExplorationServer, ServiceConfig

#: A frequency the pack architecture comfortably closes timing at.
FEASIBLE_HZ = 5e6


@pytest.fixture
def loaded_pack(restored_catalog, pack_file):
    load_pack(pack_file, catalog=restored_catalog)
    return pack_file


@pytest.fixture
def service(tmp_path, loaded_pack):
    server = ExplorationServer(
        ServiceConfig(port=0, workers=2, cache_dir=str(tmp_path / "cache"))
    )
    server.start_background()
    try:
        yield ServiceClient(server.url, timeout=60.0)
    finally:
        server.shutdown()
        server.server_close()


class TestStudyByName:
    def test_pack_entities_run_by_bare_name(self, loaded_pack):
        result = (
            Study("pack-study")
            .architectures("dsp-mac32")
            .technologies("FDX28")  # the pack's alias
            .frequencies(FEASIBLE_HZ)
            .solver("numerical")
            .run()
        )
        best = result.best()
        assert best is not None
        assert best.architecture == "dsp-mac32"
        assert best.technology == "FDX28-LP"

    def test_scenario_json_accepts_names_and_refs(self, loaded_pack):
        scenario = Scenario.from_dict(
            {
                "name": "named",
                "architectures": ["dsp_mac32", {"$ref": "RCA16"}],
                "technologies": ["fdx28-lp", "LL"],
                "frequencies": {"values": [FEASIBLE_HZ]},
            }
        )
        assert [a.name for a in scenario.architectures] == ["dsp-mac32", "RCA16"]
        assert [t.name for t in scenario.technologies] == [
            "FDX28-LP",
            "ST-CMOS09-LL",
        ]

    def test_unknown_architecture_name_has_did_you_mean(self, loaded_pack):
        with pytest.raises(KeyError, match="did you mean") as excinfo:
            Study("typo").architectures("dsp-mac23")
        assert "dsp-mac32" in str(excinfo.value)


class TestCliByName:
    def test_optimize_with_pack_arch_and_tech(self, restored_catalog, pack_file, capsys):
        code = main(
            [
                "optimize",
                "--packs", str(pack_file),
                "--arch", "dsp-mac32",
                "--tech", "FDX28",
                "--frequency", str(FEASIBLE_HZ),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0, captured.err
        assert "dsp-mac32" in captured.out
        assert "optimum" in captured.out

    def test_optimize_arch_conflicts_with_explicit_fields(self, capsys):
        code = main(
            ["optimize", "--arch", "RCA16", "--n-cells", "10",
             "--activity", "0.5", "--logical-depth", "10"]
        )
        assert code == 2
        assert "conflicts" in capsys.readouterr().err

    def test_optimize_arch_conflicts_with_every_architecture_knob(self, capsys):
        # --capacitance/--io-factor/--zeta-factor/--name must not be
        # silently dropped in favour of the catalog entry's values.
        for flag, value in (
            ("--capacitance", "999e-15"),
            ("--io-factor", "5"),
            ("--zeta-factor", "0.5"),
            ("--name", "mine"),
        ):
            code = main(["optimize", "--arch", "RCA16", flag, value])
            assert code == 2
            assert flag in capsys.readouterr().err

    def test_transform_override_in_catalog_reaches_scenarios(
        self, restored_catalog
    ):
        from repro.explore.scenario import pipeline_step

        calls = []

        def my_pipeline(arch, stages, style="horizontal"):
            calls.append(stages)
            return arch

        restored_catalog.transforms.register(
            "pipeline", my_pipeline, overwrite=True
        )
        arch = restored_catalog.get("architecture", "RCA16")
        pipeline_step(3).apply(arch)
        assert calls == [3]

    def test_optimize_missing_fields_without_arch(self, capsys):
        code = main(["optimize", "--activity", "0.5"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--n-cells" in err and "--arch" in err

    def test_optimize_unknown_arch_exits_2(self, capsys):
        code = main(["optimize", "--arch", "nope", "--frequency", "1e6"])
        assert code == 2
        assert "unknown architecture" in capsys.readouterr().err

    def test_list_json_enumerates_all_namespaces_with_user_entries(
        self, restored_catalog, pack_file, capsys
    ):
        code = main(["list", "--json", "--packs", str(pack_file)])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == set(NAMESPACES)
        assert payload["technology"]["fdx28_lp"]["provenance"] == "file"
        assert payload["architecture"]["dsp_mac32"]["value"]["n_cells"] == 4100
        assert "auto" in payload["solver"]
        assert "pipeline" in payload["transform"]
        assert "wallace" in payload["generator"]

    def test_list_json_single_section(self, restored_catalog, pack_file, capsys):
        code = main(["list", "technologies", "--json", "--packs", str(pack_file)])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "fdx28_lp" in payload and "st_cmos09_ll" in payload

    def test_list_human_sections_include_technologies(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "technologies (" in out
        assert "parameters (" in out

    def test_broken_pack_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        assert main(["list", "--packs", str(bad)]) == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_missing_pack_path_exits_2(self, tmp_path, capsys):
        assert main(["list", "--packs", str(tmp_path / "nope.json")]) == 2
        assert "does not exist" in capsys.readouterr().err


class TestServiceByName:
    def test_catalog_endpoint_enumerates_everything(self, service):
        payload = service.catalog()
        assert set(payload) == set(NAMESPACES)
        assert payload["technology"]["fdx28_lp"]["provenance"] == "file"
        assert payload["generator"]["wallace"]["value"] == {"$ref": "Wallace"}

    def test_optimize_with_bare_pack_names(self, service):
        record = service.optimize(
            architecture="dsp-mac32",
            technology="FDX28",
            frequency=FEASIBLE_HZ,
        )
        assert record.feasible
        assert record.architecture == "dsp-mac32"
        assert record.technology == "FDX28-LP"

    def test_explore_scenario_with_names(self, service):
        scenario = Scenario.from_dict(
            {
                "name": "remote-names",
                "architectures": ["dsp-mac32"],
                "technologies": ["fdx28"],
                "frequencies": {"values": [FEASIBLE_HZ]},
            }
        )
        result = service.explore(scenario, solver="numerical")
        assert len(result) == 1
        assert result[0].technology == "FDX28-LP"

    def test_unknown_name_is_a_structured_400(self, service):
        from repro.service.server import ServiceError

        with pytest.raises(ServiceError) as excinfo:
            service.optimize(
                architecture="dsp-mac99",
                technology="LL",
                frequency=FEASIBLE_HZ,
            )
        assert excinfo.value.status == 400
        assert "dsp-mac99" in str(excinfo.value)
