"""Integration tests: the regenerated figures."""

import numpy as np
import pytest

from repro.experiments.figure1 import run_figure1
from repro.experiments.figure2 import run_figure2
from repro.experiments.figures3_4 import run_figures34
from repro.experiments.report import ascii_plot, microwatts, render_table


@pytest.fixture(scope="module")
def figure1():
    return run_figure1(vdd_points=60)


@pytest.fixture(scope="module")
def figures34():
    return run_figures34(width=8, n_vectors=60)


class TestFigure1:
    def test_three_curves(self, figure1):
        assert [curve.activity for curve in figure1.curves] == [1.0, 0.1, 0.01]

    def test_curves_are_u_shaped_around_marked_optimum(self, figure1):
        for curve in figure1.curves:
            minimum_index = int(np.argmin(curve.ptot))
            assert 0 < minimum_index < len(curve.vdd) - 1
            assert curve.ptot[minimum_index] <= curve.optimum.ptot * 1.01

    def test_lower_activity_lowers_power(self, figure1):
        powers = [curve.optimum.ptot for curve in figure1.curves]
        assert powers[0] > powers[1] > powers[2]

    def test_lower_activity_raises_optimal_voltages(self, figure1):
        """The counter-intuitive trend Figure 1 illustrates."""
        vdd = [curve.optimum.vdd for curve in figure1.curves]
        vth = [curve.optimum.vth for curve in figure1.curves]
        assert vdd[0] < vdd[1] < vdd[2]
        assert vth[0] < vth[1] < vth[2]

    def test_dynamic_static_ratio_reported(self, figure1):
        for curve in figure1.curves:
            assert curve.dynamic_static_ratio > 1.0

    def test_render_includes_chart_and_marks(self, figure1):
        text = figure1.render()
        assert "Figure 1" in text and "optimal working points" in text


class TestFigure2:
    def test_linear_approximation_tracks_exact(self):
        result = run_figure2()
        assert np.max(np.abs(result.linear - result.exact)) < 0.02

    def test_paper_alpha_and_range(self):
        result = run_figure2()
        assert result.alpha == 1.5
        assert result.vdd[0] == pytest.approx(0.3)
        assert result.vdd[-1] == pytest.approx(0.9)

    def test_render(self):
        assert "Figure 2" in run_figure2().render()


class TestFigures34:
    def test_all_variants_present(self, figures34):
        names = [variant.name for variant in figures34.variants]
        assert len(names) == 5
        assert any("hori" in name for name in names)
        assert any("diag" in name for name in names)

    def test_pipelining_adds_registers(self, figures34):
        base = figures34.variants[0]
        for variant in figures34.variants[1:]:
            assert variant.registers_added > 0
            assert variant.n_registers > base.n_registers

    def test_cuts_shorten_critical_path(self, figures34):
        base = figures34.variants[0]
        for variant in figures34.variants[1:]:
            assert variant.critical_path < base.critical_path

    def test_diagonal_glitches_more_than_horizontal(self, figures34):
        horizontal2 = figures34.variant("rca8-horipipe2")
        diagonal2 = figures34.variant("rca8-diagpipe2")
        assert diagonal2.glitch_ratio > horizontal2.glitch_ratio

    def test_render(self, figures34):
        assert "Figures 3/4" in figures34.render()


class TestReportHelpers:
    def test_render_table_alignment(self):
        text = render_table(["a", "bb"], [["1", "2"], ["10", "20"]])
        lines = text.splitlines()
        assert len({len(line) for line in lines[:1] + lines[2:]}) == 1

    def test_microwatts(self):
        assert microwatts(1.5e-6) == "1.50"

    def test_ascii_plot_smoke(self):
        x = np.linspace(0, 1, 20)
        text = ascii_plot({"line": (x, x**2)}, width=30, height=8)
        assert "|" in text and "line" in text

    def test_ascii_plot_rejects_empty(self):
        with pytest.raises(ValueError, match="nothing to plot"):
            ascii_plot({"bad": (np.array([np.nan]), np.array([np.nan]))})
