"""Integration tests: the regenerated tables against the published ones."""


import pytest

from repro.experiments.paper_data import (
    MAX_ABS_EQ13_ERROR_PERCENT,
    TABLE1_BY_NAME,
    TABLE3_ROWS,
    TABLE4_ROWS,
)
from repro.experiments.table1 import (
    compare_to_published,
    run_table1_calibrated,
    run_table1_native,
)
from repro.experiments.table2 import run_table2
from repro.experiments.wallace_family import run_table3, run_table4


@pytest.fixture(scope="module")
def table1():
    return run_table1_calibrated()


@pytest.fixture(scope="module")
def table1_native():
    # Modest vector count keeps the suite fast; orderings are stable.
    return run_table1_native(n_vectors=60)


class TestTable1Calibrated:
    def test_every_row_feasible(self, table1):
        assert all(row.feasible for row in table1.rows)

    def test_totals_match_published_to_a_percent(self, table1):
        for row in table1.rows:
            published = TABLE1_BY_NAME[row.name]
            assert row.ptot == pytest.approx(published.ptot, rel=0.01), row.name

    def test_eq13_column_matches_published(self, table1):
        for row in table1.rows:
            published = TABLE1_BY_NAME[row.name]
            assert row.ptot_eq13 == pytest.approx(published.ptot_eq13, rel=0.01)

    def test_headline_three_percent_claim(self, table1):
        assert table1.max_abs_error_percent() < MAX_ABS_EQ13_ERROR_PERCENT

    def test_render_contains_all_rows(self, table1):
        text = table1.render()
        for name in TABLE1_BY_NAME:
            assert name in text

    def test_row_lookup(self, table1):
        assert table1.row("Wallace").name == "Wallace"
        with pytest.raises(KeyError):
            table1.row("Booth")

    def test_comparison_table_renders(self, table1):
        text = compare_to_published(table1)
        assert "ratio" in text and "RCA" in text


class TestTable1Native:
    def test_all_rows_feasible_on_native_ll(self, table1_native):
        assert all(row.feasible for row in table1_native.rows)

    def test_combinational_totals_track_published(self, table1_native):
        """No paper inputs at all: generated netlists + characterised
        technology must still land within ~35% of every published
        combinational total."""
        for row in table1_native.rows:
            if row.name.startswith("Seq"):
                continue  # sequencing mapping differs; checked for shape only
            published = TABLE1_BY_NAME[row.name]
            assert 0.65 < row.ptot / published.ptot < 1.35, row.name

    def test_architecture_orderings(self, table1_native):
        powers = {row.name: row.ptot for row in table1_native.rows}
        assert powers["Wallace"] < powers["RCA"] < powers["Sequential"]
        assert powers["RCA hor.pipe2"] < powers["RCA"]
        assert powers["RCA parallel"] < powers["RCA"]
        assert powers["Seq4_16"] < powers["Sequential"]

    def test_diagonal_activity_exceeds_horizontal(self, table1_native):
        activity = {row.name: row.activity for row in table1_native.rows}
        assert activity["RCA diagpipe2"] > activity["RCA hor.pipe2"]
        assert activity["RCA diagpipe4"] > activity["RCA hor.pipe4"]

    def test_eq13_error_small_inside_validity_range(self, table1_native):
        """For every row whose optimum sits inside the fitted Vdd range
        and away from the chi*A wall, the error stays in single digits."""
        for row in table1_native.rows:
            if row.name == "Sequential":
                continue  # chi*A ~ 0.82: documented graceful degradation
            assert abs(row.error_percent) < 5.0, (row.name, row.error_percent)


class TestTable2:
    def test_orderings_survive_extraction(self):
        result = run_table2()
        checks = result.ordering_checks()
        assert all(checks.values()), checks

    def test_render_lists_both_sources(self):
        text = run_table2().render()
        assert "paper" in text and "our fit" in text


@pytest.mark.parametrize(
    "runner,published_rows",
    [(run_table3, TABLE3_ROWS), (run_table4, TABLE4_ROWS)],
    ids=["table3-ULL", "table4-HS"],
)
class TestWallaceFamilies:
    def test_reproduces_published_operating_points(self, runner, published_rows):
        result = runner()
        for row, published in zip(result.rows, published_rows):
            assert row.vdd == pytest.approx(published["vdd"], abs=0.01)
            assert row.vth == pytest.approx(published["vth"], abs=0.01)
            assert row.ptot == pytest.approx(published["ptot"], rel=0.01)

    def test_eq13_error_tracks_published(self, runner, published_rows):
        result = runner()
        for row, published in zip(result.rows, published_rows):
            assert row.error_percent == pytest.approx(
                published["eq13_error_percent"], abs=0.8
            )

    def test_three_percent_band(self, runner, published_rows):
        assert runner().max_abs_error_percent() < MAX_ABS_EQ13_ERROR_PERCENT


class TestSection5Claims:
    """The technology-selection story across Tables 1, 3 and 4."""

    def test_parallelization_direction_flips_between_flavours(self):
        ull = run_table3()
        hs = run_table4()
        # ULL: parallel beats basic; HS: basic beats parallel.
        assert ull.row("Wallace parallel").ptot < ull.row("Wallace").ptot
        assert hs.row("Wallace parallel").ptot > hs.row("Wallace").ptot

    def test_ll_is_the_cheapest_flavour_for_wallace(self, table1):
        ll_power = table1.row("Wallace").ptot
        assert ll_power < run_table3().row("Wallace").ptot  # vs ULL
        assert ll_power < run_table4().row("Wallace").ptot  # vs HS

    def test_ull_beats_hs_for_wallace(self):
        assert run_table3().row("Wallace").ptot < run_table4().row("Wallace").ptot
