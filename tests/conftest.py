"""Shared fixtures: reference technologies, architectures and frequencies."""

from __future__ import annotations

import pytest

from repro import ArchitectureParameters, ST_CMOS09_LL
from repro.experiments.paper_data import PAPER_FREQUENCY, TABLE1_BY_NAME


@pytest.fixture
def tech_ll():
    """The paper's default technology flavour (ST CMOS09 Low Leakage)."""
    return ST_CMOS09_LL


@pytest.fixture
def paper_frequency():
    """The 31.25 MHz data clock every table uses."""
    return PAPER_FREQUENCY


@pytest.fixture
def wallace_arch():
    """A Wallace-multiplier-shaped parameter set with plausible C/Io factors.

    Uses the published (N, a, LDeff) with a round capacitance and the
    cell-complexity factors DESIGN.md derives, so closed-form/numerical
    behaviour matches the paper's operating regime without depending on
    the calibration machinery.
    """
    row = TABLE1_BY_NAME["Wallace"]
    return ArchitectureParameters(
        name="wallace-fixture",
        n_cells=row.n_cells,
        activity=row.activity,
        logical_depth=row.logical_depth,
        capacitance=70e-15,
        io_factor=18.0,
        zeta_factor=0.2,
    )
