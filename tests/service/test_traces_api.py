"""/v1/traces end-to-end: propagation, stitching, filters, retry ids."""

import time
import urllib.request

import pytest

from repro import obs
from repro.explore.scenario import demo_scenario
from repro.service.client import ServiceClient
from repro.service.server import (
    ExplorationServer,
    ServiceConfig,
    ServiceError,
)

WAIT = 60.0


def _get_raw(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    return urllib.request.urlopen(request, timeout=30.0)


def _poll_trace(client, trace_id, want_jobs=0, timeout=10.0):
    """Fetch a trace, waiting for async job spans to flush into it.

    Job spans land in the store after the job's terminal transition —
    strictly later than the 202 response — so readers poll briefly.
    """
    deadline = time.monotonic() + timeout
    while True:
        try:
            trace = client.trace(trace_id)
        except ServiceError as error:
            if error.status != 404:
                raise
            trace = None
        if trace is not None and trace.get("n_jobs", 0) >= want_jobs:
            return trace
        if time.monotonic() >= deadline:  # pragma: no cover — test hang
            raise AssertionError(f"trace {trace_id} never flushed: {trace}")
        time.sleep(0.1)


def _walk(nodes):
    for node in nodes:
        yield node
        yield from _walk(node.get("children", []))


def _find(nodes, name):
    return [node for node in _walk(nodes) if node["name"] == name]


class TestStitchedJobTrace:
    def test_job_submit_yields_one_tree_under_one_trace_id(self, service):
        server, client = service
        scenario = demo_scenario(frequency_points=2)
        handle = client.submit(scenario, solver="auto", shards=3)
        status = client.wait(handle.id, timeout=WAIT)
        assert status["state"] == "done"
        trace_id = status["trace_id"]
        assert len(trace_id) == 32

        trace = _poll_trace(client, trace_id, want_jobs=1)
        assert trace["trace_id"] == trace_id
        assert trace["n_jobs"] == 1
        assert trace["request_id"] == trace_id[:16]

        # Exactly one trace: the job spans merged into the submitting
        # request's trace rather than starting a second one.
        matches = [
            t
            for t in client.traces(route="/v1/jobs", limit=200)
            if t["trace_id"] == trace_id
        ]
        assert len(matches) == 1

        tree = trace["tree"]
        assert len(tree) == 1
        root = tree[0]
        assert root["name"] == "http.request"
        assert root["labels"]["method"] == "POST"
        assert root["labels"]["route"] == "/v1/jobs"
        assert root["labels"]["status"] == "202"

        [run] = _find(root["children"], "jobs.run")
        shards = _find([run], "jobs.shard")
        assert len(shards) == status["progress"]["shards_total"] == 3
        assert len(_find([run], "jobs.merge")) == 1
        # Every span in the tree belongs to this one trace: the engine
        # phases executed on worker threads landed under their shards.
        assert _find([run], "engine.explore")

    def test_trace_records_per_shard_engine_work(self, service):
        _, client = service
        handle = client.submit(
            demo_scenario(frequency_points=2), solver="auto", shards=2
        )
        status = client.wait(handle.id, timeout=WAIT)
        trace = _poll_trace(client, status["trace_id"], want_jobs=1)
        shards = _find(trace["tree"], "jobs.shard")
        assert {s["labels"]["shard"] for s in shards} == {"1", "2"}
        for shard in shards:
            assert shard["labels"]["of"] == "2"
            assert shard["status"] == "ok"


class TestPropagation:
    def test_client_supplied_traceparent_is_adopted(self, service):
        _, client = service
        context = obs.TraceContext.mint()
        with obs.activate(context):
            client.healthz()
        trace = _poll_trace(client, context.trace_id)
        assert trace["trace_id"] == context.trace_id
        assert trace["route"] == "/v1/healthz"
        # The root HTTP span parents under the caller's span.
        assert trace["tree"][0]["parent_id"] == context.span_id

    def test_response_headers_echo_trace_and_request_id(self, service):
        server, _ = service
        context = obs.TraceContext.mint()
        with _get_raw(
            server.url + "/v1/healthz",
            headers={obs.TRACEPARENT_HEADER: context.to_traceparent()},
        ) as response:
            assert response.headers["X-Trace-Id"] == context.trace_id
            assert response.headers["X-Request-Id"] == context.request_id

    def test_minted_request_id_is_the_trace_prefix(self, service):
        server, _ = service
        with _get_raw(server.url + "/v1/healthz") as response:
            trace_id = response.headers["X-Trace-Id"]
            assert len(trace_id) == 32
            assert response.headers["X-Request-Id"] == trace_id[:16]

    def test_explicit_request_id_wins_over_the_minted_one(self, service):
        server, _ = service
        with _get_raw(
            server.url + "/v1/healthz",
            headers={"X-Request-Id": "caller-chosen-id"},
        ) as response:
            assert response.headers["X-Request-Id"] == "caller-chosen-id"
            assert len(response.headers["X-Trace-Id"]) == 32


class TestTracesEndpoint:
    def test_summaries_filters(self, service):
        _, client = service
        client.healthz()
        client.solvers()
        summaries = client.traces(limit=200)
        routes = {t["route"] for t in summaries}
        assert "/v1/healthz" in routes
        only = client.traces(route="/v1/solvers", limit=200)
        assert only and all(t["route"] == "/v1/solvers" for t in only)
        assert client.traces(min_ms=10 * 60 * 1000) == []
        assert all(t["error"] for t in client.traces(errors_only=True))

    def test_trace_lookup_of_unknown_id_is_404(self, service):
        _, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.trace("f" * 32)
        assert excinfo.value.status == 404
        assert excinfo.value.kind == "trace-not-found"

    def test_bad_query_params_are_400(self, service):
        server, _ = service
        for query in ("min_ms=soon", "limit=0"):
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get_raw(server.url + f"/v1/traces?{query}")
            assert excinfo.value.code == 400

    def test_healthz_exposes_trace_store_stats(self, service):
        _, client = service
        # A request's trace is recorded after its response is sent, so
        # make one request and poll healthz until the store reflects it.
        client.solvers()
        deadline = time.monotonic() + 10.0
        while True:
            stats = client.healthz()["traces"]
            assert stats["capacity"] == obs.DEFAULT_TRACE_CAPACITY
            if stats["traces"] >= 1:
                break
            if time.monotonic() >= deadline:  # pragma: no cover
                raise AssertionError(f"trace store never filled: {stats}")
            time.sleep(0.05)


class TestTracingDisabled:
    def test_traces_endpoint_is_503_without_telemetry(self, tmp_path):
        was_enabled = obs.is_enabled()
        registry = obs.get_registry()
        server = ExplorationServer(
            ServiceConfig(
                port=0,
                workers=2,
                cache_dir=str(tmp_path / "cache"),
                telemetry=False,
            )
        )
        server.start_background()
        client = ServiceClient(server.url, timeout=30.0)
        try:
            assert client.healthz()["traces"] is None
            with pytest.raises(ServiceError) as excinfo:
                client.traces()
            assert excinfo.value.status == 503
            assert excinfo.value.kind == "tracing-disabled"
            with pytest.raises(ServiceError) as excinfo:
                client.trace("f" * 32)
            assert excinfo.value.status == 503
        finally:
            server.shutdown()
            server.server_close()
            if was_enabled and registry is not None:
                obs.enable(registry)
            else:
                obs.disable()


class TestClientRetryIds:
    def _failing_client(self, recorded):
        client = ServiceClient("http://127.0.0.1:1", retries=2)
        client._sleep = lambda seconds: None

        def record_and_fail(request):
            recorded.append(
                (
                    request.get_header("X-request-id"),
                    request.get_header("Traceparent"),
                )
            )
            raise ServiceError(503, "unreachable", "synthetic outage")

        client._open_once = record_and_fail
        return client

    def test_one_logical_request_reuses_one_id_across_retries(self):
        recorded = []
        client = self._failing_client(recorded)
        with pytest.raises(ServiceError):
            client.healthz()
        assert len(recorded) == 3  # first try + 2 retries
        request_ids = {request_id for request_id, _ in recorded}
        assert len(request_ids) == 1
        (request_id,) = request_ids
        assert len(request_id) == 16
        traceparents = {header for _, header in recorded}
        assert len(traceparents) == 1
        context = obs.parse_traceparent(traceparents.pop())
        assert context.request_id == request_id

    def test_each_logical_request_gets_a_fresh_id(self):
        recorded = []
        client = self._failing_client(recorded)
        for _ in range(2):
            with pytest.raises(ServiceError):
                client.healthz()
        first, second = recorded[0][0], recorded[3][0]
        assert first != second
