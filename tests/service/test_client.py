"""ServiceClient: the Study surface over HTTP, with exact parity."""

import pytest

from repro.explore.scenario import demo_scenario
from repro.service.client import RemoteStudy, ServiceClient, ServiceError
from repro.study import ResultSet, Study

ARCH = {
    "name": "w16",
    "n_cells": 729,
    "activity": 0.2976,
    "logical_depth": 17,
    "capacitance": 70e-15,
}


class TestRoundTripParity:
    """Acceptance: HTTP records == in-process records, values and order."""

    def test_explore_matches_study_run(self, service):
        _, client = service
        scenario = demo_scenario(frequency_points=3)
        remote = client.explore(scenario, solver="auto", jobs=1)
        local = Study.from_scenario(scenario).solver("auto").jobs(1).run()
        assert isinstance(remote, ResultSet)
        assert remote.records == local.records  # same values, same ordering
        assert remote.solver == local.solver
        assert remote.scenario == local.scenario

    def test_streamed_explore_matches_study_run(self, service):
        _, client = service
        scenario = demo_scenario(frequency_points=3)
        remote = client.explore(scenario, solver="auto", jobs=1, stream=True)
        local = Study.from_scenario(scenario).solver("auto").jobs(1).run()
        assert remote.records == local.records

    def test_resultset_analysis_works_on_remote_records(self, service):
        _, client = service
        remote = client.explore(demo_scenario(frequency_points=3), jobs=1)
        assert remote.best() is not None
        assert len(remote.pareto()) >= 1
        assert "Pareto" in remote.table(top=3)


class TestRemoteStudy:
    def test_fluent_builder_runs_server_side(self, service):
        server, client = service
        study = (
            client.study("remote")
            .architectures(ARCH)
            .technologies("ULL", "LL", "HS")
            .frequencies(31.25e6)
            .solver("auto")
        )
        assert isinstance(study, RemoteStudy)
        remote = study.run()
        local = (
            Study("local")
            .architectures(ARCH)
            .technologies("ULL", "LL", "HS")
            .frequencies(31.25e6)
            .solver("auto")
            .run()
        )
        assert remote.records == local.records
        assert server.state.engine_runs >= 1

    def test_solver_options_travel(self, service):
        _, client = service
        remote = (
            client.study("capped")
            .architectures(ARCH)
            .technologies("LL")
            .frequencies(31.25e6)
            .solver("bounded", vth_max=0.1)
            .run()
        )
        record = remote[0]
        assert record.feasible and record.vth <= 0.1 + 1e-12
        local = (
            Study("capped-local")
            .architectures(ARCH)
            .technologies("LL")
            .frequencies(31.25e6)
            .solver("bounded", vth_max=0.1)
            .run()
        )
        assert remote.records == local.records

    def test_rerun_hits_the_service_cache(self, service):
        _, client = service
        study = (
            client.study("cached-remote")
            .architectures(ARCH)
            .technologies("LL")
            .frequencies(31.25e6)
        )
        first = study.run()
        second = study.run()
        assert not first.cache_hit
        assert second.cache_hit
        assert second.records == first.records


class TestClientErrors:
    def test_unreachable_server(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=2.0)
        with pytest.raises(ServiceError) as excinfo:
            client.healthz()
        assert excinfo.value.status == 503
        assert excinfo.value.kind == "unreachable"

    def test_server_error_payload_surfaces(self, service):
        _, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.explore(demo_scenario(frequency_points=2), solver="nope")
        assert "unknown solver" in str(excinfo.value)
