"""repro top: key parsing, quantile math, pure rendering, live refresh."""

import io

from repro.service.top import (
    Dashboard,
    parse_instrument_key,
    quantile_from_buckets,
    render_dashboard,
    run_top,
)


class TestParseInstrumentKey:
    def test_bare_name(self):
        assert parse_instrument_key("service.uptime_seconds") == (
            "service.uptime_seconds",
            {},
        )

    def test_labels(self):
        name, labels = parse_instrument_key(
            "http.requests{route=/v1/explore,status=200}"
        )
        assert name == "http.requests"
        assert labels == {"route": "/v1/explore", "status": "200"}

    def test_route_template_keeps_its_braces(self):
        # Only the outermost closing brace is key syntax.
        name, labels = parse_instrument_key(
            "http.latency_seconds{route=/v1/jobs/{id}}"
        )
        assert name == "http.latency_seconds"
        assert labels == {"route": "/v1/jobs/{id}"}


class TestQuantileFromBuckets:
    def test_empty_and_zero_are_none(self):
        assert quantile_from_buckets({}, 0.5) is None
        assert quantile_from_buckets({"0.1": 0, "+Inf": 0}, 0.5) is None

    def test_interpolates_inside_the_winning_bucket(self):
        # 100 samples all <= 0.1: p50 lands halfway into (0, 0.1].
        buckets = {"0.1": 100, "1": 100, "+Inf": 100}
        assert abs(quantile_from_buckets(buckets, 0.5) - 0.05) < 1e-12
        # p50 rank 5 of 10 sits at the top of the first bucket when the
        # first bucket holds exactly half the samples.
        buckets = {"0.1": 5, "1": 10, "+Inf": 10}
        assert abs(quantile_from_buckets(buckets, 0.5) - 0.1) < 1e-12

    def test_inf_bucket_clamps_to_largest_finite_bound(self):
        buckets = {"0.1": 0, "1": 0, "+Inf": 10}
        assert quantile_from_buckets(buckets, 0.95) == 1.0


def _snapshot(enabled=True):
    return {
        "enabled": enabled,
        "counters": {
            "http.requests{route=/v1/explore,status=200}": 18,
            "http.requests{route=/v1/explore,status=500}": 2,
            "http.requests{route=/v1/healthz,status=200}": 5,
            "cache.memory.hits": 17,
            "cache.memory.misses": 3,
        },
        "gauges": {"jobs.queue_depth": 2, "coalescer.in_flight": 1},
        "histograms": {
            "http.latency_seconds{route=/v1/explore}": {
                "count": 20,
                "sum": 1.0,
                "buckets": {"0.05": 10, "0.5": 20, "+Inf": 20},
            }
        },
    }


def _traces():
    return [
        {"trace_id": "a" * 32, "method": "POST", "route": "/v1/explore",
         "status": 200, "duration_ms": 12.0, "error": False},
        {"trace_id": "b" * 32, "method": "POST", "route": "/v1/explore",
         "status": 500, "duration_ms": 3.0, "error": True},
        {"trace_id": "c" * 32, "method": "GET", "route": "/v1/healthz",
         "status": 200, "duration_ms": 900.0, "error": False},
    ]


class TestRenderDashboard:
    def test_disabled_telemetry_short_circuits(self):
        text = render_dashboard(_snapshot(enabled=False), [])
        assert "telemetry is disabled" in text
        assert "/v1/explore" not in text

    def test_headline_routes_and_caches(self):
        text = render_dashboard(
            _snapshot(),
            _traces(),
            healthz={"version": "1.5.0", "uptime_seconds": 42.0,
                     "errors": 2},
            rps=3.5,
            base_url="http://localhost:8080",
        )
        assert "http://localhost:8080" in text
        assert "v1.5.0" in text and "up 42s" in text
        assert "requests 25" in text and "rps 3.5" in text
        assert "job-queue 2" in text and "coalescer-in-flight 1" in text
        assert "memory 85% (17/20)" in text and "disk -" in text
        [row] = [line for line in text.splitlines()
                 if line.startswith("/v1/explore")]
        assert " 20 " in row and " 2 " in row  # 20 requests, 2 errors
        # p50 of the fixture histogram: 10 of 20 samples <= 0.05 s.
        assert "50.0" in row

    def test_traces_section_lists_errors_first(self):
        text = render_dashboard(_snapshot(), _traces())
        lines = text.splitlines()
        b_index = next(
            i for i, line in enumerate(lines) if "b" * 32 in line
        )
        c_index = next(
            i for i, line in enumerate(lines) if "c" * 32 in line
        )
        assert b_index < c_index  # the error beats the merely-slow
        assert "!!" in lines[b_index]

    def test_empty_trace_store_renders_a_placeholder(self):
        assert "(none recorded yet)" in render_dashboard(_snapshot(), [])


class TestLiveDashboard:
    def test_refresh_against_a_running_service(self, service):
        _, client = service
        client.healthz()
        dashboard = Dashboard(client)
        first = dashboard.refresh()
        assert client.base_url in first
        assert "/v1/healthz" in first
        second = dashboard.refresh()
        assert "rps" in second  # only computable from the second refresh on

    def test_run_top_once_writes_one_screen(self, service):
        _, client = service
        stream = io.StringIO()
        code = run_top(client, iterations=1, stream=stream, clear=False)
        assert code == 0
        output = stream.getvalue()
        assert output.startswith("repro top")
        assert "recent slow / error traces" in output

    def test_top_once_via_the_cli(self, service, capsys):
        from repro.cli import main

        server, _ = service
        assert main(["top", "--once", "--url", server.url]) == 0
        out = capsys.readouterr().out
        assert out.startswith("repro top")

    def test_top_against_unreachable_service_exits_one(self, capsys):
        from repro.cli import main

        code = main(
            ["top", "--once", "--url", "http://127.0.0.1:1", "--retries", "0"]
        )
        assert code == 1
        assert "service error" in capsys.readouterr().err
