"""Single-flight request coalescing."""

import threading
import time

import pytest

from repro.service.coalesce import Coalescer


class TestCoalescer:
    def test_sequential_calls_each_run(self):
        coalescer = Coalescer()
        calls = []
        result, coalesced = coalescer.run("k", lambda: calls.append(1) or "a")
        assert (result, coalesced) == ("a", False)
        result, coalesced = coalescer.run("k", lambda: calls.append(1) or "b")
        assert (result, coalesced) == ("b", False)
        assert len(calls) == 2
        assert coalescer.stats() == {
            "leaders": 2, "coalesced": 0, "in_flight": 0,
        }

    def test_concurrent_identical_keys_run_once(self):
        coalescer = Coalescer()
        release = threading.Event()
        runs = []

        def produce():
            runs.append(threading.current_thread().name)
            release.wait(5.0)
            return "payload"

        results: list[tuple] = []

        def request():
            results.append(coalescer.run("k", produce))

        threads = [threading.Thread(target=request) for _ in range(8)]
        for thread in threads:
            thread.start()
        # Wait until all followers are parked on the flight, then release.
        deadline = time.monotonic() + 5.0
        while coalescer.stats()["coalesced"] < 7:
            assert time.monotonic() < deadline, "followers never joined"
            time.sleep(0.005)
        release.set()
        for thread in threads:
            thread.join(5.0)

        assert len(runs) == 1, "exactly one producer run for 8 requests"
        assert len(results) == 8
        assert all(value == "payload" for value, _ in results)
        assert sum(1 for _, coalesced in results if coalesced) == 7
        assert coalescer.stats() == {
            "leaders": 1, "coalesced": 7, "in_flight": 0,
        }

    def test_different_keys_do_not_coalesce(self):
        coalescer = Coalescer()
        gate = threading.Barrier(2, timeout=5.0)
        runs = []

        def produce(tag):
            runs.append(tag)
            gate.wait()  # both producers must be live simultaneously
            return tag

        results = []
        threads = [
            threading.Thread(
                target=lambda t=tag: results.append(
                    coalescer.run(t, lambda: produce(t))
                )
            )
            for tag in ("one", "two")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(5.0)
        assert sorted(runs) == ["one", "two"]
        assert all(not coalesced for _, coalesced in results)

    def test_leader_error_propagates_to_all_waiters(self):
        coalescer = Coalescer()
        release = threading.Event()
        boom = RuntimeError("sweep failed")

        def produce():
            release.wait(5.0)
            raise boom

        outcomes = []

        def request():
            try:
                coalescer.run("k", produce)
            except RuntimeError as error:
                outcomes.append(error)

        threads = [threading.Thread(target=request) for _ in range(4)]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 5.0
        while coalescer.stats()["coalesced"] < 3:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        release.set()
        for thread in threads:
            thread.join(5.0)
        assert len(outcomes) == 4
        assert all(error is boom for error in outcomes)

    def test_key_is_forgotten_after_failure(self):
        coalescer = Coalescer()
        with pytest.raises(RuntimeError):
            coalescer.run("k", lambda: (_ for _ in ()).throw(RuntimeError()))
        result, coalesced = coalescer.run("k", lambda: "recovered")
        assert (result, coalesced) == ("recovered", False)
