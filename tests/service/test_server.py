"""The HTTP front end: routes, errors, streaming, concurrency limits."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

import repro
from repro.explore.scenario import demo_scenario
from repro.service.client import ServiceClient
from repro.service.server import (
    ExplorationServer,
    ServiceConfig,
    ServiceError,
    parse_explore_request,
    parse_optimize_request,
)
from repro.study import Study

ARCH = {
    "name": "w16",
    "n_cells": 729,
    "activity": 0.2976,
    "logical_depth": 17,
    "capacitance": 70e-15,
}


def _post_raw(url: str, body: bytes, headers: dict | None = None):
    request = urllib.request.Request(
        url,
        data=body,
        method="POST",
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    return urllib.request.urlopen(request, timeout=30)


class TestIntrospectionRoutes:
    def test_healthz(self, service):
        _, client = service
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["version"] == repro.__version__
        assert payload["workers"] == 4
        assert payload["requests"] >= 1

    def test_solvers_shares_the_cli_listing(self, service):
        from repro.listing import listing_payload

        _, client = service
        assert client.solvers() == json.loads(json.dumps(listing_payload()))

    def test_architectures(self, service):
        _, client = service
        names = client.architectures()
        assert "Wallace" in names and len(names) == 13

    def test_catalog_shares_the_cli_listing(self, service):
        from repro.catalog import NAMESPACES
        from repro.listing import catalog_payload

        _, client = service
        payload = client.catalog()
        assert set(payload) == set(NAMESPACES)
        assert payload == json.loads(json.dumps(catalog_payload()))

    def test_cache_stats_shape(self, service):
        _, client = service
        stats = client.cache_stats()
        assert stats["enabled"] is True
        assert {"memory", "disk", "coalescer", "engine_runs"} <= set(stats)


class TestExploreRoute:
    def test_small_sweep(self, service):
        _, client = service
        scenario = demo_scenario(frequency_points=2)
        result = client.explore(scenario, solver="auto", jobs=1)
        assert len(result) == scenario.size
        assert result.best() is not None

    def test_repeat_is_a_cache_hit(self, service):
        _, client = service
        scenario = demo_scenario(frequency_points=2)
        first = client.explore(scenario, solver="auto", jobs=1)
        second = client.explore(scenario, solver="auto", jobs=1)
        assert not first.cache_hit
        assert second.cache_hit
        assert second.records == first.records

    def test_ndjson_stream_matches_plain_response(self, service):
        _, client = service
        scenario = demo_scenario(frequency_points=2)
        plain = client.explore(scenario, solver="auto", jobs=1, stream=False)
        streamed = client.explore(scenario, solver="auto", jobs=1, stream=True)
        assert streamed.records == plain.records
        assert streamed.solver == plain.solver
        # Phase timings are per-run (the first request computed, the
        # second replayed the cache); compare everything else.
        import dataclasses

        assert dataclasses.replace(
            streamed.stats, phases={}
        ) == dataclasses.replace(plain.stats, phases={})

    def test_ndjson_wire_format(self, service):
        server, client = service
        scenario = demo_scenario(frequency_points=2)
        body = json.dumps(
            {"scenario": scenario.to_dict(), "solver": "auto", "jobs": 1}
        ).encode()
        with _post_raw(server.url + "/v1/explore?stream=ndjson", body) as response:
            assert response.headers["Content-Type"] == "application/x-ndjson"
            lines = [json.loads(l) for l in response.read().splitlines() if l]
        assert lines[0]["kind"] == "header"
        assert lines[0]["n_records"] == scenario.size
        assert all(line["kind"] == "record" for line in lines[1:])
        assert len(lines) == 1 + scenario.size


class TestOptimizeRoute:
    def test_matches_in_process_study(self, service):
        _, client = service
        record = client.optimize(ARCH, "LL", 31.25e6, solver="numerical")
        local = (
            Study("local")
            .architectures(ARCH)
            .technologies("LL")
            .frequencies(31.25e6)
            .solver("numerical")
            .run()[0]
        )
        assert record == local

    def test_solver_options_forwarded(self, service):
        _, client = service
        unconstrained = client.optimize(ARCH, "LL", 31.25e6, solver="bounded")
        capped = client.optimize(
            ARCH, "LL", 31.25e6, solver="bounded", vth_max=0.1
        )
        assert unconstrained.vth > 0.1  # the cap actually binds
        assert capped.feasible and capped.vth <= 0.1 + 1e-12


class TestErrorMapping:
    def test_unknown_route_is_404(self, service):
        _, client = service
        with pytest.raises(ServiceError) as excinfo:
            client._get("/v1/frobnicate")
        assert excinfo.value.status == 404

    def test_wrong_method_is_405(self, service):
        server, _ = service
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_raw(server.url + "/v1/healthz", b"{}")
        assert excinfo.value.code == 405

    def test_malformed_json_is_400(self, service):
        server, _ = service
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_raw(server.url + "/v1/explore", b"{not json")
        error = json.loads(excinfo.value.read())["error"]
        assert excinfo.value.code == 400
        assert error["type"] == "bad-json"

    def test_missing_scenario_is_400(self, service):
        _, client = service
        with pytest.raises(ServiceError) as excinfo:
            client._post("/v1/explore", {"solver": "auto"})
        assert excinfo.value.status == 400
        assert excinfo.value.kind == "missing-field"

    def test_invalid_scenario_is_400(self, service):
        _, client = service
        with pytest.raises(ServiceError) as excinfo:
            client._post("/v1/explore", {"scenario": {"name": "broken"}})
        assert excinfo.value.status == 400
        assert excinfo.value.kind == "bad-scenario"

    def test_unknown_solver_is_400(self, service):
        _, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.explore(demo_scenario(frequency_points=2), solver="nope")
        assert excinfo.value.status == 400
        assert excinfo.value.kind == "unknown-solver"

    def test_unknown_solver_suggests_surrogate_on_optimize(self, service):
        _, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.optimize(ARCH, "LL", 31.25e6, solver="surogate")
        assert excinfo.value.status == 400
        assert excinfo.value.kind == "unknown-solver"
        assert "did you mean" in str(excinfo.value)
        assert "surrogate" in str(excinfo.value)

    def test_bad_jobs_is_400(self, service):
        _, client = service
        scenario = demo_scenario(frequency_points=2)
        with pytest.raises(ServiceError) as excinfo:
            client._post(
                "/v1/explore", {"scenario": scenario.to_dict(), "jobs": 0}
            )
        assert excinfo.value.kind == "bad-jobs"

    def test_oversized_body_is_413(self, tmp_path):
        server = ExplorationServer(
            ServiceConfig(port=0, max_body=64, cache_dir=str(tmp_path))
        )
        server.start_background()
        try:
            client = ServiceClient(server.url)
            with pytest.raises(ServiceError) as excinfo:
                client.explore(demo_scenario(frequency_points=2))
            assert excinfo.value.status == 413
        finally:
            server.shutdown()
            server.server_close()

    def test_negative_content_length_is_400(self, service):
        """-1 must not block the handler on a read-to-EOF (thread pinning)."""
        import http.client

        server, _ = service
        host, port = server.server_address[:2]
        for length in ("-1", "-5"):
            connection = http.client.HTTPConnection(host, port, timeout=10)
            try:
                connection.putrequest("POST", "/v1/explore")
                connection.putheader("Content-Length", length)
                connection.endheaders()
                response = connection.getresponse()
                assert response.status == 400
                assert json.loads(response.read())["error"]["type"] == "bad-length"
            finally:
                connection.close()

    def test_bad_frequency_is_400(self, service):
        _, client = service
        with pytest.raises(ServiceError) as excinfo:
            client._post(
                "/v1/optimize",
                {"architecture": ARCH, "technology": "LL", "frequency": -1},
            )
        assert excinfo.value.kind == "bad-frequency"

    def test_errors_are_counted(self, service):
        _, client = service
        before = client.healthz()["errors"]
        with pytest.raises(ServiceError):
            client._get("/v1/frobnicate")
        assert client.healthz()["errors"] == before + 1


class TestCoalescingOverHTTP:
    def test_concurrent_identical_sweeps_run_once(self, tmp_path):
        release = threading.Event()

        def gated_evaluate(scenario, solver, jobs, options):
            release.wait(10.0)
            return (
                Study.from_scenario(scenario)
                .solver(solver, **options)
                .jobs(jobs)
                .run()
            )

        server = ExplorationServer(
            ServiceConfig(port=0, workers=8, use_cache=False),
            evaluate=gated_evaluate,
        )
        server.start_background()
        try:
            scenario = demo_scenario(frequency_points=2)
            results = []

            def post():
                client = ServiceClient(server.url)
                results.append(client.explore(scenario, solver="auto", jobs=1))

            threads = [threading.Thread(target=post) for _ in range(6)]
            for thread in threads:
                thread.start()
            deadline = time.monotonic() + 10.0
            while server.state.coalescer.stats()["coalesced"] < 5:
                assert time.monotonic() < deadline, "requests never coalesced"
                time.sleep(0.01)
            release.set()
            for thread in threads:
                thread.join(30.0)

            assert len(results) == 6
            assert server.state.engine_runs == 1
            assert all(r.records == results[0].records for r in results)
        finally:
            release.set()
            server.shutdown()
            server.server_close()


class TestRequestParsers:
    def test_explore_parser_round_trip(self):
        scenario = demo_scenario(frequency_points=2)
        parsed, solver, jobs, options = parse_explore_request(
            {"scenario": scenario.to_dict(), "solver": "vectorized", "jobs": 2}
        )
        assert parsed == scenario
        assert (solver, jobs, options) == ("vectorized", 2, {})

    def test_optimize_parser_builds_single_point_scenario(self):
        scenario, solver, options = parse_optimize_request(
            {
                "architecture": ARCH,
                "technology": "LL",
                "frequency": 31.25e6,
                "solver": "bounded",
                "options": {"vth_max": 0.45},
            }
        )
        assert scenario.size == 1
        assert solver == "bounded"
        assert options == {"vth_max": 0.45}

    def test_port_zero_binds_ephemeral_port(self, tmp_path):
        server = ExplorationServer(
            ServiceConfig(port=0, cache_dir=str(tmp_path))
        )
        try:
            assert server.server_port > 0
            assert str(server.server_port) in server.url
        finally:
            server.server_close()

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ServiceConfig(workers=0)
        with pytest.raises(ValueError):
            ServiceConfig(max_body=0)
