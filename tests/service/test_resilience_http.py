"""Resilience over the wire: deadlines, shedding, idempotency, Retry-After."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.explore.scenario import demo_scenario
from repro.resilience import DEADLINE_HEADER
from repro.service.client import ServiceClient, _error_from_response
from repro.service.server import (
    ExplorationServer,
    ServiceConfig,
    ServiceError,
)

WAIT = 30.0


def _post_json(url, payload, headers=None):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    return urllib.request.urlopen(request, timeout=WAIT)


def _error_body(excinfo):
    return json.loads(excinfo.value.read().decode("utf-8"))["error"]


class TestDeadlineOverTheWire:
    def test_hopeless_deadline_maps_to_structured_504(self, service):
        server, _ = service
        scenario = demo_scenario(frequency_points=40)
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_json(
                server.url + "/v1/explore",
                {"scenario": scenario.to_dict()},
                headers={DEADLINE_HEADER: "1"},
            )
        assert excinfo.value.code == 504
        error = _error_body(excinfo)
        assert error["type"] == "deadline-exceeded"
        assert error["details"]["budget_ms"] == 1
        assert error["details"]["site"]
        assert isinstance(error["details"]["progress"], dict)
        assert server.state.healthz_payload()["deadline_breaches"] >= 1

    @pytest.mark.parametrize("value", ["abc", "0", "-5", "1.5"])
    def test_bad_deadline_header_is_a_400(self, service, value):
        server, _ = service
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_json(
                server.url + "/v1/explore",
                {"scenario": demo_scenario(frequency_points=2).to_dict()},
                headers={DEADLINE_HEADER: value},
            )
        assert excinfo.value.code == 400
        assert _error_body(excinfo)["type"] == "bad-deadline"

    def test_generous_deadline_changes_nothing(self, service):
        server, client = service
        scenario = demo_scenario(frequency_points=3)
        with_deadline = client.explore(scenario)  # client always sends one
        request = urllib.request.Request(
            server.url + "/v1/explore",
            data=json.dumps({"scenario": scenario.to_dict()}).encode(),
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(request, timeout=WAIT) as response:
            bare = json.loads(response.read().decode("utf-8"))
        assert len(with_deadline) == len(bare["records"]) == scenario.size


class TestAdmissionOverTheWire:
    @pytest.fixture
    def tiny_service(self, tmp_path):
        """One worker, zero queue: the second concurrent request sheds."""
        server = ExplorationServer(
            ServiceConfig(
                port=0,
                workers=1,
                admission_queue=0,
                use_cache=False,
                retry_after_seconds=7.0,
            )
        )
        release = threading.Event()
        started = threading.Event()
        evaluate = server.state.evaluate

        def gated(scenario, solver, jobs, options):
            started.set()
            if not release.wait(timeout=WAIT):  # pragma: no cover
                raise TimeoutError("gate never released")
            return evaluate(scenario, solver, jobs, options)

        server.state.evaluate = gated
        server.start_background()
        try:
            yield server, started, release
        finally:
            release.set()
            server.shutdown()
            server.server_close()

    def test_second_request_sheds_429_with_retry_after(self, tiny_service):
        server, started, release = tiny_service
        first_done = threading.Event()

        def occupy():
            # Distinct scenario sizes → distinct coalescer keys, so the
            # second request cannot ride the first one's flight.
            _post_json(
                server.url + "/v1/explore",
                {"scenario": demo_scenario(frequency_points=3).to_dict()},
            ).read()
            first_done.set()

        thread = threading.Thread(target=occupy, daemon=True)
        thread.start()
        assert started.wait(timeout=WAIT)
        try:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _post_json(
                    server.url + "/v1/explore",
                    {"scenario": demo_scenario(frequency_points=2).to_dict()},
                )
        finally:
            release.set()
        assert excinfo.value.code == 429
        assert excinfo.value.headers["Retry-After"] == "7"
        error = _error_body(excinfo)
        assert error["type"] == "admission-shed"
        assert error["retry_after"] == 7.0
        assert error["details"]["reason"] == "queue-full"
        assert first_done.wait(timeout=WAIT)
        thread.join(timeout=WAIT)
        snap = server.state.healthz_payload()["admission"]
        assert snap["shed"] >= 1
        assert snap["accepted"] >= 1

    def test_healthz_reports_admission_and_faults(self, service):
        server, client = service
        payload = client.healthz()
        assert payload["faults_armed"] is False
        assert payload["admission"]["limit"] == 4 + 16  # workers + queue
        assert payload["admission"]["depth"] == 0


class TestIdempotentSubmit:
    def test_same_key_returns_same_job(self, service):
        _, client = service
        scenario = demo_scenario(frequency_points=3)
        payload = {"scenario": scenario.to_dict(), "solver": "auto"}
        headers = {"Idempotency-Key": "retry-of-lost-response"}
        first = client._request(
            "POST", "/v1/jobs", payload, extra_headers=headers
        )
        second = client._request(
            "POST", "/v1/jobs", payload, extra_headers=headers
        )
        assert first["deduplicated"] is False
        assert second["deduplicated"] is True
        assert first["job"]["id"] == second["job"]["id"]
        client.wait(first["job"]["id"], timeout=WAIT, poll=0.05)

    def test_client_submits_mint_distinct_keys(self, service):
        _, client = service
        scenario = demo_scenario(frequency_points=3)
        first = client.submit(scenario)
        second = client.submit(scenario)
        assert first.id != second.id
        client.wait(first.id, timeout=WAIT, poll=0.05)
        client.wait(second.id, timeout=WAIT, poll=0.05)

    def test_oversize_key_rejected(self, service):
        server, client = service
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _post_json(
                server.url + "/v1/jobs",
                {"scenario": demo_scenario(frequency_points=2).to_dict()},
                headers={"Idempotency-Key": "k" * 129},
            )
        assert excinfo.value.code == 400
        assert _error_body(excinfo)["type"] == "bad-idempotency-key"


class TestClientRetryAfter:
    def make_client(self, errors):
        client = ServiceClient(
            "http://127.0.0.1:1", retries=len(errors), backoff=0.25
        )
        sleeps: list[float] = []
        queue = list(errors)

        def fake_open_once(request):
            if queue:
                raise queue.pop(0)
            return _FakeResponse({"jobs": []})

        client._open_once = fake_open_once
        client._sleep = sleeps.append
        client._random = lambda: 0.0
        return client, sleeps

    def test_retry_after_overrides_backoff(self, service):
        client, sleeps = self.make_client(
            [ServiceError(429, "admission-shed", "busy", retry_after=5.0)]
        )
        assert client.jobs() == []
        assert sleeps == [5.0]

    def test_429_without_hint_uses_backoff(self, service):
        client, sleeps = self.make_client(
            [ServiceError(429, "admission-shed", "busy")]
        )
        assert client.jobs() == []
        assert sleeps == [0.25]

    def test_parses_retry_after_header(self):
        error = _error_from_response(
            429,
            json.dumps(
                {"error": {"status": 429, "type": "admission-shed",
                           "message": "busy"}}
            ).encode(),
            {"Retry-After": "3.5"},
        )
        assert error.retry_after == 3.5
        assert _error_from_response(503, b"down", {}).retry_after is None
        assert (
            _error_from_response(503, b"down", {"Retry-After": "soon"})
            .retry_after
            is None
        )


class _FakeResponse:
    def __init__(self, payload):
        self._body = json.dumps(payload).encode()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def read(self):
        return self._body
