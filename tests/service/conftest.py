"""Shared service-test harness: a live server on an ephemeral port."""

import pytest

from repro.service.client import ServiceClient
from repro.service.server import ExplorationServer, ServiceConfig


@pytest.fixture
def service(tmp_path):
    """A running server (ephemeral port, tmp cache) + matching client."""
    server = ExplorationServer(
        ServiceConfig(port=0, workers=4, cache_dir=str(tmp_path / "cache"))
    )
    server.start_background()
    try:
        yield server, ServiceClient(server.url, timeout=60.0)
    finally:
        server.shutdown()
        server.server_close()
