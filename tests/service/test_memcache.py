"""The in-memory LRU tier and the tiered cache stack."""

import threading

import pytest

from repro.explore.cache import ResultCache
from repro.service.memcache import (
    MemoryCache,
    TieredCache,
    as_cache,
    default_memory_cache,
)


class TestMemoryCache:
    def test_miss_then_hit(self):
        cache = MemoryCache(4)
        assert cache.get("k") is None
        cache.put("k", {"v": 1})
        assert cache.get("k") == {"v": 1}
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_lru_eviction_order(self):
        cache = MemoryCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # touch a → b is now least recent
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_put_refreshes_recency(self):
        cache = MemoryCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh a
        cache.put("c", 3)
        assert "a" in cache and "b" not in cache

    def test_bound_is_enforced(self):
        cache = MemoryCache(3)
        for i in range(10):
            cache.put(str(i), i)
        assert len(cache) == 3

    def test_clear_keeps_counters(self):
        cache = MemoryCache(4)
        cache.put("k", 1)
        cache.get("k")
        assert cache.clear() == 1
        assert len(cache) == 0
        assert cache.stats()["hits"] == 1

    def test_rejects_non_positive_bound(self):
        with pytest.raises(ValueError, match="max_entries"):
            MemoryCache(0)

    def test_thread_safety_under_contention(self):
        cache = MemoryCache(16)
        errors = []

        def worker(seed: int):
            try:
                for i in range(200):
                    key = str((seed * 7 + i) % 32)
                    cache.put(key, i)
                    cache.get(key)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 16


class TestTieredCache:
    def test_put_writes_both_tiers(self, tmp_path):
        tiered = TieredCache(ResultCache(tmp_path), MemoryCache(4))
        path = tiered.put("k", {"v": 1})
        assert path.is_file()
        assert tiered.memory.stats()["puts"] == 1
        assert tiered.get("k") == {"v": 1}
        assert tiered.memory.stats()["hits"] == 1

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        disk = ResultCache(tmp_path)
        disk.put("k", {"v": 1})
        tiered = TieredCache(disk, MemoryCache(4))
        assert tiered.get("k") == {"v": 1}  # disk hit, promoted
        assert tiered.memory.stats()["misses"] == 1
        assert tiered.get("k") == {"v": 1}  # memory hit now
        assert tiered.memory.stats()["hits"] == 1

    def test_namespace_isolates_directories(self, tmp_path):
        memory = MemoryCache(8)
        one = TieredCache(ResultCache(tmp_path / "one"), memory)
        two = TieredCache(ResultCache(tmp_path / "two"), memory)
        one.put("k", {"origin": "one"})
        assert two.get("k") is None

    def test_clear_drops_memory_too(self, tmp_path):
        tiered = TieredCache(ResultCache(tmp_path), MemoryCache(4))
        tiered.put("k", {"v": 1})
        assert tiered.clear() == 1
        assert tiered.get("k") is None

    def test_stats_reports_both_tiers(self, tmp_path):
        tiered = TieredCache(ResultCache(tmp_path), MemoryCache(4))
        tiered.put("k", {"v": 1})
        stats = tiered.stats()
        assert stats["disk"]["entries"] == 1
        assert stats["memory"]["entries"] == 1

    def test_prune_delegates_to_disk(self, tmp_path):
        tiered = TieredCache(ResultCache(tmp_path), MemoryCache(8))
        for index in range(5):
            tiered.put(f"k{index}", {"v": index})
        assert tiered.prune(2) == 3
        assert len(tiered.entries()) == 2


class TestAsCache:
    def test_passes_tiered_through(self, tmp_path):
        tiered = TieredCache(ResultCache(tmp_path), MemoryCache(4))
        assert as_cache(tiered) is tiered

    def test_wraps_result_cache(self, tmp_path):
        disk = ResultCache(tmp_path)
        tiered = as_cache(disk)
        assert isinstance(tiered, TieredCache)
        assert tiered.disk is disk

    def test_wraps_directory(self, tmp_path):
        tiered = as_cache(tmp_path)
        assert tiered.directory == tmp_path

    def test_default_uses_global_memory(self, tmp_path):
        assert as_cache(tmp_path).memory is default_memory_cache()
