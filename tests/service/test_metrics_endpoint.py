"""``GET /v1/metrics``, request ids and the telemetry-driven counters."""

import json
import urllib.request

import pytest

from repro.explore.scenario import demo_scenario
from repro.obs import PROMETHEUS_CONTENT_TYPE


def _get_raw(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    return urllib.request.urlopen(request, timeout=30.0)


def _counter_delta(before, after, key):
    return after["counters"].get(key, 0) - before["counters"].get(key, 0)


class TestMetricsEndpoint:
    def test_prometheus_text_default(self, service):
        server, client = service
        client.healthz()  # at least one counted request
        with _get_raw(server.url + "/v1/metrics") as response:
            assert response.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
            text = response.read().decode("utf-8")
        assert "# TYPE http_requests_total counter" in text
        assert 'http_requests_total{route="/v1/healthz",status="200"}' in text
        assert "# TYPE http_latency_seconds histogram" in text
        assert "service_uptime_seconds" in text
        assert "cache_memory_entries" in text
        assert "coalescer_in_flight" in text

    def test_json_format(self, service):
        _, client = service
        snapshot = client.metrics()
        assert snapshot["enabled"] is True
        assert {"counters", "gauges", "histograms"} <= set(snapshot)

    def test_warm_vs_cold_request_pair(self, service):
        """Two identical explores: the second is a memory-tier hit."""
        _, client = service
        scenario = demo_scenario(frequency_points=2)
        before = client.metrics()
        cold = client.explore(scenario, solver="auto", jobs=1)
        after_cold = client.metrics()
        warm = client.explore(scenario, solver="auto", jobs=1)
        after_warm = client.metrics()

        assert not cold.cache_hit and warm.cache_hit
        assert (
            _counter_delta(before, after_cold, "cache.memory.misses") >= 1
        )
        assert _counter_delta(after_cold, after_warm, "cache.memory.hits") >= 1
        assert (
            _counter_delta(before, after_cold, "engine.points_evaluated")
            >= scenario.size
        )
        assert (
            _counter_delta(after_cold, after_warm, "engine.points_evaluated")
            == 0
        )

    def test_disabled_telemetry_serves_empty(self, tmp_path):
        from repro import obs
        from repro.service.client import ServiceClient
        from repro.service.server import ExplorationServer, ServiceConfig

        was_enabled = obs.is_enabled()
        registry = obs.get_registry()
        server = ExplorationServer(
            ServiceConfig(
                port=0, cache_dir=str(tmp_path / "cache"), telemetry=False
            )
        )
        server.start_background()
        try:
            obs.disable()
            client = ServiceClient(server.url, timeout=30.0)
            assert client.metrics()["enabled"] is False
            assert client.metrics_text() == ""
        finally:
            server.shutdown()
            server.server_close()
            if was_enabled:
                obs.enable(registry)


class TestRequestIds:
    def test_response_carries_a_minted_id(self, service):
        server, _ = service
        with _get_raw(server.url + "/v1/healthz") as response:
            request_id = response.headers["X-Request-Id"]
        assert request_id and len(request_id) == 16

    def test_client_supplied_id_is_propagated(self, service):
        server, _ = service
        with _get_raw(
            server.url + "/v1/healthz",
            headers={"X-Request-Id": "my-trace-123"},
        ) as response:
            assert response.headers["X-Request-Id"] == "my-trace-123"

    def test_hostile_id_is_replaced(self, service):
        server, _ = service
        with _get_raw(
            server.url + "/v1/healthz",
            headers={"X-Request-Id": "a" * 200 + "\x7f"},
        ) as response:
            assert len(response.headers["X-Request-Id"]) <= 64

    def test_error_body_carries_the_id(self, service):
        server, _ = service
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get_raw(
                server.url + "/v1/nowhere",
                headers={"X-Request-Id": "err-trace"},
            ).read()
        body = json.loads(excinfo.value.read().decode("utf-8"))
        assert body["error"]["request_id"] == "err-trace"
        assert excinfo.value.headers["X-Request-Id"] == "err-trace"


class TestHealthzClocks:
    def test_uptime_and_start_are_consistent(self, service):
        import time

        _, client = service
        payload = client.healthz()
        assert payload["uptime_seconds"] >= 0
        # started_at is a wall-clock timestamp of roughly "now".
        assert abs(time.time() - payload["started_at"]) < 60
        assert payload["telemetry"] is True
