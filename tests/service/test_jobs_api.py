"""The /v1/jobs surface: HTTP lifecycle, coalescing, retries, CLI."""

import json
import threading
import urllib.request

import pytest

from repro.cli import main
from repro.explore.engine import explore
from repro.explore.scenario import demo_scenario
from repro.service.client import ServiceClient, ServiceError
from repro.service.server import ExplorationServer, ServiceConfig

WAIT = 30.0


def _counter(metrics, name, **labels):
    """A counter's value from the /v1/metrics JSON snapshot (0 if absent)."""
    key = name
    if labels:
        rendered = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        key = f"{name}{{{rendered}}}"
    return metrics.get("counters", {}).get(key, 0)


@pytest.fixture
def gated_service(tmp_path):
    """A live server whose job shards block until the test releases them."""
    release = threading.Event()
    started = threading.Event()

    server = ExplorationServer(
        ServiceConfig(port=0, workers=4, cache_dir=str(tmp_path / "cache"))
    )

    def evaluate(scenario, method):
        started.set()
        if not release.wait(timeout=WAIT):  # pragma: no cover — test hang
            raise TimeoutError("gate never released")
        return explore(scenario, method=method, use_cache=False)

    server.state.jobs._evaluate_shard = evaluate
    server.start_background()
    try:
        yield server, ServiceClient(server.url, timeout=60.0), started, release
    finally:
        release.set()
        server.shutdown()
        server.server_close()


class TestJobLifecycle:
    def test_submit_poll_result_round_trip(self, service):
        server, client = service
        scenario = demo_scenario(frequency_points=3)
        handle = client.submit(scenario, shards=4)

        status = client.wait(handle.id, timeout=WAIT, poll=0.05)
        assert status["state"] == "done"
        assert status["progress"]["shards_done"] == 4
        assert status["progress"]["points_done"] == scenario.size
        assert status["scenario_name"] == scenario.name

        # NDJSON stream (the default) and plain JSON agree with inline.
        streamed = client.job_result(handle.id)
        plain = client.job_result(handle.id, stream=False)
        inline = explore(scenario, use_cache=False)
        assert len(streamed) == len(inline.table) == len(plain)
        for remote in (streamed, plain):
            for index in (0, len(remote) // 2, len(remote) - 1):
                record = remote[index]
                row = inline.table.rows()[index]
                assert record.architecture == row.architecture
                assert record.technology == row.technology
                assert record.frequency == row.frequency
                assert record.ptot == row.ptot

        listed = {payload["id"] for payload in client.jobs()}
        assert handle.id in listed

    def test_submit_returns_202_with_a_job_payload(self, service):
        server, client = service
        body = json.dumps(
            {"scenario": demo_scenario(frequency_points=2).to_dict()}
        ).encode()
        request = urllib.request.Request(
            f"{server.url}/v1/jobs",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.status == 202
            payload = json.loads(response.read())
        assert payload["job"]["state"] == "queued"
        assert payload["job"]["progress"]["points_total"] == 48

    def test_events_stream_follows_to_done(self, service):
        server, client = service
        handle = client.submit(demo_scenario(frequency_points=2), shards=3)
        events = list(client.job_events(handle.id, timeout=WAIT))
        seqs = [event["seq"] for event in events]
        assert seqs == sorted(seqs)
        states = [e["state"] for e in events if e["event"] == "state"]
        assert states[0] == "queued" and states[-1] == "done"
        assert sum(1 for e in events if e["event"] == "shard") == 3

    def test_error_paths_are_typed(self, service):
        server, client = service
        with pytest.raises(ServiceError) as not_found:
            client.job("deadbeef00000000")
        assert not_found.value.status == 404
        assert not_found.value.kind == "job-not-found"

        handle = client.submit(demo_scenario(frequency_points=2))
        client.wait(handle.id, timeout=WAIT, poll=0.05)
        with pytest.raises(ServiceError) as conflict:
            client.cancel(handle.id)  # already done
        assert conflict.value.status == 409
        assert conflict.value.kind == "job-state"

        with pytest.raises(ServiceError) as bad_shards:
            client._post(
                "/v1/jobs",
                {
                    "scenario": demo_scenario(frequency_points=2).to_dict(),
                    "shards": 0,
                },
            )
        assert bad_shards.value.status == 400
        assert bad_shards.value.kind == "bad-shards"

    def test_job_metrics_flow_through_the_registry(self, service):
        server, client = service
        before = _counter(
            client.metrics(), "jobs.completed", solver="auto"
        )
        handle = client.submit(demo_scenario(frequency_points=2), shards=2)
        client.wait(handle.id, timeout=WAIT, poll=0.05)
        metrics = client.metrics()
        assert (
            _counter(metrics, "jobs.completed", solver="auto") == before + 1
        )
        assert _counter(metrics, "jobs.submitted", solver="auto") >= 1
        assert "jobs.queue_depth" in metrics.get("gauges", {})


class TestCancelOverHTTP:
    def test_delete_aborts_remaining_shards(self, gated_service):
        server, client, started, release = gated_service
        handle = client.submit(demo_scenario(frequency_points=2), shards=4)
        assert started.wait(timeout=WAIT)
        payload = client.cancel(handle.id)
        assert payload["state"] in ("running", "cancelled")
        release.set()
        status = client.wait(handle.id, timeout=WAIT, poll=0.05)
        assert status["state"] == "cancelled"
        assert status["progress"]["shards_done"] < 4
        with pytest.raises(ServiceError) as no_result:
            client.job_result(handle.id)
        assert no_result.value.status == 409


class TestSingleFlight:
    def test_job_and_inline_explore_share_one_engine_run(self, gated_service):
        """The coalescer regression: one sweep, two entry points, one run."""
        server, client, started, release = gated_service
        scenario = demo_scenario(frequency_points=2)
        handle = client.submit(scenario, solver="auto")
        assert started.wait(timeout=WAIT)

        inline: dict = {}

        def explore_inline():
            inline["header"] = client._post(
                "/v1/explore",
                {"scenario": scenario.to_dict(), "solver": "auto"},
            )

        thread = threading.Thread(target=explore_inline)
        thread.start()
        # The inline request must be waiting on the job's flight before
        # the gate opens, otherwise it would start its own engine run.
        deadline = threading.Event()
        for _ in range(200):
            if server.state.coalescer.stats()["coalesced"] >= 1:
                break
            deadline.wait(0.05)
        assert server.state.coalescer.stats()["coalesced"] >= 1
        release.set()

        thread.join(timeout=WAIT)
        assert not thread.is_alive()
        assert inline["header"]["coalesced"] is True
        assert inline["header"]["n_records"] == scenario.size
        # The inline path never entered its own evaluate.
        assert server.state.engine_runs == 0
        client.wait(handle.id, timeout=WAIT, poll=0.05)
        assert len(client.job_result(handle.id)) == scenario.size


class TestClientRetry:
    def make_client(self, fail_times, status=503, kind="unreachable"):
        client = ServiceClient(
            "http://127.0.0.1:1", retries=3, backoff=0.25, backoff_max=1.0
        )
        calls = {"n": 0}
        sleeps: list[float] = []

        def fake_open_once(request):
            calls["n"] += 1
            if calls["n"] <= fail_times:
                raise ServiceError(status, kind, "boom")
            return _FakeResponse({"jobs": []})

        client._open_once = fake_open_once
        client._sleep = sleeps.append
        client._random = lambda: 0.0  # deterministic jitter
        return client, calls, sleeps

    def test_retries_ride_out_transient_503s(self):
        client, calls, sleeps = self.make_client(fail_times=2)
        assert client.jobs() == []
        assert calls["n"] == 3
        assert sleeps == [0.25, 0.5]  # exponential backoff, jitter = 0

    def test_backoff_is_capped_and_jittered(self):
        client, calls, sleeps = self.make_client(fail_times=3)
        client._random = lambda: 1.0  # full jitter doubles each delay
        assert client.jobs() == []
        assert sleeps == [0.5, 1.0, 2.0]  # (0.25, 0.5, capped 1.0) * 2

    def test_exhausted_retries_surface_the_error(self):
        client, calls, sleeps = self.make_client(fail_times=10)
        with pytest.raises(ServiceError) as error:
            client.jobs()
        assert error.value.status == 503
        assert calls["n"] == 4  # 1 try + 3 retries
        assert len(sleeps) == 3

    def test_client_errors_never_retry(self):
        client, calls, sleeps = self.make_client(
            fail_times=10, status=400, kind="bad-json"
        )
        with pytest.raises(ServiceError):
            client.jobs()
        assert calls["n"] == 1
        assert sleeps == []

    def test_retries_default_off_and_reject_negatives(self):
        client = ServiceClient("http://127.0.0.1:1")
        assert client.retries == 0
        calls = {"n": 0}

        def fail(request):
            calls["n"] += 1
            raise ServiceError(503, "unreachable", "down")

        client._open_once = fail
        with pytest.raises(ServiceError):
            client.jobs()
        assert calls["n"] == 1
        with pytest.raises(ValueError):
            ServiceClient("http://127.0.0.1:1", retries=-1)


class _FakeResponse:
    def __init__(self, payload):
        self._body = json.dumps(payload).encode()

    def read(self):
        return self._body

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


class TestJobsCLI:
    def test_submit_wait_status_result_list(self, service, capsys, tmp_path):
        server, client = service
        url = ["--url", server.url]
        code = main(
            [
                "jobs", "submit", "--frequency-points", "2", "--shards", "2",
                "--wait", "--poll", "0.05", *url,
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "done" in out
        job_id = out.split()[1]

        assert main(["jobs", "status", job_id, *url]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["state"] == "done"

        export = tmp_path / "result.json"
        code = main(["jobs", "result", job_id, "--export", str(export), *url])
        assert code == 0
        assert "exported 48 records" in capsys.readouterr().out
        assert len(json.loads(export.read_text())["records"]) == 48

        assert main(["jobs", "list", *url]) == 0
        assert job_id in capsys.readouterr().out

    def test_submit_wait_profile_prints_the_server_trace(
        self, service, capsys
    ):
        server, client = service
        code = main(
            [
                "jobs", "submit", "--frequency-points", "2", "--shards", "2",
                "--wait", "--poll", "0.05", "--profile",
                "--url", server.url,
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "profile: server trace" in out
        assert "trace " in out
        assert "http.request" in out
        assert "jobs.run" in out
        assert out.count("jobs.shard") == 2
        assert "jobs.merge" in out

    def test_cancel_and_error_exit_codes(self, gated_service, capsys):
        server, client, started, release = gated_service
        url = ["--url", server.url]
        assert main(
            ["jobs", "submit", "--frequency-points", "2", *url]
        ) == 0
        job_id = capsys.readouterr().out.split()[1]
        assert started.wait(timeout=WAIT)

        assert main(["jobs", "cancel", job_id, *url]) == 0
        release.set()
        client.wait(job_id, timeout=WAIT, poll=0.05)

        # A service error (cancelling a terminal job) exits 1, not a trace.
        assert main(["jobs", "cancel", job_id, *url]) == 1
        assert "service error" in capsys.readouterr().err

    def test_unreachable_service_exits_one(self, capsys):
        code = main(
            ["jobs", "list", "--url", "http://127.0.0.1:1", "--retries", "0"]
        )
        assert code == 1
        assert "service error" in capsys.readouterr().err
