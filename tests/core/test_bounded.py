"""Tests for the bounded (Vth-ceiling) optimisation extension."""

import pytest

from repro.core.bounded import (
    bounded_constrained_power,
    bounded_optimum,
    vth_ceiling_is_active,
)
from repro.core.calibration import calibrate_row
from repro.core.numerical import numerical_optimum
from repro.core.technology import ST_CMOS09_LL
from repro.experiments.paper_data import PAPER_FREQUENCY, TABLE1_BY_NAME


@pytest.fixture(scope="module")
def wallace():
    return calibrate_row(TABLE1_BY_NAME["Wallace"], ST_CMOS09_LL, PAPER_FREQUENCY)


@pytest.fixture(scope="module")
def sequential():
    return calibrate_row(TABLE1_BY_NAME["Sequential"], ST_CMOS09_LL, PAPER_FREQUENCY)


class TestReductionToUnbounded:
    def test_no_caps_matches_numerical_optimum(self, wallace):
        unbounded = numerical_optimum(wallace, ST_CMOS09_LL, PAPER_FREQUENCY)
        bounded = bounded_optimum(wallace, ST_CMOS09_LL, PAPER_FREQUENCY)
        assert bounded.ptot == pytest.approx(unbounded.ptot, rel=1e-6)
        assert bounded.point.vdd == pytest.approx(unbounded.point.vdd, abs=1e-4)

    def test_loose_cap_is_inactive(self, wallace):
        """At 31.25 MHz the Wallace optimum sits at Vth ~ 0.24 V: a 0.45 V
        ceiling changes nothing."""
        unbounded = numerical_optimum(wallace, ST_CMOS09_LL, PAPER_FREQUENCY)
        capped = bounded_optimum(
            wallace, ST_CMOS09_LL, PAPER_FREQUENCY, vth_max=0.45
        )
        assert capped.ptot == pytest.approx(unbounded.ptot, rel=1e-6)
        assert not vth_ceiling_is_active(
            wallace, ST_CMOS09_LL, PAPER_FREQUENCY, 0.45
        )


class TestActiveCeiling:
    LOW_FREQUENCY = 50e3

    def test_ceiling_binds_at_low_frequency(self, wallace):
        assert vth_ceiling_is_active(
            wallace, ST_CMOS09_LL, self.LOW_FREQUENCY, 0.45
        )

    def test_capped_power_exceeds_free_power(self, wallace):
        free = numerical_optimum(wallace, ST_CMOS09_LL, self.LOW_FREQUENCY)
        capped = bounded_optimum(
            wallace, ST_CMOS09_LL, self.LOW_FREQUENCY, vth_max=0.45
        )
        assert capped.ptot > free.ptot
        assert capped.point.vth == pytest.approx(0.45, abs=1e-9)

    def test_sequential_wins_under_ceiling_at_low_frequency(
        self, wallace, sequential
    ):
        """The Section 4 claim the unbounded model cannot show: with a
        realistic Vth ceiling, leakage scales with cell count and the
        290-cell sequential multiplier undercuts the 729-cell Wallace at
        a sufficiently low data rate (the crossover sits near ~500 Hz
        for a 0.45 V ceiling on LL)."""
        frequency = 50.0
        cap = 0.45
        wallace_power = bounded_optimum(
            wallace, ST_CMOS09_LL, frequency, vth_max=cap
        ).ptot
        sequential_power = bounded_optimum(
            sequential, ST_CMOS09_LL, frequency, vth_max=cap
        ).ptot
        assert sequential_power < wallace_power

    def test_free_vth_never_lets_sequential_win(self, wallace, sequential):
        """Control: without the ceiling the ordering never flips."""
        for frequency in (5e3, 50e3, 500e3, 5e6):
            wallace_power = numerical_optimum(
                wallace, ST_CMOS09_LL, frequency
            ).ptot
            sequential_power = numerical_optimum(
                sequential, ST_CMOS09_LL, frequency
            ).ptot
            assert wallace_power < sequential_power


class TestVddBounds:
    def test_supply_cap_binds(self, sequential):
        """The sequential multiplier wants Vdd ~ 0.83 V; capping the supply
        at 0.6 V pins the optimum to the bound."""
        capped = bounded_optimum(
            sequential, ST_CMOS09_LL, PAPER_FREQUENCY, vdd_bounds=(0.2, 0.6)
        )
        assert capped.point.vdd == pytest.approx(0.6)
        free = numerical_optimum(sequential, ST_CMOS09_LL, PAPER_FREQUENCY)
        assert capped.ptot > free.ptot

    def test_invalid_bounds_rejected(self, wallace):
        with pytest.raises(ValueError, match="vdd_bounds"):
            bounded_optimum(
                wallace, ST_CMOS09_LL, PAPER_FREQUENCY, vdd_bounds=(1.0, 0.5)
            )


class TestBoundedCurve:
    def test_vth_is_clamped_on_curve(self, wallace):
        import numpy as np

        vdd = np.linspace(0.4, 1.2, 9)
        vth, _, _, _ = bounded_constrained_power(
            wallace, ST_CMOS09_LL, 1e5, vdd, vth_max=0.3
        )
        assert np.all(vth <= 0.3 + 1e-12)

    def test_power_monotone_in_cap(self, wallace):
        """A tighter ceiling can only cost power."""
        loose = bounded_optimum(wallace, ST_CMOS09_LL, 1e5, vth_max=0.5).ptot
        tight = bounded_optimum(wallace, ST_CMOS09_LL, 1e5, vth_max=0.3).ptot
        assert tight >= loose
