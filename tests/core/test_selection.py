"""Unit tests for repro.core.selection (Sections 4-5 methodology)."""

import pytest

from repro import (
    ArchitectureParameters,
    ST_CMOS09_HS,
    ST_CMOS09_LL,
    ST_CMOS09_ULL,
    best_architecture,
    best_technology,
    rank_architectures,
    rank_technologies,
    selection_matrix,
)
from repro.core.calibration import calibrate_row
from repro.experiments.paper_data import PAPER_FREQUENCY, TABLE1_BY_NAME


@pytest.fixture
def multipliers():
    rows = [TABLE1_BY_NAME["RCA"], TABLE1_BY_NAME["Wallace"], TABLE1_BY_NAME["Sequential"]]
    return [calibrate_row(row, ST_CMOS09_LL, PAPER_FREQUENCY) for row in rows]


class TestArchitectureRanking:
    def test_wallace_wins_on_ll(self, multipliers):
        winner = best_architecture(multipliers, ST_CMOS09_LL, PAPER_FREQUENCY)
        assert winner.architecture.name == "Wallace"

    def test_rank_order_matches_table1(self, multipliers):
        ranked = rank_architectures(multipliers, ST_CMOS09_LL, PAPER_FREQUENCY)
        names = [candidate.architecture.name for candidate in ranked]
        assert names == ["Wallace", "RCA", "Sequential"]

    def test_infeasible_candidates_sorted_last(self, multipliers):
        impossible = ArchitectureParameters(
            name="impossible", n_cells=100, activity=0.1,
            logical_depth=100000, capacitance=10e-15,
        )
        ranked = rank_architectures(
            multipliers + [impossible], ST_CMOS09_LL, PAPER_FREQUENCY
        )
        assert ranked[-1].architecture.name == "impossible"
        assert not ranked[-1].feasible
        assert ranked[-1].ptot == float("inf")
        assert ranked[-1].reason != ""

    def test_all_infeasible_raises_with_reasons(self):
        impossible = ArchitectureParameters(
            name="impossible", n_cells=100, activity=0.1,
            logical_depth=100000, capacitance=10e-15,
        )
        with pytest.raises(ValueError, match="no architecture is feasible"):
            best_architecture([impossible], ST_CMOS09_LL, PAPER_FREQUENCY)


class TestTechnologyRanking:
    def test_ll_wins_for_wallace(self):
        """Section 5's conclusion: the moderate flavour beats both extremes
        for the Wallace multiplier at 31.25 MHz."""
        arch = calibrate_row(TABLE1_BY_NAME["Wallace"], ST_CMOS09_LL, PAPER_FREQUENCY)
        winner = best_technology(
            arch, [ST_CMOS09_ULL, ST_CMOS09_LL, ST_CMOS09_HS], PAPER_FREQUENCY
        )
        assert winner.technology.name == "ST-CMOS09-LL"

    def test_rank_technologies_returns_all(self):
        arch = calibrate_row(TABLE1_BY_NAME["Wallace"], ST_CMOS09_LL, PAPER_FREQUENCY)
        ranked = rank_technologies(
            arch, [ST_CMOS09_ULL, ST_CMOS09_LL, ST_CMOS09_HS], PAPER_FREQUENCY
        )
        assert len(ranked) == 3
        assert all(candidate.feasible for candidate in ranked)


class TestEmptyAxes:
    def test_empty_candidate_lists_yield_empty_reports(self, multipliers):
        """Historical contract: empty axes are an empty answer, not an error."""
        from repro import evaluate_candidates

        assert evaluate_candidates([], [ST_CMOS09_LL], PAPER_FREQUENCY) == []
        assert evaluate_candidates(multipliers, [], PAPER_FREQUENCY) == []
        assert rank_architectures([], ST_CMOS09_LL, PAPER_FREQUENCY) == []


class TestSelectionMatrix:
    def test_matrix_covers_product(self, multipliers):
        matrix = selection_matrix(
            multipliers, [ST_CMOS09_LL, ST_CMOS09_HS], PAPER_FREQUENCY
        )
        assert len(matrix) == len(multipliers) * 2
        assert ("Wallace", "ST-CMOS09-LL") in matrix

    def test_matrix_entries_carry_results(self, multipliers):
        matrix = selection_matrix(multipliers, [ST_CMOS09_LL], PAPER_FREQUENCY)
        candidate = matrix[("RCA", "ST-CMOS09-LL")]
        assert candidate.feasible
        assert candidate.ptot > 0


class TestDeprecationShim:
    """The module is a deprecated facade: lazy, warning, still correct."""

    def test_plain_import_repro_does_not_import_selection(self):
        import subprocess
        import sys

        # A fresh interpreter: `import repro` must neither load the shim
        # nor emit its DeprecationWarning.
        code = (
            "import warnings, sys\n"
            "with warnings.catch_warnings():\n"
            "    warnings.simplefilter('error', DeprecationWarning)\n"
            "    import repro\n"
            "assert 'repro.core.selection' not in sys.modules\n"
        )
        subprocess.run(
            [sys.executable, "-c", code], check=True, env=None,
        )

    def test_module_import_warns(self):
        import importlib
        import sys
        import warnings

        sys.modules.pop("repro.core.selection", None)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            importlib.import_module("repro.core.selection")
        messages = [
            str(w.message)
            for w in caught
            if issubclass(w.category, DeprecationWarning)
        ]
        assert any("repro.core.selection is deprecated" in m for m in messages)
        assert any("repro.Study" in m for m in messages)

    def test_lazy_top_level_access_resolves_the_shim(self):
        import repro

        assert repro.best_architecture is not None
        assert repro.core.Candidate.__module__ == "repro.core.selection"

    def test_shim_matches_study_numerics(self, multipliers):
        """The delegated helpers agree with a direct Study run exactly."""
        from repro import Study

        ranked = rank_architectures(multipliers, ST_CMOS09_LL, PAPER_FREQUENCY)
        records = (
            Study("direct")
            .architectures(*multipliers)
            .technologies(ST_CMOS09_LL)
            .frequencies(PAPER_FREQUENCY)
            .solver("numerical")
            .run()
            .rank()
        )
        assert [c.architecture.name for c in ranked] == [
            r.architecture for r in records
        ]
        assert [c.ptot for c in ranked] == [r.ptot for r in records]
