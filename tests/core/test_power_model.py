"""Unit tests for repro.core.power_model (Eqs. 1-4)."""

import numpy as np
import pytest

from repro import ST_CMOS09_LL
from repro.core.constants import EULER
from repro.core.power_model import (
    critical_path_delay,
    dynamic_power,
    gate_delay,
    max_frequency,
    on_current,
    power_breakdown,
    static_power,
    total_power,
)


class TestDynamicPower:
    def test_matches_hand_computation(self):
        # N a C Vdd^2 f = 1000 * 0.5 * 10fF * 1.44 * 100MHz = 0.72 mW
        assert dynamic_power(1000, 0.5, 10e-15, 1.2, 100e6) == pytest.approx(0.72e-3)

    def test_quadratic_in_vdd(self):
        p1 = dynamic_power(100, 0.3, 5e-15, 0.6, 50e6)
        p2 = dynamic_power(100, 0.3, 5e-15, 1.2, 50e6)
        assert p2 == pytest.approx(4.0 * p1)

    def test_linear_in_each_scalar_factor(self):
        base = dynamic_power(100, 0.3, 5e-15, 1.0, 50e6)
        assert dynamic_power(200, 0.3, 5e-15, 1.0, 50e6) == pytest.approx(2 * base)
        assert dynamic_power(100, 0.6, 5e-15, 1.0, 50e6) == pytest.approx(2 * base)
        assert dynamic_power(100, 0.3, 10e-15, 1.0, 50e6) == pytest.approx(2 * base)
        assert dynamic_power(100, 0.3, 5e-15, 1.0, 100e6) == pytest.approx(2 * base)

    def test_vectorised_over_vdd(self):
        vdd = np.array([0.5, 1.0, 2.0])
        result = dynamic_power(10, 0.1, 1e-15, vdd, 1e6)
        assert result.shape == (3,)
        assert result[2] == pytest.approx(16 * result[0])


class TestStaticPower:
    def test_exponential_in_vth(self):
        tech = ST_CMOS09_LL
        p_low = static_power(100, tech.io, 1.0, 0.2, tech.n, tech.ut)
        p_high = static_power(100, tech.io, 1.0, 0.2 + tech.n_ut, tech.n, tech.ut)
        assert p_low / p_high == pytest.approx(np.e, rel=1e-9)

    def test_at_zero_vth_leakage_is_full_io(self):
        assert static_power(1, 1e-6, 1.0, 0.0, 1.33, 0.02585) == pytest.approx(1e-6)

    def test_linear_in_vdd_and_cells(self):
        base = static_power(50, 2e-6, 0.6, 0.3, 1.33, 0.02585)
        assert static_power(100, 2e-6, 0.6, 0.3, 1.33, 0.02585) == pytest.approx(2 * base)
        assert static_power(50, 2e-6, 1.2, 0.3, 1.33, 0.02585) == pytest.approx(2 * base)


class TestOnCurrent:
    def test_alpha_power_scaling_of_overdrive(self):
        tech = ST_CMOS09_LL
        i1 = on_current(tech.io, tech.alpha, tech.n, tech.ut, 1.0, 0.5)
        i2 = on_current(tech.io, tech.alpha, tech.n, tech.ut, 1.5, 0.5)
        assert i2 / i1 == pytest.approx(2.0**tech.alpha)

    def test_continuity_anchor_at_subthreshold_boundary(self):
        """Eq. 2 anchors Ion = Io at overdrive = n*Ut/e, stitching the
        alpha-power law onto the sub-threshold current."""
        tech = ST_CMOS09_LL
        overdrive = tech.n_ut / EULER
        current = on_current(tech.io, tech.alpha, tech.n, tech.ut, overdrive, 0.0)
        assert current == pytest.approx(tech.io, rel=1e-12)

    def test_rejects_non_positive_overdrive_scalar(self):
        tech = ST_CMOS09_LL
        with pytest.raises(ValueError, match="overdrive"):
            on_current(tech.io, tech.alpha, tech.n, tech.ut, 0.3, 0.3)

    def test_array_overdrive_yields_nan_not_error(self):
        tech = ST_CMOS09_LL
        vdd = np.array([1.0, 0.2])
        result = on_current(tech.io, tech.alpha, tech.n, tech.ut, vdd, 0.3)
        assert np.isfinite(result[0])
        assert np.isnan(result[1])


class TestDelayAndFrequency:
    def test_gate_delay_decreases_with_overdrive(self):
        tech = ST_CMOS09_LL
        assert gate_delay(tech, 1.2, 0.3) < gate_delay(tech, 0.6, 0.3)

    def test_critical_path_is_ld_times_gate(self):
        tech = ST_CMOS09_LL
        single = gate_delay(tech, 1.0, 0.3)
        assert critical_path_delay(tech, 25, 1.0, 0.3) == pytest.approx(25 * single)

    def test_max_frequency_inverts_delay(self):
        tech = ST_CMOS09_LL
        f = max_frequency(tech, 40, 1.1, 0.35)
        assert critical_path_delay(tech, 40, 1.1, 0.35) == pytest.approx(1.0 / f)

    def test_lower_vth_is_faster(self):
        tech = ST_CMOS09_LL
        assert max_frequency(tech, 30, 1.0, 0.2) > max_frequency(tech, 30, 1.0, 0.4)


class TestTotalsAndBreakdown:
    def test_total_is_sum_of_parts(self):
        tech = ST_CMOS09_LL
        pdyn, pstat, ptot = power_breakdown(500, 0.4, 20e-15, 0.9, 0.3, 50e6, tech)
        assert ptot == pytest.approx(pdyn + pstat)
        assert total_power(500, 0.4, 20e-15, 0.9, 0.3, 50e6, tech) == pytest.approx(ptot)

    def test_breakdown_components_positive(self):
        tech = ST_CMOS09_LL
        pdyn, pstat, ptot = power_breakdown(500, 0.4, 20e-15, 0.9, 0.3, 50e6, tech)
        assert pdyn > 0 and pstat > 0
