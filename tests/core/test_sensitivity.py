"""Unit tests for repro.core.sensitivity."""

import numpy as np
import pytest

from repro import ArchitectureParameters
from repro.core.sensitivity import (
    crossover_frequency,
    elasticities,
    elasticity,
    frequency_sweep,
    sweep,
)


@pytest.fixture
def arch():
    return ArchitectureParameters(
        name="sens", n_cells=700, activity=0.3, logical_depth=17,
        capacitance=70e-15, io_factor=18.0, zeta_factor=0.2,
    )


class TestElasticity:
    def test_cell_count_elasticity_is_one(self, arch, tech_ll, paper_frequency):
        """Eq. 13 is exactly linear in N."""
        value = elasticity(arch, tech_ll, paper_frequency, "n_cells")
        assert value == pytest.approx(1.0, abs=1e-6)

    def test_activity_elasticity_slightly_below_one(self, arch, tech_ll, paper_frequency):
        """a multiplies the prefactor but also shrinks the ln() bracket."""
        value = elasticity(arch, tech_ll, paper_frequency, "activity")
        assert 0.7 < value < 1.0

    def test_logical_depth_elasticity_positive(self, arch, tech_ll, paper_frequency):
        assert elasticity(arch, tech_ll, paper_frequency, "logical_depth") > 0.0

    def test_io_elasticity_small(self, arch, tech_ll, paper_frequency):
        """Eq. 9: the optimal leakage is set by the architecture, so the
        technology's Io only enters logarithmically and through chi."""
        value = elasticity(arch, tech_ll, paper_frequency, "io")
        assert abs(value) < 0.5

    def test_numerical_solver_agrees_with_closed_form(self, arch, tech_ll, paper_frequency):
        closed = elasticity(arch, tech_ll, paper_frequency, "activity")
        numerical = elasticity(
            arch, tech_ll, paper_frequency, "activity",
            relative_step=1e-3, solver="numerical",
        )
        assert numerical == pytest.approx(closed, abs=0.05)

    def test_unknown_field_rejected(self, arch, tech_ll, paper_frequency):
        with pytest.raises(ValueError, match="unknown field"):
            elasticity(arch, tech_ll, paper_frequency, "speed")

    def test_unknown_solver_rejected(self, arch, tech_ll, paper_frequency):
        with pytest.raises(ValueError, match="unknown solver"):
            elasticity(arch, tech_ll, paper_frequency, "activity", solver="magic")

    def test_elasticities_returns_all_requested_fields(self, arch, tech_ll, paper_frequency):
        table = elasticities(arch, tech_ll, paper_frequency, fields=("n_cells", "io"))
        assert set(table) == {"n_cells", "io"}


class TestSweep:
    def test_sweep_shapes_and_monotonicity(self, arch, tech_ll, paper_frequency):
        result = sweep(
            arch, tech_ll, paper_frequency, "activity", np.linspace(0.1, 0.9, 9)
        )
        assert result["values"].shape == result["ptot"].shape == (9,)
        assert np.all(np.diff(result["ptot"]) > 0)

    def test_sweep_marks_infeasible_with_nan(self, arch, tech_ll):
        """Sweeping logical depth into infeasibility yields NaN tail."""
        result = sweep(
            arch, tech_ll, 200e6, "logical_depth", [5, 10, 1000, 5000]
        )
        assert np.isfinite(result["ptot"][0])
        assert np.isnan(result["ptot"][-1])


class TestFrequencySweep:
    def test_columns_per_architecture(self, arch, tech_ll):
        fast = arch.with_updates(name="fast", logical_depth=5)
        table = frequency_sweep([arch, fast], tech_ll, [1e6, 10e6, 50e6])
        assert set(table) == {"frequency", "sens", "fast"}
        assert table["fast"].shape == (3,)

    def test_power_grows_with_frequency(self, arch, tech_ll):
        table = frequency_sweep([arch], tech_ll, np.linspace(1e6, 60e6, 6))
        assert np.all(np.diff(table["sens"]) > 0)


class TestCrossover:
    def test_basic_vs_parallel_crossover_exists(self, tech_ll):
        """Section 4's trade-off in its purest form: parallelisation buys a
        shorter LDeff at the price of more cells.  At low frequency the
        relaxed-timing benefit is worthless and the smaller basic circuit
        wins; at Table 1's 31.25 MHz the parallel version wins.  A
        crossover must therefore exist in between."""
        rca_like = ArchitectureParameters(
            name="rca-like", n_cells=608, activity=0.5056, logical_depth=61,
            capacitance=70e-15, io_factor=18.0, zeta_factor=0.2,
        )
        par4_like = ArchitectureParameters(
            name="par4-like", n_cells=2455, activity=0.1344, logical_depth=15.75,
            capacitance=70e-15, io_factor=18.0, zeta_factor=0.2,
        )
        crossover = crossover_frequency(rca_like, par4_like, tech_ll, 1e5, 31.25e6)
        assert crossover is not None
        assert 1e5 < crossover < 31.25e6

    def test_no_crossover_returns_none(self, tech_ll):
        cheap = ArchitectureParameters(
            name="cheap", n_cells=100, activity=0.1, logical_depth=10,
            capacitance=10e-15, io_factor=18.0, zeta_factor=0.2,
        )
        expensive = cheap.with_updates(name="expensive", n_cells=1000)
        assert crossover_frequency(cheap, expensive, tech_ll, 1e6, 30e6) is None
