"""Unit tests for repro.core.transforms (Section 4 parameter algebra)."""

import pytest

from repro import (
    ArchitectureParameters,
    ST_CMOS09_LL,
    numerical_optimum,
    parallelize,
    pipeline,
    sequentialize,
)
from repro.core.transforms import (
    DIAGONAL_PIPELINE,
    HORIZONTAL_PIPELINE,
    ParallelizationModel,
    SequentializationModel,
)
from repro.experiments.paper_data import TABLE1_BY_NAME


@pytest.fixture
def rca():
    """The basic RCA multiplier with published (N, a, LD)."""
    row = TABLE1_BY_NAME["RCA"]
    return ArchitectureParameters(
        name="RCA",
        n_cells=row.n_cells,
        activity=row.activity,
        logical_depth=row.logical_depth,
        capacitance=70e-15,
        io_factor=18.0,
        zeta_factor=0.2,
    )


class TestParallelize:
    def test_reproduces_table1_rca_parallel_shape(self, rca):
        par2 = parallelize(rca, 2)
        published = TABLE1_BY_NAME["RCA parallel"]
        assert par2.n_cells == pytest.approx(published.n_cells, rel=0.05)
        assert par2.activity == pytest.approx(published.activity, rel=0.08)
        assert par2.logical_depth == pytest.approx(published.logical_depth, rel=0.05)

    def test_reproduces_table1_rca_parallel4_shape(self, rca):
        par4 = parallelize(rca, 4)
        published = TABLE1_BY_NAME["RCA parallel4"]
        assert par4.n_cells == pytest.approx(published.n_cells, rel=0.05)
        assert par4.activity == pytest.approx(published.activity, rel=0.08)
        assert par4.logical_depth == pytest.approx(published.logical_depth, rel=0.05)

    def test_name_records_factor(self, rca):
        assert parallelize(rca, 2).name == "RCA par2"

    def test_rejects_factor_below_two(self, rca):
        with pytest.raises(ValueError):
            parallelize(rca, 1)

    def test_custom_model_overhead(self, rca):
        heavy = ParallelizationModel(mux_cells_per_output=10.0, control_cells=100.0)
        light = ParallelizationModel(mux_cells_per_output=0.5)
        assert heavy.apply(rca, 2).n_cells > light.apply(rca, 2).n_cells


class TestPipeline:
    def test_horizontal_matches_table1_depths(self, rca):
        hp2 = pipeline(rca, 2, style="horizontal")
        hp4 = pipeline(rca, 4, style="horizontal")
        assert hp2.logical_depth == pytest.approx(40.0, rel=0.05)
        assert hp4.logical_depth == pytest.approx(28.0, rel=0.08)

    def test_diagonal_matches_table1_depths(self, rca):
        dp2 = pipeline(rca, 2, style="diagonal")
        dp4 = pipeline(rca, 4, style="diagonal")
        assert dp2.logical_depth == pytest.approx(26.0, rel=0.15)
        assert dp4.logical_depth == pytest.approx(14.0, rel=0.15)

    def test_diagonal_keeps_higher_activity_than_horizontal(self, rca):
        """The glitch effect: diagonal cuts spread path delays more."""
        hp2 = pipeline(rca, 2, style="horizontal")
        dp2 = pipeline(rca, 2, style="diagonal")
        assert dp2.activity > hp2.activity

    def test_registers_grow_cell_count(self, rca):
        hp2 = pipeline(rca, 2)
        hp4 = pipeline(rca, 4)
        assert rca.n_cells < hp2.n_cells < hp4.n_cells

    def test_unknown_style_rejected(self, rca):
        with pytest.raises(ValueError, match="unknown pipeline style"):
            pipeline(rca, 2, style="zigzag")

    def test_rejects_single_stage(self, rca):
        with pytest.raises(ValueError):
            pipeline(rca, 1)

    def test_model_constants_are_distinct(self):
        assert HORIZONTAL_PIPELINE.depth_efficiency < DIAGONAL_PIPELINE.depth_efficiency


class TestSequentialize:
    def test_matches_table1_sequential_shape(self, rca):
        seq = sequentialize(rca, 16)
        published = TABLE1_BY_NAME["Sequential"]
        assert seq.logical_depth == pytest.approx(published.logical_depth, rel=0.01)
        assert seq.activity == pytest.approx(published.activity, rel=0.05)
        assert seq.n_cells == pytest.approx(published.n_cells, rel=0.05)

    def test_activity_exceeds_one_for_throughput_reference(self, rca):
        """Section 4: sequential activity 'can be very high and even
        bigger than 1' when referenced to the data clock."""
        assert sequentialize(rca, 16).activity > 1.0

    def test_rejects_single_cycle(self, rca):
        with pytest.raises(ValueError):
            sequentialize(rca, 1)

    def test_custom_model(self, rca):
        lean = SequentializationModel(hardware_fraction=0.2, per_cycle_depth=10.0)
        seq = lean.apply(rca, 8)
        assert seq.logical_depth == pytest.approx(80.0)
        assert seq.n_cells == pytest.approx(0.2 * rca.n_cells)


class TestTransformPowerConsequences:
    """End-to-end: the transforms must reproduce Section 4's conclusions."""

    def test_parallelization_lowers_rca_power(self, rca):
        base = numerical_optimum(rca, ST_CMOS09_LL, 31.25e6).ptot
        par2 = numerical_optimum(parallelize(rca, 2), ST_CMOS09_LL, 31.25e6).ptot
        assert par2 < base

    def test_sequentialization_explodes_power_at_this_frequency(self, rca):
        base = numerical_optimum(rca, ST_CMOS09_LL, 31.25e6).ptot
        seq = numerical_optimum(sequentialize(rca, 16), ST_CMOS09_LL, 31.25e6).ptot
        assert seq > 4.0 * base

    def test_pipelining_lowers_rca_power(self, rca):
        base = numerical_optimum(rca, ST_CMOS09_LL, 31.25e6).ptot
        hp2 = numerical_optimum(pipeline(rca, 2), ST_CMOS09_LL, 31.25e6).ptot
        assert hp2 < base
