"""Unit tests for repro.core.technology."""

import dataclasses

import pytest

from repro import (
    ST_CMOS09_FLAVOURS,
    ST_CMOS09_HS,
    ST_CMOS09_LL,
    ST_CMOS09_ULL,
    flavour,
)
from repro.experiments.paper_data import TABLE2


class TestPublishedFlavours:
    def test_table2_values_transcribed_exactly(self):
        for label, published in TABLE2.items():
            tech = flavour(label)
            assert tech.io == published["io"]
            assert tech.zeta == published["zeta"]
            assert tech.alpha == published["alpha"]
            assert tech.vdd_nominal == published["vdd_nominal"]
            assert tech.vth0_nominal == published["vth0_nominal"]

    def test_flavour_lookup_is_case_insensitive(self):
        assert flavour("ll") is ST_CMOS09_LL
        assert flavour("Hs") is ST_CMOS09_HS

    def test_flavour_lookup_rejects_unknown(self):
        with pytest.raises(KeyError, match="unknown technology"):
            flavour("XYZ")

    def test_leakage_ordering_matches_names(self):
        assert ST_CMOS09_ULL.io < ST_CMOS09_LL.io < ST_CMOS09_HS.io

    def test_alpha_ordering_matches_speed(self):
        # Faster (more velocity-saturated) flavours have lower alpha.
        assert ST_CMOS09_HS.alpha < ST_CMOS09_LL.alpha < ST_CMOS09_ULL.alpha

    def test_flavours_mapping_complete(self):
        assert set(ST_CMOS09_FLAVOURS) == {"ULL", "LL", "HS"}


class TestTechnologyValidation:
    def test_rejects_non_positive_io(self):
        with pytest.raises(ValueError, match="io"):
            dataclasses.replace(ST_CMOS09_LL, io=0.0)

    def test_rejects_negative_eta(self):
        with pytest.raises(ValueError, match="eta"):
            dataclasses.replace(ST_CMOS09_LL, eta=-0.1)

    def test_rejects_alpha_out_of_device_range(self):
        with pytest.raises(ValueError, match="alpha"):
            dataclasses.replace(ST_CMOS09_LL, alpha=2.5)
        with pytest.raises(ValueError, match="alpha"):
            dataclasses.replace(ST_CMOS09_LL, alpha=0.8)

    def test_instances_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ST_CMOS09_LL.io = 1.0  # type: ignore[misc]


class TestDerivedQuantities:
    def test_n_ut_is_n_times_ut(self):
        assert ST_CMOS09_LL.n_ut == pytest.approx(1.33 * ST_CMOS09_LL.ut)

    def test_effective_vth_applies_dibl(self):
        tech = dataclasses.replace(ST_CMOS09_LL, eta=0.1)
        assert tech.effective_vth(0.4, vdd=1.0) == pytest.approx(0.3)

    def test_zero_bias_vth_inverts_effective_vth(self):
        tech = dataclasses.replace(ST_CMOS09_LL, eta=0.08)
        vth0 = 0.42
        effective = tech.effective_vth(vth0, vdd=0.9)
        assert tech.zero_bias_vth(effective, vdd=0.9) == pytest.approx(vth0)

    def test_scaled_multiplies_io_and_zeta(self):
        derived = ST_CMOS09_LL.scaled(io_factor=2.0, zeta_factor=0.5)
        assert derived.io == pytest.approx(2.0 * ST_CMOS09_LL.io)
        assert derived.zeta == pytest.approx(0.5 * ST_CMOS09_LL.zeta)
        assert derived.name.endswith("-scaled")

    def test_scaled_shifts_alpha_and_vth0(self):
        derived = ST_CMOS09_LL.scaled(alpha_shift=0.1, vth0_shift=-0.05)
        assert derived.alpha == pytest.approx(1.96)
        assert derived.vth0_nominal == pytest.approx(0.304)

    def test_describe_mentions_name_and_io(self):
        text = ST_CMOS09_LL.describe()
        assert "ST-CMOS09-LL" in text
        assert "3.34" in text


class TestScaledEdges:
    """`Technology.scaled` must re-validate: derived flavours obey
    __post_init__ exactly like hand-built ones."""

    def test_scaled_applies_every_knob(self):
        derived = ST_CMOS09_LL.scaled(
            io_factor=2.0, zeta_factor=0.5, alpha_shift=-0.06, vth0_shift=0.01
        )
        assert derived.io == pytest.approx(2.0 * ST_CMOS09_LL.io)
        assert derived.zeta == pytest.approx(0.5 * ST_CMOS09_LL.zeta)
        assert derived.alpha == pytest.approx(ST_CMOS09_LL.alpha - 0.06)
        assert derived.vth0_nominal == pytest.approx(
            ST_CMOS09_LL.vth0_nominal + 0.01
        )

    def test_default_name_is_suffixed_and_override_wins(self):
        assert ST_CMOS09_LL.scaled().name == "ST-CMOS09-LL-scaled"
        assert ST_CMOS09_LL.scaled(name="mine").name == "mine"

    def test_identity_scaling_preserves_equality(self):
        assert ST_CMOS09_LL.scaled(name=ST_CMOS09_LL.name) == ST_CMOS09_LL

    def test_zero_or_negative_factors_rejected(self):
        with pytest.raises(ValueError, match="io"):
            ST_CMOS09_LL.scaled(io_factor=0.0)
        with pytest.raises(ValueError, match="zeta"):
            ST_CMOS09_LL.scaled(zeta_factor=-1.0)

    def test_alpha_shift_out_of_device_range_rejected(self):
        # LL's alpha is 1.86: +0.2 leaves [1, 2] at the top, -0.9 at the bottom.
        with pytest.raises(ValueError, match="alpha"):
            ST_CMOS09_LL.scaled(alpha_shift=+0.2)
        with pytest.raises(ValueError, match="alpha"):
            ST_CMOS09_LL.scaled(alpha_shift=-0.9)

    def test_vth0_shift_below_zero_rejected(self):
        with pytest.raises(ValueError, match="vth0_nominal"):
            ST_CMOS09_LL.scaled(vth0_shift=-(ST_CMOS09_LL.vth0_nominal + 0.01))

    def test_validation_attribute_coverage(self):
        # Every positivity-checked attribute fires its own message.
        for attribute in ("io", "zeta", "n", "vdd_nominal", "temperature"):
            with pytest.raises(ValueError, match=attribute):
                dataclasses.replace(ST_CMOS09_LL, **{attribute: 0.0})

    def test_negative_vth0_rejected_but_zero_allowed(self):
        with pytest.raises(ValueError, match="vth0_nominal"):
            dataclasses.replace(ST_CMOS09_LL, vth0_nominal=-0.01)
        native = dataclasses.replace(ST_CMOS09_LL, vth0_nominal=0.0)
        assert native.vth0_nominal == 0.0
