"""Integration test: the paper's Table 1 end to end (calibrated mode).

This is the library-level statement of the paper's headline result: for
all thirteen multipliers, the calibrated model must (a) reproduce the
published power columns, and (b) keep the Eq. 13 approximation error
inside the abstract's +/-3 % band.
"""

import pytest

from repro import (
    ST_CMOS09_LL,
    approximation_error_percent,
    numerical_optimum,
    ptot_eq13,
)
from repro.core.calibration import calibrate_row
from repro.experiments.paper_data import (
    MAX_ABS_EQ13_ERROR_PERCENT,
    PAPER_FREQUENCY,
    TABLE1_ROWS,
)


@pytest.fixture(scope="module", params=TABLE1_ROWS, ids=lambda row: row.name)
def row(request):
    return request.param


@pytest.fixture(scope="module")
def calibrated(row):
    return calibrate_row(row, ST_CMOS09_LL, PAPER_FREQUENCY)


def test_eq13_matches_published_column(row, calibrated):
    eq13 = ptot_eq13(calibrated, ST_CMOS09_LL, PAPER_FREQUENCY)
    assert eq13 == pytest.approx(row.ptot_eq13, rel=7.5e-3)


def test_numerical_matches_published_column(row, calibrated):
    result = numerical_optimum(calibrated, ST_CMOS09_LL, PAPER_FREQUENCY)
    assert result.ptot == pytest.approx(row.ptot, rel=7.5e-3)


def test_numerical_voltages_match_published(row, calibrated):
    result = numerical_optimum(calibrated, ST_CMOS09_LL, PAPER_FREQUENCY)
    assert result.point.vdd == pytest.approx(row.vdd, abs=0.01)
    assert result.point.vth == pytest.approx(row.vth, abs=0.01)


def test_eq13_error_inside_abstract_band(row, calibrated):
    """Abstract: 'error less than 3% on a set of thirteen 16 bit multipliers'."""
    numerical = numerical_optimum(calibrated, ST_CMOS09_LL, PAPER_FREQUENCY)
    eq13 = ptot_eq13(calibrated, ST_CMOS09_LL, PAPER_FREQUENCY)
    error = approximation_error_percent(numerical.ptot, eq13)
    assert abs(error) < MAX_ABS_EQ13_ERROR_PERCENT


def test_error_sign_and_magnitude_track_published(row, calibrated):
    """Our recomputed error column should track the published one."""
    numerical = numerical_optimum(calibrated, ST_CMOS09_LL, PAPER_FREQUENCY)
    eq13 = ptot_eq13(calibrated, ST_CMOS09_LL, PAPER_FREQUENCY)
    error = approximation_error_percent(numerical.ptot, eq13)
    assert error == pytest.approx(row.eq13_error_percent, abs=0.6)


class TestSection4Orderings:
    """The qualitative claims of Section 4, on the calibrated rows."""

    @pytest.fixture(scope="class")
    def powers(self):
        values = {}
        for table_row in TABLE1_ROWS:
            arch = calibrate_row(table_row, ST_CMOS09_LL, PAPER_FREQUENCY)
            values[table_row.name] = numerical_optimum(
                arch, ST_CMOS09_LL, PAPER_FREQUENCY
            ).ptot
        return values

    def test_sequential_is_worst(self, powers):
        combinational = [
            value
            for name, value in powers.items()
            if not name.startswith("Seq")
        ]
        assert powers["Sequential"] > max(combinational)

    def test_wallace_beats_rca_beats_sequential(self, powers):
        assert powers["Wallace"] < powers["RCA"] < powers["Sequential"]

    def test_parallelization_helps_rca(self, powers):
        assert powers["RCA parallel"] < powers["RCA"]
        assert powers["RCA parallel4"] < powers["RCA parallel"]

    def test_pipelining_helps_rca(self, powers):
        assert powers["RCA hor.pipe2"] < powers["RCA"]
        assert powers["RCA hor.pipe4"] < powers["RCA hor.pipe2"]

    def test_pipeline_style_comparison_matches_table1(self, powers):
        """Section 4 prefers horizontal pipelining because the diagonal
        cut's extra glitches eat its logical-depth advantage.  In Table 1
        the two-stage versions end up almost tied (diagonal marginally
        ahead) while at four stages horizontal wins clearly — reproduce
        exactly that."""
        assert powers["RCA hor.pipe2"] == pytest.approx(
            powers["RCA diagpipe2"], rel=0.03
        )
        assert powers["RCA hor.pipe4"] < powers["RCA diagpipe4"]

    def test_wallace_parallelization_saturates(self, powers):
        """par2 helps slightly, par4 overshoots (mux overhead wins)."""
        assert powers["Wallace parallel"] < powers["Wallace"]
        assert powers["Wallace par4"] > powers["Wallace parallel"]

    def test_4_16_wallace_rescues_sequential(self, powers):
        assert powers["Seq4_16"] < powers["Sequential"] / 4.0
