"""Unit tests for repro.core.calibration (calibrated reproduction mode)."""

import math

import pytest

from repro import numerical_optimum, ptot_eq13
from repro.core.calibration import (
    calibrate_from_total,
    calibrate_row,
    recover_capacitance,
    recover_chi,
    recover_io,
    stationarity_ratio,
    zeta_factor_for_chi,
)
from repro.core.constraint import chi, chi_for_architecture
from repro.experiments.paper_data import PAPER_FREQUENCY, TABLE1_BY_NAME


@pytest.fixture
def rca_row():
    return TABLE1_BY_NAME["RCA"]


class TestRecovery:
    def test_recovered_capacitance_reproduces_pdyn(self, rca_row, tech_ll):
        capacitance = recover_capacitance(rca_row, PAPER_FREQUENCY)
        pdyn = (
            rca_row.n_cells
            * rca_row.activity
            * capacitance
            * rca_row.vdd**2
            * PAPER_FREQUENCY
        )
        assert pdyn == pytest.approx(rca_row.pdyn, rel=1e-12)

    def test_recovered_io_reproduces_pstat(self, rca_row, tech_ll):
        io = recover_io(rca_row, tech_ll)
        pstat = (
            rca_row.n_cells
            * rca_row.vdd
            * io
            * math.exp(-rca_row.vth / tech_ll.n_ut)
        )
        assert pstat == pytest.approx(rca_row.pstat, rel=1e-12)

    def test_recovered_io_reflects_cell_complexity(self, rca_row, tech_ll):
        """DESIGN.md: a multiplier cell leaks an order of magnitude more
        than the characterised inverter (FA = 28 transistors)."""
        io = recover_io(rca_row, tech_ll)
        assert 5.0 < io / tech_ll.io < 40.0

    def test_recovered_chi_matches_operating_point(self, rca_row, tech_ll):
        chi_value = recover_chi(rca_row, tech_ll)
        expected = (rca_row.vdd - rca_row.vth) / rca_row.vdd ** (1 / tech_ll.alpha)
        assert chi_value == pytest.approx(expected)

    def test_zeta_factor_roundtrip(self, rca_row, tech_ll):
        chi_target = recover_chi(rca_row, tech_ll)
        factor = zeta_factor_for_chi(
            chi_target, tech_ll, rca_row.logical_depth, PAPER_FREQUENCY
        )
        reproduced = chi(
            tech_ll, rca_row.logical_depth, PAPER_FREQUENCY, zeta_factor=factor
        )
        assert reproduced == pytest.approx(chi_target, rel=1e-12)


class TestCalibratedRow:
    def test_architecture_carries_published_inputs(self, rca_row, tech_ll):
        arch = calibrate_row(rca_row, tech_ll, PAPER_FREQUENCY)
        assert arch.n_cells == rca_row.n_cells
        assert arch.activity == rca_row.activity
        assert arch.logical_depth == rca_row.logical_depth
        assert arch.area == rca_row.area

    def test_solvers_see_calibrated_chi(self, rca_row, tech_ll):
        arch = calibrate_row(rca_row, tech_ll, PAPER_FREQUENCY)
        assert chi_for_architecture(arch, tech_ll, PAPER_FREQUENCY) == pytest.approx(
            recover_chi(rca_row, tech_ll), rel=1e-12
        )

    def test_calibrated_rca_reproduces_published_powers(self, rca_row, tech_ll):
        """The end-to-end check DESIGN.md derives by hand: the calibrated
        RCA must predict both published power columns to < 0.5 %."""
        arch = calibrate_row(rca_row, tech_ll, PAPER_FREQUENCY)
        eq13 = ptot_eq13(arch, tech_ll, PAPER_FREQUENCY)
        numerical = numerical_optimum(arch, tech_ll, PAPER_FREQUENCY)
        assert eq13 == pytest.approx(rca_row.ptot_eq13, rel=5e-3)
        assert numerical.ptot == pytest.approx(rca_row.ptot, rel=5e-3)

    def test_calibrated_rca_reproduces_published_voltages(self, rca_row, tech_ll):
        arch = calibrate_row(rca_row, tech_ll, PAPER_FREQUENCY)
        numerical = numerical_optimum(arch, tech_ll, PAPER_FREQUENCY)
        assert numerical.point.vdd == pytest.approx(rca_row.vdd, abs=0.005)
        assert numerical.point.vth == pytest.approx(rca_row.vth, abs=0.005)


class TestStationarityRatio:
    def test_rca_ratio_close_to_published_split(self, rca_row, tech_ll):
        chi_value = recover_chi(rca_row, tech_ll)
        ratio = stationarity_ratio(rca_row.vdd, chi_value, tech_ll.alpha, tech_ll.n_ut)
        published = rca_row.pstat / rca_row.pdyn
        assert ratio == pytest.approx(published, rel=0.06)

    def test_rejects_non_stationary_inputs(self, tech_ll):
        # Tiny Vdd cannot be a stationary optimum.
        with pytest.raises(ValueError, match="not a stationary optimum"):
            stationarity_ratio(0.02, 0.4, tech_ll.alpha, tech_ll.n_ut)


class TestCalibrateFromTotal:
    def test_table1_row_roundtrip(self, rca_row, tech_ll):
        """Feeding only Ptot back through calibrate_from_total must give a
        parameter set close to the full-information calibration."""
        full = calibrate_row(rca_row, tech_ll, PAPER_FREQUENCY)
        from_total = calibrate_from_total(
            rca_row.name,
            rca_row.n_cells,
            rca_row.activity,
            rca_row.logical_depth,
            rca_row.vdd,
            rca_row.vth,
            rca_row.ptot,
            tech_ll,
            PAPER_FREQUENCY,
        )
        assert from_total.capacitance == pytest.approx(full.capacitance, rel=0.06)
        assert from_total.io_factor == pytest.approx(full.io_factor, rel=0.06)
        assert from_total.zeta_factor == pytest.approx(full.zeta_factor, rel=1e-9)

    def test_predicted_power_insensitive_to_split_recovery(self, rca_row, tech_ll):
        from_total = calibrate_from_total(
            rca_row.name,
            rca_row.n_cells,
            rca_row.activity,
            rca_row.logical_depth,
            rca_row.vdd,
            rca_row.vth,
            rca_row.ptot,
            tech_ll,
            PAPER_FREQUENCY,
        )
        numerical = numerical_optimum(from_total, tech_ll, PAPER_FREQUENCY)
        assert numerical.ptot == pytest.approx(rca_row.ptot, rel=0.01)
