"""Property-based tests (hypothesis) on the core model invariants.

These are the strongest form of the paper's headline claim: the Eq. 13
approximation tracks the exact numerical optimum not just on thirteen
multipliers but across the whole realistic parameter space.
"""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import (
    ArchitectureParameters,
    ST_CMOS09_LL,
    approximation_error_percent,
    chi_for_architecture,
    numerical_optimum,
    paper_fit,
    ptot_eq13,
)
from repro.core.closed_form import InfeasibleConstraintError
from repro.core.constraint import chi_from_operating_point, vth_exact
from repro.core.linearization import fit_vdd_root

# Realistic architecture space: spans Table 1 with margin.
architectures = st.builds(
    ArchitectureParameters,
    name=st.just("hyp"),
    n_cells=st.floats(50, 10_000),
    activity=st.floats(0.02, 4.0),
    logical_depth=st.floats(3.0, 300.0),
    capacitance=st.floats(5e-15, 3e-13),
    io_factor=st.floats(5.0, 40.0),
    zeta_factor=st.floats(0.05, 0.6),
)

frequencies = st.floats(1e6, 100e6)

alphas = st.floats(1.1, 2.0)


def _try_problem(arch, frequency):
    """Solve both ways; assume-away infeasible corners of the space."""
    fit = paper_fit(ST_CMOS09_LL.alpha)
    chi_value = chi_for_architecture(arch, ST_CMOS09_LL, frequency)
    # Stay clear of the feasibility wall: 1/(1-chi*A)^2 amplifies every
    # approximation error as chi*A -> 1.  The paper's hardest row (the
    # basic sequential multiplier) sits at chi*A = 0.48.
    assume(chi_value * fit.a < 0.75)
    try:
        eq13 = ptot_eq13(arch, ST_CMOS09_LL, frequency)
        numerical = numerical_optimum(arch, ST_CMOS09_LL, frequency)
    except (InfeasibleConstraintError, ValueError):
        assume(False)
    # Eq. 13's validity additionally needs a healthy ln() bracket; the
    # paper's circuits all sit around ln(...) ~ 5-7.
    margin = 1.0 - chi_value * fit.a
    io = arch.effective_io(ST_CMOS09_LL)
    log_argument = io * margin / (
        2.0 * arch.activity * arch.capacitance * frequency * ST_CMOS09_LL.n_ut
    )
    assume(log_argument > math.e)
    # Eq. 13 is only claimed where its own assumptions hold: (a) the
    # optimum falls inside the 0.3-1.0 V range the A/B linearisation was
    # fitted on, and (b) the high-supply step Vdd >> n*Ut/(1-chi*A)
    # (Eq. 9 -> 12) is satisfied.  The paper's thirteen optima meet both
    # (ratios 9-14); outside, the approximation legitimately degrades.
    assume(fit.vdd_min <= numerical.point.vdd <= fit.vdd_max)
    assume(numerical.point.vdd * margin / ST_CMOS09_LL.n_ut > 8.0)
    return eq13, numerical


@settings(max_examples=150, deadline=None)
@given(arch=architectures, frequency=frequencies)
def test_eq13_tracks_numerical_optimum_everywhere(arch, frequency):
    """|Eq13 - numerical|/numerical stays within a single-digit-percent
    band over the realistic space (the paper quotes 3% on its multipliers,
    whose parameters sit in the well-conditioned interior)."""
    eq13, numerical = _try_problem(arch, frequency)
    error = approximation_error_percent(numerical.ptot, eq13)
    assert abs(error) < 8.0


@settings(max_examples=150, deadline=None)
@given(arch=architectures, frequency=frequencies)
def test_numerical_optimum_is_global_on_curve(arch, frequency):
    """No point on the constrained curve beats the reported optimum."""
    _, numerical = _try_problem(arch, frequency)
    from repro.core.numerical import constrained_total_power

    vdd_opt = numerical.point.vdd
    for factor in (0.7, 0.9, 1.1, 1.3):
        _, _, _, ptot = constrained_total_power(
            arch, ST_CMOS09_LL, frequency, vdd_opt * factor
        )
        assert numerical.ptot <= float(ptot) * (1 + 1e-9)


@settings(max_examples=150, deadline=None)
@given(arch=architectures, frequency=frequencies)
def test_optimum_scales_linearly_with_cell_count(arch, frequency):
    """Both solvers are exactly linear in N (power is extensive)."""
    eq13, numerical = _try_problem(arch, frequency)
    doubled = arch.with_updates(n_cells=2 * arch.n_cells)
    assert ptot_eq13(doubled, ST_CMOS09_LL, frequency) == pytest.approx(2 * eq13)
    assert numerical_optimum(doubled, ST_CMOS09_LL, frequency).ptot == pytest.approx(
        2 * numerical.ptot, rel=1e-6
    )


@settings(max_examples=150, deadline=None)
@given(arch=architectures, frequency=frequencies, factor=st.floats(1.05, 2.0))
def test_more_activity_never_cheaper(arch, frequency, factor):
    eq13, _ = _try_problem(arch, frequency)
    busier = arch.with_updates(activity=arch.activity * factor)
    try:
        busier_power = ptot_eq13(busier, ST_CMOS09_LL, frequency)
    except InfeasibleConstraintError:
        assume(False)
    assert busier_power > eq13 * 0.999


@settings(max_examples=200, deadline=None)
@given(
    alpha=alphas,
    chi_value=st.floats(0.05, 0.9),
    vdd=st.floats(0.2, 1.5),
)
def test_constraint_inversion_roundtrip(alpha, chi_value, vdd):
    """chi -> Vth -> chi is the identity whenever overdrive is positive."""
    vth = float(vth_exact(vdd, chi_value, alpha))
    assume(vth < vdd - 1e-6)
    recovered = chi_from_operating_point(vdd, vth, alpha)
    assert recovered == pytest.approx(chi_value, rel=1e-9)


@settings(max_examples=200, deadline=None)
@given(alpha=alphas)
def test_linearization_bounds_hold_for_all_alphas(alpha):
    fit = fit_vdd_root(alpha)
    assert fit.max_abs_error < 0.05
    assert fit.a > 0.0
    assert fit.b >= 0.0


@settings(max_examples=100, deadline=None)
@given(
    arch=architectures,
    frequency=frequencies,
    eta=st.floats(0.0, 0.25),
)
def test_eq13_and_optimum_independent_of_dibl(arch, frequency, eta):
    """The paper notes Eq. 13 no longer contains the DIBL coefficient;
    the *effective*-Vth optimum is eta-independent in the exact model too
    (eta only relabels which Vth0 realises the effective threshold)."""
    import dataclasses

    eq13, numerical = _try_problem(arch, frequency)
    tech_dibl = dataclasses.replace(ST_CMOS09_LL, eta=eta)
    assert ptot_eq13(arch, tech_dibl, frequency) == pytest.approx(eq13, rel=1e-12)
    assert numerical_optimum(arch, tech_dibl, frequency).ptot == pytest.approx(
        numerical.ptot, rel=1e-9
    )
