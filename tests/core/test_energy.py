"""Tests for energy-per-operation analysis and the minimum-energy point."""

import pytest

from repro.core.calibration import calibrate_row
from repro.core.energy import energy_point, energy_sweep, minimum_energy_point
from repro.core.technology import ST_CMOS09_LL
from repro.experiments.paper_data import PAPER_FREQUENCY, TABLE1_BY_NAME

VTH_CAP = 0.45


@pytest.fixture(scope="module")
def wallace():
    return calibrate_row(TABLE1_BY_NAME["Wallace"], ST_CMOS09_LL, PAPER_FREQUENCY)


class TestEnergyPoint:
    def test_energy_is_power_over_frequency(self, wallace):
        point = energy_point(wallace, ST_CMOS09_LL, PAPER_FREQUENCY)
        assert point.energy_per_op == pytest.approx(
            point.result.ptot / PAPER_FREQUENCY
        )
        assert point.energy_per_op == pytest.approx(
            point.dynamic_energy_per_op + point.leakage_energy_per_op
        )

    def test_wallace_energy_scale(self, wallace):
        """Sanity: a 16x16 multiply at the optimal point costs ~2 pJ."""
        point = energy_point(wallace, ST_CMOS09_LL, PAPER_FREQUENCY)
        assert 0.5e-12 < point.energy_per_op < 10e-12

    def test_describe(self, wallace):
        assert "pJ/op" in energy_point(wallace, ST_CMOS09_LL, 1e6).describe()


class TestEnergyFrequencyShape:
    def test_free_vth_has_interior_minimum(self, wallace):
        """Even with ideal threshold control, energy/op is U-shaped: the
        optimal Vdd climbs like n*Ut*ln(1/f) at low frequency (Eq. 10),
        so very slow operation costs *more* dynamic energy per op."""
        slow = energy_point(wallace, ST_CMOS09_LL, 50.0)
        mid = energy_point(wallace, ST_CMOS09_LL, 5e6)
        fast = energy_point(wallace, ST_CMOS09_LL, PAPER_FREQUENCY)
        assert slow.energy_per_op > mid.energy_per_op
        assert fast.energy_per_op > mid.energy_per_op
        # The low-frequency rise is a dynamic-energy effect here: the
        # optimal Vdd at 50 Hz exceeds the 5 MHz one.
        assert slow.result.point.vdd > mid.result.point.vdd

    def test_vth_ceiling_makes_upturn_catastrophic(self, wallace):
        """With the ceiling the low-frequency side is leakage-dominated
        and orders of magnitude steeper than the free-Vth logarithm."""
        free = energy_point(wallace, ST_CMOS09_LL, 50.0)
        capped = energy_point(wallace, ST_CMOS09_LL, 50.0, vth_max=VTH_CAP)
        assert capped.energy_per_op > 10 * free.energy_per_op
        assert capped.leakage_energy_per_op > 0.9 * capped.energy_per_op
        # The free-Vth point keeps leakage a bounded fraction (Eq. 9).
        assert free.leakage_energy_per_op < 0.25 * free.energy_per_op

    def test_leakage_share_grows_as_frequency_falls(self, wallace):
        points = energy_sweep(
            wallace, ST_CMOS09_LL, [100.0, 1e4, 1e6], vth_max=VTH_CAP
        )
        shares = [
            point.leakage_energy_per_op / point.energy_per_op for point in points
        ]
        assert shares[0] > shares[1] > shares[2]


class TestMinimumEnergyPoint:
    def test_interior_mep_found(self, wallace):
        mep = minimum_energy_point(
            wallace, ST_CMOS09_LL, 10.0, PAPER_FREQUENCY, vth_max=VTH_CAP
        )
        assert 10.0 < mep.frequency < PAPER_FREQUENCY
        # The MEP is a true minimum: neighbours cost more energy.
        for factor in (0.25, 4.0):
            neighbour = energy_point(
                wallace, ST_CMOS09_LL, mep.frequency * factor, vth_max=VTH_CAP
            )
            assert neighbour.energy_per_op >= mep.energy_per_op

    def test_narrow_window_rejected(self, wallace):
        with pytest.raises(ValueError, match="boundary"):
            minimum_energy_point(
                wallace, ST_CMOS09_LL, 20e6, 31e6, vth_max=VTH_CAP
            )

    def test_invalid_window_rejected(self, wallace):
        with pytest.raises(ValueError, match="f_low"):
            minimum_energy_point(wallace, ST_CMOS09_LL, 1e6, 1e3, vth_max=VTH_CAP)
