"""Unit tests for repro.core.constraint (Eqs. 5, 6, 8)."""

import numpy as np
import pytest

from repro import ArchitectureParameters
from repro.core.constraint import (
    chi,
    chi_for_architecture,
    chi_from_operating_point,
    is_feasible_linearized,
    operating_point_consistency,
    vdd_for_positive_vth,
    vth_exact,
    vth_linearized,
)
from repro.core.linearization import paper_fit
from repro.core.power_model import critical_path_delay


@pytest.fixture
def arch():
    return ArchitectureParameters(
        name="unit", n_cells=100, activity=0.3, logical_depth=20,
        capacitance=10e-15,
    )


class TestChi:
    def test_chi_scaling_with_frequency(self, tech_ll):
        """chi ~ f^(1/alpha) (Eq. 6)."""
        c1 = chi(tech_ll, 20, 10e6)
        c2 = chi(tech_ll, 20, 20e6)
        assert c2 / c1 == pytest.approx(2.0 ** (1.0 / tech_ll.alpha))

    def test_chi_scaling_with_logical_depth(self, tech_ll):
        c1 = chi(tech_ll, 10, 10e6)
        c2 = chi(tech_ll, 40, 10e6)
        assert c2 / c1 == pytest.approx(4.0 ** (1.0 / tech_ll.alpha))

    def test_chi_decreases_with_io(self, tech_ll):
        strong = tech_ll.scaled(io_factor=4.0)
        assert chi(strong, 20, 10e6) < chi(tech_ll, 20, 10e6)

    def test_zeta_factor_equivalent_to_scaled_zeta(self, tech_ll):
        direct = chi(tech_ll, 20, 10e6, zeta_factor=0.25)
        scaled = chi(tech_ll.scaled(zeta_factor=0.25), 20, 10e6)
        assert direct == pytest.approx(scaled)

    def test_chi_for_architecture_honours_zeta_factor(self, tech_ll, arch):
        plain = chi_for_architecture(arch, tech_ll, 10e6)
        corrected = chi_for_architecture(
            arch.with_updates(zeta_factor=0.5), tech_ll, 10e6
        )
        assert corrected < plain

    def test_rejects_non_positive_inputs(self, tech_ll):
        with pytest.raises(ValueError):
            chi(tech_ll, 0, 10e6)
        with pytest.raises(ValueError):
            chi(tech_ll, 20, -1.0)


class TestConstraintInversion:
    def test_vth_exact_roundtrip_through_chi_recovery(self):
        """chi_from_operating_point inverts vth_exact."""
        alpha = 1.86
        chi_value = 0.42
        vdd = 0.55
        vth = float(vth_exact(vdd, chi_value, alpha))
        assert chi_from_operating_point(vdd, vth, alpha) == pytest.approx(chi_value)

    def test_constraint_point_closes_timing_exactly(self, tech_ll, arch):
        """A (Vdd, Vth) pair from Eq. 5 must make LD*t_gate == 1/f."""
        frequency = 10e6
        chi_value = chi_for_architecture(arch, tech_ll, frequency)
        vdd = 0.8
        vth = float(vth_exact(vdd, chi_value, tech_ll.alpha))
        delay = critical_path_delay(tech_ll, arch.logical_depth, vdd, vth)
        assert delay * frequency == pytest.approx(1.0, rel=1e-9)

    def test_operating_point_consistency_zero_on_constraint(self, tech_ll, arch):
        frequency = 10e6
        chi_value = chi_for_architecture(arch, tech_ll, frequency)
        vdd = 0.7
        vth = float(vth_exact(vdd, chi_value, tech_ll.alpha))
        slack = operating_point_consistency(arch, tech_ll, frequency, vdd, vth)
        assert slack == pytest.approx(0.0, abs=1e-9)

    def test_operating_point_consistency_sign(self, tech_ll, arch):
        frequency = 10e6
        chi_value = chi_for_architecture(arch, tech_ll, frequency)
        vdd = 0.7
        vth = float(vth_exact(vdd, chi_value, tech_ll.alpha))
        # Lower Vth -> faster -> positive slack; higher Vth -> negative.
        assert operating_point_consistency(arch, tech_ll, frequency, vdd, vth - 0.05) > 0
        assert operating_point_consistency(arch, tech_ll, frequency, vdd, vth + 0.05) < 0

    def test_chi_recovery_validates_inputs(self):
        with pytest.raises(ValueError):
            chi_from_operating_point(-0.5, 0.2, 1.86)
        with pytest.raises(ValueError):
            chi_from_operating_point(0.5, 0.6, 1.86)


class TestLinearizedConstraint:
    def test_linearized_close_to_exact_in_fit_range(self):
        fit = paper_fit(1.86)
        chi_value = 0.4
        vdd = np.linspace(0.3, 1.0, 15)
        exact = vth_exact(vdd, chi_value, 1.86)
        approx = vth_linearized(vdd, chi_value, fit)
        assert np.max(np.abs(exact - approx)) < chi_value * fit.max_abs_error + 1e-12

    def test_feasibility_threshold(self):
        fit = paper_fit(1.86)
        assert is_feasible_linearized(0.99 / fit.a, fit)
        assert not is_feasible_linearized(1.01 / fit.a, fit)

    def test_vdd_for_positive_vth(self):
        alpha = 1.86
        chi_value = 0.5
        boundary = vdd_for_positive_vth(chi_value, alpha)
        assert float(vth_exact(boundary, chi_value, alpha)) == pytest.approx(0.0, abs=1e-12)
        assert float(vth_exact(boundary * 1.2, chi_value, alpha)) > 0
        assert float(vth_exact(boundary * 0.8, chi_value, alpha)) < 0

    def test_vdd_for_positive_vth_alpha_one(self):
        assert vdd_for_positive_vth(0.5, 1.0) == 0.0
