"""Unit tests for repro.core.closed_form (Eqs. 9-13)."""

import math

import pytest

from repro.core.closed_form import (
    InfeasibleConstraintError,
    closed_form_breakdown,
    closed_form_optimum,
    optimal_leakage_current,
    optimal_vth,
    ptot_eq13,
)
from repro.core.constraint import chi_for_architecture
from repro.core.linearization import paper_fit
from repro.core.power_model import power_breakdown


class TestDerivationIdentities:
    """The algebraic identities that link Eqs. 8, 9, 10 and 13."""

    def test_vth_via_eq8_equals_vth_via_eq9(self, tech_ll, wallace_arch, paper_frequency):
        breakdown = closed_form_breakdown(wallace_arch, tech_ll, paper_frequency)
        io = wallace_arch.effective_io(tech_ll)
        vth_from_leakage = optimal_vth(io, breakdown.leakage_current, tech_ll.n_ut)
        assert breakdown.vth == pytest.approx(vth_from_leakage, rel=1e-12)

    def test_eq13_equals_eq12_at_eq10_vdd(self, tech_ll, wallace_arch, paper_frequency):
        breakdown = closed_form_breakdown(wallace_arch, tech_ll, paper_frequency)
        assert breakdown.ptot_eq13 == pytest.approx(breakdown.ptot_eq12, rel=1e-12)

    def test_eq11_slightly_below_eq12(self, tech_ll, wallace_arch, paper_frequency):
        """Eq. 12 completes the square, adding the (nUt/(1-chi A))^2 term."""
        breakdown = closed_form_breakdown(wallace_arch, tech_ll, paper_frequency)
        assert breakdown.ptot_eq11 < breakdown.ptot_eq12
        # The gap is the square-completion term times NaCf.
        arch = wallace_arch
        gap_expected = (
            arch.n_cells
            * arch.activity
            * arch.capacitance
            * paper_frequency
            * (tech_ll.n_ut / breakdown.one_minus_chi_a) ** 2
        )
        assert breakdown.ptot_eq12 - breakdown.ptot_eq11 == pytest.approx(
            gap_expected, rel=1e-9
        )

    def test_leakage_current_formula(self, tech_ll, wallace_arch, paper_frequency):
        fit = paper_fit(tech_ll.alpha)
        chi_value = chi_for_architecture(wallace_arch, tech_ll, paper_frequency)
        leakage = optimal_leakage_current(
            wallace_arch.activity,
            wallace_arch.capacitance,
            paper_frequency,
            tech_ll.n_ut,
            chi_value,
            fit,
        )
        expected = (
            2.0
            * wallace_arch.activity
            * wallace_arch.capacitance
            * paper_frequency
            * tech_ll.n_ut
            / (1.0 - chi_value * fit.a)
        )
        assert leakage == pytest.approx(expected)

    def test_point_lies_on_linearized_constraint(
        self, tech_ll, wallace_arch, paper_frequency
    ):
        breakdown = closed_form_breakdown(wallace_arch, tech_ll, paper_frequency)
        fit = breakdown.fit
        expected_vth = breakdown.vdd * (1 - breakdown.chi * fit.a) - breakdown.chi * fit.b
        assert breakdown.vth == pytest.approx(expected_vth, rel=1e-12)


class TestEq13Structure:
    def test_eq13_hand_computation(self, tech_ll, paper_frequency):
        """Independent re-evaluation of Eq. 13 term by term."""
        from repro import ArchitectureParameters

        arch = ArchitectureParameters(
            name="hand", n_cells=600, activity=0.5, logical_depth=60,
            capacitance=70e-15, io_factor=18.0, zeta_factor=0.2,
        )
        fit = paper_fit(tech_ll.alpha)
        chi_value = chi_for_architecture(arch, tech_ll, paper_frequency)
        margin = 1.0 - chi_value * fit.a
        n_ut = tech_ll.n_ut
        acf = arch.activity * arch.capacitance * paper_frequency
        io = arch.io_factor * tech_ll.io
        bracket = n_ut * (math.log(io * margin / (2 * acf * n_ut)) + 1) + chi_value * fit.b
        expected = arch.n_cells * acf / margin**2 * bracket**2
        assert ptot_eq13(arch, tech_ll, paper_frequency) == pytest.approx(expected)

    def test_power_scales_linearly_with_cells(self, tech_ll, wallace_arch, paper_frequency):
        doubled = wallace_arch.with_updates(n_cells=2 * wallace_arch.n_cells)
        assert ptot_eq13(doubled, tech_ll, paper_frequency) == pytest.approx(
            2.0 * ptot_eq13(wallace_arch, tech_ll, paper_frequency)
        )

    def test_higher_activity_costs_power(self, tech_ll, wallace_arch, paper_frequency):
        busier = wallace_arch.with_updates(activity=1.5 * wallace_arch.activity)
        assert ptot_eq13(busier, tech_ll, paper_frequency) > ptot_eq13(
            wallace_arch, tech_ll, paper_frequency
        )

    def test_longer_logical_depth_costs_power(self, tech_ll, wallace_arch, paper_frequency):
        slower = wallace_arch.with_updates(logical_depth=2 * wallace_arch.logical_depth)
        assert ptot_eq13(slower, tech_ll, paper_frequency) > ptot_eq13(
            wallace_arch, tech_ll, paper_frequency
        )

    def test_custom_chi_value_overrides_eq6(self, tech_ll, wallace_arch, paper_frequency):
        default = ptot_eq13(wallace_arch, tech_ll, paper_frequency)
        overridden = ptot_eq13(wallace_arch, tech_ll, paper_frequency, chi_value=0.1)
        assert overridden != pytest.approx(default)


class TestInfeasibility:
    def test_deep_circuit_at_high_frequency_raises(self, tech_ll, wallace_arch):
        with pytest.raises(InfeasibleConstraintError, match="cannot meet timing"):
            ptot_eq13(
                wallace_arch.with_updates(logical_depth=5000, zeta_factor=1.0),
                tech_ll,
                500e6,
            )

    def test_error_message_names_architecture(self, tech_ll, wallace_arch):
        with pytest.raises(InfeasibleConstraintError, match="wallace-fixture"):
            ptot_eq13(
                wallace_arch.with_updates(logical_depth=5000, zeta_factor=1.0),
                tech_ll,
                500e6,
            )


class TestClosedFormOptimum:
    def test_result_point_breakdown_consistent(self, tech_ll, wallace_arch, paper_frequency):
        result = closed_form_optimum(wallace_arch, tech_ll, paper_frequency)
        scaled = tech_ll.scaled(io_factor=wallace_arch.io_factor, name=tech_ll.name)
        pdyn, pstat, ptot = power_breakdown(
            wallace_arch.n_cells,
            wallace_arch.activity,
            wallace_arch.capacitance,
            result.point.vdd,
            result.point.vth,
            paper_frequency,
            scaled,
        )
        assert result.point.pdyn == pytest.approx(float(pdyn))
        assert result.point.pstat == pytest.approx(float(pstat))
        assert result.ptot == pytest.approx(float(ptot))

    def test_close_to_eq13_value(self, tech_ll, wallace_arch, paper_frequency):
        """Evaluating Eq. 1 at the Eq. 10/8 point differs from Eq. 13 only
        by the high-supply approximation -- a few percent at most."""
        result = closed_form_optimum(wallace_arch, tech_ll, paper_frequency)
        eq13 = ptot_eq13(wallace_arch, tech_ll, paper_frequency)
        assert result.ptot == pytest.approx(eq13, rel=0.05)

    def test_method_tag(self, tech_ll, wallace_arch, paper_frequency):
        result = closed_form_optimum(wallace_arch, tech_ll, paper_frequency)
        assert result.point.method == "closed-form"
