"""Unit tests for repro.core.constants."""

import math

import pytest

from repro.core import constants


def test_thermal_voltage_at_300k():
    assert constants.thermal_voltage(300.0) == pytest.approx(0.025852, abs=1e-5)


def test_thermal_voltage_scales_linearly_with_temperature():
    assert constants.thermal_voltage(600.0) == pytest.approx(
        2.0 * constants.thermal_voltage(300.0)
    )


def test_thermal_voltage_rejects_non_positive_temperature():
    with pytest.raises(ValueError):
        constants.thermal_voltage(0.0)
    with pytest.raises(ValueError):
        constants.thermal_voltage(-10.0)


def test_ut_300k_constant_matches_function():
    assert constants.UT_300K == constants.thermal_voltage(300.0)


def test_euler_constant_is_e():
    assert constants.EULER == pytest.approx(math.e)
