"""Unit tests for repro.core.linearization (Eq. 7 / Figure 2)."""

import numpy as np
import pytest

from repro.core.linearization import (
    FIGURE2_RANGE,
    PAPER_FIT_RANGE,
    figure2_curves,
    fit_vdd_root,
    paper_fit,
)
from repro.experiments.paper_data import PAPER_A, PAPER_ALPHA_LL, PAPER_B


class TestPaperConstants:
    def test_reproduces_published_a_and_b(self):
        """Section 4 publishes A = 0.671, B = 0.347 for alpha = 1.86."""
        fit = paper_fit(PAPER_ALPHA_LL)
        # The paper prints three decimals and does not specify its error
        # norm; least squares lands within 1e-3 of both constants.
        assert fit.a == pytest.approx(PAPER_A, abs=2e-3)
        assert fit.b == pytest.approx(PAPER_B, abs=2e-3)

    def test_paper_fit_range_is_03_to_10(self):
        assert PAPER_FIT_RANGE == (0.3, 1.0)
        fit = paper_fit(1.86)
        assert (fit.vdd_min, fit.vdd_max) == PAPER_FIT_RANGE


class TestFitQuality:
    def test_fit_error_small_inside_range(self):
        fit = fit_vdd_root(1.86)
        assert fit.max_abs_error < 0.03
        assert fit.rms_error < fit.max_abs_error

    def test_alpha_one_fit_is_exact_identity(self):
        fit = fit_vdd_root(1.0)
        assert fit.a == pytest.approx(1.0, abs=1e-9)
        assert fit.b == pytest.approx(0.0, abs=1e-9)
        assert fit.max_abs_error < 1e-9

    def test_error_signs_alternate_for_concave_target(self):
        """x**(1/alpha) is concave for alpha > 1: it bulges above any
        secant, so the least-squares line over-estimates at the range ends
        and under-estimates in the middle."""
        fit = fit_vdd_root(1.86)
        vdd = np.array([0.3, 0.65, 1.0])
        errors = fit.error(vdd)
        assert errors[0] > 0 and errors[2] > 0
        assert errors[1] < 0

    def test_narrower_range_reduces_error(self):
        wide = fit_vdd_root(1.86, (0.2, 1.2))
        narrow = fit_vdd_root(1.86, (0.4, 0.6))
        assert narrow.max_abs_error < wide.max_abs_error

    def test_callable_and_exact_evaluate(self):
        fit = fit_vdd_root(1.5)
        vdd = 0.5
        assert fit(vdd) == pytest.approx(fit.a * vdd + fit.b)
        assert fit.exact(vdd) == pytest.approx(vdd ** (1 / 1.5))


class TestValidation:
    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            fit_vdd_root(1.86, (1.0, 0.3))
        with pytest.raises(ValueError):
            fit_vdd_root(1.86, (0.0, 1.0))

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            fit_vdd_root(0.0)

    def test_rejects_too_few_samples(self):
        with pytest.raises(ValueError):
            fit_vdd_root(1.86, samples=1)


class TestFigure2:
    def test_curves_have_requested_shape(self):
        curves = figure2_curves()
        assert set(curves) == {"vdd", "exact", "linear", "error"}
        assert all(len(curve) == 61 for curve in curves.values())

    def test_default_matches_paper_figure(self):
        curves = figure2_curves()
        assert curves["vdd"][0] == pytest.approx(FIGURE2_RANGE[0])
        assert curves["vdd"][-1] == pytest.approx(FIGURE2_RANGE[1])

    def test_linear_tracks_exact_closely(self):
        curves = figure2_curves(alpha=1.5)
        assert np.max(np.abs(curves["error"])) < 0.02
