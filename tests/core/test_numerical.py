"""Unit tests for repro.core.numerical (the paper's reference baseline)."""

import numpy as np
import pytest

from repro.core.constraint import chi_for_architecture, vth_exact
from repro.core.numerical import (
    constrained_total_power,
    grid_optimum,
    numerical_optimum,
    numerical_optimum_linearized,
)
from repro.core.optimum import OperatingPoint


class TestConstrainedCurve:
    def test_curve_matches_pointwise_evaluation(self, tech_ll, wallace_arch, paper_frequency):
        vdd = np.linspace(0.3, 0.9, 7)
        vth, pdyn, pstat, ptot = constrained_total_power(
            wallace_arch, tech_ll, paper_frequency, vdd
        )
        chi_value = chi_for_architecture(wallace_arch, tech_ll, paper_frequency)
        assert np.allclose(vth, vth_exact(vdd, chi_value, tech_ll.alpha))
        assert np.allclose(ptot, pdyn + pstat)

    def test_curve_is_u_shaped(self, tech_ll, wallace_arch, paper_frequency):
        """Low Vdd explodes leakage (Vth goes negative), high Vdd explodes
        dynamic power; the constrained curve must dip in between."""
        vdd = np.linspace(0.15, 1.2, 200)
        _, _, _, ptot = constrained_total_power(
            wallace_arch, tech_ll, paper_frequency, vdd
        )
        minimum_index = int(np.argmin(ptot))
        assert 0 < minimum_index < len(vdd) - 1
        assert ptot[0] > ptot[minimum_index]
        assert ptot[-1] > ptot[minimum_index]


class TestNumericalOptimum:
    def test_interior_stationary_point(self, tech_ll, wallace_arch, paper_frequency):
        result = numerical_optimum(wallace_arch, tech_ll, paper_frequency)
        vdd = result.point.vdd
        for offset in (-0.01, 0.01):
            _, _, _, perturbed = constrained_total_power(
                wallace_arch, tech_ll, paper_frequency, vdd + offset
            )
            assert perturbed >= result.ptot

    def test_point_sits_on_constraint(self, tech_ll, wallace_arch, paper_frequency):
        result = numerical_optimum(wallace_arch, tech_ll, paper_frequency)
        chi_value = chi_for_architecture(wallace_arch, tech_ll, paper_frequency)
        expected_vth = float(vth_exact(result.point.vdd, chi_value, tech_ll.alpha))
        assert result.point.vth == pytest.approx(expected_vth, rel=1e-9)

    def test_custom_chi_changes_answer(self, tech_ll, wallace_arch, paper_frequency):
        default = numerical_optimum(wallace_arch, tech_ll, paper_frequency)
        custom = numerical_optimum(wallace_arch, tech_ll, paper_frequency, chi_value=0.1)
        assert custom.point.vdd < default.point.vdd

    def test_boundary_pinned_problem_raises(self, tech_ll, wallace_arch):
        """An absurd frequency pushes the optimum to the search edge."""
        with pytest.raises(ValueError, match="boundary"):
            numerical_optimum(
                wallace_arch.with_updates(logical_depth=2000, zeta_factor=1.0),
                tech_ll,
                1e9,
            )

    def test_method_tag(self, tech_ll, wallace_arch, paper_frequency):
        result = numerical_optimum(wallace_arch, tech_ll, paper_frequency)
        assert result.point.method == "numerical-1d"


class TestLinearizedNumericalOptimum:
    def test_close_to_exact_numerical(self, tech_ll, wallace_arch, paper_frequency):
        exact = numerical_optimum(wallace_arch, tech_ll, paper_frequency)
        linearized = numerical_optimum_linearized(wallace_arch, tech_ll, paper_frequency)
        assert linearized.ptot == pytest.approx(exact.ptot, rel=0.03)

    def test_method_tag(self, tech_ll, wallace_arch, paper_frequency):
        result = numerical_optimum_linearized(wallace_arch, tech_ll, paper_frequency)
        assert result.point.method == "numerical-1d-linearized"


class TestGridOptimum:
    def test_grid_agrees_with_1d_reduction(self, tech_ll, wallace_arch, paper_frequency):
        """The paper's literal 2-D sweep must converge to the 1-D optimum."""
        reference = numerical_optimum(wallace_arch, tech_ll, paper_frequency)
        grid = grid_optimum(
            wallace_arch, tech_ll, paper_frequency, vdd_points=301, vth_points=301
        )
        assert grid.result.ptot == pytest.approx(reference.ptot, rel=0.02)
        assert grid.result.point.vdd == pytest.approx(reference.point.vdd, abs=0.02)

    def test_grid_optimum_is_feasible(self, tech_ll, wallace_arch, paper_frequency):
        grid = grid_optimum(wallace_arch, tech_ll, paper_frequency, 101, 101)
        point = grid.result.point
        # The winning couple must satisfy the timing constraint.
        from repro.core.power_model import critical_path_delay

        circuit_tech = tech_ll.scaled(
            io_factor=wallace_arch.io_factor, zeta_factor=wallace_arch.zeta_factor
        )
        delay = critical_path_delay(
            circuit_tech, wallace_arch.logical_depth, point.vdd, point.vth
        )
        assert delay <= 1.0 / paper_frequency

    def test_grid_shapes(self, tech_ll, wallace_arch, paper_frequency):
        grid = grid_optimum(wallace_arch, tech_ll, paper_frequency, 41, 31)
        assert grid.ptot.shape == (41, 31)
        assert grid.feasible.shape == (41, 31)
        assert np.isnan(grid.ptot[~grid.feasible]).all()

    def test_no_feasible_window_raises(self, tech_ll, wallace_arch):
        with pytest.raises(ValueError, match="no feasible"):
            grid_optimum(
                wallace_arch.with_updates(logical_depth=5000, zeta_factor=1.0),
                tech_ll,
                1e9,
                41,
                41,
            )


class TestOperatingPoint:
    def test_derived_properties(self):
        point = OperatingPoint(vdd=0.5, vth=0.2, pdyn=8e-6, pstat=2e-6)
        assert point.ptot == pytest.approx(10e-6)
        assert point.dynamic_static_ratio == pytest.approx(4.0)
        assert point.static_fraction == pytest.approx(0.2)

    def test_describe_uses_microwatts(self):
        point = OperatingPoint(vdd=0.5, vth=0.2, pdyn=8e-6, pstat=2e-6)
        assert "10.00 uW" in point.describe()
