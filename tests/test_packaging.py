"""Packaging checks: the ``repro`` console script must resolve.

The entry point declared in pyproject.toml is what ``pip install``
turns into the ``repro`` command; this test keeps the declaration and
the target callable from drifting apart without requiring the package
to be installed.
"""

import importlib
import re
from pathlib import Path

PYPROJECT = Path(__file__).parent.parent / "pyproject.toml"


def _console_scripts() -> dict[str, str]:
    """Parse ``[project.scripts]`` (tomllib on 3.11+, regex fallback)."""
    text = PYPROJECT.read_text(encoding="utf-8")
    try:
        import tomllib
    except ModuleNotFoundError:  # Python 3.10
        match = re.search(
            r"^\[project\.scripts\]\n(.*?)(?=^\[|\Z)",
            text,
            re.MULTILINE | re.DOTALL,
        )
        assert match, "pyproject.toml has no [project.scripts] table"
        scripts = {}
        for line in match.group(1).splitlines():
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            key, _, value = line.partition("=")
            scripts[key.strip().strip('"')] = value.strip().strip('"')
        return scripts
    return tomllib.loads(text).get("project", {}).get("scripts", {})


def test_repro_entry_point_is_declared():
    scripts = _console_scripts()
    assert "repro" in scripts, "no `repro` console script in pyproject.toml"
    assert scripts["repro"] == "repro.cli:main"


def test_repro_entry_point_resolves_to_a_callable():
    target = _console_scripts()["repro"]
    module_name, _, attribute = target.partition(":")
    module = importlib.import_module(module_name)
    function = getattr(module, attribute)
    assert callable(function)
    # The wrapper pip generates calls it with no arguments and passes the
    # return value to sys.exit(); argv=None must therefore be accepted.
    import inspect

    signature = inspect.signature(function)
    assert all(
        parameter.default is not inspect.Parameter.empty
        or parameter.kind
        in (inspect.Parameter.VAR_POSITIONAL, inspect.Parameter.VAR_KEYWORD)
        for parameter in signature.parameters.values()
    ), "entry point must be callable with zero arguments"


def test_package_discovery_covers_src_layout():
    text = PYPROJECT.read_text(encoding="utf-8")
    assert '[tool.setuptools.packages.find]' in text
    assert 'where = ["src"]' in text
