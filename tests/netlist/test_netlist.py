"""Unit tests for the netlist graph: construction, validation, evaluation."""

import pytest

from repro.netlist import Builder, Netlist, NetlistError


@pytest.fixture
def empty():
    return Netlist("unit")


class TestConstruction:
    def test_inputs_and_cells(self, empty):
        a = empty.add_input("a")
        b = empty.add_input("b")
        out = empty.add_cell("NAND2", [a, b])
        assert len(out) == 1
        empty.set_outputs(out)
        empty.freeze()
        assert empty.n_cells == 1
        assert empty.cell_counts() == {"NAND2": 1}

    def test_input_bus_naming(self, empty):
        bus = empty.add_input_bus("a", 3)
        assert [empty.nets[n].name for n in bus] == ["a[0]", "a[1]", "a[2]"]

    def test_multi_output_cell(self, empty):
        a, b, c = (empty.add_input(n) for n in "abc")
        outputs = empty.add_cell("FA", [a, b, c])
        assert len(outputs) == 2

    def test_wrong_arity_rejected(self, empty):
        a = empty.add_input("a")
        with pytest.raises(NetlistError, match="expects"):
            empty.add_cell("NAND2", [a])

    def test_frozen_netlist_is_immutable(self, empty):
        a = empty.add_input("a")
        empty.set_outputs([empty.add_cell("INV", [a])[0]])
        empty.freeze()
        with pytest.raises(NetlistError, match="frozen"):
            empty.add_input("late")


class TestValidation:
    def test_no_outputs_rejected(self, empty):
        empty.add_input("a")
        with pytest.raises(NetlistError, match="no primary outputs"):
            empty.validate()

    def test_combinational_cycle_detected(self, empty):
        a = empty.add_input("a")
        loop = empty.add_placeholder("loop")
        stage1 = empty.add_cell("NAND2", [a, loop])[0]
        stage2 = empty.add_cell("INV", [stage1])[0]
        empty.rewire(loop, stage2)
        empty.set_outputs([stage2])
        with pytest.raises(NetlistError, match="combinational cycle"):
            empty.validate()

    def test_dff_breaks_cycles(self, empty):
        a = empty.add_input("a")
        loop = empty.add_placeholder("loop")
        combinational = empty.add_cell("NAND2", [a, loop])[0]
        q = empty.add_cell("DFF", [combinational])[0]
        empty.rewire(loop, q)
        empty.set_outputs([q])
        empty.validate()  # must not raise

    def test_unresolved_placeholder_rejected(self, empty):
        a = empty.add_input("a")
        dangling = empty.add_placeholder("dangling")
        out = empty.add_cell("NAND2", [a, dangling])[0]
        empty.set_outputs([out])
        with pytest.raises(NetlistError, match="never"):
            empty.validate()

    def test_placeholder_as_output_rejected(self, empty):
        empty.add_input("a")
        dangling = empty.add_placeholder("dangling")
        empty.set_outputs([dangling])
        with pytest.raises(NetlistError):
            empty.validate()

    def test_rewire_non_placeholder_rejected(self, empty):
        a = empty.add_input("a")
        b = empty.add_input("b")
        with pytest.raises(NetlistError, match="not a placeholder"):
            empty.rewire(a, b)


class TestEvaluation:
    def test_combinational_evaluation(self, empty):
        a = empty.add_input("a")
        b = empty.add_input("b")
        out = empty.add_cell("XOR2", [a, b])
        empty.set_outputs(out)
        empty.freeze()
        values, _ = empty.evaluate_cycle({a: 1, b: 0}, {})
        assert values[out[0]] == 1
        values, _ = empty.evaluate_cycle({a: 1, b: 1}, {})
        assert values[out[0]] == 0

    def test_dff_delays_by_one_cycle(self, empty):
        a = empty.add_input("a")
        q = empty.add_cell("DFF", [a])
        empty.set_outputs(q)
        empty.freeze()
        state = empty.initial_state()
        values, state = empty.evaluate_cycle({a: 1}, state)
        assert values[q[0]] == 0  # powers up at 0
        values, state = empty.evaluate_cycle({a: 0}, state)
        assert values[q[0]] == 1  # captured last cycle's 1

    def test_dffe_holds_when_disabled(self, empty):
        d = empty.add_input("d")
        enable = empty.add_input("en")
        q = empty.add_cell("DFFE", [d, enable])
        empty.set_outputs(q)
        empty.freeze()
        state = empty.initial_state()
        _, state = empty.evaluate_cycle({d: 1, enable: 1}, state)  # capture 1
        _, state = empty.evaluate_cycle({d: 0, enable: 0}, state)  # hold
        values, _ = empty.evaluate_cycle({d: 0, enable: 0}, state)
        assert values[q[0]] == 1

    def test_missing_input_rejected(self, empty):
        a = empty.add_input("a")
        out = empty.add_cell("INV", [a])
        empty.set_outputs(out)
        empty.freeze()
        with pytest.raises(NetlistError, match="missing value"):
            empty.evaluate_cycle({}, {})

    def test_counter_via_placeholder_feedback(self, empty):
        """A 1-bit toggle counter: the canonical placeholder use-case."""
        builder = Builder(empty)
        state = empty.add_placeholder("t")
        inverted = builder.invert(state)
        q = builder.register(inverted)
        empty.rewire(state, q)
        empty.set_outputs([q])
        empty.freeze()
        observed = []
        dff_state = empty.initial_state()
        for _ in range(4):
            values, dff_state = empty.evaluate_cycle({}, dff_state)
            observed.append(values[q])
        assert observed == [0, 1, 0, 1]


class TestStatistics:
    def test_leak_and_area_aggregation(self, empty):
        a = empty.add_input("a")
        b = empty.add_input("b")
        out = empty.add_cell("FA", [a, b, a])
        empty.add_cell("INV", [out[0]])
        empty.set_outputs([out[0]])
        # FA = 14 leak units, INV = 1.
        assert empty.total_leak_units == pytest.approx(15.0)
        assert empty.average_leak_units == pytest.approx(7.5)
        assert empty.area_um2 == pytest.approx((28 + 2) * 1.05)

    def test_describe_mentions_counts(self, empty):
        a = empty.add_input("a")
        empty.set_outputs([empty.add_cell("INV", [a])[0]])
        assert "INV:1" in empty.describe()
