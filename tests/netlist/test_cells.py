"""Unit tests for the standard-cell library."""

import itertools

import pytest

from repro.netlist.cells import (
    AREA_PER_TRANSISTOR,
    CAP_PER_UNIT,
    CellType,
    LIBRARY,
    cell,
)


class TestLibraryShape:
    def test_expected_cells_present(self):
        for name in ("INV", "NAND2", "XOR2", "MUX2", "HA", "FA", "DFF", "DFFE",
                     "TIELO", "TIEHI", "AND2", "OR2"):
            assert name in LIBRARY

    def test_lookup_rejects_unknown(self):
        with pytest.raises(KeyError, match="unknown cell"):
            cell("NAND9")

    def test_delay_tuple_matches_outputs(self):
        for library_cell in LIBRARY.values():
            assert len(library_cell.delay_units) == library_cell.n_outputs

    def test_mismatched_delay_tuple_rejected(self):
        with pytest.raises(ValueError, match="delay entries"):
            CellType("BAD", 2, 2, 4, (1.0,), lambda p: (0, 0))


class TestElectricalFigures:
    def test_inverter_is_the_unit(self):
        inv = cell("INV")
        assert inv.leak_units == 1.0
        assert inv.cap_units == 1.0
        assert inv.capacitance == CAP_PER_UNIT
        assert inv.area_um2 == pytest.approx(2 * AREA_PER_TRANSISTOR)

    def test_fa_is_an_order_heavier_than_inverter(self):
        fa = cell("FA")
        assert fa.leak_units == 14.0
        assert fa.transistors == 28

    def test_fa_carry_faster_than_sum(self):
        """The mirror adder's carry output leads — this asymmetry shapes
        the array multiplier's critical path."""
        fa = cell("FA")
        sum_delay, carry_delay = fa.delay_units
        assert carry_delay < sum_delay


class TestLogicFunctions:
    @pytest.mark.parametrize("name,table", [
        ("INV", {(0,): (1,), (1,): (0,)}),
        ("NAND2", {(0, 0): (1,), (1, 1): (0,), (0, 1): (1,)}),
        ("XOR2", {(0, 1): (1,), (1, 1): (0,)}),
        ("MUX2", {(0, 1, 0): (0,), (0, 1, 1): (1,)}),
    ])
    def test_truth_tables(self, name, table):
        library_cell = cell(name)
        for inputs, outputs in table.items():
            assert library_cell.evaluate(inputs) == outputs

    def test_full_adder_exhaustive(self):
        fa = cell("FA")
        for a, b, c in itertools.product((0, 1), repeat=3):
            s, carry = fa.evaluate((a, b, c))
            assert 2 * carry + s == a + b + c

    def test_half_adder_exhaustive(self):
        ha = cell("HA")
        for a, b in itertools.product((0, 1), repeat=2):
            s, carry = ha.evaluate((a, b))
            assert 2 * carry + s == a + b

    def test_tie_cells(self):
        assert cell("TIELO").evaluate(()) == (0,)
        assert cell("TIEHI").evaluate(()) == (1,)

    def test_sequential_cells_refuse_evaluation(self):
        with pytest.raises(ValueError, match="sequential"):
            cell("DFF").evaluate((0,))

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError, match="expects"):
            cell("NAND2").evaluate((0,))
