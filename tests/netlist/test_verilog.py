"""Tests for the structural Verilog exporter."""

import re

import pytest

from repro.generators import build_array_multiplier, build_multiplier
from repro.netlist import Builder, Netlist
from repro.netlist.cells import LIBRARY
from repro.netlist.verilog import (
    cell_module,
    export_design,
    library_verilog,
    netlist_to_verilog,
    sanitize,
)


class TestSanitize:
    def test_replaces_illegal_characters(self):
        assert sanitize("a[3]") == "a_3_"
        assert sanitize("fa_7.1") == "fa_7_1"

    def test_leading_digit_prefixed(self):
        assert sanitize("3net")[0] != "3"

    def test_empty_name(self):
        assert sanitize("") .startswith("n_")


class TestCellModules:
    def test_every_library_cell_has_a_body(self):
        for name, cell_type in LIBRARY.items():
            text = cell_module(cell_type)
            assert text.startswith(f"module {name} (")
            assert text.endswith("endmodule")

    def test_sequential_cells_take_clk(self):
        assert ".clk" not in cell_module(LIBRARY["INV"])
        assert "input clk;" in cell_module(LIBRARY["DFF"])
        assert "posedge clk" in cell_module(LIBRARY["DFFE"])

    def test_library_subset(self):
        text = library_verilog({"INV", "FA"})
        assert "module INV" in text and "module FA" in text
        assert "module NAND2" not in text


class TestNetlistExport:
    @pytest.fixture
    def small(self):
        netlist = Netlist("small")
        builder = Builder(netlist)
        a = netlist.add_input("a[0]")
        b = netlist.add_input("b[0]")
        q = builder.register(builder.gate("XOR2", a, b))
        netlist.set_outputs([q])
        netlist.freeze()
        return netlist

    def test_module_structure(self, small):
        text = netlist_to_verilog(small)
        assert text.startswith("module small (")
        assert "input a_0_;" in text
        assert "input clk;" in text
        assert "output po_0;" in text
        assert text.rstrip().endswith("endmodule")

    def test_instances_reference_cells(self, small):
        text = netlist_to_verilog(small)
        assert re.search(r"XOR2 \w+ \(\.a0\(", text)
        assert ".clk(clk)" in text

    def test_combinational_design_has_no_clock(self):
        netlist = Netlist("comb")
        builder = Builder(netlist)
        a = netlist.add_input("a")
        netlist.set_outputs([builder.invert(a)])
        netlist.freeze()
        text = netlist_to_verilog(netlist)
        assert "clk" not in text

    def test_export_design_is_self_contained(self):
        impl = build_array_multiplier(4)
        text = export_design(impl.netlist)
        for cell_name in ("AND2", "FA", "HA", "DFF"):
            assert f"module {cell_name} (" in text
        assert "module rca4 (" in text

    def test_every_registry_multiplier_exports(self):
        """Smoke: all thirteen architectures produce non-trivial Verilog
        with one instance line per cell."""
        for name in ("RCA", "Wallace", "Sequential"):
            impl = build_multiplier(name)
            text = netlist_to_verilog(impl.netlist)
            instance_lines = [
                line for line in text.splitlines()
                if re.match(r"\s+[A-Z][A-Z0-9]* \w+ \(", line)
            ]
            assert len(instance_lines) == impl.n_cells

    def test_unique_wire_names(self, small):
        text = netlist_to_verilog(small)
        wires = re.findall(r"wire (\w+);", text)
        assert len(wires) == len(set(wires))
