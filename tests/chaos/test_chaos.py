"""Chaos suite: every fault site, correct or degraded — never wrong, never hung.

Each test arms the deterministic fault harness at one site and asserts
the system's contract under that failure class:

* results that do come back are byte-for-byte what a fault-free run
  produces (or an honest subset, tagged ``partial``);
* failures surface as structured errors, never silent corruption;
* every path terminates within the suite timeout — no hangs.

The seed comes from ``REPRO_CHAOS_SEED`` (CI runs two fixed seeds), so
a failure seen at one seed reproduces identically until fixed.
"""

import json
import os

import pytest

from repro import obs
from repro.explore.cache import ResultCache
from repro.explore.engine import explore
from repro.explore.scenario import demo_scenario
from repro.jobs import JobManager, JobStore
from repro.jobs.store import STATES
from repro.resilience import FaultPlan, injected_faults
from repro.resilience.faults import FaultError
from repro.service.client import ServiceClient, ServiceError
from repro.service.memcache import MemoryCache, TieredCache
from repro.service.server import ExplorationServer, ServiceConfig

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1234"))
WAIT = 30.0


@pytest.fixture
def registry():
    previous = obs.get_registry()
    registry = obs.enable(obs.MetricsRegistry())
    yield registry
    if previous is not None:
        obs.enable(previous)
    else:
        obs.disable()


def _fresh_tier(tmp_path):
    """A tiered cache with a private memory tier (no process-global LRU)."""
    return TieredCache(ResultCache(tmp_path / "cache"), MemoryCache(32))


def _rows_by_point(result_set):
    return {
        (r.architecture, r.technology, r.frequency): (r.ptot, r.vdd)
        for r in result_set
    }


class TestCacheReadChaos:
    def test_corrupt_hits_quarantine_and_recompute(self, tmp_path, registry):
        scenario = demo_scenario(frequency_points=4)
        baseline = explore(
            scenario, cache=_fresh_tier(tmp_path), use_cache=True
        )
        # Fresh memory tier: the next read must go to (faulty) disk.
        tier = _fresh_tier(tmp_path)
        with injected_faults(f"seed={SEED}; cache.read:always:corrupt"):
            survived = explore(scenario, cache=tier, use_cache=True)
        # Correct, not degraded: the torn entry was quarantined and the
        # sweep recomputed from scratch.
        assert not survived.cache_hit
        assert [r.ptot for r in survived.table.rows()] == [
            r.ptot for r in baseline.table.rows()
        ]
        assert obs.counter_total("cache.disk.quarantined") >= 1
        quarantined = list((tmp_path / "cache").glob("*.quarantined"))
        assert len(quarantined) == 1

    def test_faults_off_rerun_is_a_clean_hit_again(self, tmp_path):
        scenario = demo_scenario(frequency_points=4)
        explore(scenario, cache=_fresh_tier(tmp_path), use_cache=True)
        tier = _fresh_tier(tmp_path)
        with injected_faults(f"seed={SEED}; cache.read:always:corrupt"):
            explore(scenario, cache=tier, use_cache=True)
        # The recompute re-populated the cache; a clean run hits it.
        again = explore(scenario, cache=_fresh_tier(tmp_path), use_cache=True)
        assert again.cache_hit


class TestCacheWriteChaos:
    def test_write_faults_never_lose_the_result(self, tmp_path, registry):
        scenario = demo_scenario(frequency_points=4)
        inline = explore(scenario, use_cache=False)
        with injected_faults(f"seed={SEED}; cache.write:always"):
            survived = explore(
                scenario, cache=_fresh_tier(tmp_path), use_cache=True
            )
        assert [r.ptot for r in survived.table.rows()] == [
            r.ptot for r in inline.table.rows()
        ]
        assert survived.cache_path is None
        assert list((tmp_path / "cache").glob("*.json")) == []
        assert obs.counter_total("cache.disk.write_errors") >= 1


class TestShardChaos:
    def make_manager(self, tmp_path, **kwargs):
        return JobManager(
            store=JobStore(tmp_path / "jobs"),
            cache=tmp_path / "cache",
            use_cache=False,
            **kwargs,
        )

    def test_retry_budget_self_heals_one_bad_shard(self, tmp_path, registry):
        scenario = demo_scenario(frequency_points=8)
        truth = {
            (r.architecture, r.technology, r.frequency): (r.ptot, r.vdd)
            for r in explore(scenario, use_cache=False).table.rows()
        }
        manager = self.make_manager(tmp_path, max_shard_retries=1)
        try:
            with injected_faults(f"seed={SEED}; shard.run:n=1"):
                record = manager.submit(scenario, shards=4)
                final = manager.wait(record.id, timeout=WAIT)
            result = manager.job_result(record.id)
            events = manager.store.get(record.id).events
        finally:
            manager.close()
        assert final["state"] == "done"
        assert not final["partial"]
        assert _rows_by_point(result) == truth
        assert obs.counter_total("jobs.shard_retries") == 1
        assert any(event["event"] == "shard_retry" for event in events)

    def test_poisoned_shard_degrades_to_partial_never_wrong(
        self, tmp_path, registry
    ):
        scenario = demo_scenario(frequency_points=8)
        inline = explore(scenario, use_cache=False)
        truth = {
            (r.architecture, r.technology, r.frequency): (r.ptot, r.vdd)
            for r in inline.table.rows()
        }
        manager = self.make_manager(tmp_path, max_shard_retries=0)
        try:
            with injected_faults(f"seed={SEED}; shard.run:n=1"):
                record = manager.submit(scenario, shards=4)
                final = manager.wait(record.id, timeout=WAIT)
            assert final["state"] == "done"
            assert final["partial"]
            result = manager.job_result(record.id)
        finally:
            manager.close()
        assert result.partial
        # Degraded: fewer points than the full sweep ...
        assert 0 < len(result) < scenario.size
        # ... but never wrong: every surviving point matches the
        # fault-free run exactly.
        for key, value in _rows_by_point(result).items():
            assert truth[key] == value
        assert obs.counter_total("jobs.shard_poisoned") == 1
        assert obs.counter_total("jobs.partial_results") == 1

    def test_all_shards_failing_is_a_structured_failure(
        self, tmp_path, registry
    ):
        manager = self.make_manager(tmp_path, max_shard_retries=0)
        try:
            with injected_faults(f"seed={SEED}; shard.run:always"):
                record = manager.submit(
                    demo_scenario(frequency_points=8), shards=4
                )
                final = manager.wait(record.id, timeout=WAIT)
        finally:
            manager.close()
        assert final["state"] == "failed"
        assert "4 shards failed" in final["error"]
        assert obs.counter_total("jobs.shard_poisoned") == 4

    def test_watchdog_requeues_a_hung_shard(self, tmp_path, registry):
        scenario = demo_scenario(frequency_points=8)
        inline = explore(scenario, use_cache=False)
        manager = self.make_manager(
            tmp_path, max_shard_retries=1, shard_timeout=0.25
        )
        try:
            with injected_faults(f"seed={SEED}; shard.run:n=1:hang=1.0"):
                record = manager.submit(scenario, shards=4)
                final = manager.wait(record.id, timeout=WAIT)
            assert final["state"] == "done"
            assert not final["partial"]
            result = manager.job_result(record.id)
            events = manager.store.get(record.id).events
        finally:
            manager.close()
        assert len(result) == scenario.size
        assert _rows_by_point(result) == {
            (r.architecture, r.technology, r.frequency): (r.ptot, r.vdd)
            for r in inline.table.rows()
        }
        assert obs.counter_total("jobs.shard_watchdog_timeouts") >= 1
        assert any(event["event"] == "shard_requeued" for event in events)

    def test_job_deadline_abandons_work_with_a_breach(
        self, tmp_path, registry
    ):
        import time as time_module

        from repro.explore.engine import explore as real_explore

        def slow_shard(scenario, method):
            time_module.sleep(0.4)
            return real_explore(scenario, method=method, use_cache=False)

        manager = JobManager(
            store=JobStore(tmp_path / "jobs"),
            cache=tmp_path / "cache",
            use_cache=False,
            evaluate_shard=slow_shard,
            max_shard_retries=0,
        )
        try:
            record = manager.submit(
                demo_scenario(frequency_points=8), shards=4, deadline_ms=100
            )
            final = manager.wait(record.id, timeout=WAIT)
            events = manager.store.get(record.id).events
        finally:
            manager.close()
        assert final["state"] == "failed"
        assert "deadline" in final["error"]
        assert obs.counter_total("jobs.deadline_breaches") >= 1
        assert any(event["event"] == "deadline" for event in events)


class TestStoreWriteChaos:
    def test_torn_saves_never_corrupt_disk_state(self, tmp_path, registry):
        """Probabilistic write faults: disk state stays parseable JSON.

        Every record file that exists after the storm must parse and
        hold a legal state, and terminal states that *did* reach disk
        must survive a reload — the atomic-write + backup discipline
        under test.
        """
        store = JobStore(tmp_path)
        terminal_on_disk = set()
        with injected_faults(f"seed={SEED}; store.write:p=0.4"):
            for _ in range(12):
                try:
                    record = store.create({"name": "storm"})
                except FaultError:
                    continue
                try:
                    store.transition(record.id, "running")
                    store.update_progress(record.id, points_done=1)
                    store.transition(record.id, "done")
                    terminal_on_disk.add(record.id)
                except FaultError:
                    pass
        for path in tmp_path.glob("*.json"):
            payload = json.loads(path.read_text(encoding="utf-8"))
            assert payload["state"] in STATES
        reloaded = JobStore(tmp_path)
        for job_id in terminal_on_disk:
            assert reloaded.get(job_id).state == "done"


class TestHttpResponseChaos:
    def test_first_response_fault_is_structured_then_recovers(self, tmp_path):
        server = ExplorationServer(
            ServiceConfig(
                port=0,
                cache_dir=str(tmp_path / "cache"),
                faults=f"seed={SEED}; http.response:n=1",
            )
        )
        server.start_background()
        try:
            client = ServiceClient(server.url, timeout=WAIT)
            assert server.state.healthz_payload()["faults_armed"] is True
            scenario = demo_scenario(frequency_points=3)
            with pytest.raises(ServiceError) as excinfo:
                client.explore(scenario)
            # The injected fault surfaces as a structured 500, not a
            # torn body or a hang.
            assert excinfo.value.status == 500
            # The n=1 trigger is spent: the service serves cleanly now.
            survived = client.explore(scenario)
            inline = explore(scenario, use_cache=False)
            assert [r.ptot for r in survived] == [
                r.ptot for r in inline.table.rows()
            ]
        finally:
            server.shutdown()
            server.server_close()
        # server_close() disarmed the plan for the whole process.
        from repro.resilience.faults import active

        assert not active()


class TestDeterminism:
    def test_plan_decisions_repeat_across_instances(self):
        spec = f"seed={SEED}; shard.run:p=0.5; cache.read:p=0.3"
        first = FaultPlan.parse(spec)
        second = FaultPlan.parse(spec)
        for site in ("shard.run", "cache.read"):
            assert [
                first.should_fire(site) is not None for _ in range(128)
            ] == [second.should_fire(site) is not None for _ in range(128)]
