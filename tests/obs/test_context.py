"""TraceContext: minting, the traceparent wire format, thread-locals."""

import threading

import pytest

from repro.obs import (
    TraceContext,
    clear_context,
    current_context,
    parse_traceparent,
    set_context,
)
from repro.obs.context import activate


class TestTraceContext:
    def test_mint_shapes(self):
        context = TraceContext.mint()
        assert len(context.trace_id) == 32
        assert len(context.span_id) == 16
        assert context.sampled is True
        assert int(context.trace_id, 16) != 0
        assert int(context.span_id, 16) != 0

    def test_mint_is_unique(self):
        ids = {TraceContext.mint().trace_id for _ in range(64)}
        assert len(ids) == 64

    def test_child_keeps_the_trace(self):
        parent = TraceContext.mint()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.span_id != parent.span_id
        pinned = parent.child("a" * 16)
        assert pinned.span_id == "a" * 16

    def test_request_id_is_the_trace_prefix(self):
        context = TraceContext("ab" * 16, "cd" * 8)
        assert context.request_id == ("ab" * 16)[:16]
        assert len(context.request_id) == 16


class TestTraceparent:
    def test_round_trip(self):
        context = TraceContext.mint()
        parsed = parse_traceparent(context.to_traceparent())
        assert parsed == context

    def test_unsampled_flag(self):
        context = TraceContext.mint(sampled=False)
        header = context.to_traceparent()
        assert header.endswith("-00")
        assert parse_traceparent(header).sampled is False

    def test_header_shape(self):
        context = TraceContext("1" * 32, "2" * 16)
        assert context.to_traceparent() == f"00-{'1' * 32}-{'2' * 16}-01"

    @pytest.mark.parametrize(
        "header",
        [
            None,
            "",
            "nonsense",
            "00-abc-def-01",  # ids too short
            f"00-{'0' * 32}-{'2' * 16}-01",  # all-zero trace id
            f"00-{'1' * 32}-{'0' * 16}-01",  # all-zero span id
            f"ff-{'1' * 32}-{'2' * 16}-01",  # version ff is invalid
            f"00-{'1' * 32}-{'2' * 16}-01-extra",  # v00 allows no suffix
            f"0x-{'1' * 32}-{'2' * 16}-01",  # non-hex version
            f"00-{'g' * 32}-{'2' * 16}-01",  # non-hex trace id
        ],
    )
    def test_rejects_malformed(self, header):
        assert parse_traceparent(header) is None

    def test_future_version_with_suffix_parses(self):
        header = f"01-{'1' * 32}-{'2' * 16}-01-whatever"
        parsed = parse_traceparent(header)
        assert parsed is not None
        assert parsed.trace_id == "1" * 32

    def test_uppercase_is_normalised(self):
        header = f"00-{'A' * 32}-{'B' * 16}-01"
        parsed = parse_traceparent(header)
        assert parsed.trace_id == "a" * 32


class TestThreadLocals:
    def test_set_and_clear(self):
        assert current_context() is None
        context = TraceContext.mint()
        set_context(context)
        try:
            assert current_context() is context
        finally:
            clear_context()
        assert current_context() is None

    def test_activate_restores_previous(self):
        outer = TraceContext.mint()
        inner = TraceContext.mint()
        set_context(outer)
        try:
            with activate(inner):
                assert current_context() is inner
            assert current_context() is outer
        finally:
            clear_context()

    def test_context_is_per_thread(self):
        set_context(TraceContext.mint())
        seen = []
        thread = threading.Thread(
            target=lambda: seen.append(current_context())
        )
        try:
            thread.start()
            thread.join()
        finally:
            clear_context()
        assert seen == [None]
