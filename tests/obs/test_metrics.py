"""Metrics registry: thread safety, kinds, Prometheus exposition."""

import threading

import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
    prometheus_text,
)
from repro.obs.export import escape_label_value, metric_name


class TestCounter:
    def test_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("engine.runs")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("c")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_same_labels_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("http.requests", route="/v1/explore", status=200)
        b = registry.counter("http.requests", status="200", route="/v1/explore")
        assert a is b
        assert a.key == "http.requests{route=/v1/explore,status=200}"

    def test_different_labels_different_series(self):
        registry = MetricsRegistry()
        ok = registry.counter("http.requests", status=200)
        bad = registry.counter("http.requests", status=500)
        ok.inc()
        assert bad.value == 0

    def test_thread_safety_exact_totals(self):
        registry = MetricsRegistry()
        counter = registry.counter("contended")
        per_thread, n_threads = 10_000, 8

        def work():
            for _ in range(per_thread):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == per_thread * n_threads


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("cache.memory.entries")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value == 7


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        histogram = MetricsRegistry().histogram(
            "latency", buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.1, 0.5, 5.0):
            histogram.observe(value)
        cumulative = dict(histogram.cumulative())
        # le semantics: 0.1 itself counts in the 0.1 bucket.
        assert cumulative[0.1] == 2
        assert cumulative[1.0] == 3
        assert cumulative[float("inf")] == 4
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(5.65)

    def test_thread_safety_exact_count(self):
        histogram = MetricsRegistry().histogram("h", buckets=(1.0,))
        per_thread, n_threads = 10_000, 8

        def work():
            for _ in range(per_thread):
                histogram.observe(0.5)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert histogram.count == per_thread * n_threads
        assert dict(histogram.cumulative())[1.0] == per_thread * n_threads

    def test_bad_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="strictly increasing"):
            registry.histogram("h2", buckets=())

    def test_bucket_redefinition_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="cannot redefine"):
            registry.histogram("h", buckets=(5.0,))
        # Same buckets (or defaulted) is fine.
        assert registry.histogram("h", buckets=(1.0, 2.0)).buckets == (1.0, 2.0)

    def test_default_buckets(self):
        histogram = MetricsRegistry().histogram("http.latency_seconds")
        assert histogram.buckets == DEFAULT_LATENCY_BUCKETS


class TestRegistry:
    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge("x")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.inc("c", 2)
        registry.set_gauge("g", 1.5)
        registry.observe("h", 0.2, route="/v1/explore")
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["gauges"] == {"g": 1.5}
        histogram = snapshot["histograms"]["h{route=/v1/explore}"]
        assert histogram["count"] == 1
        assert histogram["buckets"]["+Inf"] == 1

    def test_reset_drops_instruments(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.reset()
        assert registry.snapshot()["counters"] == {}


class TestPrometheusText:
    def test_counter_gauge_histogram_exposition(self):
        registry = MetricsRegistry()
        registry.inc("engine.points_evaluated", 72)
        registry.set_gauge("cache.memory.entries", 3)
        registry.observe("http.latency_seconds", 0.05, route="/v1/explore")
        text = prometheus_text(registry)
        assert "# TYPE engine_points_evaluated_total counter" in text
        assert "engine_points_evaluated_total 72" in text
        assert "cache_memory_entries 3" in text
        assert (
            'http_latency_seconds_bucket{route="/v1/explore",le="0.05"} 1'
            in text
        )
        assert 'http_latency_seconds_count{route="/v1/explore"} 1' in text
        assert text.endswith("\n")

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.inc("c", label='quote " backslash \\ newline \n end')
        text = prometheus_text(registry)
        assert r'label="quote \" backslash \\ newline \n end"' in text

    def test_escape_label_value(self):
        assert escape_label_value('a"b') == r'a\"b'
        assert escape_label_value("a\\b") == r"a\\b"
        assert escape_label_value("a\nb") == r"a\nb"

    def test_metric_name_folding(self):
        assert metric_name("cache.memory.hits", "_total") == (
            "cache_memory_hits_total"
        )
        assert metric_name("9lives") == "_9lives"
