"""Span tracer, PhaseTimer and the obs facade on/off switch."""

import threading

import pytest

from repro import obs
from repro.obs import NULL_SPAN, PhaseTimer, SpanTracer
from repro.obs.export import render_phases, render_span_tree


@pytest.fixture()
def clean_facade():
    """Leave the process-global telemetry state as this test found it."""
    was_enabled = obs.is_enabled()
    registry = obs.get_registry()
    yield
    obs.uninstall_tracer()
    if was_enabled:
        obs.enable(registry)
    else:
        obs.disable()


class TestSpanTracer:
    def test_nesting_builds_a_tree(self):
        tracer = SpanTracer()
        with tracer.span("outer", method="auto"):
            with tracer.span("inner"):
                pass
            with tracer.span("sibling"):
                pass
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert outer.name == "outer"
        assert outer.labels == {"method": "auto"}
        assert [child.name for child in outer.children] == [
            "inner", "sibling",
        ]
        assert outer.wall_seconds >= sum(
            child.wall_seconds for child in outer.children
        )

    def test_exception_marks_error_and_reraises(self):
        tracer = SpanTracer()
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        outer = tracer.roots[0]
        assert outer.status == "error"
        assert outer.children[0].status == "error"
        assert "ValueError: boom" in outer.children[0].error

    def test_threads_do_not_interleave(self):
        tracer = SpanTracer()
        barrier = threading.Barrier(2)

        def work(name):
            with tracer.span(name):
                barrier.wait()  # both spans open concurrently
                with tracer.span(f"{name}.child"):
                    pass

        threads = [
            threading.Thread(target=work, args=(f"t{i}",)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Two roots (one per thread), each with exactly its own child.
        assert sorted(root.name for root in tracer.roots) == ["t0", "t1"]
        for root in tracer.roots:
            assert [c.name for c in root.children] == [f"{root.name}.child"]

    def test_to_dict_and_render(self):
        tracer = SpanTracer()
        with tracer.span("root", method="auto"):
            with tracer.span("child"):
                pass
        payload = tracer.to_dict()
        assert payload["roots"][0]["name"] == "root"
        assert payload["roots"][0]["children"][0]["name"] == "child"
        rendered = render_span_tree(tracer)
        assert "root" in rendered and "  child" in rendered
        assert "ms wall" in rendered

    def test_reset(self):
        tracer = SpanTracer()
        with tracer.span("s"):
            pass
        tracer.reset()
        assert tracer.roots == []


class TestFacade:
    def test_disabled_by_default_helpers_are_noops(self, clean_facade):
        obs.disable()
        obs.inc("never.recorded")
        obs.observe("never.observed", 1.0)
        obs.set_gauge("never.set", 1.0)
        assert obs.snapshot() == {
            "enabled": False, "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_span_without_tracer_is_null(self, clean_facade):
        obs.uninstall_tracer()
        assert obs.span("anything") is NULL_SPAN

    def test_enable_routes_helpers(self, clean_facade):
        registry = obs.enable(obs.MetricsRegistry())
        obs.inc("c", 2, kind="x")
        assert registry.snapshot()["counters"] == {"c{kind=x}": 2}
        assert obs.snapshot()["enabled"] is True

    def test_installed_tracer_receives_spans(self, clean_facade):
        tracer = obs.install_tracer(SpanTracer())
        with obs.span("s", key="v"):
            pass
        assert tracer.roots[0].name == "s"

    def test_default_tracer_covers_other_threads(self, clean_facade):
        tracer = obs.install_tracer(SpanTracer(), default=True)

        def work():
            with obs.span("worker"):
                pass

        thread = threading.Thread(target=work)
        thread.start()
        thread.join()
        assert [root.name for root in tracer.roots] == ["worker"]

    def test_env_switch(self, clean_facade):
        from repro.obs import _env_enabled

        assert _env_enabled({"REPRO_TELEMETRY": "1"})
        assert _env_enabled({"REPRO_TELEMETRY": "TRUE"})
        assert not _env_enabled({"REPRO_TELEMETRY": "0"})
        assert not _env_enabled({})


class TestPhaseTimer:
    def test_accumulates_and_reenters(self):
        timer = PhaseTimer("engine")
        with timer.phase("kernel"):
            pass
        with timer.phase("kernel"):
            pass
        with timer.phase("fallback"):
            pass
        assert set(timer.phases) == {"kernel", "fallback"}
        assert timer.phases["kernel"] > 0
        assert timer.total() == pytest.approx(sum(timer.phases.values()))

    def test_mirrors_phases_as_spans(self, clean_facade):
        tracer = obs.install_tracer(SpanTracer())
        timer = PhaseTimer("engine")
        with timer.phase("kernel", technology="LL"):
            pass
        assert tracer.roots[0].name == "engine.kernel"
        assert tracer.roots[0].labels == {"technology": "LL"}

    def test_exception_still_records_time(self):
        timer = PhaseTimer()
        with pytest.raises(RuntimeError):
            with timer.phase("doomed"):
                raise RuntimeError("nope")
        assert timer.phases["doomed"] >= 0


class TestRenderPhases:
    def test_share_and_residual(self):
        text = render_phases(
            {"kernel": 0.6, "expand": 0.2}, total_seconds=1.0
        )
        assert "kernel" in text and "60.0%" in text
        assert "(other)" in text and "20.0%" in text
        assert "total" in text and "100.0%" in text

    def test_empty(self):
        assert render_phases({}) == "(no phases recorded)"
