"""Prometheus exporter edge cases: +Inf, concurrency, label escaping."""

import re
import threading

from repro.obs import MetricsRegistry, prometheus_text


def _lines(registry):
    return prometheus_text(registry).splitlines()


class TestInfBucket:
    def test_inf_bucket_always_emitted(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(0.1, 1.0))
        [line] = [
            line for line in _lines(registry) if 'le="+Inf"' in line
        ]
        assert line == 'h_bucket{le="+Inf"} 0'

    def test_overflow_sample_lands_only_in_inf(self):
        registry = MetricsRegistry()
        registry.observe("h", 5.0, buckets=(0.1, 1.0))
        text = prometheus_text(registry)
        assert 'h_bucket{le="0.1"} 0' in text
        assert 'h_bucket{le="1"} 0' in text
        assert 'h_bucket{le="+Inf"} 1' in text
        assert "h_count 1" in text

    def test_inf_bucket_equals_count(self):
        registry = MetricsRegistry()
        for value in (0.05, 0.5, 5.0, 50.0):
            registry.observe("h", value, buckets=(0.1, 1.0, 10.0))
        text = prometheus_text(registry)
        inf = int(re.search(r'h_bucket\{le="\+Inf"\} (\d+)', text).group(1))
        count = int(re.search(r"h_count (\d+)", text).group(1))
        assert inf == count == 4

    def test_boundary_value_is_cumulative_le(self):
        # le is <=: a sample exactly on a bound counts in that bucket.
        registry = MetricsRegistry()
        registry.observe("h", 1.0, buckets=(0.1, 1.0))
        text = prometheus_text(registry)
        assert 'h_bucket{le="1"} 1' in text


class TestConcurrentObserve:
    def test_sum_count_and_buckets_agree_under_contention(self):
        registry = MetricsRegistry()
        threads, per_thread, value = 8, 500, 0.5

        def hammer():
            for _ in range(per_thread):
                registry.observe("lat", value, buckets=(0.1, 1.0))

        workers = [threading.Thread(target=hammer) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

        total = threads * per_thread
        text = prometheus_text(registry)
        assert f"lat_count {total}" in text
        # 0.5 is exactly representable: the sum must be exact, not close.
        assert float(re.search(r"lat_sum (\S+)", text).group(1)) == (
            total * value
        )
        assert f'lat_bucket{{le="1"}} {total}' in text
        assert f'lat_bucket{{le="+Inf"}} {total}' in text

    def test_concurrent_mixed_instruments_expose_consistently(self):
        registry = MetricsRegistry()

        def hammer(index):
            for _ in range(200):
                registry.inc("events", worker=index)
                registry.observe("lat", 0.01, buckets=(0.1,))

        workers = [
            threading.Thread(target=hammer, args=(i,)) for i in range(4)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        text = prometheus_text(registry)
        counts = [
            int(match)
            for match in re.findall(r'events_total\{worker="\d"\} (\d+)', text)
        ]
        assert counts == [200, 200, 200, 200]
        assert "lat_count 800" in text


class TestLabelEscaping:
    def test_backslash_newline_and_quote_in_one_family(self):
        registry = MetricsRegistry()
        hostile = 'back\\slash "quoted"\nnewline'
        registry.inc("hits", path=hostile)
        text = prometheus_text(registry)
        # One logical sample line; the newline must be escaped, not real.
        [sample] = [
            line for line in text.splitlines() if line.startswith("hits_total")
        ]
        assert r"back\\slash" in sample
        assert r"\"quoted\"" in sample
        assert r"\nnewline" in sample
        assert "\n" not in sample

    def test_escaping_round_trips_per_exposition_rules(self):
        registry = MetricsRegistry()
        registry.inc("hits", path='a\\b"c\nd')
        [sample] = [
            line
            for line in prometheus_text(registry).splitlines()
            if line.startswith("hits_total")
        ]
        rendered = re.search(r'path="((?:[^"\\]|\\.)*)"', sample).group(1)
        unescaped = (
            rendered.replace(r"\n", "\n")
            .replace(r"\"", '"')
            .replace("\\\\", "\\")
        )
        assert unescaped == 'a\\b"c\nd'

    def test_plain_values_untouched(self):
        registry = MetricsRegistry()
        registry.inc("hits", route="/v1/jobs/{id}")
        assert 'hits_total{route="/v1/jobs/{id}"} 1' in prometheus_text(
            registry
        )
