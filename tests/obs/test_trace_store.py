"""TraceStore: assembly, merging of late job spans, tail-based retention."""

from repro.obs import TraceStore, assemble_tree


def span(name, span_id="", parent_id="", started=0.0, status="ok", **extra):
    node = {
        "name": name,
        "wall_seconds": extra.pop("wall", 0.001),
        "cpu_seconds": 0.0,
        "status": status,
        "started_at": started,
    }
    if span_id:
        node["span_id"] = span_id
    if parent_id:
        node["parent_id"] = parent_id
    node.update(extra)
    return node


class TestAssembleTree:
    def test_orphans_stay_roots(self):
        roots = assemble_tree([span("a"), span("b")])
        assert [r["name"] for r in roots] == ["a", "b"]

    def test_root_attaches_under_matching_span_id(self):
        http = span("http.request", span_id="aa" * 8, started=1.0)
        job = span("jobs.run", span_id="bb" * 8, parent_id="aa" * 8, started=2.0)
        roots = assemble_tree([http, job])
        assert len(roots) == 1
        assert roots[0]["name"] == "http.request"
        assert [c["name"] for c in roots[0]["children"]] == ["jobs.run"]

    def test_attaches_into_nested_children(self):
        parent = span("outer", span_id="aa" * 8, started=1.0)
        parent["children"] = [span("inner", span_id="bb" * 8, started=1.5)]
        late = span("late", span_id="cc" * 8, parent_id="bb" * 8, started=2.0)
        roots = assemble_tree([parent, late])
        inner = roots[0]["children"][0]
        assert [c["name"] for c in inner["children"]] == ["late"]

    def test_children_sorted_by_start_and_input_not_mutated(self):
        http = span("http.request", span_id="aa" * 8, started=1.0)
        first = span("early", span_id="bb" * 8, parent_id="aa" * 8, started=1.2)
        second = span("late", span_id="cc" * 8, parent_id="aa" * 8, started=1.1)
        sources = [http, first, second]
        roots = assemble_tree(sources)
        assert [c["name"] for c in roots[0]["children"]] == ["late", "early"]
        assert "children" not in http  # deep-copied, not mutated


class TestRecordAndMerge:
    def test_record_then_get(self):
        store = TraceStore(capacity=8)
        store.record(
            "t1",
            request_id="req1",
            route="/v1/explore",
            method="POST",
            status=200,
            duration_seconds=0.25,
            spans=[span("http.request", span_id="aa" * 8)],
        )
        trace = store.get("t1")
        assert trace["trace_id"] == "t1"
        assert trace["route"] == "/v1/explore"
        assert trace["duration_ms"] == 250.0
        assert trace["n_spans"] == 1
        assert [r["name"] for r in trace["tree"]] == ["http.request"]
        assert store.get("missing") is None

    def test_late_job_spans_merge_and_count(self):
        store = TraceStore(capacity=8)
        store.record(
            "t1", route="/v1/jobs", method="POST", status=202,
            duration_seconds=0.01,
            spans=[span("http.request", span_id="aa" * 8)],
        )
        store.add_spans(
            "t1",
            [span("jobs.run", span_id="bb" * 8, parent_id="aa" * 8, wall=0.5)],
            job_id="job1",
        )
        trace = store.get("t1")
        assert trace["n_jobs"] == 1
        assert trace["n_spans"] == 2
        # Job duration extends the trace duration (the async work
        # outlives the 202 response).
        assert trace["duration_ms"] >= 500.0
        tree = trace["tree"]
        assert len(tree) == 1
        assert [c["name"] for c in tree[0]["children"]] == ["jobs.run"]

    def test_job_spans_before_request_fall_through(self):
        store = TraceStore(capacity=8)
        store.add_spans("t-early", [span("jobs.run")], job_id="job1")
        trace = store.get("t-early")
        assert trace["n_jobs"] == 1
        assert trace["request_id"] == "t-early"[:16]
        # The request side arriving later claims the metadata.
        store.record(
            "t-early", route="/v1/jobs", method="POST", status=202,
            duration_seconds=0.01, spans=[span("http.request")],
        )
        trace = store.get("t-early")
        assert trace["route"] == "/v1/jobs"
        assert trace["n_spans"] == 2

    def test_error_span_marks_the_trace(self):
        store = TraceStore(capacity=8)
        store.record(
            "t1", route="/v1/explore", status=200, duration_seconds=0.01,
            spans=[span("http.request", status="error")],
        )
        assert store.get("t1")["error"] is True


class TestRetention:
    def test_plain_overflow_evicts_oldest(self):
        store = TraceStore(capacity=3, keep_slowest=0)
        for index in range(5):
            store.record(f"t{index}", route="/r", duration_seconds=0.01)
        assert len(store) == 3
        assert store.get("t0") is None and store.get("t1") is None
        assert store.get("t4") is not None
        assert store.stats()["evicted"] == 2

    def test_error_traces_survive_healthy_churn(self):
        store = TraceStore(capacity=3, keep_slowest=0)
        store.record("bad", route="/r", status=500, duration_seconds=0.01,
                     error=True)
        for index in range(6):
            store.record(f"ok{index}", route="/r", duration_seconds=0.01)
        assert store.get("bad") is not None

    def test_slowest_per_route_survive(self):
        store = TraceStore(capacity=3, keep_slowest=1)
        store.record("slow", route="/r", duration_seconds=9.0)
        for index in range(6):
            store.record(f"fast{index}", route="/r", duration_seconds=0.001)
        assert store.get("slow") is not None

    def test_all_protected_falls_back_to_oldest(self):
        store = TraceStore(capacity=2, keep_slowest=0)
        for index in range(4):
            store.record(f"e{index}", route="/r", status=500,
                         duration_seconds=0.01, error=True)
        assert len(store) == 2
        assert store.get("e0") is None
        assert store.get("e3") is not None


class TestSummaries:
    def _seed(self):
        store = TraceStore(capacity=16)
        store.record("a", route="/v1/explore", method="POST", status=200,
                     duration_seconds=0.002)
        store.record("b", route="/v1/jobs", method="POST", status=202,
                     duration_seconds=0.5)
        store.record("c", route="/v1/explore", method="POST", status=500,
                     duration_seconds=1.5, error=True)
        return store

    def test_newest_first(self):
        store = self._seed()
        assert [t["trace_id"] for t in store.summaries()] == ["c", "b", "a"]

    def test_route_filter(self):
        store = self._seed()
        assert [t["trace_id"] for t in store.summaries(route="/v1/jobs")] == [
            "b"
        ]

    def test_min_duration_filter(self):
        store = self._seed()
        assert [
            t["trace_id"] for t in store.summaries(min_duration_ms=400)
        ] == ["c", "b"]

    def test_errors_only(self):
        store = self._seed()
        assert [
            t["trace_id"] for t in store.summaries(errors_only=True)
        ] == ["c"]

    def test_limit(self):
        store = self._seed()
        assert len(store.summaries(limit=2)) == 2

    def test_stats_and_clear(self):
        store = self._seed()
        stats = store.stats()
        assert stats["traces"] == 3
        assert stats["errors"] == 1
        assert stats["capacity"] == 16
        store.clear()
        assert len(store) == 0
