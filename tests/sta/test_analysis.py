"""Tests for static timing analysis and effective logical depth."""

import pytest

from repro.experiments.paper_data import TABLE1_BY_NAME
from repro.generators import build_multiplier
from repro.netlist import Builder, Netlist
from repro.sta import (
    analyze_timing,
    critical_path_length,
    effective_logical_depth,
    stage_depths,
)


class TestOnSmallCircuits:
    def test_inverter_chain_depth(self):
        netlist = Netlist("chain")
        builder = Builder(netlist)
        node = netlist.add_input("a")
        for _ in range(10):
            node = builder.invert(node)
        netlist.set_outputs([node])
        netlist.freeze()
        assert critical_path_length(netlist) == pytest.approx(10.0)

    def test_registered_path_includes_clock_to_q(self):
        netlist = Netlist("reg")
        builder = Builder(netlist)
        a = netlist.add_input("a")
        q = builder.register(a)          # clk-to-q = 2.0
        out = builder.invert(q)          # + 1.0
        end = builder.register(out)      # endpoint at D
        netlist.set_outputs([end])
        netlist.freeze()
        assert critical_path_length(netlist) == pytest.approx(3.0)

    def test_parallel_paths_take_max(self):
        netlist = Netlist("max")
        builder = Builder(netlist)
        a = netlist.add_input("a")
        slow = a
        for _ in range(5):
            slow = builder.invert(slow)
        fast = builder.invert(a)
        out = builder.gate("AND2", slow, fast)
        netlist.set_outputs([out])
        netlist.freeze()
        report = analyze_timing(netlist)
        assert report.critical_path_length == pytest.approx(5.0 + 1.8)
        # The AND sees arrivals 5.0 and 1.0: spread 4.0.
        assert report.max_arrival_spread == pytest.approx(4.0)

    def test_critical_endpoint_named(self):
        netlist = Netlist("name")
        builder = Builder(netlist)
        a = netlist.add_input("a")
        netlist.set_outputs([builder.invert(a)])
        netlist.freeze()
        report = analyze_timing(netlist)
        assert report.critical_endpoint != "(none)"


class TestOnMultipliers:
    @pytest.fixture(scope="class")
    def depths(self):
        names = [
            "RCA", "RCA hor.pipe2", "RCA hor.pipe4", "RCA diagpipe2",
            "RCA diagpipe4", "RCA parallel", "Wallace", "Sequential",
        ]
        return {
            name: effective_logical_depth(build_multiplier(name))
            for name in names
        }

    def test_ld_ordering_matches_table1(self, depths):
        """Every pairwise LDeff ordering of Table 1 must hold natively."""
        assert depths["Wallace"] < depths["RCA parallel"] < depths["RCA"]
        assert depths["RCA hor.pipe4"] < depths["RCA hor.pipe2"] < depths["RCA"]
        assert depths["RCA diagpipe4"] < depths["RCA diagpipe2"] < depths["RCA"]
        assert depths["RCA"] < depths["Sequential"]

    def test_diagonal_cuts_deeper_than_horizontal(self, depths):
        """Diagonal register planes shorten the worst path more (Figure 4)."""
        assert depths["RCA diagpipe2"] < depths["RCA hor.pipe2"]
        assert depths["RCA diagpipe4"] < depths["RCA hor.pipe4"]

    def test_ld_magnitude_tracks_table1(self, depths):
        """Within a global scale factor (delay-unit convention), the native
        LDeff column must track the published one."""
        for name, native in depths.items():
            published = TABLE1_BY_NAME[name].logical_depth
            ratio = native / published
            assert 1.0 < ratio < 3.2, (name, ratio)

    def test_sequential_ld_is_cycles_times_path(self, depths):
        impl = build_multiplier("Sequential")
        assert effective_logical_depth(impl) == pytest.approx(
            16 * critical_path_length(impl.netlist)
        )

    def test_parallel_ld_divides_by_k(self):
        impl = build_multiplier("RCA parallel")
        assert effective_logical_depth(impl) == pytest.approx(
            critical_path_length(impl.netlist) / 2.0
        )

    def test_stage_depths_sorted_and_bounded(self):
        impl = build_multiplier("RCA hor.pipe2")
        depths = stage_depths(impl.netlist)
        assert depths == sorted(depths, reverse=True)
        assert depths[0] == pytest.approx(critical_path_length(impl.netlist))
