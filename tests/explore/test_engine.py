"""Engine orchestration: methods, fallback, caching, delegation."""

import pytest

from repro.core.closed_form import closed_form_optimum
from repro.core.numerical import numerical_optimum
from repro.core.selection import evaluate_candidates
from repro.explore import engine as engine_module
from repro.explore.cache import ResultCache
from repro.explore.engine import (
    EvaluationStats,
    PointResult,
    evaluate_points,
    explore,
)
from repro.explore.scenario import (
    DesignPoint,
    FrequencyGrid,
    Scenario,
    demo_scenario,
)


@pytest.fixture
def small_scenario(wallace_arch, tech_ll):
    return Scenario(
        name="small",
        architectures=(wallace_arch,),
        technologies=(tech_ll,),
        frequencies=FrequencyGrid.logspace(4e6, 2e9, 14),
    )


class TestEvaluatePoints:
    def test_outcomes_align_with_points(self, small_scenario):
        points = small_scenario.expand()
        outcomes = evaluate_points(points, jobs=1)
        assert len(outcomes) == len(points)
        for point, outcome in zip(points, outcomes):
            assert outcome.point is point

    def test_auto_matches_closed_form_on_interior(self, wallace_arch, tech_ll):
        point = DesignPoint(wallace_arch, tech_ll, 31.25e6)
        (outcome,) = evaluate_points([point], jobs=1)
        assert outcome.method == "vectorized-closed-form"
        scalar = closed_form_optimum(wallace_arch, tech_ll, 31.25e6)
        assert outcome.result.ptot == pytest.approx(scalar.ptot, rel=1e-9)

    def test_fallback_points_use_reference_solver(self, wallace_arch, tech_ll):
        # 2 GHz is infeasible for this circuit: auto must report the
        # numerical solver's verdict, not the closed form's.
        infeasible = DesignPoint(wallace_arch, tech_ll, 2e9)
        (outcome,) = evaluate_points([infeasible], jobs=1)
        assert not outcome.feasible
        assert outcome.method == "numerical-fallback"
        assert outcome.reason != ""

    def test_numerical_method_matches_direct_calls(self, small_scenario):
        points = small_scenario.expand()
        outcomes = evaluate_points(points, method="numerical", jobs=1)
        for point, outcome in zip(points, outcomes):
            try:
                expected = numerical_optimum(
                    point.architecture, point.technology, point.frequency
                )
            except ValueError as error:
                assert not outcome.feasible
                assert outcome.reason == str(error)
            else:
                assert outcome.result.ptot == pytest.approx(
                    expected.ptot, rel=1e-12
                )

    def test_closed_form_method_never_calls_scipy(
        self, small_scenario, monkeypatch
    ):
        def _banned(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("closed-form method must not call scipy")

        monkeypatch.setattr(
            engine_module.executor_module, "run_numerical", _banned
        )
        outcomes = evaluate_points(
            small_scenario.expand(), method="closed-form"
        )
        assert any(o.feasible for o in outcomes)
        assert any(not o.feasible for o in outcomes)
        for outcome in outcomes:
            assert outcome.method == "vectorized-closed-form"

    def test_auto_agrees_with_numerical_within_paper_error(
        self, small_scenario
    ):
        """Eq. 13's headline <3 % claim holds across the auto sweep."""
        auto = evaluate_points(small_scenario.expand(), jobs=1)
        exact = evaluate_points(
            small_scenario.expand(), method="numerical", jobs=1
        )
        compared = 0
        for fast, reference in zip(auto, exact):
            if fast.feasible and reference.feasible:
                error = abs(fast.result.ptot - reference.result.ptot)
                assert error / reference.result.ptot < 0.03
                compared += 1
        assert compared >= 5

    def test_unknown_method_rejected(self, wallace_arch, tech_ll):
        point = DesignPoint(wallace_arch, tech_ll, 31.25e6)
        with pytest.raises(ValueError, match="unknown method"):
            evaluate_points([point], method="magic")


class TestExploreCache:
    def test_miss_then_hit(self, small_scenario, tmp_path):
        first = explore(small_scenario, cache=tmp_path, jobs=1)
        assert not first.cache_hit
        assert first.cache_path is not None and first.cache_path.is_file()

        second = explore(small_scenario, cache=tmp_path, jobs=1)
        assert second.cache_hit
        assert second.points == first.points
        # Phase timings are per-run wall clocks: the computed run's map
        # includes cache_write, the replayed one only what was stored.
        import dataclasses

        assert dataclasses.replace(
            second.stats, phases={}
        ) == dataclasses.replace(first.stats, phases={})
        assert "kernel" in second.stats.phases

    def test_hit_does_no_reevaluation(
        self, small_scenario, tmp_path, monkeypatch
    ):
        explore(small_scenario, cache=tmp_path, jobs=1)

        def _banned(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("cache hit must not re-evaluate")

        monkeypatch.setattr(engine_module, "evaluate_points", _banned)
        result = explore(small_scenario, cache=tmp_path, jobs=1)
        assert result.cache_hit

    def test_method_changes_cache_key(self, small_scenario, tmp_path):
        explore(small_scenario, cache=tmp_path, jobs=1)
        numerical = explore(
            small_scenario, method="numerical", cache=tmp_path, jobs=1
        )
        assert not numerical.cache_hit
        assert len(ResultCache(tmp_path).entries()) == 2

    def test_scenario_edit_changes_cache_key(
        self, small_scenario, tmp_path, wallace_arch, tech_ll
    ):
        import dataclasses

        explore(small_scenario, cache=tmp_path, jobs=1)
        edited = dataclasses.replace(
            small_scenario, frequencies=FrequencyGrid.single(31.25e6)
        )
        assert not explore(edited, cache=tmp_path, jobs=1).cache_hit

    def test_use_cache_false_bypasses(self, small_scenario, tmp_path):
        result = explore(
            small_scenario, cache=tmp_path, use_cache=False, jobs=1
        )
        assert result.cache_path is None
        assert ResultCache(tmp_path).entries() == []

    def test_corrupt_entry_is_a_miss(self, small_scenario, tmp_path):
        from repro.service.memcache import default_memory_cache

        first = explore(small_scenario, cache=tmp_path, jobs=1)
        first.cache_path.write_text("{not json", encoding="utf-8")
        # Drop the in-memory tier too: with it warm, the corrupt disk
        # entry is shadowed rather than re-read (covered below).
        default_memory_cache().clear()
        again = explore(small_scenario, cache=tmp_path, jobs=1)
        assert not again.cache_hit
        assert again.points == first.points

    def test_memory_tier_shadows_a_corrupted_disk_entry(
        self, small_scenario, tmp_path
    ):
        first = explore(small_scenario, cache=tmp_path, jobs=1)
        first.cache_path.write_text("{not json", encoding="utf-8")
        again = explore(small_scenario, cache=tmp_path, jobs=1)
        assert again.cache_hit
        assert again.points == first.points

    def test_memory_tier_serves_without_disk_reads(
        self, small_scenario, tmp_path, monkeypatch
    ):
        explore(small_scenario, cache=tmp_path, jobs=1)

        def _banned(self, key):  # pragma: no cover - guard
            raise AssertionError("memory hit must not read the disk tier")

        monkeypatch.setattr(ResultCache, "get", _banned)
        assert explore(small_scenario, cache=tmp_path, jobs=1).cache_hit


class TestPointResult:
    def test_round_trip(self, small_scenario, tmp_path):
        result = explore(small_scenario, cache=tmp_path, jobs=1)
        for point in result.points:
            assert PointResult.from_dict(point.to_dict()) == point

    def test_area_proxy_falls_back_to_cell_count(self):
        record = PointResult(
            architecture="a", technology="t", frequency=1e6,
            n_cells=100.0, activity=0.1, logical_depth=10.0,
            capacitance=1e-15, area=0.0, feasible=False, method="m",
        )
        assert record.area_proxy == 100.0
        assert record.ptot_or_inf == float("inf")

    def test_stats_round_trip(self):
        stats = EvaluationStats(10, 8, 7, 3, 0.5)
        assert EvaluationStats.from_dict(stats.to_dict()) == stats


class TestSelectionDelegation:
    def test_evaluate_candidates_matches_reference(
        self, wallace_arch, tech_ll, paper_frequency
    ):
        candidates = evaluate_candidates(
            [wallace_arch], [tech_ll], paper_frequency
        )
        assert len(candidates) == 1
        expected = numerical_optimum(wallace_arch, tech_ll, paper_frequency)
        assert candidates[0].ptot == pytest.approx(expected.ptot, rel=1e-12)

    def test_infeasible_reporting_preserved(self, tech_ll, paper_frequency):
        from repro import ArchitectureParameters

        impossible = ArchitectureParameters(
            name="impossible", n_cells=100, activity=0.1,
            logical_depth=100000, capacitance=10e-15,
        )
        (candidate,) = evaluate_candidates(
            [impossible], [tech_ll], paper_frequency
        )
        assert not candidate.feasible
        assert candidate.result is None
        assert candidate.reason != ""
        assert candidate.ptot == float("inf")


class TestDemoScenarioEndToEnd:
    def test_thousand_candidate_sweep(self, tmp_path):
        """Acceptance: a ≥1,000-candidate scenario evaluates, and the
        second run is a pure cache hit."""
        scenario = demo_scenario()
        assert scenario.size >= 1000
        result = explore(scenario, cache=tmp_path, jobs=1)
        assert len(result.points) == scenario.size
        assert result.stats.n_vectorized > 0.8 * scenario.size
        assert result.best is not None
        assert explore(scenario, cache=tmp_path, jobs=1).cache_hit
