"""Content hashing and the JSON-on-disk result cache."""

import os

import pytest

from repro.explore.cache import (
    CACHE_DIR_ENV,
    ResultCache,
    canonical_json,
    content_hash,
    default_cache_dir,
)


class TestContentHash:
    def test_key_order_does_not_matter(self):
        assert content_hash({"a": 1, "b": [1, 2]}) == content_hash(
            {"b": [1, 2], "a": 1}
        )

    def test_value_changes_do(self):
        assert content_hash({"a": 1}) != content_hash({"a": 2})

    def test_canonical_json_is_compact_and_sorted(self):
        assert canonical_json({"b": 1, "a": 2}) == '{"a":2,"b":1}'


class TestDefaultDir:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "custom"))
        assert default_cache_dir() == tmp_path / "custom"


class TestResultCache:
    def test_miss_returns_none(self, tmp_path):
        assert ResultCache(tmp_path).get("absent") is None

    def test_put_then_get(self, tmp_path):
        cache = ResultCache(tmp_path)
        payload = {"points": [1, 2, 3], "stats": {"n": 3}}
        path = cache.put("key", payload)
        assert path == cache.path_for("key")
        assert cache.get("key") == payload

    def test_corrupt_entry_returns_none(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("key", {"ok": True})
        cache.path_for("key").write_text("{broken", encoding="utf-8")
        assert cache.get("key") is None

    def test_put_is_atomic_no_temp_left_behind(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("key", {"ok": True})
        assert [p.suffix for p in tmp_path.iterdir()] == [".json"]

    def test_entries_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("one", {})
        cache.put("two", {})
        assert len(cache.entries()) == 2
        assert cache.clear() == 2
        assert cache.entries() == []

    def test_entries_on_missing_dir(self, tmp_path):
        assert ResultCache(tmp_path / "nope").entries() == []

    def test_stats_counts_entries_and_bytes(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.stats() == {
            "directory": str(tmp_path), "entries": 0, "total_bytes": 0,
            "quarantined": 0,
        }
        cache.put("one", {"v": 1})
        cache.put("two", {"v": 2})
        stats = cache.stats()
        assert stats["entries"] == 2
        assert stats["total_bytes"] == sum(
            path.stat().st_size for path in cache.entries()
        )

    def test_prune_keeps_newest(self, tmp_path):
        import time

        cache = ResultCache(tmp_path)
        for index in range(4):
            cache.put(f"k{index}", {"v": index})
            mtime = time.time() + index  # force distinct, ordered mtimes
            os.utime(cache.path_for(f"k{index}"), (mtime, mtime))
        assert cache.prune(2) == 2
        assert cache.get("k3") == {"v": 3}
        assert cache.get("k2") == {"v": 2}
        assert cache.get("k0") is None and cache.get("k1") is None

    def test_prune_zero_clears_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", {})
        assert cache.prune(0) == 1
        assert cache.entries() == []

    def test_prune_beyond_size_is_a_noop(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", {})
        assert cache.prune(10) == 0
        assert len(cache.entries()) == 1

    def test_prune_rejects_negative(self, tmp_path):
        with pytest.raises(ValueError, match="max_entries"):
            ResultCache(tmp_path).prune(-1)

    def test_unwritable_put_raises_oserror(self, tmp_path):
        if os.geteuid() == 0:
            pytest.skip("root bypasses permission bits")
        blocked = tmp_path / "blocked"
        blocked.mkdir()
        blocked.chmod(0o500)
        with pytest.raises(OSError):
            ResultCache(blocked).put("key", {})
