"""Vectorized-vs-scalar parity of the Eq. 9–13 batch kernel."""

import numpy as np
import pytest

from repro.core.closed_form import (
    InfeasibleConstraintError,
    closed_form_breakdown,
    closed_form_optimum,
    ptot_eq13,
)
from repro.core.constraint import chi_for_architecture
from repro.explore.vectorized import (
    FALLBACK_MARGIN,
    chi_batch,
    closed_form_batch,
)

#: A frequency grid wide enough to span every regime: deep interior,
#: the Eq. 7 fit-range overshoot at low f, the fallback band and the
#: infeasible region at high f.
FREQUENCIES = np.geomspace(0.5e6, 2e9, 60)


@pytest.fixture
def batch(wallace_arch, tech_ll):
    arch = wallace_arch
    return arch, closed_form_batch(
        tech_ll,
        n_cells=arch.n_cells,
        activity=arch.activity,
        logical_depth=arch.logical_depth,
        capacitance=arch.capacitance,
        frequency=FREQUENCIES,
        io_factor=arch.io_factor,
        zeta_factor=arch.zeta_factor,
    )


class TestChiBatch:
    def test_matches_scalar_chi(self, wallace_arch, tech_ll):
        values = chi_batch(
            tech_ll,
            wallace_arch.logical_depth,
            FREQUENCIES,
            wallace_arch.zeta_factor,
        )
        for frequency, value in zip(FREQUENCIES, values):
            scalar = chi_for_architecture(wallace_arch, tech_ll, frequency)
            assert value == pytest.approx(scalar, rel=1e-12)

    def test_broadcasts_frequency_against_depth(self, tech_ll):
        grid = chi_batch(
            tech_ll,
            np.array([[17.0], [61.0]]),
            FREQUENCIES[np.newaxis, :],
        )
        assert grid.shape == (2, len(FREQUENCIES))
        # χ grows with both depth and frequency.
        assert np.all(np.diff(grid, axis=1) > 0)
        assert np.all(grid[1] > grid[0])


class TestRegimeClassification:
    def test_grid_spans_all_regimes(self, batch):
        _, result = batch
        assert result.n_feasible > 0
        assert result.n_fallback > 0
        assert result.n_feasible < result.size  # some infeasible points

    def test_infeasible_matches_scalar_exceptions(self, batch, tech_ll):
        arch, result = batch
        for index, frequency in enumerate(FREQUENCIES):
            if result.feasible[index]:
                closed_form_breakdown(arch, tech_ll, frequency)
            else:
                with pytest.raises(InfeasibleConstraintError):
                    closed_form_breakdown(arch, tech_ll, frequency)
                assert np.isnan(result.ptot[index])

    def test_near_boundary_points_are_flagged(self, batch):
        _, result = batch
        near_boundary = result.feasible & (result.margin < FALLBACK_MARGIN)
        assert np.all(result.needs_fallback[near_boundary])


class TestClosedFormParity:
    def test_operating_point_parity(self, batch, tech_ll):
        """Vdd*, Vth*, Pdyn, Pstat, Ptot agree with closed_form_optimum
        to 1e-9 relative on every feasible point (interior and flagged:
        the scalar chain uses the same fixed Eq. 7 fit)."""
        arch, result = batch
        checked = 0
        for index, frequency in enumerate(FREQUENCIES):
            if not result.feasible[index]:
                continue
            scalar = closed_form_optimum(arch, tech_ll, frequency)
            assert result.vdd[index] == pytest.approx(scalar.point.vdd, rel=1e-9)
            assert result.vth[index] == pytest.approx(scalar.point.vth, rel=1e-9)
            assert result.pdyn[index] == pytest.approx(scalar.point.pdyn, rel=1e-9)
            assert result.pstat[index] == pytest.approx(scalar.point.pstat, rel=1e-9)
            assert result.ptot[index] == pytest.approx(scalar.ptot, rel=1e-9)
            checked += 1
        assert checked >= 10

    def test_eq13_column_parity(self, batch, tech_ll):
        arch, result = batch
        for index, frequency in enumerate(FREQUENCIES):
            if result.feasible[index]:
                scalar = ptot_eq13(arch, tech_ll, frequency)
                assert result.ptot_eq13[index] == pytest.approx(scalar, rel=1e-9)

    def test_parity_across_architecture_axis(self, tech_ll, paper_frequency):
        """Broadcast over an (N, a, LD) grid at fixed frequency."""
        from repro import ArchitectureParameters

        n_cells = np.array([290.0, 608.0, 729.0, 2939.0])
        activity = np.array([2.9152, 0.5056, 0.2976, 0.0832])
        depth = np.array([224.0, 61.0, 17.0, 4.75])
        result = closed_form_batch(
            tech_ll,
            n_cells=n_cells,
            activity=activity,
            logical_depth=depth,
            capacitance=70e-15,
            frequency=paper_frequency,
            io_factor=18.0,
            zeta_factor=0.2,
        )
        for index in range(len(n_cells)):
            arch = ArchitectureParameters(
                name=f"row{index}",
                n_cells=n_cells[index],
                activity=activity[index],
                logical_depth=depth[index],
                capacitance=70e-15,
                io_factor=18.0,
                zeta_factor=0.2,
            )
            if not result.feasible[index]:
                continue
            scalar = closed_form_optimum(arch, tech_ll, paper_frequency)
            assert result.ptot[index] == pytest.approx(scalar.ptot, rel=1e-9)
