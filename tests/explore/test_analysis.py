"""Pareto frontier, ranking and report on hand-built candidate sets."""

import pytest

from repro.explore.analysis import (
    pareto_frontier,
    pareto_mask,
    rank_points,
    report,
)
from repro.explore.engine import PointResult


def _point(name, ptot, frequency, area, feasible=True, tech="LL"):
    return PointResult(
        architecture=name,
        technology=tech,
        frequency=frequency,
        n_cells=500.0,
        activity=0.3,
        logical_depth=20.0,
        capacitance=70e-15,
        area=area,
        feasible=feasible,
        method="hand-built",
        vdd=0.4 if feasible else None,
        vth=0.2 if feasible else None,
        pdyn=0.8 * ptot if feasible else None,
        pstat=0.2 * ptot if feasible else None,
        ptot=ptot if feasible else None,
        reason="" if feasible else "cannot close timing",
    )


@pytest.fixture
def candidates():
    return [
        # A: dominated by B (more power, less frequency, more area).
        _point("A", ptot=2e-4, frequency=10e6, area=200.0),
        # B: dominates A outright.
        _point("B", ptot=1e-4, frequency=20e6, area=100.0),
        # C: cheaper but slower than B — non-dominated trade-off.
        _point("C", ptot=0.5e-4, frequency=5e6, area=300.0),
        # D: fastest of all — non-dominated despite being priciest.
        _point("D", ptot=4e-4, frequency=50e6, area=400.0),
        # E: infeasible — never on the front, never dominates.
        _point("E", ptot=None, frequency=100e6, area=50.0, feasible=False),
    ]


class TestParetoFrontier:
    def test_hand_built_front(self, candidates):
        front = pareto_frontier(candidates)
        assert [p.architecture for p in front] == ["C", "B", "D"]

    def test_mask_aligns_with_input(self, candidates):
        mask = pareto_mask(candidates)
        assert list(mask) == [False, True, True, True, False]

    def test_duplicate_points_both_kept(self):
        twins = [
            _point("twin1", ptot=1e-4, frequency=10e6, area=100.0),
            _point("twin2", ptot=1e-4, frequency=10e6, area=100.0),
        ]
        # Equal points do not dominate each other (no strict improvement).
        assert len(pareto_frontier(twins)) == 2

    def test_all_infeasible_gives_empty_front(self):
        points = [
            _point("x", ptot=None, frequency=1e6, area=1.0, feasible=False)
        ]
        assert pareto_frontier(points) == []

    def test_single_objective_reduces_to_argmin(self, candidates):
        front = pareto_frontier(candidates, objectives=(("ptot_or_inf", "min"),))
        assert [p.architecture for p in front] == ["C"]

    def test_bad_sense_rejected(self, candidates):
        with pytest.raises(ValueError, match="min/max"):
            pareto_frontier(candidates, objectives=(("ptot_or_inf", "best"),))


class TestRanking:
    def test_cheapest_first_infeasible_last(self, candidates):
        ranked = rank_points(candidates)
        assert [p.architecture for p in ranked] == ["C", "B", "A", "D", "E"]


class TestReport:
    def test_report_contents(self, candidates):
        text = report(candidates, top=3)
        assert "Pareto frontier" in text
        assert "C" in text and "infeasible" in text.lower()
        # The frontier members shown in the top-3 carry the mark.
        marked = [
            line for line in text.splitlines() if line.lstrip().startswith(("1 *", "2 *"))
        ]
        assert marked, text

    def test_report_counts(self, candidates):
        text = report(candidates, top=10)
        assert "5 candidates: 4 feasible, 1 infeasible" in text


def _brute_force_mask(points, objectives):
    """O(n²) oracle with the documented domination semantics."""
    import numpy as np

    values = []
    for p in points:
        row = []
        for attribute, sense in objectives:
            v = float(getattr(p, attribute))
            row.append(v if sense == "min" else -v)
        values.append(row)
    values = np.asarray(values)
    mask = np.zeros(len(points), dtype=bool)
    for i, p in enumerate(points):
        if not p.feasible:
            continue
        dominated = False
        for j, q in enumerate(points):
            if i == j or not q.feasible:
                continue
            if (values[j] <= values[i]).all() and (values[j] < values[i]).any():
                dominated = True
                break
        mask[i] = not dominated
    return mask


class TestVectorizedParetoOracle:
    """The lexsort/sweep implementation vs the brute-force pairwise test."""

    OBJECTIVES = (("ptot_or_inf", "min"), ("frequency", "max"),
                  ("area_proxy", "min"))

    def _random_points(self, rng, n):
        points = []
        for k in range(n):
            feasible = rng.random() > 0.15
            # Coarse value grid on purpose: collisions and exact
            # duplicates must keep the historical tie semantics.
            ptot = float(rng.integers(1, 6)) * 1e-4
            points.append(_point(
                f"p{k}",
                ptot=ptot,
                frequency=float(rng.integers(1, 5)) * 1e7,
                area=float(rng.integers(1, 4)) * 100.0,
                feasible=feasible,
            ))
        return points

    def test_matches_oracle_on_random_grids(self):
        import numpy as np

        rng = np.random.default_rng(7)
        for n in (1, 2, 17, 60, 151):
            points = self._random_points(rng, n)
            expected = _brute_force_mask(points, self.OBJECTIVES)
            actual = pareto_mask(points, self.OBJECTIVES)
            assert np.array_equal(actual, expected), f"n={n}"

    def test_table_input_matches_list_input(self):
        import numpy as np

        from repro.explore.columnar import ResultTable

        rng = np.random.default_rng(11)
        points = self._random_points(rng, 80)
        table = ResultTable.from_records(points)
        assert np.array_equal(pareto_mask(table.rows()), pareto_mask(points))
        assert pareto_frontier(table.rows()) == pareto_frontier(points)
        assert rank_points(table.rows()) == rank_points(points)
        assert report(table.rows()) == report(points)

    def test_continuous_random_values(self):
        import numpy as np

        rng = np.random.default_rng(3)
        points = [
            _point(
                f"c{k}",
                ptot=float(rng.uniform(1e-5, 1e-3)),
                frequency=float(rng.uniform(1e6, 1e8)),
                area=float(rng.uniform(50, 500)),
                feasible=bool(rng.random() > 0.1),
            )
            for k in range(120)
        ]
        expected = _brute_force_mask(points, self.OBJECTIVES)
        assert np.array_equal(pareto_mask(points, self.OBJECTIVES), expected)
