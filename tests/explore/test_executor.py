"""Parallel executor: serial/parallel parity and chunking behaviour."""

import pytest

from repro import ArchitectureParameters
from repro.explore.executor import resolve_jobs, run_numerical, solve_point
from repro.explore.scenario import DesignPoint


@pytest.fixture
def mixed_points(wallace_arch, tech_ll):
    """Feasible interior points plus one that cannot close timing."""
    impossible = ArchitectureParameters(
        name="impossible", n_cells=100, activity=0.1,
        logical_depth=100000, capacitance=10e-15,
    )
    frequencies = [8e6, 16e6, 31.25e6, 62.5e6]
    points = [DesignPoint(wallace_arch, tech_ll, f) for f in frequencies]
    points.append(DesignPoint(impossible, tech_ll, 31.25e6))
    return points


class TestResolveJobs:
    def test_defaults_to_cpu_count(self):
        assert resolve_jobs(None, 100) >= 1

    def test_capped_by_task_count(self):
        assert resolve_jobs(8, 3) == 3

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            resolve_jobs(0, 5)


class TestSolvePoint:
    def test_feasible_returns_result(self, wallace_arch, tech_ll):
        result, reason = solve_point((wallace_arch, tech_ll, 31.25e6))
        assert result is not None and reason == ""
        assert result.ptot > 0

    def test_infeasible_returns_reason(self, tech_ll):
        impossible = ArchitectureParameters(
            name="impossible", n_cells=100, activity=0.1,
            logical_depth=100000, capacitance=10e-15,
        )
        result, reason = solve_point((impossible, tech_ll, 31.25e6))
        assert result is None and reason != ""


class TestRunNumerical:
    def test_serial_preserves_order(self, mixed_points):
        outcomes = run_numerical(mixed_points, jobs=1)
        assert len(outcomes) == len(mixed_points)
        feasible = [result is not None for result, _ in outcomes]
        assert feasible == [True, True, True, True, False]

    def test_parallel_matches_serial(self, mixed_points):
        # Repeat the point list so the batch crosses PARALLEL_THRESHOLD
        # and actually exercises the pool.
        points = mixed_points * 5
        serial = run_numerical(points, jobs=1)
        parallel = run_numerical(points, jobs=2, chunk_size=3)
        assert len(parallel) == len(serial)
        for (s_result, s_reason), (p_result, p_reason) in zip(serial, parallel):
            assert (s_result is None) == (p_result is None)
            assert s_reason == p_reason
            if s_result is not None:
                assert p_result.ptot == pytest.approx(s_result.ptot, rel=1e-12)


class TestTaskDeduplication:
    def test_duplicates_solve_once_and_fan_out(
        self, wallace_arch, tech_ll, monkeypatch
    ):
        from repro.explore import executor as executor_module
        from repro.explore.scenario import DesignPoint

        calls = []
        original = executor_module.solve_point

        def counting(task):
            calls.append(task)
            return original(task)

        monkeypatch.setattr(executor_module, "solve_point", counting)
        unique = [
            DesignPoint(wallace_arch, tech_ll, 31.25e6),
            DesignPoint(wallace_arch, tech_ll, 62.5e6),
        ]
        repeated = [unique[0], unique[1], unique[0], unique[0], unique[1]]
        results = executor_module.run_numerical(repeated, jobs=1)
        assert len(calls) == 2
        assert len(results) == 5
        assert results[0] == results[2] == results[3]
        assert results[1] == results[4]
        assert results[0][0].point.ptot != results[1][0].point.ptot

    def test_equal_but_distinct_objects_deduplicate(
        self, wallace_arch, tech_ll, monkeypatch
    ):
        import dataclasses

        from repro.explore import executor as executor_module
        from repro.explore.scenario import DesignPoint

        calls = []
        original = executor_module.solve_point

        def counting(task):
            calls.append(task)
            return original(task)

        monkeypatch.setattr(executor_module, "solve_point", counting)
        twin = dataclasses.replace(wallace_arch)
        points = [
            DesignPoint(wallace_arch, tech_ll, 31.25e6),
            DesignPoint(twin, tech_ll, 31.25e6),
        ]
        results = executor_module.run_numerical(points, jobs=1)
        assert len(calls) == 1
        assert results[0] == results[1]
