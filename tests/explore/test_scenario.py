"""Scenario spec: expansion, JSON round-trip, content hashing."""

import dataclasses

import pytest

from repro.core.architecture import ArchitectureParameters
from repro.core.technology import ST_CMOS09_LL, Technology
from repro.explore.scenario import (
    FrequencyGrid,
    Scenario,
    TransformStep,
    demo_scenario,
    parallelize_step,
    pipeline_step,
    sequentialize_step,
)


class TestTransformStep:
    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown transform op"):
            TransformStep("fold")

    def test_pipeline_step_applies(self, wallace_arch):
        step = pipeline_step(2)
        transformed = step.apply(wallace_arch)
        assert "pipe2" in transformed.name
        assert transformed.logical_depth < wallace_arch.logical_depth

    def test_round_trip(self):
        for step in (
            pipeline_step(4, style="diagonal"),
            parallelize_step(2, n_outputs=16),
            sequentialize_step(16),
        ):
            assert TransformStep.from_dict(step.to_dict()) == step


class TestFrequencyGrid:
    def test_constructors(self):
        assert len(FrequencyGrid.linear(1e6, 9e6, 9)) == 9
        assert len(FrequencyGrid.logspace(1e6, 64e6, 7)) == 7
        assert list(FrequencyGrid.single(31.25e6)) == [31.25e6]

    def test_rejects_empty_and_non_positive(self):
        with pytest.raises(ValueError):
            FrequencyGrid(())
        with pytest.raises(ValueError):
            FrequencyGrid((1e6, -2e6))

    def test_from_dict_spec_form(self):
        grid = FrequencyGrid.from_dict(
            {"start": 1e6, "stop": 4e6, "points": 4, "spacing": "linear"}
        )
        assert grid.values == (1e6, 2e6, 3e6, 4e6)

    def test_round_trip_is_bit_exact(self):
        grid = FrequencyGrid.logspace(2e6, 64e6, 13)
        assert FrequencyGrid.from_dict(grid.to_dict()) == grid


class TestScenario:
    def test_size_and_expand_agree(self):
        scenario = demo_scenario(frequency_points=5)
        points = scenario.expand()
        assert len(points) == scenario.size == 2 * 4 * 3 * 5

    def test_expansion_applies_chains(self, wallace_arch, tech_ll):
        scenario = Scenario(
            name="chained",
            architectures=(wallace_arch,),
            technologies=(tech_ll,),
            frequencies=FrequencyGrid.single(31.25e6),
            transform_chains=((), (pipeline_step(2), parallelize_step(2))),
        )
        names = [p.architecture.name for p in scenario.expand()]
        assert names[0] == wallace_arch.name
        assert "pipe2" in names[1] and "par2" in names[1]

    def test_json_round_trip_exact(self):
        scenario = demo_scenario(frequency_points=7)
        restored = Scenario.from_json(scenario.to_json())
        assert restored == scenario
        assert restored.content_hash() == scenario.content_hash()

    def test_from_dict_accepts_flavour_labels(self, wallace_arch):
        payload = Scenario(
            name="labels",
            architectures=(wallace_arch,),
            technologies=(ST_CMOS09_LL,),
            frequencies=FrequencyGrid.single(31.25e6),
        ).to_dict()
        payload["technologies"] = ["LL"]
        restored = Scenario.from_dict(payload)
        assert restored.technologies == (ST_CMOS09_LL,)

    def test_content_hash_tracks_every_field(self):
        base = demo_scenario(frequency_points=5)
        variants = [
            dataclasses.replace(base, name="renamed"),
            dataclasses.replace(
                base, frequencies=FrequencyGrid.logspace(2e6, 64e6, 6)
            ),
            dataclasses.replace(base, transform_chains=((),)),
            dataclasses.replace(
                base,
                technologies=(
                    Technology(
                        name="custom", io=1e-6, zeta=6e-12, alpha=1.7,
                        n=1.3, vdd_nominal=1.1, vth0_nominal=0.3,
                    ),
                ),
            ),
        ]
        hashes = {base.content_hash()} | {v.content_hash() for v in variants}
        assert len(hashes) == 1 + len(variants)

    def test_empty_axes_rejected(self, wallace_arch, tech_ll):
        grid = FrequencyGrid.single(31.25e6)
        with pytest.raises(ValueError):
            Scenario("s", (), (tech_ll,), grid)
        with pytest.raises(ValueError):
            Scenario("s", (wallace_arch,), (), grid)
        with pytest.raises(ValueError):
            Scenario("s", (wallace_arch,), (tech_ll,), grid, transform_chains=())

    def test_demo_scenario_is_large_enough(self):
        assert demo_scenario().size >= 1000


class TestArchitectureFactorRoundTrips:
    """io_factor / zeta_factor survive the Scenario JSON round-trip exactly
    and actually change the evaluated optimum (they feed Eq. 13)."""

    def _arch(self, io_factor, zeta_factor):
        return ArchitectureParameters(
            name="factors",
            n_cells=729,
            activity=0.2976,
            logical_depth=17.0,
            capacitance=70e-15,
            io_factor=io_factor,
            zeta_factor=zeta_factor,
        )

    def test_factors_round_trip_bit_exact(self, tech_ll):
        # Deliberately awkward floats: the JSON round-trip must be repr-exact.
        arch = self._arch(io_factor=18.000000000000004, zeta_factor=0.1 + 0.2)
        scenario = Scenario(
            name="factors",
            architectures=(arch,),
            technologies=(tech_ll,),
            frequencies=FrequencyGrid.single(31.25e6),
        )
        rebuilt = Scenario.from_json(scenario.to_json())
        assert rebuilt.architectures[0].io_factor == arch.io_factor
        assert rebuilt.architectures[0].zeta_factor == arch.zeta_factor
        assert rebuilt == scenario
        assert rebuilt.content_hash() == scenario.content_hash()

    def test_default_factors_survive_round_trip(self, tech_ll):
        arch = ArchitectureParameters(
            name="plain", n_cells=100, activity=0.3,
            logical_depth=12, capacitance=50e-15,
        )
        scenario = Scenario(
            name="defaults",
            architectures=(arch,),
            technologies=(tech_ll,),
            frequencies=FrequencyGrid.single(10e6),
        )
        rebuilt = Scenario.from_dict(scenario.to_dict())
        assert rebuilt.architectures[0].io_factor == 1.0
        assert rebuilt.architectures[0].zeta_factor == 1.0

    def test_factors_change_the_optimum_after_round_trip(self):
        from repro.study import Study

        def optimum(io_factor, zeta_factor):
            arch = self._arch(io_factor, zeta_factor)
            scenario = Scenario(
                name="eval",
                architectures=(arch,),
                technologies=("LL",),  # catalog name, resolved on build
                frequencies=FrequencyGrid.single(31.25e6),
            )
            rebuilt = Scenario.from_dict(scenario.to_dict())
            (record,) = Study.from_scenario(rebuilt).solver("numerical").run()
            assert record.feasible
            return record.ptot

        baseline = optimum(1.0, 1.0)
        leakier = optimum(18.0, 1.0)
        slower = optimum(1.0, 5.0)
        assert leakier > baseline  # more per-cell leakage costs power
        assert slower > baseline  # slower cells force higher Vdd
