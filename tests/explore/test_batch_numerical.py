"""The vectorized exact-numerical solver vs the scipy scalar reference."""

import numpy as np
import pytest

from repro.core.technology import flavour
from repro.explore.engine import evaluate_points
from repro.explore.executor import solve_point
from repro.explore.scenario import DesignPoint, FrequencyGrid, Scenario
from repro.solvers.batch_numerical import solve_points, task_for_points


def _reference(point):
    return solve_point((point.architecture, point.technology, point.frequency))


@pytest.fixture
def boundary_grid(wallace_arch):
    """Points straddling every regime: deep interior, flagged, infeasible."""
    arch = wallace_arch
    points = []
    for tech in (flavour("LL"), flavour("HS"), flavour("ULL")):
        for frequency in np.geomspace(1e6, 1e10, 40):
            points.append(DesignPoint(arch, tech, float(frequency)))
    return points


class TestScalarParity:
    def test_feasibility_reasons_and_power_match_reference(
        self, boundary_grid
    ):
        solution = solve_points(boundary_grid)
        compared_feasible = compared_infeasible = 0
        for index, point in enumerate(boundary_grid):
            reference, reason = _reference(point)
            assert solution.feasible[index] == (reference is not None), (
                point.describe()
            )
            if reference is None:
                # Byte-identical infeasibility verdicts: the lockstep
                # port lands on the same boundary scipy does.
                assert solution.reason[index] == reason
                compared_infeasible += 1
            else:
                op = reference.point
                # Acceptance bar: 1e-9 relative on every flagged point.
                assert solution.ptot[index] == pytest.approx(
                    op.ptot, rel=1e-9
                )
                assert solution.vdd[index] == pytest.approx(op.vdd, rel=1e-9)
                assert solution.vth[index] == pytest.approx(op.vth, rel=1e-9)
                assert solution.pdyn[index] == pytest.approx(
                    op.pdyn, rel=1e-9
                )
                assert solution.pstat[index] == pytest.approx(
                    op.pstat, rel=1e-9
                )
                compared_feasible += 1
        assert compared_feasible >= 20 and compared_infeasible >= 5

    def test_trajectories_are_bit_identical(self, boundary_grid):
        """Stronger than the 1e-9 bar: the lockstep port replays scipy's
        search exactly, so results match to the last bit."""
        solution = solve_points(boundary_grid)
        for index, point in enumerate(boundary_grid):
            reference, _ = _reference(point)
            if reference is not None:
                assert solution.vdd[index] == reference.point.vdd
                assert solution.ptot[index] == reference.point.ptot

    def test_exact_chi_is_bit_identical_to_scalar_helper(self, boundary_grid):
        """The vectorized χ recipe matches the scalar one to the last bit.

        (numpy's SIMD array ``pow`` can drift 1 ULP from libm, which is
        why :func:`exact_chi` exponentiates with python floats.)
        """
        from repro.core.constraint import chi_for_architecture
        from repro.solvers.batch_numerical import chi_denominator, exact_chi

        vectorized = exact_chi(
            np.array(
                [p.architecture.logical_depth for p in boundary_grid]
            ),
            np.array([p.frequency for p in boundary_grid]),
            np.array(
                [
                    p.technology.zeta * p.architecture.zeta_factor
                    for p in boundary_grid
                ]
            ),
            np.array(
                [chi_denominator(p.technology) for p in boundary_grid]
            ),
            np.array([1.0 / p.technology.alpha for p in boundary_grid]),
        )
        scalar = np.array(
            [
                chi_for_architecture(
                    p.architecture, p.technology, p.frequency
                )
                for p in boundary_grid
            ]
        )
        assert np.array_equal(vectorized, scalar)

    def test_precomputed_chi_matches_self_computed(self, boundary_grid):
        from repro.core.constraint import chi_for_architecture

        chi = np.array(
            [
                chi_for_architecture(p.architecture, p.technology, p.frequency)
                for p in boundary_grid
            ]
        )
        with_chi = solve_points(boundary_grid, chi=chi)
        without = solve_points(boundary_grid)
        assert np.array_equal(with_chi.vdd, without.vdd, equal_nan=True)
        assert list(with_chi.reason) == list(without.reason)


class TestTaskPlumbing:
    def test_empty_task(self):
        solution = solve_points([])
        assert solution.size == 0
        assert solution.feasible.dtype == bool

    def test_task_arrays_align(self, boundary_grid):
        task = task_for_points(boundary_grid)
        assert task.size == len(boundary_grid)
        point = boundary_grid[7]
        assert task.name[7] == point.architecture.name
        assert task.io_power[7] == (
            point.technology.io * point.architecture.io_factor
        )
        assert task.vdd_lo[7] == 0.05 * point.technology.vdd_nominal
        assert task.vdd_hi[7] == 2.0 * point.technology.vdd_nominal

    def test_single_point_task(self, wallace_arch, tech_ll):
        point = DesignPoint(wallace_arch, tech_ll, 31.25e6)
        solution = solve_points([point])
        reference, _ = _reference(point)
        assert solution.size == 1
        assert bool(solution.feasible[0])
        assert solution.ptot[0] == reference.point.ptot


class TestEngineFallbackIntegration:
    def test_auto_fallback_outcomes_match_scalar_reference(
        self, wallace_arch, tech_ll
    ):
        """Every auto point that fell back matches a direct scipy solve."""
        scenario = Scenario(
            name="fallback-parity",
            architectures=(wallace_arch,),
            technologies=(tech_ll,),
            frequencies=FrequencyGrid.logspace(4e6, 4e9, 30),
        )
        outcomes = evaluate_points(scenario.expand(), method="auto")
        compared = 0
        for outcome in outcomes:
            if outcome.method != "numerical-fallback":
                continue
            compared += 1
            reference, reason = _reference(outcome.point)
            if reference is None:
                assert outcome.result is None
                assert outcome.reason == reason
            else:
                assert outcome.result is not None
                assert outcome.result.point.ptot == reference.point.ptot
                assert outcome.result.point.vdd == reference.point.vdd
                assert outcome.result.point.method == "numerical-1d"
        assert compared >= 3

    def test_auto_never_touches_the_pool(self, wallace_arch, tech_ll, monkeypatch):
        """The multiprocessing executor is reserved for method="numerical"."""
        from repro.explore import engine as engine_module

        def _banned(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("auto must not dispatch to the pool")

        monkeypatch.setattr(
            engine_module.executor_module, "run_numerical", _banned
        )
        scenario = Scenario(
            name="no-pool",
            architectures=(wallace_arch,),
            technologies=(tech_ll,),
            frequencies=FrequencyGrid.logspace(4e6, 4e9, 12),
        )
        outcomes = evaluate_points(scenario.expand(), method="auto")
        assert any(o.method == "numerical-fallback" for o in outcomes)
