"""The columnar pipeline: tables, lazy rows, expansion, payloads."""

import json

import pytest

from repro.explore.cache import ResultCache
from repro.explore.columnar import ResultTable, expand_columns
from repro.explore.engine import (
    EvaluationStats,
    PointResult,
    evaluate_points,
    evaluate_table,
    explore,
)
from repro.explore.scenario import FrequencyGrid, Scenario, demo_scenario


@pytest.fixture
def mixed_scenario(wallace_arch, tech_ll):
    """Feasible interior + flagged boundary + infeasible tail."""
    return Scenario(
        name="mixed",
        architectures=(wallace_arch,),
        technologies=(tech_ll,),
        frequencies=FrequencyGrid.logspace(4e6, 4e9, 24),
    )


@pytest.fixture
def mixed_table(mixed_scenario):
    return evaluate_table(mixed_scenario, method="auto")


class TestExpandColumns:
    def test_matches_object_expansion(self):
        scenario = demo_scenario(frequency_points=5)
        columns = expand_columns(scenario)
        points = scenario.expand()
        assert columns.n == len(points) == scenario.size
        for index, point in enumerate(points):
            assert columns.arch_name[index] == point.architecture.name
            assert columns.tech_name[index] == point.technology.name
            assert columns.frequency[index] == point.frequency
            assert columns.n_cells[index] == point.architecture.n_cells
            assert columns.activity[index] == point.architecture.activity
            assert (
                columns.logical_depth[index]
                == point.architecture.logical_depth
            )
            assert columns.io_factor[index] == point.architecture.io_factor
            assert columns.zeta_factor[index] == point.architecture.zeta_factor

    def test_design_point_reconstruction(self):
        scenario = demo_scenario(frequency_points=3)
        columns = expand_columns(scenario)
        points = scenario.expand()
        for index in (0, len(points) // 2, len(points) - 1):
            assert columns.design_point(index) == points[index]

    def test_scenario_method_delegates(self):
        scenario = demo_scenario(frequency_points=3)
        assert scenario.expand_columns().n == scenario.size


class TestResultTable:
    def test_rows_match_object_pipeline(self, mixed_scenario, mixed_table):
        outcomes = evaluate_points(mixed_scenario.expand(), method="auto")
        expected = [PointResult.from_outcome(o) for o in outcomes]
        assert mixed_table.rows() == expected

    def test_to_dicts_matches_per_record_dicts(self, mixed_table):
        assert mixed_table.to_dicts() == [
            row.to_dict() for row in mixed_table.rows()
        ]

    def test_payload_columns_round_trip(self, mixed_table):
        payload = mixed_table.to_payload_columns()
        rebuilt = ResultTable.from_payload_columns(
            json.loads(json.dumps(payload))
        )
        assert rebuilt.rows() == mixed_table.rows()

    def test_legacy_row_payloads_load(self, mixed_table):
        rows = mixed_table.to_dicts()
        for key in ("points", "records"):
            rebuilt = ResultTable.from_cache_payload({key: rows})
            assert rebuilt.rows() == mixed_table.rows()

    def test_from_records_round_trip(self, mixed_table):
        records = list(mixed_table.rows())
        assert ResultTable.from_records(records).rows() == records

    def test_npz_round_trip_is_bit_exact(self, mixed_table, tmp_path):
        path = mixed_table.save_npz(tmp_path / "table.npz")
        rebuilt = ResultTable.load_npz(path)
        assert rebuilt.rows() == mixed_table.rows()
        for name, column in mixed_table.columns.items():
            if column.dtype == object:
                assert list(rebuilt.columns[name]) == list(column)
            else:
                # Bit-exact floats, NaN infeasibility markers included.
                assert rebuilt.columns[name].tobytes() == column.tobytes()

    def test_npz_round_trip_of_an_empty_table(self, tmp_path):
        empty = ResultTable.from_records([])
        path = empty.save_npz(tmp_path / "empty.npz")
        assert len(ResultTable.load_npz(path)) == 0

    def test_load_npz_rejects_foreign_archives(self, tmp_path):
        import numpy as np

        path = tmp_path / "foreign.npz"
        np.savez(path, stuff=np.arange(3))
        with pytest.raises(ValueError, match="missing __schema__"):
            ResultTable.load_npz(path)

    def test_load_npz_rejects_unknown_schema(self, mixed_table, tmp_path):
        import numpy as np

        from repro.explore.columnar import NPZ_SCHEMA_VERSION

        path = mixed_table.save_npz(tmp_path / "table.npz")
        with np.load(path) as data:
            arrays = {name: data[name] for name in data.files}
        arrays["__schema__"] = np.int64(NPZ_SCHEMA_VERSION + 1)
        np.savez_compressed(path, **arrays)
        with pytest.raises(ValueError, match="unsupported"):
            ResultTable.load_npz(path)

    def test_missing_column_rejected(self, mixed_table):
        columns = dict(mixed_table.columns)
        del columns["ptot"]
        with pytest.raises(ValueError, match="missing columns"):
            ResultTable(columns)

    def test_ragged_columns_rejected(self, mixed_table):
        columns = dict(mixed_table.columns)
        columns["ptot"] = columns["ptot"][:-1]
        with pytest.raises(ValueError, match="ragged"):
            ResultTable(columns)

    def test_derived_columns(self, mixed_table):
        ptot_or_inf = mixed_table.column("ptot_or_inf")
        for index, row in enumerate(mixed_table.rows()):
            assert ptot_or_inf[index] == row.ptot_or_inf
            assert mixed_table.column("area_proxy")[index] == row.area_proxy
        with pytest.raises(KeyError, match="unknown result column"):
            mixed_table.column("nope")

    def test_best_index(self, mixed_table):
        best = mixed_table.row(mixed_table.best_index())
        feasible = [r for r in mixed_table.rows() if r.feasible]
        assert best == min(feasible, key=lambda r: r.ptot_or_inf)

    def test_ndjson_chunks_match_per_record_dumps(self, mixed_table):
        chunks = list(mixed_table.iter_ndjson_chunks(chunk_rows=7))
        lines = "\n".join(chunks).split("\n")
        expected = [
            json.dumps({"kind": "record", **row.to_dict()}, sort_keys=True)
            for row in mixed_table.rows()
        ]
        assert lines == expected


class TestResultRows:
    def test_identity_is_stable(self, mixed_table):
        rows = mixed_table.rows()
        assert rows[0] is rows[0]
        assert rows[-1] is rows[len(rows) - 1]

    def test_separate_views_materialise_equal_rows(self, mixed_table):
        assert mixed_table.rows()[0] == mixed_table.rows()[0]

    def test_slicing_and_sequence_protocol(self, mixed_table):
        rows = mixed_table.rows()
        assert rows[2:5] == list(rows)[2:5]
        assert rows.index(rows[3]) == 3
        assert rows[3] in rows

    def test_equality_against_lists_both_ways(self, mixed_table):
        rows = mixed_table.rows()
        as_list = list(rows)
        assert rows == as_list
        assert as_list == rows
        assert not (rows == as_list[:-1])

    def test_out_of_range(self, mixed_table):
        rows = mixed_table.rows()
        with pytest.raises(IndexError):
            rows[len(rows)]
        with pytest.raises(IndexError):
            rows[-len(rows) - 1]  # must not wrap around to the tail
        with pytest.raises(IndexError):
            mixed_table.row(-len(rows) - 1)
        assert rows[-len(rows)] == rows[0]


class TestColumnarEdgeCases:
    def test_empty_table(self):
        table = ResultTable.from_records([])
        assert len(table) == 0
        assert table.rows() == []
        assert table.to_dicts() == []
        assert table.best_index() is None
        assert list(table.iter_ndjson_chunks()) == []
        stats = EvaluationStats.from_table(table, 0.0)
        assert stats.n_candidates == stats.n_feasible == 0

    def test_single_point_scenario(self, wallace_arch, tech_ll):
        scenario = Scenario(
            name="single",
            architectures=(wallace_arch,),
            technologies=(tech_ll,),
            frequencies=FrequencyGrid.single(31.25e6),
        )
        table = evaluate_table(scenario, method="auto")
        assert len(table) == 1
        (row,) = table.rows()
        assert row.feasible
        assert row.method == "vectorized-closed-form"

    def test_all_infeasible_scenario(self, wallace_arch, tech_ll):
        scenario = Scenario(
            name="impossible",
            architectures=(wallace_arch,),
            technologies=(tech_ll,),
            frequencies=FrequencyGrid.logspace(5e9, 50e9, 4),
        )
        table = evaluate_table(scenario, method="auto")
        assert len(table) == 4
        assert table.n_feasible == 0
        assert table.best_index() is None
        for row in table.rows():
            assert not row.feasible
            assert row.reason != ""
            assert row.method == "numerical-fallback"
            assert row.vdd is None and row.ptot is None

    def test_closed_form_all_infeasible(self, wallace_arch, tech_ll):
        scenario = Scenario(
            name="impossible-cf",
            architectures=(wallace_arch,),
            technologies=(tech_ll,),
            frequencies=FrequencyGrid.logspace(5e9, 50e9, 4),
        )
        table = evaluate_table(scenario, method="closed-form")
        for row in table.rows():
            assert not row.feasible
            assert row.method == "vectorized-closed-form"
            assert "timing" in row.reason or "threshold" in row.reason


class TestLegacyCacheEntries:
    def test_old_row_wise_engine_entry_is_served_identically(
        self, mixed_scenario, tmp_path
    ):
        """An entry written by the pre-columnar engine still loads."""
        from repro.explore.engine import _cache_key
        from repro.service.memcache import default_memory_cache

        fresh = explore(mixed_scenario, cache=tmp_path, use_cache=False)
        legacy_payload = {
            "schema": 1,
            "method": "auto",
            "scenario": mixed_scenario.to_dict(),
            "stats": fresh.stats.to_dict(),
            "parity_checked": True,
            "points": [row.to_dict() for row in fresh.points],
        }
        key = _cache_key(mixed_scenario, "auto")
        ResultCache(tmp_path).put(key, legacy_payload)
        default_memory_cache().clear()

        served = explore(mixed_scenario, cache=tmp_path)
        assert served.cache_hit
        assert served.points == fresh.points
        assert served.parity_checked
        assert json.dumps(
            [row.to_dict() for row in served.points], sort_keys=True
        ) == json.dumps(
            [row.to_dict() for row in fresh.points], sort_keys=True
        )
