"""ResultSet edge cases the service will hit in production.

Empty sweeps (every candidate filtered out), single-record frontiers and
the JSON wire round-trip the :class:`~repro.service.client.ServiceClient`
relies on: a ``ResultSet`` rebuilt from serialized records must equal the
original, record for record.
"""

import csv
import io
import json

import pytest

from repro.explore.engine import EvaluationStats
from repro.study import Record, ResultSet, Study

WALLACE = {
    "name": "w16",
    "n_cells": 729,
    "activity": 0.2976,
    "logical_depth": 17,
    "capacitance": 70e-15,
}


@pytest.fixture(scope="module")
def reference() -> ResultSet:
    return (
        Study("edge-reference")
        .architectures(WALLACE)
        .technologies("ULL", "LL", "HS")
        .frequencies(2e6, 31.25e6, 2e9)
        .solver("auto")
        .jobs(1)
        .run()
    )


@pytest.fixture
def empty(reference) -> ResultSet:
    return reference.filter(lambda record: False)


class TestEmptyResultSet:
    def test_len_and_iteration(self, empty):
        assert len(empty) == 0
        assert list(empty) == []
        assert empty.best() is None
        assert empty.n_feasible == 0

    def test_to_csv_has_header_only(self, empty):
        rows = list(csv.reader(io.StringIO(empty.to_csv())))
        assert len(rows) == 1
        assert "architecture" in rows[0] and "ptot" in rows[0]

    def test_to_json_is_valid_and_empty(self, empty):
        payload = json.loads(empty.to_json())
        assert payload["records"] == []
        assert payload["solver"] == empty.solver

    def test_table_renders_without_rows(self, empty):
        text = empty.table()
        assert isinstance(text, str) and text  # renders, doesn't raise

    def test_derived_views_stay_empty(self, empty):
        assert len(empty.feasible()) == 0
        assert len(empty.rank()) == 0
        assert len(empty.pareto()) == 0


class TestSingleRecord:
    def test_pareto_of_one_feasible_record_is_itself(self, reference):
        single = reference.feasible()._subset(reference.feasible().records[:1])
        frontier = single.pareto()
        assert len(frontier) == 1
        assert frontier[0] == single[0]

    def test_pareto_of_one_infeasible_record_is_empty(self, reference):
        infeasible = reference.infeasible()
        if not infeasible.records:  # pragma: no cover - depends on sweep
            pytest.skip("reference sweep has no infeasible point")
        single = infeasible._subset(infeasible.records[:1])
        assert len(single.pareto()) == 0

    def test_best_of_single(self, reference):
        single = reference.feasible()._subset(reference.feasible().records[:1])
        assert single.best() == single[0]


class TestJsonRoundTrip:
    """The client contract: serialized records rebuild an equal ResultSet."""

    def test_records_round_trip_exactly(self, reference):
        wire = json.loads(json.dumps(reference.to_dicts()))
        rebuilt = [Record.from_dict(record) for record in wire]
        assert rebuilt == reference.records

    def test_full_resultset_payload_round_trip(self, reference):
        payload = json.loads(reference.to_json())
        rebuilt = ResultSet(
            records=[Record.from_dict(r) for r in payload["records"]],
            solver=payload["solver"],
            stats=EvaluationStats.from_dict(payload["stats"]),
        )
        assert rebuilt.records == reference.records
        assert rebuilt.solver == reference.solver
        assert rebuilt.stats == reference.stats
        assert rebuilt.best() == reference.best()

    def test_round_trip_preserves_infeasible_reasons(self, reference):
        infeasible = reference.infeasible()
        if not infeasible.records:  # pragma: no cover - depends on sweep
            pytest.skip("reference sweep has no infeasible point")
        wire = json.loads(json.dumps(infeasible.to_dicts()))
        rebuilt = [Record.from_dict(record) for record in wire]
        assert rebuilt == infeasible.records
        assert all(record.reason for record in rebuilt)

    def test_empty_round_trip(self, empty):
        wire = json.loads(json.dumps(empty.to_dicts()))
        assert [Record.from_dict(r) for r in wire] == []
