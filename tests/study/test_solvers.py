"""Unit tests for the repro.solvers registry and the uniform contract."""

import pytest

from repro import ST_CMOS09_LL
from repro.core.bounded import bounded_optimum
from repro.core.closed_form import closed_form_optimum
from repro.core.numerical import numerical_optimum, numerical_optimum_linearized
from repro.explore.scenario import DesignPoint
from repro.solvers import (
    ScalarSolver,
    SolverError,
    available_solvers,
    get_solver,
    register_solver,
    solver_summaries,
    unregister_solver,
)


@pytest.fixture
def point(wallace_arch, paper_frequency):
    return DesignPoint(
        architecture=wallace_arch,
        technology=ST_CMOS09_LL,
        frequency=paper_frequency,
    )


@pytest.fixture
def infeasible_point(wallace_arch, paper_frequency):
    impossible = wallace_arch.with_updates(
        name="impossible", logical_depth=100000.0
    )
    return DesignPoint(
        architecture=impossible,
        technology=ST_CMOS09_LL,
        frequency=paper_frequency,
    )


class TestRegistry:
    def test_the_five_paths_plus_auto_are_registered(self):
        names = available_solvers()
        for required in (
            "auto", "bounded", "closed_form", "linearized", "numerical",
            "vectorized",
        ):
            assert required in names

    def test_lookup_accepts_dash_and_underscore(self):
        assert get_solver("closed-form") is get_solver("closed_form")

    def test_unknown_name_lists_known_solvers(self):
        with pytest.raises(SolverError, match="known:.*numerical"):
            get_solver("frobnicate")

    def test_solver_instances_pass_through(self):
        solver = get_solver("auto")
        assert get_solver(solver) is solver

    def test_summaries_cover_every_name(self):
        summaries = solver_summaries()
        assert set(summaries) == set(available_solvers())
        assert all(summaries.values())

    def test_register_rejects_taken_names(self):
        with pytest.raises(SolverError, match="already registered"):
            register_solver(get_solver("auto"))

    def test_custom_names_normalise_on_registration(self, point):
        """A hyphenated/uppercase custom name must resolve in any spelling."""
        custom = ScalarSolver(
            name="My-Custom-Solver",
            summary="spelled with hyphens and capitals",
            fn=numerical_optimum,
        )
        try:
            register_solver(custom)
            assert get_solver("My-Custom-Solver") is custom
            assert get_solver("my_custom_solver") is custom
            with pytest.raises(SolverError, match="already registered"):
                register_solver(
                    ScalarSolver(
                        name="my_custom_solver",
                        summary="same name, other spelling",
                        fn=numerical_optimum,
                    )
                )
        finally:
            unregister_solver("my-custom-solver")
        with pytest.raises(SolverError):
            get_solver("My-Custom-Solver")

    def test_custom_solver_registration_round_trip(self, point):
        custom = ScalarSolver(
            name="custom_test_solver",
            summary="numerical under a different name",
            fn=numerical_optimum,
        )
        try:
            register_solver(custom)
            outcome = get_solver("custom_test_solver").solve([point])[0]
            assert outcome.feasible
            assert outcome.method == "custom_test_solver"
        finally:
            unregister_solver("custom_test_solver")
        with pytest.raises(SolverError):
            get_solver("custom_test_solver")


class TestUniformContract:
    @pytest.mark.parametrize(
        "name", ["auto", "bounded", "closed_form", "linearized", "numerical",
                 "vectorized"]
    )
    def test_outcomes_align_with_points(self, name, point):
        outcomes = get_solver(name).solve([point, point], jobs=1)
        assert len(outcomes) == 2
        assert all(o.point == point for o in outcomes)
        assert all(o.feasible for o in outcomes)
        assert outcomes[0].result.ptot == outcomes[1].result.ptot

    @pytest.mark.parametrize(
        "name", ["auto", "closed_form", "numerical", "vectorized"]
    )
    def test_infeasibility_is_data_not_an_exception(
        self, name, point, infeasible_point
    ):
        """The timing-constrained paths report χA >= 1 as a reasoned record.

        (``bounded`` legitimately answers with a capped boundary point and
        ``linearized`` is only defined inside the feasible region — their
        historical semantics, unchanged by the registry.)
        """
        outcomes = get_solver(name).solve([point, infeasible_point], jobs=1)
        assert outcomes[0].feasible
        assert not outcomes[1].feasible
        assert outcomes[1].result is None
        assert outcomes[1].reason != ""

    @pytest.mark.parametrize(
        "name,reference",
        [
            ("closed_form", closed_form_optimum),
            ("linearized", numerical_optimum_linearized),
            ("numerical", numerical_optimum),
            ("bounded", bounded_optimum),
        ],
    )
    def test_scalar_paths_match_their_reference(self, name, reference, point):
        outcome = get_solver(name).solve([point], jobs=1)[0]
        expected = reference(
            point.architecture, point.technology, point.frequency
        )
        assert outcome.result.ptot == pytest.approx(expected.ptot, rel=1e-12)
        assert outcome.result.point.vdd == pytest.approx(
            expected.point.vdd, rel=1e-12
        )

    def test_bounded_solver_forwards_options(self, point):
        capped = get_solver("bounded").solve([point], vth_max=0.10)[0]
        free = get_solver("bounded").solve([point])[0]
        assert capped.result.point.vth <= 0.10 + 1e-12
        assert capped.result.ptot > free.result.ptot

    def test_unknown_option_is_rejected(self, point):
        with pytest.raises(SolverError, match="unknown option"):
            get_solver("bounded").solve([point], vth_maximum=0.4)
        with pytest.raises(SolverError, match="unknown option"):
            get_solver("auto").solve([point], method="numerical")

    def test_vectorized_agrees_with_scalar_closed_form(self, point):
        vectorized = get_solver("vectorized").solve([point])[0]
        scalar = closed_form_optimum(
            point.architecture, point.technology, point.frequency
        )
        assert vectorized.result.ptot == pytest.approx(scalar.ptot, rel=1e-9)
