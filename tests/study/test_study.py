"""Tests for the Study facade: builder, parity, ResultSet, caching.

The acceptance criteria of ISSUE 2 live here:

* one-call parity — ``Study`` with solver ``"numerical"`` reproduces
  ``numerical_optimum`` scalar results to 1e-12 relative;
* ``"auto"`` reproduces the PR 1 explore demo sweep candidate-for-
  candidate, including the Pareto front.
"""

import json

import pytest

from repro import (
    ArchitectureParameters,
    ST_CMOS09_HS,
    ST_CMOS09_LL,
    Scenario,
    Study,
    numerical_optimum,
)
from repro.explore.analysis import pareto_frontier
from repro.explore.engine import explore
from repro.explore.scenario import demo_scenario, pipeline_step


@pytest.fixture
def small_study(wallace_arch, paper_frequency):
    return (
        Study("unit")
        .architectures(wallace_arch)
        .technologies("ULL", "LL", "HS")
        .frequencies(paper_frequency)
    )


class TestBuilder:
    def test_compiles_to_scenario(self, wallace_arch, paper_frequency):
        scenario = (
            Study("compile-check")
            .architectures(wallace_arch)
            .technologies(ST_CMOS09_LL, "HS")
            .frequencies(paper_frequency)
            .transforms((), pipeline_step(2))
            .scenario()
        )
        assert isinstance(scenario, Scenario)
        assert scenario.name == "compile-check"
        assert scenario.size == 1 * 2 * 2 * 1
        assert scenario.technologies[1] is ST_CMOS09_HS

    def test_architectures_accept_mappings(self, paper_frequency):
        resultset = (
            Study("mapping")
            .architectures(
                dict(
                    name="dict-arch", n_cells=729, activity=0.3,
                    logical_depth=17, capacitance=70e-15,
                )
            )
            .technologies("LL")
            .frequencies(paper_frequency)
            .run()
        )
        assert resultset[0].architecture == "dict-arch"
        assert isinstance(
            resultset.scenario.architectures[0], ArchitectureParameters
        )

    def test_frequency_range_spacings(self, wallace_arch):
        study = Study("grid").architectures(wallace_arch).technologies("LL")
        log_grid = study.frequency_range(1e6, 64e6, 7).scenario().frequencies
        assert len(log_grid) == 7
        linear_grid = (
            study.frequency_range(1e6, 64e6, 7, spacing="linear")
            .scenario()
            .frequencies
        )
        assert linear_grid.values[1] == pytest.approx(11.5e6)
        with pytest.raises(ValueError, match="spacing"):
            study.frequency_range(1e6, 2e6, 3, spacing="cubic")

    def test_incomplete_builder_raises(self, wallace_arch):
        with pytest.raises(ValueError, match="no architectures"):
            Study("empty").run()
        with pytest.raises(ValueError, match="no technologies"):
            Study("empty").architectures(wallace_arch).run()
        with pytest.raises(ValueError, match="no frequencies"):
            Study("empty").architectures(wallace_arch).technologies("LL").run()

    def test_wrapped_scenario_rejects_problem_mutation(self):
        """from_scenario studies must not silently drop/ignore builder calls."""
        study = Study.from_scenario(demo_scenario(frequency_points=2))
        with pytest.raises(ValueError, match="wraps an existing Scenario"):
            study.technologies("LL")
        with pytest.raises(ValueError, match="wraps an existing Scenario"):
            study.described_as("ignored")
        # Execution policy stays configurable on a wrapped scenario.
        resultset = study.solver("vectorized").jobs(1).run()
        assert len(resultset) == 48

    def test_unknown_solver_fails_at_build_time(self, small_study):
        with pytest.raises(ValueError, match="unknown solver"):
            small_study.solver("frobnicate")

    def test_bad_jobs_rejected(self, small_study):
        with pytest.raises(ValueError, match="jobs"):
            small_study.jobs(0)


class TestNumericalParity:
    def test_matches_numerical_optimum_to_1e12(
        self, wallace_arch, paper_frequency
    ):
        """ISSUE 2 acceptance: scalar parity at 1e-12 relative."""
        resultset = (
            Study("parity")
            .architectures(wallace_arch)
            .technologies("ULL", "LL", "HS")
            .frequencies(paper_frequency)
            .solver("numerical")
            .jobs(1)
            .run()
        )
        for record, tech_label in zip(resultset, ("ULL", "LL", "HS")):
            reference = numerical_optimum(
                wallace_arch,
                resultset.scenario.technologies[
                    ("ULL", "LL", "HS").index(tech_label)
                ],
                paper_frequency,
            )
            assert record.ptot == pytest.approx(reference.ptot, rel=1e-12)
            assert record.vdd == pytest.approx(reference.point.vdd, rel=1e-12)
            assert record.vth == pytest.approx(reference.point.vth, rel=1e-12)


class TestAutoParityWithExplore:
    def test_reproduces_demo_sweep_and_pareto_front(self):
        """ISSUE 2 acceptance: same candidates, same Pareto front as PR 1."""
        scenario = demo_scenario(frequency_points=5)
        engine = explore(scenario, method="auto", jobs=1, use_cache=False)
        facade = (
            Study.from_scenario(scenario).solver("auto").jobs(1).run()
        )
        assert facade.records == engine.points
        engine_front = pareto_frontier(engine.points)
        facade_front = facade.pareto().records
        assert facade_front == engine_front


class TestResultSet:
    def test_container_protocol(self, small_study):
        resultset = small_study.run()
        assert len(resultset) == 3
        assert list(iter(resultset)) == resultset.records
        assert resultset[0] is resultset.records[0]

    def test_best_rank_and_filters(self, wallace_arch, paper_frequency):
        impossible = wallace_arch.with_updates(
            name="impossible", logical_depth=100000.0
        )
        resultset = (
            Study("mixed")
            .architectures(wallace_arch, impossible)
            .technologies("LL")
            .frequencies(paper_frequency)
            .solver("auto")
            .jobs(1)
            .run()
        )
        assert resultset.n_feasible == 1
        assert len(resultset.feasible()) == 1
        assert len(resultset.infeasible()) == 1
        assert resultset.best().architecture == wallace_arch.name
        ranked = resultset.rank()
        assert ranked[0].feasible and not ranked[-1].feasible
        only_wallace = resultset.filter(
            lambda r: r.architecture == wallace_arch.name
        )
        assert len(only_wallace) == 1

    def test_best_is_none_when_nothing_feasible(self, paper_frequency):
        impossible = ArchitectureParameters(
            name="impossible", n_cells=100, activity=0.1,
            logical_depth=100000, capacitance=10e-15,
        )
        resultset = (
            Study("hopeless")
            .architectures(impossible)
            .technologies("LL")
            .frequencies(paper_frequency)
            .run()
        )
        assert resultset.best() is None

    def test_json_round_trip(self, small_study):
        resultset = small_study.run()
        payload = json.loads(resultset.to_json())
        assert payload["solver"] == "auto"
        assert len(payload["records"]) == 3
        assert payload["scenario"]["name"] == "unit"
        assert {"vdd", "vth", "pdyn", "pstat", "ptot"} <= set(
            payload["records"][0]
        )

    def test_csv_has_header_and_rows(self, small_study):
        lines = small_study.run().to_csv().strip().splitlines()
        assert lines[0].startswith("architecture,technology,frequency")
        assert len(lines) == 4

    def test_table_and_describe_render(self, small_study):
        resultset = small_study.run()
        table = resultset.table(top=2)
        assert "Pareto frontier" in table
        assert "Ptot [uW]" in table
        described = resultset.describe()
        assert "scenario 'unit'" in described
        assert "best:" in described

    def test_subsets_keep_provenance(self, small_study):
        resultset = small_study.run()
        subset = resultset.rank()
        assert subset.solver == resultset.solver
        assert subset.scenario is resultset.scenario
        assert subset.stats is resultset.stats


class TestTopLevelNamespace:
    def test_explore_is_both_module_and_callable(self):
        """`from repro import explore` must be callable without shadowing
        the repro.explore subpackage's attribute access."""
        import repro
        import repro.explore as explore_module

        from repro import explore as exported

        assert exported is explore_module
        assert repro.explore is explore_module
        assert repro.explore.Scenario is Scenario  # module semantics intact
        result = exported(
            demo_scenario(frequency_points=2), jobs=1, use_cache=False
        )
        assert result.stats.n_candidates == 48


class TestCaching:
    def test_shares_engine_cache_with_explore(self, tmp_path):
        """A sweep cached through PR 1's explore() is a Study cache hit."""
        scenario = demo_scenario(frequency_points=2)
        engine = explore(scenario, method="auto", jobs=1, cache=tmp_path)
        assert not engine.cache_hit
        facade = (
            Study.from_scenario(scenario)
            .solver("auto")
            .jobs(1)
            .cached(tmp_path)
            .run()
        )
        assert facade.cache_hit
        assert facade.records == engine.points

    def test_cache_round_trip(self, tmp_path, small_study):
        first = small_study.cached(tmp_path).run()
        assert not first.cache_hit
        assert first.cache_path is not None and first.cache_path.exists()
        second = small_study.run()
        assert second.cache_hit
        assert second.records == first.records

    def test_solver_is_part_of_the_key(self, tmp_path, small_study):
        small_study.cached(tmp_path)
        auto = small_study.solver("auto").run()
        numerical = small_study.solver("numerical").run()
        assert not numerical.cache_hit
        assert auto.cache_key != numerical.cache_key

    def test_disabled_cache_never_touches_disk(self, tmp_path, small_study):
        resultset = small_study.cached(tmp_path, enabled=False).run()
        assert resultset.cache_path is None
        assert list(tmp_path.iterdir()) == []
