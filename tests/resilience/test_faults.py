"""The fault harness: spec grammar, determinism, zero overhead when off."""

import time

import pytest

from repro.resilience import (
    FAULT_SITES,
    FaultError,
    FaultPlan,
    FaultSpecError,
    injected_faults,
    install_faults,
    uninstall_faults,
)
from repro.resilience.faults import active, check, mangle


class TestSpecGrammar:
    def test_full_spec_parses(self):
        plan = FaultPlan.parse(
            "seed=1234; cache.read:p=0.5:corrupt; shard.run:n=3; "
            "http.response:always; store.write:p=0.1:hang=0.05"
        )
        assert plan.seed == 1234
        assert set(plan.rules) == {
            "cache.read", "shard.run", "http.response", "store.write"
        }
        assert plan.rules["cache.read"].mode == "corrupt"
        assert plan.rules["shard.run"].nth == 3
        assert plan.rules["http.response"].always
        assert plan.rules["store.write"].hang_seconds == 0.05

    def test_default_seed_is_zero(self):
        assert FaultPlan.parse("cache.read:always").seed == 0

    @pytest.mark.parametrize(
        "spec",
        [
            "",                        # arms nothing
            "seed=7",                  # seed alone arms nothing
            "bogus.site:always",       # unknown site
            "cache.read",              # missing trigger
            "cache.read:p=1.5",        # probability out of range
            "cache.read:p=0",          # probability must be > 0
            "cache.read:n=0",          # call index is 1-based
            "cache.read:maybe",        # unknown trigger
            "cache.read:always:melt",  # unknown mode
            "cache.read:always:hang=0",  # hang must be positive
            "seed=x; cache.read:always",  # bad seed
            "cache.read:always; cache.read:n=1",  # site armed twice
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(spec)

    def test_fault_spec_error_is_a_value_error(self):
        assert issubclass(FaultSpecError, ValueError)


class TestDeterminism:
    def test_same_seed_same_firing_sequence(self):
        decisions = []
        for _ in range(2):
            plan = FaultPlan.parse("seed=99; cache.read:p=0.5")
            decisions.append(
                [plan.should_fire("cache.read") is not None for _ in range(64)]
            )
        assert decisions[0] == decisions[1]
        assert any(decisions[0]) and not all(decisions[0])

    def test_different_seeds_differ(self):
        sequences = []
        for seed in (1, 2):
            plan = FaultPlan.parse(f"seed={seed}; cache.read:p=0.5")
            sequences.append(
                [plan.should_fire("cache.read") is not None for _ in range(64)]
            )
        assert sequences[0] != sequences[1]

    def test_sites_are_independent_streams(self):
        # Exercising one site must not perturb another's decisions.
        lone = FaultPlan.parse("seed=5; cache.read:p=0.5")
        paired = FaultPlan.parse(
            "seed=5; cache.read:p=0.5; store.write:p=0.5"
        )
        lone_seq = []
        paired_seq = []
        for _ in range(32):
            lone_seq.append(lone.should_fire("cache.read") is not None)
            paired.should_fire("store.write")  # interleave the other site
            paired_seq.append(paired.should_fire("cache.read") is not None)
        assert lone_seq == paired_seq

    def test_nth_fires_exactly_once(self):
        plan = FaultPlan.parse("shard.run:n=3")
        fired = [plan.should_fire("shard.run") is not None for _ in range(6)]
        assert fired == [False, False, True, False, False, False]
        assert plan.calls("shard.run") == 6

    def test_unarmed_site_never_fires_but_still_passes(self):
        plan = FaultPlan.parse("cache.read:always")
        assert plan.should_fire("store.write") is None


class TestModuleSwitch:
    def test_off_by_default(self):
        assert not active()
        check("cache.read")  # no-op
        assert mangle("cache.read", "payload") == "payload"

    def test_install_uninstall(self):
        install_faults(FaultPlan.parse("cache.write:always"))
        try:
            assert active()
            with pytest.raises(FaultError) as excinfo:
                check("cache.write")
            assert excinfo.value.site == "cache.write"
        finally:
            uninstall_faults()
        assert not active()
        check("cache.write")  # disarmed again

    def test_injected_faults_scopes_and_restores(self):
        with injected_faults("http.response:always") as plan:
            assert active()
            assert plan.rules["http.response"].always
            with pytest.raises(FaultError):
                check("http.response")
        assert not active()

    def test_injected_faults_restores_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with injected_faults("http.response:always"):
                raise RuntimeError("boom")
        assert not active()

    def test_corrupt_mangle_truncates_to_half(self):
        with injected_faults("cache.read:always:corrupt"):
            assert mangle("cache.read", "0123456789") == "01234"

    def test_corrupt_at_pure_checkpoint_degrades_to_error(self):
        with injected_faults("cache.write:always:corrupt"):
            with pytest.raises(FaultError):
                check("cache.write")

    def test_hang_sleeps_then_continues(self):
        with injected_faults("shard.run:always:hang=0.02"):
            start = time.monotonic()
            check("shard.run")  # returns — no exception
            assert time.monotonic() - start >= 0.02

    def test_every_declared_site_is_armable(self):
        for site in FAULT_SITES:
            plan = FaultPlan.parse(f"{site}:always")
            assert plan.should_fire(site) is not None
