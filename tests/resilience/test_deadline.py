"""Cooperative deadlines: header parsing, checks, thread-local scope."""

import threading

import pytest

from repro.resilience import (
    DEADLINE_HEADER,
    Deadline,
    DeadlineExceeded,
    active_deadline,
    checkpoint,
    current_deadline,
)
from repro.resilience.deadline import MAX_DEADLINE_MS


class TestDeadline:
    def test_after_requires_positive(self):
        with pytest.raises(ValueError, match="positive"):
            Deadline.after(0)
        with pytest.raises(ValueError, match="positive"):
            Deadline.after(-1.0)

    def test_fresh_deadline_has_budget_left(self):
        deadline = Deadline.after(60.0)
        assert not deadline.expired
        assert 0 < deadline.remaining() <= 60.0
        assert deadline.budget_ms == 60_000.0
        deadline.check("site")  # no raise

    def test_expired_check_raises_with_site_and_progress(self):
        deadline = Deadline.after(1e-9)
        while not deadline.expired:
            pass
        with pytest.raises(DeadlineExceeded) as excinfo:
            deadline.check("engine.kernel", rows_done=7, rows_total=100)
        error = excinfo.value
        assert error.site == "engine.kernel"
        assert error.budget_ms == pytest.approx(1e-6)
        assert error.progress == {"rows_done": 7, "rows_total": 100}
        assert "engine.kernel" in str(error)

    def test_header_round_trip(self):
        deadline = Deadline.from_header("2500")
        assert 0 < deadline.remaining() <= 2.5
        assert deadline.budget_ms == 2500.0
        # header_value re-emits the *remaining* budget, clamped >= 1 ms.
        assert 1 <= int(deadline.header_value()) <= 2500

    @pytest.mark.parametrize(
        "value", ["", "abc", "1.5", "0", "-10", str(MAX_DEADLINE_MS + 1)]
    )
    def test_bad_header_values_rejected(self, value):
        with pytest.raises(ValueError, match=DEADLINE_HEADER):
            Deadline.from_header(value)

    def test_header_value_never_below_one_ms(self):
        deadline = Deadline.after(1e-9)
        while not deadline.expired:
            pass
        assert deadline.header_value() == "1"


class TestThreadLocalScope:
    def test_no_deadline_by_default(self):
        assert current_deadline() is None
        checkpoint("anywhere")  # no-op, no raise

    def test_active_deadline_sets_and_restores(self):
        deadline = Deadline.after(60.0)
        assert current_deadline() is None
        with active_deadline(deadline):
            assert current_deadline() is deadline
        assert current_deadline() is None

    def test_none_inherits_enclosing_deadline(self):
        outer = Deadline.after(60.0)
        with active_deadline(outer):
            with active_deadline(None):
                assert current_deadline() is outer
            assert current_deadline() is outer

    def test_nested_deadline_shadows_then_unwinds(self):
        outer = Deadline.after(60.0)
        inner = Deadline.after(30.0)
        with active_deadline(outer):
            with active_deadline(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer

    def test_restored_even_when_block_raises(self):
        with pytest.raises(RuntimeError, match="boom"):
            with active_deadline(Deadline.after(60.0)):
                raise RuntimeError("boom")
        assert current_deadline() is None

    def test_deadline_is_per_thread(self):
        seen = {}

        def worker():
            seen["other"] = current_deadline()

        with active_deadline(Deadline.after(60.0)):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["other"] is None

    def test_checkpoint_raises_for_expired_active_deadline(self):
        deadline = Deadline.after(1e-9)
        while not deadline.expired:
            pass
        with active_deadline(deadline):
            with pytest.raises(DeadlineExceeded):
                checkpoint("loop", items=3)
