"""Admission control: depth and cost shedding, never blocking."""

import pytest

from repro.resilience import AdmissionController, AdmissionRejected


class TestValidation:
    def test_limit_must_be_positive(self):
        with pytest.raises(ValueError, match="limit"):
            AdmissionController(limit=0)

    def test_max_points_must_be_positive_or_none(self):
        with pytest.raises(ValueError, match="max_points"):
            AdmissionController(limit=1, max_points=0)
        AdmissionController(limit=1, max_points=None)  # fine

    def test_retry_after_must_be_positive(self):
        with pytest.raises(ValueError, match="retry_after"):
            AdmissionController(limit=1, retry_after=0)


class TestDepthShedding:
    def test_admits_up_to_limit_then_sheds_429(self):
        gate = AdmissionController(limit=2, retry_after=0.5)
        with gate.admit():
            with gate.admit():
                assert gate.depth == 2
                with pytest.raises(AdmissionRejected) as excinfo:
                    with gate.admit():
                        pass  # pragma: no cover
                error = excinfo.value
                assert error.status == 429
                assert error.reason == "queue-full"
                assert error.retry_after == 0.5
                assert error.depth == 2

    def test_slot_released_on_exit_even_after_error(self):
        gate = AdmissionController(limit=1)
        with pytest.raises(RuntimeError, match="boom"):
            with gate.admit():
                raise RuntimeError("boom")
        assert gate.depth == 0
        with gate.admit():  # admits again — the slot was released
            assert gate.depth == 1


class TestCostShedding:
    def test_idle_server_always_admits_whatever_the_cost(self):
        gate = AdmissionController(limit=4, max_points=100)
        with gate.admit(cost=10_000):
            assert gate.depth == 1

    def test_busy_server_sheds_over_budget_with_503(self):
        gate = AdmissionController(limit=4, max_points=100)
        with gate.admit(cost=80):
            with pytest.raises(AdmissionRejected) as excinfo:
                with gate.admit(cost=50):
                    pass  # pragma: no cover
            error = excinfo.value
            assert error.status == 503
            assert error.reason == "cost-budget"

    def test_within_budget_admits_alongside(self):
        gate = AdmissionController(limit=4, max_points=100)
        with gate.admit(cost=80):
            with gate.admit(cost=20):
                assert gate.snapshot()["points_in_flight"] == 100

    def test_no_max_points_means_no_cost_shedding(self):
        gate = AdmissionController(limit=4)
        with gate.admit(cost=10**9):
            with gate.admit(cost=10**9):
                assert gate.depth == 2


class TestSnapshot:
    def test_counts_accepts_and_sheds(self):
        gate = AdmissionController(limit=1, retry_after=2.0)
        with gate.admit():
            for _ in range(3):
                with pytest.raises(AdmissionRejected):
                    with gate.admit():
                        pass  # pragma: no cover
        snap = gate.snapshot()
        assert snap == {
            "limit": 1,
            "max_points": None,
            "depth": 0,
            "points_in_flight": 0,
            "accepted": 1,
            "shed": 3,
            "retry_after_seconds": 2.0,
        }
