"""Crash recovery: torn record files, backup rotation, terminal survival."""

import json
import os

import pytest

from repro import obs
from repro.jobs.store import JobStore
from repro.resilience import injected_faults
from repro.resilience.faults import FaultError

SCENARIO = {"name": "recovery-sweep"}


def _truncate_mid_record(path):
    """Tear the file the way a crash mid-write would: half the bytes."""
    data = path.read_bytes()
    assert len(data) > 2
    path.write_bytes(data[: len(data) // 2])
    with pytest.raises(json.JSONDecodeError):
        json.loads(path.read_text(encoding="utf-8"))


class TestBackupRotation:
    def test_second_save_leaves_a_bak_twin(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.create(SCENARIO)
        store.transition(record.id, "running")
        bak = tmp_path / f"{record.id}.json.bak"
        assert bak.exists()
        # The backup holds the *previous* good state.
        assert json.loads(bak.read_text(encoding="utf-8"))["state"] == "queued"

    def test_bak_files_are_not_loaded_as_records(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.create(SCENARIO)
        store.transition(record.id, "running")
        reloaded = JobStore(tmp_path)
        assert [r.id for r in reloaded.list()] == [record.id]


class TestTornFileRecovery:
    def test_torn_current_recovers_from_backup(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.create(SCENARIO)
        store.transition(record.id, "running")
        store.update_progress(record.id, shards_done=3, points_done=42)
        path = store.path_for(record.id)
        _truncate_mid_record(path)

        reloaded = JobStore(tmp_path)
        recovered = reloaded.get(record.id)
        # The last *backed-up* state wins; the torn tail is discarded.
        assert recovered.state in ("queued", "running")
        # The torn file was moved aside for post-mortem and the current
        # file rewritten as clean JSON.
        assert (tmp_path / f"{record.id}.json.corrupt").exists()
        assert json.loads(path.read_text(encoding="utf-8"))["id"] == record.id

    def test_recovered_job_requeues_via_non_terminal_state(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.create(SCENARIO)
        store.transition(record.id, "running")
        _truncate_mid_record(store.path_for(record.id))
        reloaded = JobStore(tmp_path)
        # Non-terminal after recovery — exactly what JobManager.recover
        # re-queues on startup.
        assert not reloaded.get(record.id).terminal

    def test_terminal_state_survives_torn_progress_write(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.create(SCENARIO)
        store.transition(record.id, "running")
        store.transition(record.id, "done")
        # A later advisory write tears the file; the .bak twin still
        # holds the terminal state (rotated at the 'done' save).
        store.add_event(record.id, "late-noise")
        _truncate_mid_record(store.path_for(record.id))
        reloaded = JobStore(tmp_path)
        assert reloaded.get(record.id).state == "done"

    def test_torn_file_without_backup_is_skipped_not_fatal(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.create(SCENARIO)  # single save: no .bak yet
        _truncate_mid_record(store.path_for(record.id))
        reloaded = JobStore(tmp_path)
        assert reloaded.list() == []

    def test_orphan_backup_is_restored(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.create(SCENARIO)
        store.transition(record.id, "done")
        # Crash window: backup rotated, final rename never happened.
        os.unlink(store.path_for(record.id))
        reloaded = JobStore(tmp_path)
        assert reloaded.get(record.id).state == "queued"
        assert store.path_for(record.id).exists()

    def test_recovery_counts_in_telemetry(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.create(SCENARIO)
        store.transition(record.id, "running")
        _truncate_mid_record(store.path_for(record.id))
        registry = obs.MetricsRegistry()
        obs.enable(registry)
        try:
            JobStore(tmp_path)
            assert obs.counter_total("jobs.store.recovered") == 1
        finally:
            obs.disable()


class TestWriteFaults:
    def test_advisory_write_failure_is_tolerated_and_counted(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.create(SCENARIO)
        registry = obs.MetricsRegistry()
        obs.enable(registry)
        try:
            with injected_faults("store.write:always"):
                store.update_progress(record.id, shards_done=1)
            assert obs.counter_total("jobs.store.write_errors") == 1
        finally:
            obs.disable()
        # In-memory state stayed authoritative and the next clean save
        # persists it.
        assert store.get(record.id).progress["shards_done"] == 1
        store.transition(record.id, "running")
        reloaded = JobStore(tmp_path)
        assert reloaded.get(record.id).progress["shards_done"] == 1

    def test_strict_write_failure_raises(self, tmp_path):
        store = JobStore(tmp_path)
        record = store.create(SCENARIO)
        with injected_faults("store.write:always"):
            with pytest.raises(FaultError):
                store.transition(record.id, "running")
