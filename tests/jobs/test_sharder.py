"""Sharding + merge must be invisible: bit-identical to unsharded runs."""

import numpy as np
import pytest

from repro.explore.engine import EvaluationStats, explore
from repro.explore.scenario import demo_scenario
from repro.jobs import merge_stats, merge_tables, shard_scenario


def assert_tables_identical(got, expected):
    """Every column equal — exact for floats too (no tolerance)."""
    assert set(got.columns) == set(expected.columns)
    for name, column in expected.columns.items():
        other = got.columns[name]
        assert other.dtype == column.dtype, name
        if column.dtype == object:
            assert (other == column).all(), name
        else:
            assert np.array_equal(other, column, equal_nan=True), name


class TestShardScenario:
    def test_shards_partition_the_parent_rows(self):
        scenario = demo_scenario(frequency_points=5)  # 8a x 3t x 5f = 120
        for count in (1, 3, 7):
            shards = shard_scenario(scenario, count)
            assert len(shards) == count
            seen = np.concatenate([s.row_indices for s in shards])
            assert sorted(seen.tolist()) == list(range(scenario.size))
            assert sum(s.n for s in shards) == scenario.size
            for shard in shards:
                assert shard.scenario.size == shard.n

    def test_arch_axis_shards_are_contiguous_blocks(self):
        scenario = demo_scenario(frequency_points=4)
        shards = shard_scenario(scenario, 3)  # 8 archs >= 3 -> arch axis
        for shard in shards:
            rows = shard.row_indices
            assert (np.diff(rows) == 1).all()

    def test_frequency_axis_when_architectures_run_out(self):
        scenario = demo_scenario(frequency_points=10)
        shards = shard_scenario(scenario, 9)  # 8 archs < 9 -> freq axis
        assert len(shards) == 9
        seen = np.concatenate([s.row_indices for s in shards])
        assert sorted(seen.tolist()) == list(range(scenario.size))
        # Uneven remainder: 10 frequencies over 9 shards -> one 2-wide.
        assert sorted(s.n for s in shards)[-1] == 2 * 8 * 3

    def test_count_is_clamped_to_the_axes(self):
        scenario = demo_scenario(frequency_points=2)
        shards = shard_scenario(scenario, 100)
        assert len(shards) == max(8, 2)
        assert shard_scenario(scenario, 1)[0].scenario.size == scenario.size

    def test_deterministic_content_hashes(self):
        scenario = demo_scenario(frequency_points=5)
        first = [s.key for s in shard_scenario(scenario, 3)]
        again = [s.key for s in shard_scenario(scenario, 3)]
        assert first == again
        assert len(set(first)) == 3

    def test_rejects_non_positive_counts(self):
        with pytest.raises(ValueError):
            shard_scenario(demo_scenario(frequency_points=2), 0)


class TestMergeTables:
    @pytest.mark.parametrize("count", [1, 3, 7])
    def test_merge_is_bit_identical_to_unsharded_explore(self, count):
        scenario = demo_scenario(frequency_points=5)
        reference = explore(scenario, use_cache=False)
        shards = shard_scenario(scenario, count)
        tables = [
            (shard, explore(shard.scenario, use_cache=False).table)
            for shard in shards
        ]
        merged = merge_tables(tables)
        assert_tables_identical(merged, reference.table)

    def test_frequency_axis_merge_is_bit_identical(self):
        scenario = demo_scenario(frequency_points=10)
        reference = explore(scenario, use_cache=False)
        shards = shard_scenario(scenario, 9)
        merged = merge_tables(
            [(s, explore(s.scenario, use_cache=False).table) for s in shards]
        )
        assert_tables_identical(merged, reference.table)

    def test_plain_concatenation_without_indices(self):
        scenario = demo_scenario(frequency_points=3)
        shards = shard_scenario(scenario, 3)  # arch axis: in-order blocks
        merged = merge_tables(
            [explore(s.scenario, use_cache=False).table for s in shards]
        )
        reference = explore(scenario, use_cache=False)
        assert_tables_identical(merged, reference.table)

    def test_rejects_empty_and_partial_coverage(self):
        scenario = demo_scenario(frequency_points=3)
        shards = shard_scenario(scenario, 3)
        tables = [
            (s, explore(s.scenario, use_cache=False).table) for s in shards
        ]
        with pytest.raises(ValueError):
            merge_tables([])
        with pytest.raises(ValueError):
            merge_tables([tables[0], tables[2]])  # middle shard missing

    def test_rejects_mismatched_index_lengths(self):
        scenario = demo_scenario(frequency_points=3)
        shard = shard_scenario(scenario, 1)[0]
        table = explore(shard.scenario, use_cache=False).table
        with pytest.raises(ValueError):
            merge_tables([table], indices=[np.arange(3)])


class TestMergeStats:
    def test_counters_and_phases_sum(self):
        scenario = demo_scenario(frequency_points=5)
        reference = explore(scenario, use_cache=False)
        shards = shard_scenario(scenario, 3)
        parts = [explore(s.scenario, use_cache=False).stats for s in shards]
        merged = merge_stats(parts)
        assert merged.n_candidates == reference.stats.n_candidates
        assert merged.n_feasible == reference.stats.n_feasible
        assert merged.n_vectorized == reference.stats.n_vectorized
        assert merged.n_fallback == reference.stats.n_fallback
        assert merged.elapsed_seconds == pytest.approx(
            sum(p.elapsed_seconds for p in parts)
        )
        for phase in ("expand", "kernel"):
            assert merged.phases[phase] == pytest.approx(
                sum(p.phases.get(phase, 0.0) for p in parts)
            )

    def test_explicit_wall_time_overrides_the_sum(self):
        stats = [
            EvaluationStats(10, 8, 9, 1, 2.0, {"kernel": 1.5}),
            EvaluationStats(5, 5, 5, 0, 1.0, {"kernel": 0.5, "expand": 0.1}),
        ]
        merged = merge_stats(stats, elapsed_seconds=0.75)
        assert merged.elapsed_seconds == 0.75
        assert merged.n_candidates == 15
        assert merged.phases == {"kernel": 2.0, "expand": 0.1}

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            merge_stats([])
