"""JobStore: atomic persistence, sticky terminal states, change signal."""

import json
import threading

import pytest

from repro.explore.scenario import demo_scenario
from repro.jobs import JobNotFound, JobStore
from repro.jobs.store import MAX_EVENTS, STATES, TERMINAL_STATES


@pytest.fixture()
def store(tmp_path):
    return JobStore(tmp_path / "jobs")


def make_job(store, **kwargs):
    scenario = demo_scenario(frequency_points=2).to_dict()
    return store.create(scenario, **kwargs)


class TestLifecycle:
    def test_create_persists_a_queued_record(self, store):
        record = make_job(store, solver="auto", shards=4)
        assert record.state == "queued"
        assert record.shards == 4
        assert store.get(record.id) is record
        on_disk = json.loads(store.path_for(record.id).read_text())
        assert on_disk["id"] == record.id
        assert on_disk["state"] == "queued"
        assert on_disk["events"][0]["state"] == "queued"

    def test_transition_walks_the_lifecycle(self, store):
        record = make_job(store)
        store.transition(record.id, "running")
        assert store.get(record.id).state == "running"
        store.transition(record.id, "done", stats={"n_candidates": 3})
        final = store.get(record.id)
        assert final.state == "done"
        assert final.terminal
        assert final.stats == {"n_candidates": 3}
        states = [e["state"] for e in final.events if e["event"] == "state"]
        assert states == ["queued", "running", "done"]

    def test_terminal_states_are_sticky(self, store):
        record = make_job(store)
        store.transition(record.id, "running")
        store.transition(record.id, "cancelled")
        # A racing finisher cannot resurrect or overwrite the outcome.
        after = store.transition(record.id, "done")
        assert after.state == "cancelled"
        assert store.get(record.id).state == "cancelled"

    def test_unknown_state_and_job_are_rejected(self, store):
        record = make_job(store)
        with pytest.raises(ValueError):
            store.transition(record.id, "paused")
        with pytest.raises(JobNotFound):
            store.get("no-such-job")
        with pytest.raises(JobNotFound):
            store.transition("no-such-job", "running")

    def test_list_is_newest_first(self, store):
        ids = [make_job(store).id for _ in range(3)]
        listed = [record.id for record in store.list()]
        assert set(listed) == set(ids)
        created = {r.id: r.created_at for r in store.list()}
        assert listed == sorted(
            listed, key=lambda i: (created[i], i), reverse=True
        )

    def test_state_tables_cover_each_other(self):
        assert set(TERMINAL_STATES) < set(STATES)
        assert "queued" in STATES and "running" in STATES


class TestEvents:
    def test_events_carry_monotonic_seq(self, store):
        record = make_job(store)
        for shard in range(3):
            store.add_event(record.id, "shard", shard=shard + 1, of=3)
        seqs = [e["seq"] for e in store.get(record.id).events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_event_window_trims_but_seq_keeps_counting(self, store):
        record = make_job(store)
        for i in range(MAX_EVENTS + 20):
            store.add_event(record.id, "tick", i=i)
        refreshed = store.get(record.id)
        assert len(refreshed.events) == MAX_EVENTS
        # +1 for the initial queued event.
        assert refreshed.events[-1]["seq"] == MAX_EVENTS + 21
        assert refreshed.event_seq == MAX_EVENTS + 21

    def test_update_progress_merges_counters(self, store):
        record = make_job(store, progress={"shards_total": 4, "shards_done": 0})
        store.update_progress(record.id, shards_done=2, points_done=100)
        progress = store.get(record.id).progress
        assert progress == {
            "shards_total": 4,
            "shards_done": 2,
            "points_done": 100,
        }


class TestPersistence:
    def test_restart_reloads_terminal_states_exactly(self, store, tmp_path):
        done = make_job(store)
        store.transition(done.id, "running")
        store.transition(done.id, "done", cache_key="abc123")
        failed = make_job(store)
        store.transition(failed.id, "failed", error="ValueError: boom")
        queued = make_job(store)

        reborn = JobStore(tmp_path / "jobs")
        assert reborn.get(done.id).state == "done"
        assert reborn.get(done.id).cache_key == "abc123"
        assert reborn.get(failed.id).state == "failed"
        assert reborn.get(failed.id).error == "ValueError: boom"
        assert reborn.get(queued.id).state == "queued"
        assert reborn.get(done.id).event_seq == store.get(done.id).event_seq

    def test_corrupt_files_are_skipped_not_fatal(self, store, tmp_path):
        good = make_job(store)
        (tmp_path / "jobs" / "garbage.json").write_text("{not json")
        (tmp_path / "jobs" / "short.json").write_text("[]")
        reborn = JobStore(tmp_path / "jobs")
        assert reborn.get(good.id).id == good.id
        assert len(reborn.list()) == 1

    def test_result_round_trip_and_absence(self, store):
        record = make_job(store)
        assert store.read_result(record.id) is None
        store.write_result(record.id, {"n_records": 7, "columns": {}})
        assert store.read_result(record.id)["n_records"] == 7
        # Result files must not be mistaken for job records on reload.
        reborn = JobStore(store.directory)
        assert len(reborn.list()) == 1


class TestChangeNotification:
    def test_every_save_bumps_the_version(self, store):
        before = store.version
        record = make_job(store)
        assert store.version > before
        mid = store.version
        store.transition(record.id, "running")
        assert store.version > mid

    def test_wait_for_change_wakes_on_mutation(self, store):
        record = make_job(store)
        version = store.version
        results = []

        def waiter():
            results.append(store.wait_for_change(version, timeout=5.0))

        thread = threading.Thread(target=waiter)
        thread.start()
        store.transition(record.id, "running")
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert results and results[0] > version

    def test_wait_for_change_times_out_quietly(self, store):
        version = store.version
        assert store.wait_for_change(version, timeout=0.05) == version

    def test_stats_tallies_by_state(self, store):
        a = make_job(store)
        make_job(store)
        store.transition(a.id, "running")
        stats = store.stats()
        assert stats["jobs"] == 2
        assert stats["by_state"] == {"queued": 1, "running": 1}
        assert stats["directory"].endswith("jobs")
