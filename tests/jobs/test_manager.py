"""JobManager lifecycle: submit/wait/cancel/recover through real engines."""

import threading

import pytest

from repro.explore.engine import explore
from repro.explore.scenario import demo_scenario
from repro.jobs import (
    AsyncResult,
    JobManager,
    JobNotFound,
    JobStateError,
    JobStore,
    JobTimeout,
)
from repro import obs
from repro.solvers import SolverError
from repro.study import Study

from .test_sharder import assert_tables_identical

WAIT = 30.0


@pytest.fixture()
def manager(tmp_path):
    instance = JobManager(
        store=JobStore(tmp_path / "jobs"),
        cache=tmp_path / "cache",
    )
    yield instance
    instance.close()


def gated_manager(tmp_path, release):
    """A manager whose shard evaluator blocks until ``release`` is set."""
    started = threading.Event()

    def evaluate(scenario, method):
        started.set()
        if not release.wait(timeout=WAIT):  # pragma: no cover — test hang
            raise TimeoutError("gate never released")
        return explore(scenario, method=method, use_cache=False)

    instance = JobManager(
        store=JobStore(tmp_path / "jobs"),
        cache=tmp_path / "cache",
        evaluate_shard=evaluate,
    )
    return instance, started


class TestSubmitAndResult:
    def test_sharded_job_matches_inline_explore_exactly(self, manager):
        scenario = demo_scenario(frequency_points=3)
        record = manager.submit(scenario, solver="auto", shards=4)
        assert record.state == "queued"
        assert record.progress["shards_total"] == 4
        assert record.progress["points_total"] == scenario.size

        status = manager.wait(record.id, timeout=WAIT)
        assert status["state"] == "done"
        assert status["progress"]["shards_done"] == 4
        assert status["progress"]["points_done"] == scenario.size

        result = manager.job_result(record.id)
        reference = explore(scenario, use_cache=False)
        assert_tables_identical(result._table, reference.table)
        assert result.stats.n_candidates == reference.stats.n_candidates
        assert set(result.stats.phases) >= {"expand", "kernel"}

    def test_merged_result_seeds_the_inline_cache(self, manager):
        scenario = demo_scenario(frequency_points=2)
        record = manager.submit(scenario, solver="auto", shards=3)
        manager.wait(record.id, timeout=WAIT)
        # The merged table was written under the inline explore() key.
        inline = explore(scenario, cache=manager.cache, use_cache=True)
        assert inline.cache_hit

    def test_registry_solver_runs_as_one_unit(self, manager):
        scenario = demo_scenario(frequency_points=2)
        record = manager.submit(scenario, solver="closed_form", shards=4)
        assert record.progress["shards_total"] == 1  # options/scalar: no split
        status = manager.wait(record.id, timeout=WAIT)
        assert status["state"] == "done"
        result = manager.job_result(record.id)
        assert len(result) == scenario.size
        assert result.solver == "closed_form"

    def test_bad_submissions_leave_no_record(self, manager):
        scenario = demo_scenario(frequency_points=2)
        with pytest.raises(SolverError):
            manager.submit(scenario, solver="quantum")
        with pytest.raises(ValueError):
            manager.submit(scenario, shards=0)
        assert manager.jobs() == []

    def test_result_of_unfinished_job_is_a_state_error(self, tmp_path):
        release = threading.Event()
        manager, started = gated_manager(tmp_path, release)
        try:
            record = manager.submit(demo_scenario(frequency_points=2))
            assert started.wait(timeout=WAIT)
            with pytest.raises(JobStateError):
                manager.job_result(record.id)
            with pytest.raises(JobNotFound):
                manager.job("missing")
        finally:
            release.set()
            manager.close()

    def test_wait_times_out(self, tmp_path):
        release = threading.Event()
        manager, started = gated_manager(tmp_path, release)
        try:
            record = manager.submit(demo_scenario(frequency_points=2))
            assert started.wait(timeout=WAIT)
            with pytest.raises(JobTimeout):
                manager.wait(record.id, timeout=0.2, poll=0.05)
        finally:
            release.set()
            manager.close()


class TestCancel:
    def test_cancel_running_job_stops_remaining_shards(self, tmp_path):
        release = threading.Event()
        manager, started = gated_manager(tmp_path, release)
        try:
            record = manager.submit(
                demo_scenario(frequency_points=2), shards=4
            )
            assert started.wait(timeout=WAIT)
            payload = manager.cancel(record.id)
            assert payload["state"] in ("running", "cancelled")
            release.set()
            status = manager.wait(record.id, timeout=WAIT)
            assert status["state"] == "cancelled"
            assert status["progress"]["shards_done"] < 4
            with pytest.raises(JobStateError):
                manager.job_result(record.id)
        finally:
            release.set()
            manager.close()

    def test_cancel_queued_job_is_immediate(self, tmp_path):
        release = threading.Event()
        manager, started = gated_manager(tmp_path, release)
        try:
            blocker = manager.submit(demo_scenario(frequency_points=2))
            assert started.wait(timeout=WAIT)
            queued = manager.submit(demo_scenario(frequency_points=3))
            payload = manager.cancel(queued.id)
            assert payload["state"] == "cancelled"
            release.set()
            manager.wait(blocker.id, timeout=WAIT)
            # The dispatcher must skip the cancelled job, not run it.
            assert manager.job(queued.id)["state"] == "cancelled"
        finally:
            release.set()
            manager.close()

    def test_cancel_terminal_job_is_a_state_error(self, manager):
        record = manager.submit(demo_scenario(frequency_points=2))
        manager.wait(record.id, timeout=WAIT)
        with pytest.raises(JobStateError):
            manager.cancel(record.id)


class TestEventsAndRecovery:
    def test_stream_events_is_ordered_and_complete(self, manager):
        record = manager.submit(demo_scenario(frequency_points=2), shards=3)
        events = list(manager.stream_events(record.id, poll=0.05))
        seqs = [event["seq"] for event in events]
        assert seqs == sorted(seqs)
        states = [e["state"] for e in events if e["event"] == "state"]
        assert states[0] == "queued"
        assert states[-1] == "done"
        shard_events = [e for e in events if e["event"] == "shard"]
        assert len(shard_events) == 3
        assert {e["shard"] for e in shard_events} == {1, 2, 3}

    def test_restart_requeues_and_finishes_interrupted_jobs(self, tmp_path):
        store = JobStore(tmp_path / "jobs")
        scenario = demo_scenario(frequency_points=2)
        crashed = store.create(scenario.to_dict(), solver="auto", shards=2)
        store.transition(crashed.id, "running")
        finished = store.create(scenario.to_dict(), solver="auto")
        store.transition(finished.id, "running")
        store.transition(finished.id, "done", cache_key="kept")

        manager = JobManager(store=store, cache=tmp_path / "cache")
        try:
            status = manager.wait(crashed.id, timeout=WAIT)
            assert status["state"] == "done"
            events = store.get(crashed.id).events
            assert any(e.get("requeued") for e in events)
            # Terminal state survived recovery untouched.
            assert manager.job(finished.id)["state"] == "done"
            assert manager.job(finished.id)["cache_key"] == "kept"
        finally:
            manager.close()


class TestStudySubmit:
    def test_study_submit_returns_a_live_async_result(self, manager):
        scenario = demo_scenario(frequency_points=2)
        handle = Study.from_scenario(scenario).solver("auto").submit(
            shards=2, manager=manager
        )
        assert isinstance(handle, AsyncResult)
        status = handle.wait(timeout=WAIT)
        assert status["state"] == "done"
        assert handle.done
        result = handle.result()
        reference = explore(scenario, use_cache=False)
        assert_tables_identical(result._table, reference.table)

    def test_async_result_progress_and_cancel(self, tmp_path):
        release = threading.Event()
        manager, started = gated_manager(tmp_path, release)
        try:
            handle = Study.from_scenario(
                demo_scenario(frequency_points=2)
            ).submit(shards=2, manager=manager)
            assert started.wait(timeout=WAIT)
            assert handle.state in ("queued", "running")
            assert handle.progress["shards_total"] == 2
            handle.cancel()
            release.set()
            handle.wait(timeout=WAIT)
            assert handle.state == "cancelled"
            with pytest.raises(JobStateError):
                handle.result()
        finally:
            release.set()
            manager.close()

    def test_study_submit_rejects_foreign_managers(self, manager):
        study = Study.from_scenario(demo_scenario(frequency_points=2))
        with pytest.raises(TypeError):
            study.submit(manager=object())


@pytest.fixture()
def fresh_registry():
    """A private metrics registry, restoring the global one afterwards."""
    was_enabled = obs.is_enabled()
    previous = obs.get_registry()
    registry = obs.enable(obs.MetricsRegistry())
    yield registry
    if was_enabled and previous is not None:
        obs.enable(previous)
    else:
        obs.disable()


class TestQueueDepthGauge:
    """``jobs.queue_depth`` must return to 0 on every exit path."""

    def _depth(self, registry):
        return registry.gauge("jobs.queue_depth").value

    def test_cancelling_a_queued_job_releases_the_gauge(
        self, tmp_path, fresh_registry
    ):
        release = threading.Event()
        manager, started = gated_manager(tmp_path, release)
        try:
            blocker = manager.submit(demo_scenario(frequency_points=2))
            assert started.wait(timeout=WAIT)
            queued = manager.submit(demo_scenario(frequency_points=2))
            assert self._depth(fresh_registry) == 1
            manager.cancel(queued.id)
            # The cancel itself must release the slot — not a later
            # dispatcher pass over a job it will skip anyway.
            assert self._depth(fresh_registry) == 0
            release.set()
            manager.wait(blocker.id, timeout=WAIT)
            assert self._depth(fresh_registry) == 0
        finally:
            release.set()
            manager.close()

    def test_failed_job_releases_the_gauge(self, tmp_path, fresh_registry):
        def explode(scenario, method):
            raise RuntimeError("shard exploded")

        manager = JobManager(
            store=JobStore(tmp_path / "jobs"),
            cache=tmp_path / "cache",
            evaluate_shard=explode,
        )
        try:
            record = manager.submit(demo_scenario(frequency_points=2))
            status = manager.wait(record.id, timeout=WAIT)
            assert status["state"] == "failed"
            assert self._depth(fresh_registry) == 0
        finally:
            manager.close()

    def test_completed_job_releases_the_gauge(self, tmp_path, fresh_registry):
        manager = JobManager(
            store=JobStore(tmp_path / "jobs"), cache=tmp_path / "cache"
        )
        try:
            record = manager.submit(
                demo_scenario(frequency_points=2), shards=2
            )
            status = manager.wait(record.id, timeout=WAIT)
            assert status["state"] == "done"
            assert self._depth(fresh_registry) == 0
        finally:
            manager.close()
