"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestOptimize:
    def test_prints_optimum(self, capsys):
        code = main([
            "optimize", "--n-cells", "729", "--activity", "0.2976",
            "--logical-depth", "17",
        ])
        captured = capsys.readouterr().out
        assert code == 0
        assert "numerical optimum" in captured
        assert "Eq. 13" in captured

    def test_technology_choice(self, capsys):
        code = main([
            "optimize", "--n-cells", "729", "--activity", "0.3",
            "--logical-depth", "17", "--tech", "HS",
        ])
        assert code == 0
        assert "HS" in capsys.readouterr().out


class TestTables:
    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Wallace" in out

    def test_table2(self, capsys):
        assert main(["table", "2"]) == 0
        assert "our fit" in capsys.readouterr().out

    @pytest.mark.parametrize("number", ["3", "4"])
    def test_wallace_tables(self, number, capsys):
        assert main(["table", number]) == 0
        assert "Wallace" in capsys.readouterr().out


class TestFigures:
    def test_figure2(self, capsys):
        assert main(["figure", "2"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_figure1(self, capsys):
        assert main(["figure", "1"]) == 0
        assert "optimal working points" in capsys.readouterr().out


class TestVerify:
    def test_single_architecture(self, capsys):
        assert main(["verify", "Wallace", "--vectors", "10"]) == 0
        assert "OK" in capsys.readouterr().out


class TestExportVerilog:
    def test_to_stdout(self, capsys):
        assert main(["export-verilog", "Sequential"]) == 0
        out = capsys.readouterr().out
        assert "module seq16 (" in out

    def test_to_file(self, tmp_path, capsys):
        target = tmp_path / "wallace.v"
        assert main(["export-verilog", "Wallace", "-o", str(target)]) == 0
        assert "module wallace16 (" in target.read_text()


class TestExplore:
    def test_demo_sweep(self, tmp_path, capsys):
        code = main([
            "explore", "--frequency-points", "3", "--top", "5",
            "--jobs", "1", "--cache-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "demo-multiplier-space" in out
        assert "Pareto frontier" in out
        assert "cache stored" in out

    def test_cache_hit_on_rerun(self, tmp_path, capsys):
        args = [
            "explore", "--frequency-points", "3", "--jobs", "1",
            "--cache-dir", str(tmp_path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "cache hit" in out

    def test_scenario_file_round_trip(self, tmp_path, capsys):
        scenario_path = tmp_path / "scenario.json"
        assert main([
            "explore", "--frequency-points", "3", "--dry-run",
            "--save-scenario", str(scenario_path),
        ]) == 0
        capsys.readouterr()
        code = main([
            "explore", str(scenario_path), "--no-cache", "--jobs", "1",
            "--top", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "candidates" in out and "cache" not in out

    def test_dry_run_reports_size_and_hash(self, capsys):
        assert main(["explore", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "1008 candidates" in out
        assert "content hash" in out

    def test_export_npz_round_trips(self, tmp_path, capsys):
        from repro.explore.columnar import ResultTable

        target = tmp_path / "sweep.npz"
        code = main([
            "explore", "--frequency-points", "3", "--jobs", "1",
            "--no-cache", "--export", str(target),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert f"exported 72 records to {target}" in out
        table = ResultTable.load_npz(target)
        assert len(table) == 72

    def test_export_bad_suffix_rejected_before_the_sweep(self, capsys):
        code = main(["explore", "--export", "sweep.parquet"])
        err = capsys.readouterr().err
        assert code == 2
        assert ".json, .csv or .npz" in err


class TestProfile:
    def test_explore_profile_prints_spans_and_phases(self, tmp_path, capsys):
        code = main([
            "explore", "--frequency-points", "3", "--jobs", "1",
            "--cache-dir", str(tmp_path), "--top", "1", "--profile",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "profile: span tree" in out
        assert "engine.kernel" in out
        assert "profile: phase breakdown" in out
        assert "total" in out

    def test_explore_profile_phases_cover_the_total(self, tmp_path, capsys):
        """The printed phases account for >=90% of the measured total."""
        import json

        profile_path = tmp_path / "profile.json"
        assert main([
            "explore", "--frequency-points", "3", "--jobs", "1",
            "--cache-dir", str(tmp_path / "cache"), "--top", "1",
            "--profile-json", str(profile_path),
        ]) == 0
        capsys.readouterr()
        profile = json.loads(profile_path.read_text())
        phase_sum = sum(profile["phases"].values())
        assert phase_sum <= profile["total_seconds"]
        assert phase_sum >= 0.9 * profile["total_seconds"]

    def test_profile_json_payload_shape(self, tmp_path, capsys):
        import json

        profile_path = tmp_path / "profile.json"
        assert main([
            "explore", "--frequency-points", "3", "--jobs", "1",
            "--no-cache", "--top", "1",
            "--profile-json", str(profile_path),
        ]) == 0
        capsys.readouterr()
        profile = json.loads(profile_path.read_text())
        assert {"total_seconds", "phases", "spans", "metrics"} <= set(profile)
        assert {"expand", "kernel"} <= set(profile["phases"])
        root_names = [r["name"] for r in profile["spans"]["roots"]]
        assert "study.run" in root_names

    def test_optimize_profile(self, capsys):
        code = main([
            "optimize", "--arch", "wallace16", "--tech", "LL", "--profile",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "profile: span tree" in out
        assert "study.run" in out


class TestErrorPaths:
    """Every user mistake must exit with code 2 and a stderr message."""

    OPTIMIZE = [
        "optimize", "--n-cells", "729", "--activity", "0.2976",
        "--logical-depth", "17",
    ]

    def test_unknown_technology_flavour(self, capsys):
        code = main(self.OPTIMIZE + ["--tech", "XX"])
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown technology flavour" in captured.err
        assert "XX" in captured.err

    def test_unreadable_scenario_file(self, tmp_path, capsys):
        code = main(["explore", str(tmp_path / "does-not-exist.json")])
        captured = capsys.readouterr()
        assert code == 2
        assert "cannot read scenario" in captured.err

    def test_invalid_scenario_json(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{this is not json")
        code = main(["explore", str(path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "invalid scenario" in captured.err

    def test_scenario_json_missing_keys(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text("{}")
        code = main(["explore", str(path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "invalid scenario" in captured.err

    def test_jobs_zero(self, capsys):
        code = main(["explore", "--jobs", "0", "--frequency-points", "3"])
        captured = capsys.readouterr()
        assert code == 2
        assert "--jobs must be >= 1" in captured.err

    def test_jobs_negative(self, capsys):
        code = main(["explore", "--jobs", "-4", "--frequency-points", "3"])
        captured = capsys.readouterr()
        assert code == 2
        assert "--jobs must be >= 1" in captured.err


class TestOptimizeSolverChoice:
    def test_alternate_solver_runs(self, capsys):
        code = main([
            "optimize", "--n-cells", "729", "--activity", "0.2976",
            "--logical-depth", "17", "--solver", "closed_form",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "closed_form optimum" in out

    def test_rejected_solver_name(self):
        with pytest.raises(SystemExit):
            main([
                "optimize", "--n-cells", "729", "--activity", "0.2976",
                "--logical-depth", "17", "--solver", "frobnicate",
            ])


class TestMisc:
    def test_characterize(self, capsys):
        assert main(["characterize", "LL"]) == 0
        out = capsys.readouterr().out
        assert "alpha" in out and "zeta" in out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "RCA" in out and "Seq parallel" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestVersion:
    def test_version_flag(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {repro.__version__}" in capsys.readouterr().out


class TestList:
    """`repro list` covers solvers and transforms, not just Table 1."""

    def test_default_lists_all_sections(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "architectures (13):" in out
        assert "solvers (" in out and "vectorized" in out
        assert "transforms (" in out and "parallelize" in out

    def test_solvers_section_matches_registry(self, capsys):
        from repro.solvers import available_solvers

        assert main(["list", "solvers"]) == 0
        out = capsys.readouterr().out
        for name in available_solvers():
            assert name in out

    def test_architectures_section_is_bare_names(self, capsys):
        assert main(["list", "architectures"]) == 0
        out = capsys.readouterr().out
        assert "Wallace" in out and "solvers" not in out

    def test_transforms_section(self, capsys):
        assert main(["list", "transforms"]) == 0
        out = capsys.readouterr().out
        assert "pipeline" in out and "sequentialize" in out

    def test_shares_helper_with_service_listing(self):
        """CLI sections and GET /v1/solvers come from one source."""
        from repro.listing import listing_payload, render_listing

        payload = listing_payload()
        rendered = render_listing("all")
        for name in payload["solvers"]:
            assert name in rendered
        for name in payload["architectures"]:
            assert name in rendered


class TestCacheCommand:
    def test_stats_on_empty_dir(self, tmp_path, capsys):
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        import json

        stats = json.loads(capsys.readouterr().out)
        assert stats["disk"] == {
            "directory": str(tmp_path), "entries": 0, "total_bytes": 0,
            "quarantined": 0,
        }
        assert {"hits", "misses", "evictions", "entries"} <= set(
            stats["memory"]
        )

    def test_stats_after_a_sweep(self, tmp_path, capsys):
        assert main([
            "explore", "--frequency-points", "2", "--jobs", "1",
            "--cache-dir", str(tmp_path), "--top", "1",
        ]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--cache-dir", str(tmp_path)]) == 0
        import json

        stats = json.loads(capsys.readouterr().out)
        disk = stats["disk"]
        assert disk["entries"] == 1 and disk["total_bytes"] > 0

    def test_clear(self, tmp_path, capsys):
        from repro.explore.cache import ResultCache

        ResultCache(tmp_path).put("k", {})
        assert main(["cache", "clear", "--cache-dir", str(tmp_path)]) == 0
        assert "removed 1 entries" in capsys.readouterr().out
        assert ResultCache(tmp_path).entries() == []

    def test_prune(self, tmp_path, capsys):
        from repro.explore.cache import ResultCache

        cache = ResultCache(tmp_path)
        for index in range(3):
            cache.put(f"k{index}", {})
        assert main([
            "cache", "prune", "--max-entries", "1",
            "--cache-dir", str(tmp_path),
        ]) == 0
        assert "pruned 2 entries" in capsys.readouterr().out
        assert len(cache.entries()) == 1

    def test_prune_without_max_entries_exits_2(self, tmp_path, capsys):
        code = main(["cache", "prune", "--cache-dir", str(tmp_path)])
        assert code == 2
        assert "--max-entries" in capsys.readouterr().err


class TestServeCommand:
    def test_rejects_bad_workers(self, capsys):
        code = main(["serve", "--workers", "0", "--port", "0"])
        assert code == 2
        assert "cannot start service" in capsys.readouterr().err

    def test_parser_knows_serve_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "serve", "--port", "0", "--workers", "2",
            "--max-body", "1024", "--cache-size", "8", "--no-cache",
        ])
        assert args.port == 0 and args.workers == 2
        assert args.max_body == 1024 and args.cache_size == 8
        assert args.no_cache is True
