"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestOptimize:
    def test_prints_optimum(self, capsys):
        code = main([
            "optimize", "--n-cells", "729", "--activity", "0.2976",
            "--logical-depth", "17",
        ])
        captured = capsys.readouterr().out
        assert code == 0
        assert "numerical optimum" in captured
        assert "Eq. 13" in captured

    def test_technology_choice(self, capsys):
        code = main([
            "optimize", "--n-cells", "729", "--activity", "0.3",
            "--logical-depth", "17", "--tech", "HS",
        ])
        assert code == 0
        assert "HS" in capsys.readouterr().out


class TestTables:
    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Wallace" in out

    def test_table2(self, capsys):
        assert main(["table", "2"]) == 0
        assert "our fit" in capsys.readouterr().out

    @pytest.mark.parametrize("number", ["3", "4"])
    def test_wallace_tables(self, number, capsys):
        assert main(["table", number]) == 0
        assert "Wallace" in capsys.readouterr().out


class TestFigures:
    def test_figure2(self, capsys):
        assert main(["figure", "2"]) == 0
        assert "Figure 2" in capsys.readouterr().out

    def test_figure1(self, capsys):
        assert main(["figure", "1"]) == 0
        assert "optimal working points" in capsys.readouterr().out


class TestVerify:
    def test_single_architecture(self, capsys):
        assert main(["verify", "Wallace", "--vectors", "10"]) == 0
        assert "OK" in capsys.readouterr().out


class TestExportVerilog:
    def test_to_stdout(self, capsys):
        assert main(["export-verilog", "Sequential"]) == 0
        out = capsys.readouterr().out
        assert "module seq16 (" in out

    def test_to_file(self, tmp_path, capsys):
        target = tmp_path / "wallace.v"
        assert main(["export-verilog", "Wallace", "-o", str(target)]) == 0
        assert "module wallace16 (" in target.read_text()


class TestExplore:
    def test_demo_sweep(self, tmp_path, capsys):
        code = main([
            "explore", "--frequency-points", "3", "--top", "5",
            "--jobs", "1", "--cache-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "demo-multiplier-space" in out
        assert "Pareto frontier" in out
        assert "cache stored" in out

    def test_cache_hit_on_rerun(self, tmp_path, capsys):
        args = [
            "explore", "--frequency-points", "3", "--jobs", "1",
            "--cache-dir", str(tmp_path),
        ]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "cache hit" in out

    def test_scenario_file_round_trip(self, tmp_path, capsys):
        scenario_path = tmp_path / "scenario.json"
        assert main([
            "explore", "--frequency-points", "3", "--dry-run",
            "--save-scenario", str(scenario_path),
        ]) == 0
        capsys.readouterr()
        code = main([
            "explore", str(scenario_path), "--no-cache", "--jobs", "1",
            "--top", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "candidates" in out and "cache" not in out

    def test_dry_run_reports_size_and_hash(self, capsys):
        assert main(["explore", "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "1008 candidates" in out
        assert "content hash" in out


class TestErrorPaths:
    """Every user mistake must exit with code 2 and a stderr message."""

    OPTIMIZE = [
        "optimize", "--n-cells", "729", "--activity", "0.2976",
        "--logical-depth", "17",
    ]

    def test_unknown_technology_flavour(self, capsys):
        code = main(self.OPTIMIZE + ["--tech", "XX"])
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown technology flavour" in captured.err
        assert "XX" in captured.err

    def test_unreadable_scenario_file(self, tmp_path, capsys):
        code = main(["explore", str(tmp_path / "does-not-exist.json")])
        captured = capsys.readouterr()
        assert code == 2
        assert "cannot read scenario" in captured.err

    def test_invalid_scenario_json(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text("{this is not json")
        code = main(["explore", str(path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "invalid scenario" in captured.err

    def test_scenario_json_missing_keys(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text("{}")
        code = main(["explore", str(path)])
        captured = capsys.readouterr()
        assert code == 2
        assert "invalid scenario" in captured.err

    def test_jobs_zero(self, capsys):
        code = main(["explore", "--jobs", "0", "--frequency-points", "3"])
        captured = capsys.readouterr()
        assert code == 2
        assert "--jobs must be >= 1" in captured.err

    def test_jobs_negative(self, capsys):
        code = main(["explore", "--jobs", "-4", "--frequency-points", "3"])
        captured = capsys.readouterr()
        assert code == 2
        assert "--jobs must be >= 1" in captured.err


class TestOptimizeSolverChoice:
    def test_alternate_solver_runs(self, capsys):
        code = main([
            "optimize", "--n-cells", "729", "--activity", "0.2976",
            "--logical-depth", "17", "--solver", "closed_form",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "closed_form optimum" in out

    def test_rejected_solver_name(self):
        with pytest.raises(SystemExit):
            main([
                "optimize", "--n-cells", "729", "--activity", "0.2976",
                "--logical-depth", "17", "--solver", "frobnicate",
            ])


class TestMisc:
    def test_characterize(self, capsys):
        assert main(["characterize", "LL"]) == 0
        out = capsys.readouterr().out
        assert "alpha" in out and "zeta" in out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "RCA" in out and "Seq parallel" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
