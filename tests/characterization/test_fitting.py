"""Tests for the synthetic-SPICE characterisation flow."""

import math

import numpy as np
import pytest

from repro.characterization import (
    SYNTH_DEVICES,
    characterize,
    device,
    fit_delay_coefficient,
    fit_device,
    native_technology,
)


class TestSyntheticDevice:
    def test_current_monotone_in_vgs(self):
        dev = device("LL")
        vgs = np.linspace(0.05, 1.2, 100)
        current = dev.current(vgs)
        assert np.all(np.diff(current) > 0)

    def test_subthreshold_slope_matches_n(self):
        """Two decades below threshold the slope must be n*Ut per e-fold."""
        dev = device("LL")
        v1, v2 = dev.vth0 - 0.3, dev.vth0 - 0.25
        ratio = dev.current(v2) / dev.current(v1)
        expected = math.exp((v2 - v1) / (dev.n * dev.ut))
        assert float(ratio) == pytest.approx(expected, rel=0.02)

    def test_current_at_threshold_is_io(self):
        """The device is normalised so I(Vth) == Io exactly."""
        dev = device("LL")
        assert float(dev.current(dev.vth0)) == pytest.approx(dev.io, rel=1e-9)

    def test_strong_inversion_power_law(self):
        dev = device("HS")
        v1, v2 = 0.9, 1.2
        ratio = dev.current(v2) / dev.current(v1)
        expected = ((v2 - dev.vth0) / (v1 - dev.vth0)) ** dev.alpha
        assert float(ratio) == pytest.approx(expected, rel=0.03)

    def test_stage_delay_decreases_with_vdd(self):
        dev = device("LL")
        vdd = np.linspace(0.5, 1.2, 20)
        delays = dev.stage_delay(vdd)
        assert np.all(np.diff(delays) < 0)

    def test_noise_is_reproducible(self):
        dev = device("LL")
        _, first = dev.iv_curve(np.linspace(0.1, 1.0, 10), seed=3)
        _, second = dev.iv_curve(np.linspace(0.1, 1.0, 10), seed=3)
        assert np.array_equal(first, second)

    def test_unknown_flavour_rejected(self):
        with pytest.raises(KeyError, match="unknown device"):
            device("XX")


class TestDeviceFit:
    @pytest.mark.parametrize("label", ["LL", "HS", "ULL"])
    def test_recovers_generating_parameters(self, label):
        dev = device(label)
        fit = fit_device(dev)
        assert fit.n == pytest.approx(dev.n, rel=0.03)
        assert fit.alpha == pytest.approx(dev.alpha, rel=0.04)
        assert fit.vth == pytest.approx(dev.vth0, abs=0.02)
        # The sub-threshold extrapolation evaluated at Vth overshoots the
        # smooth device's I(Vth) by exactly (1/ln2)^alpha (the exponential
        # asymptote lies above the softplus knee), and Io is defined *at*
        # the threshold, so a +-10 mV Vth placement moves it by
        # exp(dVth/(n*Ut)) — both effects are part of the expectation.
        expected_io = (
            dev.io
            * (1.0 / math.log(2.0)) ** dev.alpha
            * math.exp((fit.vth - dev.vth0) / (dev.n * dev.ut))
        )
        assert fit.io == pytest.approx(expected_io, rel=0.15)

    def test_fit_residuals_reported(self):
        fit = fit_device(device("LL"))
        assert 0.0 < fit.subthreshold_residual < 0.1
        assert 0.0 < fit.alpha_residual < 0.1


class TestDelayFit:
    def test_zeta_fits_delays_tightly(self):
        dev = device("LL")
        fit = fit_device(dev)
        delay_fit = fit_delay_coefficient(dev, fit)
        assert delay_fit.relative_rms_error < 0.15
        assert delay_fit.zeta > 0

    def test_zeta_scales_with_load(self):
        import dataclasses

        light = device("LL")
        heavy = dataclasses.replace(light, c_load=2 * light.c_load)
        zeta_light = fit_delay_coefficient(light, fit_device(light)).zeta
        zeta_heavy = fit_delay_coefficient(heavy, fit_device(heavy)).zeta
        assert zeta_heavy == pytest.approx(2 * zeta_light, rel=0.02)


class TestNativeTechnologies:
    def test_all_flavours_characterise(self):
        for label in SYNTH_DEVICES:
            tech = native_technology(label)
            assert tech.io > 0 and tech.zeta > 0
            assert 1.0 <= tech.alpha <= 2.0

    def test_flavour_orderings_preserved(self):
        """Table 2's orderings must survive the extraction."""
        ll = native_technology("LL")
        hs = native_technology("HS")
        ull = native_technology("ULL")
        assert ull.io < ll.io < hs.io
        assert hs.alpha < ll.alpha < ull.alpha
        assert ll.zeta < ull.zeta  # ULL is the slow flavour
        assert ull.vth0_nominal > ll.vth0_nominal > 0.3

    def test_characterize_names_technology(self):
        tech = characterize(device("LL"), name="my-ll")
        assert tech.name == "my-ll"

    def test_caching_returns_same_object(self):
        assert native_technology("LL") is native_technology("LL")

    def test_native_ll_keeps_paper_multipliers_feasible(self):
        """The whole native flow depends on this: every generated netlist
        must close timing at 31.25 MHz on the characterised LL flavour."""
        from repro.core.constraint import chi
        from repro.core.linearization import paper_fit

        tech = native_technology("LL")
        fit = paper_fit(tech.alpha)
        worst_ld = 700.0  # sequential multiplier's native LDeff with margin
        assert chi(tech, worst_ld, 31.25e6) * fit.a < 1.0
