"""Test package (unique import path for pytest)."""
