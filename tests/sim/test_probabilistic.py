"""Tests for the probabilistic (static) activity estimator."""

import pytest

from repro.generators import build_multiplier
from repro.netlist import Builder, Netlist
from repro.netlist.cells import cell
from repro.sim import measure_activity
from repro.sim.probabilistic import (
    _cell_output_stats,
    _cell_settled_toggle,
    estimate_activity,
    propagate,
)


class TestCellLevelExactness:
    def test_and_probability(self):
        (p, _), = _cell_output_stats(cell("AND2"), [0.5, 0.5], [0.5, 0.5])
        assert p == pytest.approx(0.25)

    def test_xor_probability_with_bias(self):
        (p, _), = _cell_output_stats(cell("XOR2"), [0.3, 0.8], [0.5, 0.5])
        assert p == pytest.approx(0.3 * 0.2 + 0.7 * 0.8)

    def test_inverter_passes_density(self):
        (p, d), = _cell_output_stats(cell("INV"), [0.25], [0.4])
        assert p == pytest.approx(0.75)
        assert d == pytest.approx(0.4)

    def test_xor_najm_density_counts_both_inputs(self):
        """The XOR is always sensitised to both inputs: Najm density is
        the *sum* of input densities (non-simultaneous transitions)."""
        (_, d), = _cell_output_stats(cell("XOR2"), [0.5, 0.5], [0.5, 0.5])
        assert d == pytest.approx(1.0)

    def test_xor_settled_toggle_cancels_simultaneous(self):
        """Synchronously, two uniform inputs flip the XOR only when an odd
        number of them toggles: probability 1/2, not 1."""
        (toggle,) = _cell_settled_toggle(cell("XOR2"), [0.5, 0.5], [0.5, 0.5])
        assert toggle == pytest.approx(0.5)

    def test_and_settled_toggle_independent_cycles(self):
        """At density 1/2 with p = 1/2 the previous and next input words
        are independent uniforms, so out_prev and out_next are independent
        Bernoulli(1/4): toggle probability 2 * 1/4 * 3/4 = 3/8."""
        (toggle,) = _cell_settled_toggle(cell("AND2"), [0.5, 0.5], [0.5, 0.5])
        assert toggle == pytest.approx(0.375)

    def test_and_settled_toggle_anticorrelated_cycles(self):
        """At density 1 every input flips each cycle (perfect
        anticorrelation): the AND toggles exactly when leaving or entering
        the all-ones minterm, probability 1/2."""
        (toggle,) = _cell_settled_toggle(cell("AND2"), [0.5, 0.5], [1.0, 1.0])
        assert toggle == pytest.approx(0.5)

    def test_constant_inputs_are_handled(self):
        (p, d), = _cell_output_stats(cell("AND2"), [1.0, 0.5], [0.0, 0.5])
        assert p == pytest.approx(0.5)
        assert d == pytest.approx(0.5)

    def test_tie_cells(self):
        stats = _cell_output_stats(cell("TIEHI"), [], [])
        assert stats == [(1.0, 0.0)]


class TestPropagation:
    def test_tree_probabilities_exact(self):
        """On a fanout-free tree the independence assumption is exact."""
        netlist = Netlist("tree")
        builder = Builder(netlist)
        a, b, c, d = (netlist.add_input(x) for x in "abcd")
        left = builder.gate("AND2", a, b)     # p = 1/4
        right = builder.gate("OR2", c, d)     # p = 3/4
        out = builder.gate("XOR2", left, right)
        netlist.set_outputs([out])
        netlist.freeze()
        probabilities, _, _ = propagate(netlist)
        assert probabilities[left] == pytest.approx(0.25)
        assert probabilities[right] == pytest.approx(0.75)
        assert probabilities[out] == pytest.approx(0.25 * 0.25 + 0.75 * 0.75)

    def test_flip_flops_reset_statistics(self):
        netlist = Netlist("reg")
        builder = Builder(netlist)
        a = netlist.add_input("a")
        and_out = builder.gate("AND2", a, a)  # correlated, but tree-wise 1/4
        q = builder.register(and_out)
        netlist.set_outputs([q])
        netlist.freeze()
        probabilities, densities, _ = propagate(netlist)
        assert probabilities[q] == pytest.approx(0.5)
        assert densities[q] == pytest.approx(0.5)


class TestAgainstSimulation:
    @pytest.mark.parametrize("name", ["Wallace", "RCA", "RCA hor.pipe2"])
    def test_settled_estimate_matches_simulation(self, name):
        """The synchronous pairwise estimate lands within a few percent of
        the measured settled activity on the real multipliers, despite
        reconvergent fanout."""
        impl = build_multiplier(name)
        estimate = estimate_activity(impl)
        simulated = measure_activity(impl, n_vectors=60)
        assert estimate.settled_activity == pytest.approx(
            simulated.settled_activity, rel=0.08
        )

    @pytest.mark.parametrize("name", ["Wallace", "RCA", "RCA diagpipe2"])
    def test_estimates_bracket_inertial_measurement(self, name):
        """settled (zero-delay) <= inertial simulation <= Najm density."""
        impl = build_multiplier(name)
        estimate = estimate_activity(impl)
        simulated = measure_activity(impl, n_vectors=60)
        assert estimate.settled_activity <= simulated.activity * 1.05
        assert simulated.activity <= estimate.activity

    def test_najm_density_explodes_on_carry_chains(self):
        """Without inertial filtering, the array multiplier's glitch
        amplification potential is enormous — the structural reason the
        simulator needs the inertial model (see DESIGN.md)."""
        impl = build_multiplier("RCA")
        estimate = estimate_activity(impl)
        assert estimate.activity > 10 * estimate.settled_activity

    def test_describe(self):
        impl = build_multiplier("Wallace")
        text = estimate_activity(impl).describe()
        assert "static activity" in text
