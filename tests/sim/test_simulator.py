"""Unit tests for the event-driven timing simulator."""


from repro.netlist import Builder, Netlist
from repro.sim.simulator import EventDrivenSimulator


def _xor_chain(length: int):
    """a -> chain of XORs with b; returns (netlist, a, b, out)."""
    netlist = Netlist("chain")
    builder = Builder(netlist)
    a = netlist.add_input("a")
    b = netlist.add_input("b")
    node = a
    for _ in range(length):
        node = builder.gate("XOR2", node, b)
    netlist.set_outputs([node])
    netlist.freeze()
    return netlist, a, b, node


class TestBasicPropagation:
    def test_single_gate_transition_counted(self):
        netlist, a, b, out = _xor_chain(1)
        simulator = EventDrivenSimulator(netlist)
        simulator.run_cycle({a: 1, b: 0})
        assert simulator.values[out] == 1
        assert simulator.stats.total_transitions == 1

    def test_no_input_change_no_transitions(self):
        netlist, a, b, _ = _xor_chain(3)
        simulator = EventDrivenSimulator(netlist)
        simulator.run_cycle({a: 0, b: 0})
        assert simulator.stats.total_transitions == 0

    def test_chain_propagates_fully(self):
        netlist, a, b, out = _xor_chain(5)
        simulator = EventDrivenSimulator(netlist)
        simulator.run_cycle({a: 1, b: 0})
        assert simulator.values[out] == 1
        # one transition per chain stage
        assert simulator.stats.total_transitions == 5

    def test_counting_flag_suppresses_statistics(self):
        netlist, a, b, _ = _xor_chain(4)
        simulator = EventDrivenSimulator(netlist)
        simulator.counting = False
        simulator.run_cycle({a: 1, b: 0})
        assert simulator.stats.total_transitions == 0
        assert simulator.stats.cycles == 0


class TestGlitchBehaviour:
    def _imbalanced_and(self, slow_stages: int):
        """AND of a signal with a delayed copy of its complement.

        Driving the input 0->1 creates a pulse at the AND output whose
        width equals the inverter-chain delay: the canonical glitch.
        """
        netlist = Netlist("glitch")
        builder = Builder(netlist)
        a = netlist.add_input("a")
        slow = a
        for _ in range(slow_stages):
            slow = builder.invert(slow)
        # For even stage counts `slow` follows a with a delay.
        fast_inverted = builder.invert(a)
        out = builder.gate("AND2", fast_inverted, slow)
        netlist.set_outputs([out])
        netlist.freeze()
        return netlist, a, out

    def test_wide_pulse_produces_glitch(self):
        """A 1->0 input: the fast inverter raises one AND input while the
        slow path still holds the old high — a pulse wider than the AND
        delay appears and must be counted (2 transitions on the AND)."""
        netlist, a, out = self._imbalanced_and(slow_stages=6)
        simulator = EventDrivenSimulator(netlist)
        simulator.run_cycle({a: 1})
        before = simulator.stats.transitions_per_cell[:]
        simulator.run_cycle({a: 0})
        and_cell = netlist.cells[-1].index
        delta = simulator.stats.transitions_per_cell[and_cell] - before[and_cell]
        assert delta == 2  # up and back down: a real glitch
        assert simulator.values[out] == 0  # settled value is glitch-free

    def test_narrow_pulse_is_inertially_filtered(self):
        """With a 2-stage (fast) reconvergence the pulse is narrower than
        the AND gate delay and must be swallowed."""
        netlist, a, out = self._imbalanced_and(slow_stages=2)
        simulator = EventDrivenSimulator(netlist)
        simulator.run_cycle({a: 1})
        before = simulator.stats.transitions_per_cell[:]
        simulator.run_cycle({a: 0})
        and_cell = netlist.cells[-1].index
        delta = simulator.stats.transitions_per_cell[and_cell] - before[and_cell]
        assert delta == 0
        assert simulator.values[out] == 0

    def test_settled_counters_ignore_glitches(self):
        netlist, a, _ = self._imbalanced_and(slow_stages=6)
        simulator = EventDrivenSimulator(netlist)
        simulator.run_cycle({a: 1})
        simulator.run_cycle({a: 0})
        stats = simulator.stats
        assert stats.total_transitions > stats.settled_transitions


class TestSequentialBehaviour:
    def test_dff_pipeline_moves_one_stage_per_cycle(self):
        netlist = Netlist("pipe")
        builder = Builder(netlist)
        a = netlist.add_input("a")
        q1 = builder.register(a)
        q2 = builder.register(q1)
        netlist.set_outputs([q2])
        netlist.freeze()
        simulator = EventDrivenSimulator(netlist)
        observed = []
        for value in (1, 0, 0, 0):
            simulator.run_cycle({a: value})
            observed.append(simulator.values[q2])
        assert observed == [0, 0, 1, 0]

    def test_dffe_gates_capture(self):
        netlist = Netlist("enable")
        builder = Builder(netlist)
        d = netlist.add_input("d")
        enable = netlist.add_input("en")
        q = builder.register(d, enable=enable)
        netlist.set_outputs([q])
        netlist.freeze()
        simulator = EventDrivenSimulator(netlist)
        simulator.run_cycle({d: 1, enable: 0})
        simulator.run_cycle({d: 0, enable: 0})
        assert simulator.values[q] == 0  # the 1 was never captured
        simulator.run_cycle({d: 1, enable: 1})
        simulator.run_cycle({d: 0, enable: 0})
        assert simulator.values[q] == 1  # captured while enabled, now held

    def test_functional_agreement_with_zero_delay_model(self):
        """Settled timed values must equal the zero-delay evaluation —
        the timed simulator computes the same function, just with timing."""
        from repro.generators import build_array_multiplier

        impl = build_array_multiplier(4)
        simulator = EventDrivenSimulator(impl.netlist)
        state = impl.netlist.initial_state()
        for a, b in [(3, 5), (15, 15), (7, 9), (0, 12)]:
            assignment = impl.operand_cycles(a, b)[0]
            simulator.run_cycle(assignment)
            values, state = impl.netlist.evaluate_cycle(assignment, state)
            for net in range(len(impl.netlist.nets)):
                if impl.netlist.nets[net].is_placeholder:
                    continue
                assert simulator.values[net] == values[net], impl.netlist.nets[net].name
