"""Tests for activity measurement — the paper's Section 4 activity claims."""

import pytest

from repro.experiments.paper_data import TABLE1_BY_NAME
from repro.generators import build_multiplier
from repro.sim import (
    correlated_pairs,
    measure_activity,
    sparse_pairs,
    uniform_pairs,
)

VECTORS = 40  # enough for stable ordering comparisons in unit tests


@pytest.fixture(scope="module")
def reports():
    names = [
        "RCA", "RCA hor.pipe2", "RCA diagpipe2", "Wallace", "Sequential",
    ]
    return {
        name: measure_activity(build_multiplier(name), n_vectors=VECTORS)
        for name in names
    }


class TestActivityShape:
    def test_activities_in_paper_band(self, reports):
        """Measured activity within ~40% of the published annotation."""
        for name, report in reports.items():
            published = TABLE1_BY_NAME[name].activity
            assert 0.6 < report.activity / published < 1.45, name

    def test_diagonal_pipeline_glitches_more_than_horizontal(self, reports):
        """Section 4's key observation, reproduced structurally."""
        assert (
            reports["RCA diagpipe2"].activity > reports["RCA hor.pipe2"].activity
        )
        assert (
            reports["RCA diagpipe2"].glitch_ratio
            > reports["RCA hor.pipe2"].glitch_ratio
        )

    def test_pipelining_reduces_activity(self, reports):
        assert reports["RCA hor.pipe2"].activity < reports["RCA"].activity

    def test_wallace_less_glitchy_than_array(self, reports):
        """Balanced tree paths glitch less than rippling array paths."""
        assert reports["Wallace"].glitch_ratio < reports["RCA"].glitch_ratio

    def test_sequential_activity_exceeds_one(self, reports):
        assert reports["Sequential"].activity > 1.0

    def test_glitch_ratio_at_least_one(self, reports):
        for report in reports.values():
            assert report.glitch_ratio >= 1.0

    def test_effective_capacitance_positive_and_sane(self, reports):
        for report in reports.values():
            assert 1e-14 < report.effective_capacitance < 3e-13


class TestStimulusDependence:
    def test_correlated_data_lowers_activity(self):
        impl = build_multiplier("Wallace")
        uniform = measure_activity(
            impl, operand_pairs=uniform_pairs(16, VECTORS)
        )
        correlated = measure_activity(
            impl, operand_pairs=correlated_pairs(16, VECTORS, flip_probability=0.05)
        )
        assert correlated.activity < uniform.activity

    def test_sparse_data_lowers_activity(self):
        impl = build_multiplier("RCA")
        uniform = measure_activity(impl, operand_pairs=uniform_pairs(16, VECTORS))
        sparse = measure_activity(
            impl, operand_pairs=sparse_pairs(16, VECTORS, active_bits=4)
        )
        assert sparse.activity < 0.5 * uniform.activity

    def test_deterministic_given_seed(self):
        impl = build_multiplier("Wallace")
        first = measure_activity(impl, n_vectors=VECTORS, seed=7)
        second = measure_activity(impl, n_vectors=VECTORS, seed=7)
        assert first.activity == second.activity

    def test_too_few_vectors_rejected(self):
        impl = build_multiplier("Wallace")
        with pytest.raises(ValueError, match="operand pairs"):
            measure_activity(impl, n_vectors=3, warmup_vectors=4)


class TestVectorGenerators:
    def test_uniform_reproducible(self):
        assert uniform_pairs(8, 5, seed=1) == uniform_pairs(8, 5, seed=1)

    def test_correlated_validates_probability(self):
        with pytest.raises(ValueError):
            correlated_pairs(8, 5, flip_probability=1.5)

    def test_sparse_respects_bit_budget(self):
        for a, b in sparse_pairs(16, 50, active_bits=3):
            assert a < 8 and b < 8

    def test_sparse_validates_active_bits(self):
        with pytest.raises(ValueError):
            sparse_pairs(8, 5, active_bits=9)
