"""The polynomial ridge regressor: exactness, determinism, backends."""

from __future__ import annotations

from math import comb

import numpy as np
import pytest

from repro.surrogate.model import (
    BACKENDS,
    PolynomialRidgeModel,
    available_backends,
    fit_polynomial_ridge,
    monomial_exponents,
    sklearn_available,
)


def _toy_data(n=400, seed=7):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-1.0, 1.0, size=(n, 3))
    y = 1.0 + 2.0 * X[:, 0] - 0.5 * X[:, 1] ** 2 + 0.25 * X[:, 0] * X[:, 2]
    return X, y


class TestExponents:
    def test_count_is_binomial(self):
        for n, d in [(3, 2), (5, 3), (5, 6)]:
            assert len(monomial_exponents(n, d)) == comb(n + d, d)

    def test_row_zero_is_the_intercept(self):
        exponents = monomial_exponents(5, 4)
        assert not exponents[0].any()
        assert exponents.max() == 4


class TestFit:
    def test_recovers_a_polynomial_exactly(self):
        X, y = _toy_data()
        model = fit_polynomial_ridge(X, y, degree=2, ridge_lambda=1e-12)
        np.testing.assert_allclose(model.predict(X), y, atol=1e-7)

    def test_fit_is_deterministic(self):
        X, y = _toy_data()
        a = fit_polynomial_ridge(X, y, degree=3)
        b = fit_polynomial_ridge(X, y, degree=3)
        assert a.weights.tobytes() == b.weights.tobytes()
        assert a.mean.tobytes() == b.mean.tobytes()

    def test_payload_round_trip(self):
        X, y = _toy_data()
        model = fit_polynomial_ridge(X, y, degree=2)
        clone = PolynomialRidgeModel.from_payload(
            model.to_payload(),
            degree=model.degree,
            ridge_lambda=model.ridge_lambda,
            backend=model.backend,
        )
        np.testing.assert_array_equal(clone.predict(X), model.predict(X))

    def test_constant_feature_does_not_divide_by_zero(self):
        X, y = _toy_data()
        X = np.column_stack([X, np.full(len(X), 1.2)])
        model = fit_polynomial_ridge(X, y, degree=2)
        assert np.isfinite(model.predict(X)).all()
        assert model.scale[-1] == 1.0

    def test_validation_errors(self):
        X, y = _toy_data(n=10)
        with pytest.raises(ValueError, match="2-D"):
            fit_polynomial_ridge(X[:, 0], y)
        with pytest.raises(ValueError, match="aligned"):
            fit_polynomial_ridge(X, y[:-1])
        with pytest.raises(ValueError, match="empty"):
            fit_polynomial_ridge(X[:0], y[:0])
        with pytest.raises(ValueError, match="degree"):
            fit_polynomial_ridge(X, y, degree=0)
        with pytest.raises(ValueError, match="ridge_lambda"):
            fit_polynomial_ridge(X, y, ridge_lambda=0.0)
        with pytest.raises(ValueError, match="unknown backend"):
            fit_polynomial_ridge(X, y, backend="torch")


class TestBackends:
    def test_numpy_is_always_first(self):
        assert available_backends()[0] == "numpy"
        assert set(available_backends()) <= set(BACKENDS)

    def test_sklearn_backend_matches_numpy(self):
        pytest.importorskip("sklearn")
        X, y = _toy_data()
        numpy_fit = fit_polynomial_ridge(X, y, degree=3, backend="numpy")
        sklearn_fit = fit_polynomial_ridge(X, y, degree=3, backend="sklearn")
        np.testing.assert_allclose(
            sklearn_fit.weights, numpy_fit.weights, rtol=1e-6, atol=1e-10
        )
        assert sklearn_fit.backend == "sklearn"

    def test_missing_sklearn_raises_cleanly(self):
        if sklearn_available():
            pytest.skip("scikit-learn is installed in this environment")
        assert available_backends() == ("numpy",)
        X, y = _toy_data(n=10)
        with pytest.raises(RuntimeError, match="scikit-learn"):
            fit_polynomial_ridge(X, y, backend="sklearn")
