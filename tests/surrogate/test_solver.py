"""The registered ``surrogate`` solver: trusted-or-exact, never wrong."""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.explore.engine import FALLBACK_METHOD
from repro.explore.scenario import FrequencyGrid, Scenario, demo_scenario
from repro.solvers import available_solvers, get_solver
from repro.solvers.base import SolverError
from repro.solvers.batch_numerical import solve_points
from repro.study import Study
from repro.surrogate import SurrogateSolver
from repro.surrogate.solver import METHOD


@pytest.fixture(scope="module")
def demo_points():
    return demo_scenario(frequency_points=6).expand()


@pytest.fixture
def pinned(trained):
    """A solver pinned to the session bundle (no default-path loading)."""
    return SurrogateSolver(bundle=trained.bundle)


def _scenario(frequencies) -> Scenario:
    base = demo_scenario(frequency_points=2)
    return Scenario(
        name="surrogate-test",
        architectures=base.architectures,
        technologies=base.technologies,
        frequencies=FrequencyGrid(values=tuple(frequencies)),
    )


class TestRegistration:
    def test_listed_in_the_catalog(self):
        assert "surrogate" in available_solvers()

    def test_resolves_by_name(self):
        assert get_solver("surrogate").name == "surrogate"

    def test_unknown_option_rejected(self, pinned, demo_points):
        with pytest.raises(SolverError, match="unknown option"):
            pinned.solve(demo_points[:2], typo=1)

    def test_empty_input(self, pinned):
        assert pinned.solve([]) == []


class TestTrustedOrExact:
    def test_every_answer_is_trusted_or_exact(self, pinned, demo_points):
        """The subsystem's acceptance bound: a surrogate-tagged answer is
        within 1% of the exact optimum's power; everything else IS the
        exact answer (bit-identical fallback)."""
        outcomes = pinned.solve(demo_points)
        exact = solve_points(demo_points)
        n_trusted = 0
        for index, outcome in enumerate(outcomes):
            if outcome.method == METHOD:
                n_trusted += 1
                assert outcome.result is not None
                reference = exact.ptot[index]
                assert exact.feasible[index]
                error = abs(outcome.result.point.ptot - reference) / reference
                assert error <= 0.01
            else:
                assert outcome.method == FALLBACK_METHOD
                if exact.feasible[index]:
                    assert outcome.result is not None
                    assert outcome.result.point.vdd == exact.vdd[index]
                    assert outcome.result.point.pstat == exact.pstat[index]
                else:
                    assert outcome.result is None
                    assert outcome.reason == str(exact.reason[index])
        assert n_trusted > 0  # the gate actually admits in-range points

    def test_out_of_range_points_all_fall_back(self, pinned):
        points = _scenario([1e5]).expand()  # below the trained range
        outcomes = pinned.solve(points)
        assert all(o.method == FALLBACK_METHOD for o in outcomes)

    def test_infeasible_reasons_match_the_exact_solver(self, pinned):
        points = _scenario([1e13]).expand()  # no closable timing anywhere
        exact = solve_points(points)
        assert not exact.feasible.any()
        outcomes = pinned.solve(points)
        for index, outcome in enumerate(outcomes):
            assert outcome.result is None
            assert outcome.reason == str(exact.reason[index])


class TestThroughStudy:
    def test_study_by_name_reports_fallbacks(self, trained):
        scenario = _scenario([8e6, 1.6e7, 3.2e7])
        result = (
            Study.from_scenario(scenario)
            .solver("surrogate")
            .cached(None, enabled=False)
            .run()
        )
        methods = [record.method for record in result.records]
        n_surrogate = sum(m == METHOD for m in methods)
        n_fallback = sum(m == FALLBACK_METHOD for m in methods)
        assert n_surrogate > 0
        assert result.stats.n_fallback == n_fallback
        assert result.stats.n_candidates == scenario.size

    def test_study_matches_numerical_within_tolerance(self, trained):
        scenario = _scenario([8e6, 3.2e7])
        surrogate = (
            Study.from_scenario(scenario)
            .solver("surrogate")
            .cached(None, enabled=False)
            .run()
        )
        numerical = (
            Study.from_scenario(scenario)
            .solver("numerical")
            .cached(None, enabled=False)
            .run()
        )
        for ours, reference in zip(surrogate.records, numerical.records):
            assert ours.feasible == reference.feasible
            if reference.feasible:
                assert ours.ptot == pytest.approx(reference.ptot, rel=0.01)


class TestBundleResolution:
    def test_explicit_bundle_option(self, trained, tmp_path, demo_points):
        path = trained.bundle.save(tmp_path / "explicit.npz")
        solver = SurrogateSolver()
        outcomes = solver.solve(demo_points[:6], bundle=str(path))
        assert len(outcomes) == 6

    def test_missing_explicit_bundle_raises(self, demo_points):
        solver = SurrogateSolver()
        with pytest.raises(SolverError, match="bundle not found"):
            solver.solve(demo_points[:2], bundle="/nonexistent/bundle.npz")

    def test_corrupt_explicit_bundle_raises(self, tmp_path, demo_points):
        path = tmp_path / "corrupt.npz"
        path.write_bytes(b"garbage")
        solver = SurrogateSolver()
        with pytest.raises(SolverError, match="failed to load"):
            solver.solve(demo_points[:2], bundle=str(path))

    def test_default_path_load_is_memoised(self, trained, demo_points):
        solver = SurrogateSolver()
        registry = obs.enable(obs.MetricsRegistry())
        try:
            solver.solve(demo_points[:3])
            solver.solve(demo_points[3:6])
            counters = registry.snapshot()["counters"]
        finally:
            obs.disable()
        assert counters.get("surrogate.loads") == 1


class TestMetrics:
    def test_prediction_and_fallback_counters(self, pinned, demo_points):
        registry = obs.enable(obs.MetricsRegistry())
        try:
            outcomes = pinned.solve(demo_points)
            counters = registry.snapshot()["counters"]
        finally:
            obs.disable()
        n_trusted = sum(o.method == METHOD for o in outcomes)
        n_fallback = len(outcomes) - n_trusted
        assert counters.get("surrogate.predictions", 0) == n_trusted
        assert counters.get("surrogate.fallbacks", 0) == n_fallback
