"""Surrogate-suite fixtures: isolated cache/bundle env + one small bundle.

Every test in this package runs against a session-private surrogate
cache root (datasets + default bundle), so nothing leaks into — or is
polluted by — ``~/.cache/repro/surrogate``.  One small bundle is trained
once per session and saved at the default path; tests exercising the
registered ``surrogate`` solver load it instead of auto-training the
full default spec.
"""

from __future__ import annotations

import pytest

from repro.surrogate import DatasetSpec, SURROGATE_SOLVER, train_bundle
from repro.surrogate.bundle import BUNDLE_ENV
from repro.surrogate.dataset import CACHE_DIR_ENV


@pytest.fixture(scope="session")
def surrogate_root(tmp_path_factory):
    """The session-private cache root every test's env points at."""
    return tmp_path_factory.mktemp("surrogate")


@pytest.fixture(autouse=True)
def surrogate_env(surrogate_root, monkeypatch):
    """Redirect cache + default bundle into the session tmp dir."""
    monkeypatch.setenv(CACHE_DIR_ENV, str(surrogate_root))
    monkeypatch.setenv(BUNDLE_ENV, str(surrogate_root / "default.npz"))
    SURROGATE_SOLVER.invalidate()
    yield surrogate_root
    SURROGATE_SOLVER.invalidate()


@pytest.fixture(scope="session")
def small_spec():
    """A dataset small enough to build in milliseconds (240 candidates)."""
    return DatasetSpec(seed=0, architectures=6, technologies=4, frequencies=10)


@pytest.fixture(scope="session")
def trained(small_spec, surrogate_root):
    """One small bundle per session, persisted at the default path."""
    result = train_bundle(
        small_spec, degree=4, cache_dir=surrogate_root
    )
    result.bundle.save(surrogate_root / "default.npz")
    return result
