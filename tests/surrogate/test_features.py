"""The five-feature encoding: sufficiency, exactness, the excess signal."""

from __future__ import annotations

import numpy as np
import pytest

from repro.explore.scenario import demo_scenario
from repro.solvers.batch_numerical import solve_points
from repro.surrogate import FEATURE_NAMES, FeatureArrays
from repro.surrogate.features import (
    features_for_columns,
    features_for_points,
    optimality_excess,
    power_split,
)


@pytest.fixture(scope="module")
def scenario():
    return demo_scenario(frequency_points=6)


@pytest.fixture(scope="module")
def exact(scenario):
    return solve_points(scenario.expand())


class TestEncoding:
    def test_points_and_columns_paths_agree(self, scenario):
        by_points = features_for_points(scenario.expand())
        by_columns = features_for_columns(scenario.expand_columns())
        np.testing.assert_allclose(by_points.X, by_columns.X, rtol=1e-12)
        np.testing.assert_allclose(by_points.acf, by_columns.acf, rtol=1e-12)
        np.testing.assert_allclose(
            by_points.n_cells, by_columns.n_cells, rtol=1e-12
        )

    def test_feature_matrix_is_finite_and_ordered(self, scenario):
        feats = features_for_points(scenario.expand())
        assert feats.X.shape == (scenario.size, len(FEATURE_NAMES))
        assert np.isfinite(feats.X).all()
        # Physics views invert the log columns.
        np.testing.assert_allclose(np.log(feats.chi), feats.X[:, 0])
        np.testing.assert_allclose(np.log(feats.load_ratio), feats.X[:, 1])

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="feature matrix"):
            FeatureArrays(
                X=np.zeros((3, 2)), n_cells=np.zeros(3), acf=np.zeros(3)
            )
        with pytest.raises(ValueError, match="aligned"):
            FeatureArrays(
                X=np.zeros((3, len(FEATURE_NAMES))),
                n_cells=np.zeros(2),
                acf=np.zeros(3),
            )


class TestPhysicsDecode:
    def test_power_split_matches_exact_solver(self, scenario, exact):
        """Given the exact Vdd*, the decode reproduces the exact answer."""
        feats = features_for_points(scenario.expand())
        feasible = exact.feasible
        vth, pdyn, pstat, ptot = power_split(feats, exact.vdd)
        np.testing.assert_allclose(
            vth[feasible], exact.vth[feasible], rtol=1e-9
        )
        np.testing.assert_allclose(
            pdyn[feasible], exact.pdyn[feasible], rtol=1e-9
        )
        np.testing.assert_allclose(
            pstat[feasible], exact.pstat[feasible], rtol=1e-9
        )
        np.testing.assert_allclose(
            ptot[feasible], exact.ptot[feasible], rtol=1e-9
        )


class TestOptimalityExcess:
    def test_near_zero_at_the_exact_optimum(self, scenario, exact):
        feats = features_for_points(scenario.expand())
        excess = optimality_excess(feats, exact.vdd)
        assert np.all(excess[exact.feasible] < 1e-6)

    def test_tracks_the_measured_excess_off_optimum(self, scenario, exact):
        """Second-order estimate ≈ the true power excess for small errors."""
        feats = features_for_points(scenario.expand())
        feasible = np.flatnonzero(exact.feasible)
        vdd_off = exact.vdd.copy()
        vdd_off[feasible] *= 1.02
        estimated = optimality_excess(feats, vdd_off)[feasible]
        _, _, _, ptot_off = power_split(feats, vdd_off)
        measured = (
            ptot_off[feasible] - exact.ptot[feasible]
        ) / exact.ptot[feasible]
        keep = np.isfinite(estimated) & (measured > 1e-9)
        assert keep.sum() >= 10
        ratio = estimated[keep] / measured[keep]
        assert np.all(ratio > 0.5) and np.all(ratio < 2.0)

    def test_infinite_where_no_nearby_minimum(self, scenario, exact):
        feats = features_for_points(scenario.expand())
        # Absurdly low supply: negative/complex constraint territory.
        excess = optimality_excess(feats, np.full(feats.size, 1e-6))
        assert np.all(~np.isfinite(excess) | (excess >= 0.0))
