"""Training, the calibrated gate, bundle persistence and the model card."""

from __future__ import annotations

import numpy as np
import pytest

from repro.surrogate import (
    BUNDLE_SCHEMA_VERSION,
    DatasetSpec,
    SurrogateBundle,
    evaluate_bundle,
    train_bundle,
)
from repro.surrogate.train import _relative_error


class TestTraining:
    def test_seeded_training_is_bit_reproducible(
        self, small_spec, surrogate_root, tmp_path
    ):
        a = train_bundle(small_spec, degree=4, cache_dir=surrogate_root)
        b = train_bundle(small_spec, degree=4, cache_dir=surrogate_root)
        path_a = a.bundle.save(tmp_path / "a.npz")
        path_b = b.bundle.save(tmp_path / "b.npz")
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_card_records_provenance(self, trained, small_spec):
        card = trained.bundle.card
        assert card["schema"] == BUNDLE_SCHEMA_VERSION
        assert card["dataset"]["key"] == small_spec.key
        assert card["dataset"]["spec"]["seed"] == small_spec.seed
        assert card["model"]["kind"] == "polynomial-ridge"
        assert card["features"]["names"] == [
            "log_chi", "log_load_ratio", "alpha", "n_ut", "vdd_nominal",
        ]
        assert 0.0 < card["validation"]["trusted_fraction_val"] <= 1.0

    def test_trusted_val_points_meet_the_power_tolerance(self, trained):
        """The calibration contract: gate-passing held-out points are
        within the tolerance the card advertises."""
        bundle = trained.bundle
        dataset = trained.dataset
        val = dataset.val_indices
        prediction = bundle.predict(dataset.features.take(val))
        error = _relative_error(
            prediction.ptot, dataset.table.columns["ptot"][val]
        )
        tolerance = bundle.card["validation"]["power_tolerance"]
        assert prediction.n_trusted > 0
        assert np.all(error[prediction.trusted] <= tolerance + 1e-12)


class TestPersistence:
    def test_save_load_round_trip(self, trained, tmp_path):
        path = trained.bundle.save(tmp_path / "bundle.npz")
        loaded = SurrogateBundle.load(path)
        assert loaded.card == trained.bundle.card
        feats = trained.dataset.features.take(trained.dataset.val_indices)
        np.testing.assert_array_equal(
            loaded.predict(feats).vdd, trained.bundle.predict(feats).vdd
        )
        np.testing.assert_array_equal(
            loaded.predict(feats).trusted,
            trained.bundle.predict(feats).trusted,
        )

    def test_load_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, stuff=np.arange(3))
        with pytest.raises(ValueError, match="not a surrogate bundle"):
            SurrogateBundle.load(path)

    def test_load_rejects_stale_schema(self, trained, tmp_path):
        stale = SurrogateBundle(
            model=trained.bundle.model,
            card={**trained.bundle.card, "schema": BUNDLE_SCHEMA_VERSION + 1},
            feature_lo=trained.bundle.feature_lo,
            feature_hi=trained.bundle.feature_hi,
            excess_threshold=trained.bundle.excess_threshold,
        )
        path = stale.save(tmp_path / "stale.npz")
        with pytest.raises(ValueError, match="schema"):
            SurrogateBundle.load(path)

    def test_describe_renders_the_card(self, trained):
        text = trained.bundle.describe()
        assert "surrogate bundle" in text
        assert "polynomial-ridge" in text
        assert "log_chi" in text
        assert "ptot" in text


class TestEvaluate:
    def test_report_on_a_fresh_seed(self, trained, surrogate_root):
        report = evaluate_bundle(trained.bundle, cache_dir=surrogate_root)
        trained_seed = trained.bundle.card["dataset"]["spec"]["seed"]
        assert report["dataset"]["spec"]["seed"] == trained_seed + 1
        assert report["trusted"] + report["flagged"] == report["points"]
        assert 0.0 <= report["trusted_fraction"] <= 1.0
        for output in ("vdd", "vth", "ptot"):
            quantiles = report["errors_trusted"][output]
            assert set(quantiles) == {"q50", "q90", "q99", "max"}

    def test_explicit_spec_wins(self, trained, small_spec, surrogate_root):
        spec = DatasetSpec.from_dict(
            {**small_spec.to_dict(), "seed": 42}
        )
        report = evaluate_bundle(
            trained.bundle, spec, cache_dir=surrogate_root
        )
        assert report["dataset"]["spec"]["seed"] == 42
