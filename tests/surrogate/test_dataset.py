"""Dataset pipeline: exact labels, seeded determinism, the npz cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.solvers.batch_numerical import METHOD as EXACT_METHOD
from repro.surrogate import DatasetSpec, SurrogateDataset, build_dataset
from repro.surrogate.dataset import load_or_build


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            DatasetSpec(architectures=0)
        with pytest.raises(ValueError, match="two frequency"):
            DatasetSpec(frequencies=1)
        with pytest.raises(ValueError, match="val_fraction"):
            DatasetSpec(val_fraction=1.0)

    def test_dict_round_trip(self, small_spec):
        assert DatasetSpec.from_dict(small_spec.to_dict()) == small_spec

    def test_key_tracks_the_spec(self, small_spec):
        reseeded = DatasetSpec.from_dict(
            {**small_spec.to_dict(), "seed": small_spec.seed + 1}
        )
        assert small_spec.key != reseeded.key
        assert small_spec.key == DatasetSpec.from_dict(small_spec.to_dict()).key


class TestBuild:
    def test_seeded_build_is_deterministic(self, small_spec):
        a = build_dataset(small_spec)
        b = build_dataset(small_spec)
        assert a.features.X.tobytes() == b.features.X.tobytes()
        np.testing.assert_array_equal(a.train_indices, b.train_indices)
        np.testing.assert_array_equal(
            a.table.columns["ptot"], b.table.columns["ptot"]
        )

    def test_labels_come_from_the_exact_solver(self, small_spec):
        dataset = build_dataset(small_spec)
        feasible = dataset.table.columns["feasible"]
        methods = set(dataset.table.columns["method"][feasible])
        assert methods == {EXACT_METHOD}

    def test_split_partitions_the_feasible_rows(self, small_spec):
        dataset = build_dataset(small_spec)
        train = set(dataset.train_indices.tolist())
        val = set(dataset.val_indices.tolist())
        feasible = set(
            np.flatnonzero(dataset.table.columns["feasible"]).tolist()
        )
        assert train.isdisjoint(val)
        assert train | val == feasible
        assert dataset.n_val >= 1
        assert dataset.n_train + dataset.n_val + dataset.n_infeasible == len(
            dataset.table
        )

    def test_different_seed_moves_the_sample(self, small_spec):
        other = DatasetSpec.from_dict(
            {**small_spec.to_dict(), "seed": small_spec.seed + 1}
        )
        a, b = build_dataset(small_spec), build_dataset(other)
        assert a.features.X.tobytes() != b.features.X.tobytes()


class TestCache:
    def test_round_trip_through_the_cache(self, small_spec, tmp_path):
        built, hit_a = load_or_build(small_spec, cache_dir=tmp_path)
        cached, hit_b = load_or_build(small_spec, cache_dir=tmp_path)
        assert (hit_a, hit_b) == (False, True)
        assert cached.features.X.tobytes() == built.features.X.tobytes()
        np.testing.assert_array_equal(
            cached.table.columns["reason"], built.table.columns["reason"]
        )
        np.testing.assert_array_equal(
            cached.val_indices, built.val_indices
        )
        assert cached.spec == built.spec

    def test_corrupt_entry_is_rebuilt(self, small_spec, tmp_path):
        load_or_build(small_spec, cache_dir=tmp_path)
        path = tmp_path / "datasets" / f"{small_spec.key}.npz"
        path.write_bytes(b"not an npz")
        rebuilt, from_cache = load_or_build(small_spec, cache_dir=tmp_path)
        assert not from_cache
        assert rebuilt.n_train > 0

    def test_cache_disabled_never_writes(self, small_spec, tmp_path):
        load_or_build(small_spec, cache_dir=tmp_path, use_cache=False)
        assert not (tmp_path / "datasets").exists()

    def test_load_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, stuff=np.arange(3))
        with pytest.raises(ValueError, match="not a surrogate dataset"):
            SurrogateDataset.load(path)
