"""Property-based tests on the netlist generators.

Small widths allow exhaustive or near-exhaustive functional verification,
so hypothesis can hunt for corner operands and odd width/stage
combinations that the fixed-width tests would miss.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.generators import (
    build_array_multiplier,
    build_sequential_multiplier,
    build_wallace_multiplier,
)
from repro.netlist.verify import sample_products
from repro.sta import critical_path_length


def _check_exhaustive(impl, width):
    """Stream every operand pair through the netlist (with flush)."""
    pairs = [(a, b) for a in range(1 << width) for b in range(1 << width)]
    flush = [(0, 0)] * 8
    sampled = sample_products(impl, pairs + flush)
    expected = [a * b for a, b in pairs]
    for latency in range(9):
        if sampled[latency : latency + len(expected)] == expected:
            return latency
    raise AssertionError(f"{impl.name}: no latency aligns with integer multiply")


@settings(max_examples=6, deadline=None)
@given(width=st.sampled_from([2, 3, 4, 5]))
def test_array_multiplier_exhaustive(width):
    impl = build_array_multiplier(width)
    _check_exhaustive(impl, width)


@settings(max_examples=6, deadline=None)
@given(width=st.sampled_from([2, 3, 4, 5]))
def test_wallace_multiplier_exhaustive(width):
    impl = build_wallace_multiplier(width)
    _check_exhaustive(impl, width)


@settings(max_examples=4, deadline=None)
@given(width=st.sampled_from([2, 4]))
def test_sequential_multiplier_exhaustive(width):
    impl = build_sequential_multiplier(width)
    _check_exhaustive(impl, width)


@settings(max_examples=8, deadline=None)
@given(
    width=st.sampled_from([4, 6, 8]),
    n_stages=st.sampled_from([2, 3, 4]),
    style=st.sampled_from(["horizontal", "diagonal"]),
)
def test_pipelined_array_random_config(width, n_stages, style):
    """Any (width, stages, style) combination must stay functionally
    correct and strictly shorten the critical path."""
    import random

    impl = build_array_multiplier(width, n_stages=n_stages, style=style)
    base = build_array_multiplier(width)
    assert critical_path_length(impl.netlist) < critical_path_length(base.netlist)

    rng = random.Random(width * 100 + n_stages)
    top = (1 << width) - 1
    pairs = [(rng.randint(0, top), rng.randint(0, top)) for _ in range(24)]
    flush = [(0, 0)] * 10
    sampled = sample_products(impl, pairs + flush)
    expected = [a * b for a, b in pairs]
    assert any(
        sampled[latency : latency + len(expected)] == expected
        for latency in range(11)
    ), impl.name


@settings(max_examples=10, deadline=None)
@given(width=st.sampled_from([4, 8, 12, 16]))
def test_array_cell_count_scales_quadratically(width):
    """N ~ 2*width^2 + IO registers: the structural cost law."""
    impl = build_array_multiplier(width)
    adders = impl.netlist.cell_counts()["FA"] + impl.netlist.cell_counts()["HA"]
    # width-1 carry-save rows of width cells plus the vector-merge adder,
    # minus the per-row top-column pass-throughs: exactly width*(width-1).
    assert adders == width * (width - 1)
    assert impl.netlist.cell_counts()["AND2"] == width * width


@settings(max_examples=10, deadline=None)
@given(width=st.sampled_from([4, 8, 12, 16]))
def test_array_depth_scales_linearly(width):
    """Critical path ~ O(width), the structural reason LDeff(RCA) >> LDeff(Wallace)."""
    impl = build_array_multiplier(width)
    depth = critical_path_length(impl.netlist)
    assert 3.0 * width < depth < 8.0 * width
