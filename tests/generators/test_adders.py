"""Unit tests for the adder generators (exhaustive small + random large)."""

import random

import pytest

from repro.netlist import Builder, Netlist
from repro.generators.adders import (
    carry_save_row,
    kogge_stone_adder,
    ripple_carry_adder,
    sklansky_adder,
)


def _evaluate_adder(adder, width, operands):
    """Build a width-bit adder, return f(a, b) -> integer sum."""
    netlist = Netlist("adder")
    builder = Builder(netlist)
    bus_a = netlist.add_input_bus("a", width)
    bus_b = netlist.add_input_bus("b", width)
    sums, carry_out = adder(builder, bus_a, bus_b)
    netlist.set_outputs(sums + [carry_out])
    netlist.freeze()

    results = []
    for a, b in operands:
        inputs = {net: (a >> bit) & 1 for bit, net in enumerate(bus_a)}
        inputs.update({net: (b >> bit) & 1 for bit, net in enumerate(bus_b)})
        values, _ = netlist.evaluate_cycle(inputs, {})
        total = sum(values[net] << bit for bit, net in enumerate(sums))
        total |= values[carry_out] << width
        results.append(total)
    return results


ADDERS = [ripple_carry_adder, sklansky_adder, kogge_stone_adder]
ADDER_IDS = ["ripple", "sklansky", "kogge-stone"]


@pytest.mark.parametrize("adder", ADDERS, ids=ADDER_IDS)
def test_exhaustive_4bit(adder):
    operands = [(a, b) for a in range(16) for b in range(16)]
    results = _evaluate_adder(adder, 4, operands)
    assert results == [a + b for a, b in operands]


@pytest.mark.parametrize("adder", ADDERS, ids=ADDER_IDS)
@pytest.mark.parametrize("width", [8, 16, 32])
def test_random_wide(adder, width):
    rng = random.Random(width)
    top = (1 << width) - 1
    operands = [(rng.randint(0, top), rng.randint(0, top)) for _ in range(64)]
    operands += [(top, top), (top, 1), (0, 0)]
    results = _evaluate_adder(adder, width, operands)
    assert results == [a + b for a, b in operands]


@pytest.mark.parametrize("adder", ADDERS, ids=ADDER_IDS)
def test_width_mismatch_rejected(adder):
    netlist = Netlist("bad")
    builder = Builder(netlist)
    bus_a = netlist.add_input_bus("a", 4)
    bus_b = netlist.add_input_bus("b", 3)
    with pytest.raises(ValueError, match="mismatch"):
        adder(builder, bus_a, bus_b)


def test_ripple_with_carry_in():
    netlist = Netlist("cin")
    builder = Builder(netlist)
    bus_a = netlist.add_input_bus("a", 4)
    bus_b = netlist.add_input_bus("b", 4)
    cin = netlist.add_input("cin")
    sums, cout = ripple_carry_adder(builder, bus_a, bus_b, carry_in=cin)
    netlist.set_outputs(sums + [cout])
    netlist.freeze()
    inputs = {net: 1 for net in bus_a}      # a = 15
    inputs.update({net: 0 for net in bus_b})  # b = 0
    inputs[cin] = 1
    values, _ = netlist.evaluate_cycle(inputs, {})
    total = sum(values[net] << bit for bit, net in enumerate(sums + [cout]))
    assert total == 16


def test_prefix_adders_are_shallower_than_ripple():
    """The structural reason the Wallace multiplier is fast."""
    from repro.sta import critical_path_length

    def depth(adder):
        netlist = Netlist("depth")
        builder = Builder(netlist)
        bus_a = netlist.add_input_bus("a", 32)
        bus_b = netlist.add_input_bus("b", 32)
        sums, carry = adder(builder, bus_a, bus_b)
        netlist.set_outputs(sums + [carry])
        netlist.freeze()
        return critical_path_length(netlist)

    assert depth(sklansky_adder) < 0.5 * depth(ripple_carry_adder)
    assert depth(kogge_stone_adder) < 0.5 * depth(ripple_carry_adder)


def test_carry_save_row_preserves_sum():
    netlist = Netlist("csa")
    builder = Builder(netlist)
    bus_a = netlist.add_input_bus("a", 6)
    bus_b = netlist.add_input_bus("b", 6)
    bus_c = netlist.add_input_bus("c", 6)
    sums, carries = carry_save_row(builder, bus_a, bus_b, bus_c)
    netlist.set_outputs(sums + carries)
    netlist.freeze()

    rng = random.Random(6)
    for _ in range(32):
        a, b, c = (rng.randint(0, 63) for _ in range(3))
        inputs = {net: (a >> bit) & 1 for bit, net in enumerate(bus_a)}
        inputs.update({net: (b >> bit) & 1 for bit, net in enumerate(bus_b)})
        inputs.update({net: (c >> bit) & 1 for bit, net in enumerate(bus_c)})
        values, _ = netlist.evaluate_cycle(inputs, {})
        sum_word = sum(values[net] << bit for bit, net in enumerate(sums))
        carry_word = sum(values[net] << (bit + 1) for bit, net in enumerate(carries))
        assert sum_word + carry_word == a + b + c
