"""Functional verification of all thirteen paper multipliers.

These are the substrate's most important tests: every architecture in the
registry must compute exact integer products, and the structural shape
claims the paper makes about them (cell counts, register overheads,
sequencing) must hold on the generated netlists.
"""

import pytest

from repro.experiments.paper_data import TABLE1_BY_NAME
from repro.generators import (
    MULTIPLIER_NAMES,
    build_all_multipliers,
    build_array_multiplier,
    build_multiplier,
    build_sequential_multiplier,
    build_wallace_multiplier,
)
from repro.netlist.verify import VerificationError, verify_multiplier


@pytest.fixture(scope="module")
def all_multipliers():
    return build_all_multipliers()


@pytest.mark.parametrize("name", MULTIPLIER_NAMES)
def test_functional_correctness(name, all_multipliers):
    """Each architecture must match integer multiplication exactly."""
    report = verify_multiplier(all_multipliers[name], n_vectors=30)
    assert report.n_vectors >= 30


@pytest.mark.parametrize("name", MULTIPLIER_NAMES)
def test_cell_count_tracks_table1(name, all_multipliers):
    """Generated cell counts land near the published synthesis results.

    The ST library and Design Compiler mapping differ from our in-house
    cells, so counts cannot match exactly — but each architecture must
    land in the right regime (within ~50% of the published N, much
    tighter for the array family).
    """
    generated = all_multipliers[name].n_cells
    published = TABLE1_BY_NAME[name].n_cells
    assert 0.5 < generated / published < 1.6


class TestStructuralShape:
    def test_pipeline_register_overhead(self, all_multipliers):
        """Pipelining only adds registers (Table 1: +64 cells for 2 stages)."""
        base = all_multipliers["RCA"].netlist.cell_counts()
        pipe2 = all_multipliers["RCA hor.pipe2"].netlist.cell_counts()
        assert pipe2["FA"] == base["FA"]
        assert pipe2["AND2"] == base["AND2"]
        assert pipe2["DFF"] > base["DFF"]

    def test_deeper_pipeline_more_registers(self, all_multipliers):
        dff2 = all_multipliers["RCA hor.pipe2"].netlist.cell_counts()["DFF"]
        dff4 = all_multipliers["RCA hor.pipe4"].netlist.cell_counts()["DFF"]
        assert dff4 > dff2

    def test_parallel_replication_factor(self, all_multipliers):
        base = all_multipliers["RCA"].n_cells
        par2 = all_multipliers["RCA parallel"].n_cells
        par4 = all_multipliers["RCA parallel4"].n_cells
        assert 1.9 * base < par2 < 2.3 * base
        assert 3.8 * base < par4 < 4.5 * base

    def test_sequential_is_smallest(self, all_multipliers):
        sequential = all_multipliers["Sequential"].n_cells
        assert sequential == min(impl.n_cells for impl in all_multipliers.values())

    def test_sequencing_metadata(self, all_multipliers):
        assert all_multipliers["Sequential"].cycles_per_result == 16
        assert all_multipliers["Seq4_16"].cycles_per_result == 4
        assert all_multipliers["Seq parallel"].cycles_per_result == 16
        assert all_multipliers["Seq parallel"].ld_divisor == 2.0
        assert all_multipliers["RCA parallel4"].ld_divisor == 4.0
        assert all_multipliers["Wallace"].cycles_per_result == 1

    def test_area_tracks_cell_weight(self, all_multipliers):
        """Area ordering must follow Table 1: Seq < RCA < Wallace par4."""
        areas = {
            name: impl.netlist.area_um2 for name, impl in all_multipliers.items()
        }
        assert areas["Sequential"] < areas["RCA"] < areas["Wallace par4"]


class TestGeneratorsParametrically:
    @pytest.mark.parametrize("width", [2, 4, 8])
    def test_array_multiplier_widths(self, width):
        impl = build_array_multiplier(width)
        verify_multiplier(impl, n_vectors=20)

    @pytest.mark.parametrize("width", [2, 4, 8])
    def test_wallace_multiplier_widths(self, width):
        impl = build_wallace_multiplier(width)
        verify_multiplier(impl, n_vectors=20)

    @pytest.mark.parametrize("width", [4, 8])
    def test_sequential_multiplier_widths(self, width):
        impl = build_sequential_multiplier(width)
        verify_multiplier(impl, n_vectors=15)

    def test_invalid_width_rejected(self):
        with pytest.raises(ValueError):
            build_array_multiplier(1)
        with pytest.raises(ValueError):
            build_sequential_multiplier(12)  # not a power of two

    def test_pipelined_array_requires_style(self):
        with pytest.raises(ValueError, match="style"):
            build_array_multiplier(8, n_stages=2, style=None)

    def test_unknown_registry_name(self):
        with pytest.raises(KeyError, match="unknown multiplier"):
            build_multiplier("Booth")


class TestVerifierItself:
    def test_detects_a_broken_netlist(self):
        """Swap two product bits: the verifier must notice."""
        impl = build_array_multiplier(4)
        broken_bus = list(impl.product_bus)
        broken_bus[0], broken_bus[5] = broken_bus[5], broken_bus[0]
        from dataclasses import replace

        broken = replace(impl, product_bus=tuple(broken_bus))
        with pytest.raises(VerificationError):
            verify_multiplier(broken, n_vectors=10)
