"""Smoke tests: every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(script: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=420,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = _run("quickstart.py")
    assert "Numerical optimum" in out
    assert "approximation error" in out


def test_architecture_exploration():
    out = _run("architecture_exploration.py")
    assert "Design space" in out
    assert "crossover" in out.lower() or "MHz" in out


def test_design_space_exploration():
    out = _run("design_space_exploration.py")
    assert "cache hit = True" in out
    assert "Pareto frontier" in out
    assert "Selection answer" in out


def test_technology_selection():
    out = _run("technology_selection.py")
    assert "Best flavour" in out
    assert "valley" in out


def test_service_quickstart():
    out = _run("service_quickstart.py")
    assert "service up at http://" in out
    assert "best: wallace16" in out
    assert "cache hit = True" in out
    assert "server stopped" in out


def test_custom_technology_pack():
    out = _run("custom_technology_pack.py")
    assert "provenance: file" in out
    assert "FDX28-LP" in out
    assert "overall winner" in out


def test_netlist_flow_default():
    out = _run("netlist_flow.py")
    assert "[6/6] optimal working point" in out
    assert "vectors OK" in out


def test_netlist_flow_rejects_unknown():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "netlist_flow.py"), "Booth"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode != 0


@pytest.mark.slow
def test_glitch_study():
    out = _run("glitch_study.py")
    assert "diagonal" in out
    assert "glitch" in out
