"""Persisted surrogate bundles: model arrays + JSON model card + gate.

A bundle is one ``.npz``: the regressor's arrays next to a ``card_json``
entry holding the model card — schema/library versions, fitter backend,
dataset provenance (spec + content hash + split sizes), per-feature
training ranges and per-output held-out error quantiles, plus the
calibrated optimality-residual threshold.  The card is the contract a
loaded bundle is judged against; ``repro surrogate info`` renders it.

The **uncertainty gate** lives here because its thresholds are training
artefacts.  A prediction is *trusted* only when every check passes:

1. finite — the decoded (Vdd, Vth, Ptot) are all finite and positive;
2. in-range — every feature inside the card's training min/max (the
   model never extrapolates);
3. span interior — ``Vdd*`` clear of the search-span ends by 1% of the
   span, clear of the exact solver's boundary-pinned-infeasible zone;
4. optimality — the analytic second-order excess estimate at most the
   card's threshold, calibrated on held-out data so trusted points
   meet the power-error tolerance (the estimate also rejects any point
   without a nearby positive-curvature minimum).

Everything else falls back to the exact vectorized solver — the ``auto``
pattern: surrogate-fast or exact-correct, never silently wrong.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .. import __version__
from ..core.numerical import DEFAULT_VDD_SPAN
from .dataset import surrogate_cache_dir
from .features import FeatureArrays, optimality_excess, power_split
from .model import PolynomialRidgeModel

__all__ = [
    "BUNDLE_ENV",
    "BUNDLE_SCHEMA_VERSION",
    "GATE_BOUNDARY_FRACTION",
    "PredictionArrays",
    "SurrogateBundle",
    "default_bundle_path",
]

#: Bump when the npz layout or the card structure changes incompatibly.
BUNDLE_SCHEMA_VERSION = 1

#: Environment override for the default bundle location.
BUNDLE_ENV = "REPRO_SURROGATE_BUNDLE"

#: Fraction of the Vdd search span treated as "too close to the
#: boundary" — the exact solver declares optima pinned there infeasible,
#: so the surrogate must not trust its own answers in that zone.
GATE_BOUNDARY_FRACTION = 0.01

#: Relative slack on the feature-range gate, covering round-trip float
#: noise without admitting real extrapolation.
_RANGE_SLACK = 1e-9


def default_bundle_path() -> Path:
    """``$REPRO_SURROGATE_BUNDLE`` or ``<cache>/default.npz``."""
    override = os.environ.get(BUNDLE_ENV)
    if override:
        return Path(override)
    return surrogate_cache_dir() / "default.npz"


@dataclass(frozen=True)
class PredictionArrays:
    """Decoded predictions for one feature batch, gate applied."""

    vdd: np.ndarray
    vth: np.ndarray
    pdyn: np.ndarray
    pstat: np.ndarray
    ptot: np.ndarray
    excess: np.ndarray
    trusted: np.ndarray

    @property
    def size(self) -> int:
        return len(self.vdd)

    @property
    def n_trusted(self) -> int:
        return int(np.count_nonzero(self.trusted))

    @property
    def n_flagged(self) -> int:
        return self.size - self.n_trusted


@dataclass(frozen=True)
class SurrogateBundle:
    """A loaded model + card; ``feature_lo/hi`` mirror the card as arrays."""

    model: PolynomialRidgeModel
    card: dict
    feature_lo: np.ndarray
    feature_hi: np.ndarray
    excess_threshold: float

    def predict(self, feats: FeatureArrays) -> PredictionArrays:
        """Decode ``y = Vdd*/Vdd_nominal`` into gated operating points."""
        y = self.model.predict(feats.X)
        vdd = y * feats.vdd_nominal
        vth, pdyn, pstat, ptot = power_split(feats, vdd)
        excess = optimality_excess(feats, vdd)

        slack = _RANGE_SLACK * (
            np.abs(self.feature_hi - self.feature_lo) + 1.0
        )
        in_range = np.all(
            (feats.X >= self.feature_lo - slack)
            & (feats.X <= self.feature_hi + slack),
            axis=1,
        )
        vdd_lo = DEFAULT_VDD_SPAN[0] * feats.vdd_nominal
        vdd_hi = DEFAULT_VDD_SPAN[1] * feats.vdd_nominal
        margin = GATE_BOUNDARY_FRACTION * (vdd_hi - vdd_lo)
        with np.errstate(invalid="ignore"):
            trusted = (
                in_range
                & np.isfinite(vdd)
                & np.isfinite(vth)
                & np.isfinite(ptot)
                & (ptot > 0.0)
                & (vdd > vdd_lo + margin)
                & (vdd < vdd_hi - margin)
                & (excess <= self.excess_threshold)
            )
        return PredictionArrays(
            vdd=vdd,
            vth=vth,
            pdyn=pdyn,
            pstat=pstat,
            ptot=ptot,
            excess=excess,
            trusted=trusted,
        )

    def save(self, path: Path | str) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path,
            card_json=np.str_(json.dumps(self.card, sort_keys=True)),
            feature_lo=self.feature_lo,
            feature_hi=self.feature_hi,
            **self.model.to_payload(),
        )
        return path

    @classmethod
    def load(cls, path: Path | str) -> "SurrogateBundle":
        path = Path(path)
        with np.load(path) as data:
            if "card_json" not in data:
                raise ValueError(f"{path}: not a surrogate bundle npz")
            card = json.loads(str(data["card_json"]))
            if card.get("schema") != BUNDLE_SCHEMA_VERSION:
                raise ValueError(
                    f"{path}: bundle schema {card.get('schema')!r} != "
                    f"{BUNDLE_SCHEMA_VERSION} (retrain with this version)"
                )
            model_meta = card["model"]
            model = PolynomialRidgeModel.from_payload(
                {key: data[key] for key in ("mean", "scale", "exponents", "weights")},
                degree=model_meta["degree"],
                ridge_lambda=model_meta["ridge_lambda"],
                backend=model_meta["backend"],
            )
            return cls(
                model=model,
                card=card,
                feature_lo=np.asarray(data["feature_lo"], dtype=float),
                feature_hi=np.asarray(data["feature_hi"], dtype=float),
                excess_threshold=float(
                    card["validation"]["excess_threshold"]
                ),
            )

    def describe(self) -> str:
        """Human-readable model card (``repro surrogate info``)."""
        card = self.card
        model = card["model"]
        dataset = card["dataset"]
        validation = card["validation"]
        lines = [
            f"surrogate bundle (schema {card['schema']}, repro {card['version']})",
            (
                f"model: {model['kind']} degree={model['degree']} "
                f"terms={model['n_terms']} lambda={model['ridge_lambda']:g} "
                f"backend={model['backend']}"
            ),
            (
                f"dataset: {dataset['n_train']} train / {dataset['n_val']} val "
                f"/ {dataset['n_infeasible']} infeasible "
                f"(seed {dataset['spec']['seed']}, key {dataset['key'][:12]}…)"
            ),
            (
                f"gate: estimated excess <= "
                f"{validation['excess_threshold']:.3e}, "
                f"val trusted fraction "
                f"{validation['trusted_fraction_val']:.3f}"
            ),
            "feature ranges (trained):",
        ]
        for name, lo, hi in zip(
            card["features"]["names"],
            card["features"]["lo"],
            card["features"]["hi"],
        ):
            lines.append(f"  {name:>16s}: [{lo:.6g}, {hi:.6g}]")
        lines.append(
            "held-out relative error quantiles (trusted points):"
        )
        for output in ("vdd", "vth", "ptot"):
            q = validation["errors"][output]
            lines.append(
                f"  {output:>6s}: q50={q['q50']:.2e} q90={q['q90']:.2e} "
                f"q99={q['q99']:.2e} max={q['max']:.2e}"
            )
        return "\n".join(lines)


def build_card(
    *,
    model: PolynomialRidgeModel,
    dataset,
    feature_names,
    feature_lo: np.ndarray,
    feature_hi: np.ndarray,
    excess_threshold: float,
    power_tolerance: float,
    trusted_fraction_val: float,
    errors: dict,
) -> dict:
    """Assemble the model-card dict (pure data; no timestamps so a
    fixed ``--seed`` reproduces the bundle byte-for-byte)."""
    return {
        "schema": BUNDLE_SCHEMA_VERSION,
        "version": __version__,
        "model": {
            "kind": "polynomial-ridge",
            "degree": model.degree,
            "ridge_lambda": model.ridge_lambda,
            "backend": model.backend,
            "n_terms": model.n_terms,
        },
        "dataset": {
            "key": dataset.key,
            "spec": dataset.spec.to_dict(),
            "n_train": dataset.n_train,
            "n_val": dataset.n_val,
            "n_infeasible": dataset.n_infeasible,
        },
        "features": {
            "names": list(feature_names),
            "lo": [float(v) for v in feature_lo],
            "hi": [float(v) for v in feature_hi],
        },
        "validation": {
            "power_tolerance": float(power_tolerance),
            "excess_threshold": float(excess_threshold),
            "trusted_fraction_val": float(trusted_fraction_val),
            "errors": errors,
        },
    }
