"""The ``surrogate`` solver: O(1) learned answers, exact fallback.

Mirrors the ``auto`` policy's shape at a different operating point:
``auto`` trusts a *closed form* where its assumptions hold and re-solves
flagged points exactly; ``surrogate`` trusts a *learned model* where its
uncertainty gate passes and routes flagged points to the same vectorized
exact solver.  Trusted outcomes are tagged ``method="surrogate"``;
fallback outcomes reuse the engine's ``numerical-fallback`` tag, so
:meth:`EvaluationStats.from_outcomes` reports the fallback rate with no
new accounting and infeasibility reasons match the scalar solver's
verbatim.

The default bundle loads lazily (once, under a lock) from
``$REPRO_SURROGATE_BUNDLE`` / the surrogate cache; when absent it is
trained on the spot from the seeded default spec (~half a second, then
cached), so ``Study(...).solver("surrogate")``, ``/v1/optimize`` and
jobs all work by name with zero setup.
"""

from __future__ import annotations

import time
from pathlib import Path
from threading import Lock
from typing import Sequence

from .. import obs
from ..core.optimum import OperatingPoint, OptimizationResult
from ..explore.engine import FALLBACK_METHOD, PointOutcome
from ..solvers.base import SolverError, check_options
from ..solvers.batch_numerical import solve_points
from .bundle import SurrogateBundle, default_bundle_path
from .features import features_for_points
from .train import train_bundle

__all__ = ["METHOD", "SURROGATE_SOLVER", "SurrogateSolver"]

#: Method tag on operating points the model (not the fallback) produced.
METHOD = "surrogate"


class SurrogateSolver:
    """Learned Vdd* predictor with uncertainty-gated exact fallback."""

    name = "surrogate"
    summary = (
        "learned (Vdd*, Vth*, P*) predictor; uncertainty-gated exact fallback"
    )

    def __init__(self, bundle: SurrogateBundle | None = None) -> None:
        self._pinned = bundle
        self._lock = Lock()
        self._bundles: dict[str, SurrogateBundle] = {}

    def solve(
        self, points: Sequence, jobs: int | None = None, **options
    ) -> list[PointOutcome]:
        check_options(self.name, options, ("bundle",))
        points = list(points)
        with obs.span("surrogate.solve", points=len(points)):
            bundle = self._resolve_bundle(options.get("bundle"))
            if not points:
                return []
            feats = features_for_points(points)
            prediction = bundle.predict(feats)

            outcomes: list[PointOutcome | None] = [None] * len(points)
            flagged: list[int] = []
            for index, point in enumerate(points):
                if not prediction.trusted[index]:
                    flagged.append(index)
                    continue
                operating_point = OperatingPoint(
                    vdd=float(prediction.vdd[index]),
                    vth=float(prediction.vth[index]),
                    pdyn=float(prediction.pdyn[index]),
                    pstat=float(prediction.pstat[index]),
                    method=METHOD,
                )
                outcomes[index] = PointOutcome(
                    point=point,
                    result=OptimizationResult(
                        architecture=point.architecture,
                        technology=point.technology,
                        frequency=point.frequency,
                        point=operating_point,
                    ),
                    method=METHOD,
                )

            if flagged:
                with obs.span("surrogate.fallback", points=len(flagged)):
                    solution = solve_points([points[i] for i in flagged])
                for position, index in enumerate(flagged):
                    point = points[index]
                    if solution.feasible[position]:
                        operating_point = OperatingPoint(
                            vdd=float(solution.vdd[position]),
                            vth=float(solution.vth[position]),
                            pdyn=float(solution.pdyn[position]),
                            pstat=float(solution.pstat[position]),
                            method=FALLBACK_METHOD,
                        )
                        outcomes[index] = PointOutcome(
                            point=point,
                            result=OptimizationResult(
                                architecture=point.architecture,
                                technology=point.technology,
                                frequency=point.frequency,
                                point=operating_point,
                            ),
                            method=FALLBACK_METHOD,
                        )
                    else:
                        outcomes[index] = PointOutcome(
                            point=point,
                            result=None,
                            reason=str(solution.reason[position]),
                            method=FALLBACK_METHOD,
                        )

            obs.inc("surrogate.predictions", len(points) - len(flagged))
            if flagged:
                obs.inc("surrogate.fallbacks", len(flagged))
            return outcomes  # type: ignore[return-value]

    # -- bundle resolution ---------------------------------------------
    def _resolve_bundle(self, option) -> SurrogateBundle:
        if option is None and self._pinned is not None:
            return self._pinned
        key = str(option) if option else ""
        bundle = self._bundles.get(key)  # lock-free warm path
        if bundle is not None:
            return bundle
        with self._lock:
            bundle = self._bundles.get(key)
            if bundle is not None:
                return bundle
            started = time.perf_counter()
            with obs.span("surrogate.load", explicit=bool(option)):
                bundle = self._load_bundle(option)
            self._bundles[key] = bundle
            obs.inc("surrogate.loads")
            obs.observe(
                "surrogate.load_seconds", time.perf_counter() - started
            )
            return bundle

    def _load_bundle(self, option) -> SurrogateBundle:
        if option:
            path = Path(option)
            if not path.exists():
                raise SolverError(
                    f"surrogate: bundle not found: {path} "
                    "(run `repro surrogate train --out ...` first)"
                )
            try:
                return SurrogateBundle.load(path)
            except Exception as error:
                raise SolverError(
                    f"surrogate: failed to load bundle {path}: {error}"
                ) from error
        path = default_bundle_path()
        if path.exists():
            try:
                return SurrogateBundle.load(path)
            except Exception:
                pass  # stale schema / corrupt file: retrain below
        bundle = train_bundle().bundle
        try:
            bundle.save(path)
        except OSError:
            pass  # read-only cache: keep the in-memory bundle
        return bundle

    def invalidate(self) -> None:
        """Drop memoised bundles (tests; after an external retrain)."""
        with self._lock:
            self._bundles.clear()


#: The instance the catalog registers as solver ``surrogate``.
SURROGATE_SOLVER = SurrogateSolver()
