"""Training and held-out evaluation of surrogate bundles.

``train_bundle`` is the one entry point: dataset (cached), fit,
held-out validation, gate calibration, card.  The calibration step is
what turns a regressor into a *solver*: on the validation split we sort
points by the analytic second-order excess estimate
(:func:`~repro.surrogate.features.optimality_excess`) and pick the
largest cutoff such that **every** point at or below it has measured
relative power error within ``power_tolerance``.  Because both the
estimate and the measurement are distances to the same exact optimum,
the estimate tracks the measurement within a few percent and the
calibrated prefix covers nearly the whole validation split.  Points the
gate then trusts at query time sit in the regime where held-out error
was uniformly small; everything beyond goes to the exact solver.  The
default tolerance (0.4%) leaves a 2.5x margin under the subsystem's
≤1% acceptance bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .. import obs
from .bundle import SurrogateBundle, build_card
from .dataset import DatasetSpec, SurrogateDataset, load_or_build
from .features import FEATURE_NAMES, optimality_excess, power_split
from .model import fit_polynomial_ridge

__all__ = [
    "DEFAULT_POWER_TOLERANCE",
    "TrainResult",
    "evaluate_bundle",
    "train_bundle",
]

#: Maximum tolerated relative power error on trusted validation points.
DEFAULT_POWER_TOLERANCE = 0.004

#: Relative-error denominators are floored here so near-zero references
#: (Vth close to the weak-inversion floor) don't blow up the quantiles.
_DENOMINATOR_FLOOR = 1e-3


def _relative_error(predicted: np.ndarray, reference: np.ndarray) -> np.ndarray:
    return np.abs(predicted - reference) / np.maximum(
        np.abs(reference), _DENOMINATOR_FLOOR
    )


def _quantiles(values: np.ndarray) -> dict:
    if len(values) == 0:
        return {"q50": 0.0, "q90": 0.0, "q99": 0.0, "max": 0.0}
    return {
        "q50": float(np.quantile(values, 0.50)),
        "q90": float(np.quantile(values, 0.90)),
        "q99": float(np.quantile(values, 0.99)),
        "max": float(np.max(values)),
    }


@dataclass(frozen=True)
class TrainResult:
    """A trained bundle plus its provenance."""

    bundle: SurrogateBundle
    dataset: SurrogateDataset
    dataset_from_cache: bool


def _calibrate_threshold(
    excess: np.ndarray, power_error: np.ndarray, power_tolerance: float
) -> float:
    """Largest excess cutoff whose prefix keeps power error in tolerance."""
    order = np.argsort(excess)
    worst_so_far = np.maximum.accumulate(power_error[order])
    within = worst_so_far <= power_tolerance
    finite = np.isfinite(excess[order])
    within &= finite
    if not within.any():
        return 0.0
    last = int(np.flatnonzero(within)[-1])
    return float(excess[order][last])


def train_bundle(
    spec: DatasetSpec | None = None,
    *,
    degree: int = 6,
    ridge_lambda: float = 1e-9,
    backend: str = "numpy",
    power_tolerance: float = DEFAULT_POWER_TOLERANCE,
    cache_dir: Path | str | None = None,
    use_dataset_cache: bool = True,
) -> TrainResult:
    """Train a bundle on (a cached build of) ``spec``.

    Deterministic for a fixed spec/backend: the rng stream is seeded,
    the fit is a direct linear solve and the card carries no timestamps,
    so retraining reproduces the bundle byte-for-byte.
    """
    spec = spec if spec is not None else DatasetSpec()
    with obs.span("surrogate.train", seed=spec.seed, backend=backend):
        dataset, from_cache = load_or_build(
            spec, cache_dir=cache_dir, use_cache=use_dataset_cache
        )
        features = dataset.features
        nominal = features.vdd_nominal
        target = dataset.table.columns["vdd"] / nominal

        train_idx = dataset.train_indices
        val_idx = dataset.val_indices
        model = fit_polynomial_ridge(
            features.X[train_idx],
            target[train_idx],
            degree=degree,
            ridge_lambda=ridge_lambda,
            backend=backend,
        )

        # Held-out decode: predict Vdd, derive Vth/power exactly.
        val_feats = features.take(val_idx)
        vdd_hat = model.predict(val_feats.X) * val_feats.vdd_nominal
        vth_hat, _, _, ptot_hat = power_split(val_feats, vdd_hat)
        vdd_ref = dataset.table.columns["vdd"][val_idx]
        vth_ref = dataset.table.columns["vth"][val_idx]
        ptot_ref = dataset.table.columns["ptot"][val_idx]
        vdd_err = _relative_error(vdd_hat, vdd_ref)
        vth_err = _relative_error(vth_hat, vth_ref)
        ptot_err = _relative_error(ptot_hat, ptot_ref)

        excess = optimality_excess(val_feats, vdd_hat)
        threshold = _calibrate_threshold(excess, ptot_err, power_tolerance)

        feature_lo = features.X[train_idx].min(axis=0)
        feature_hi = features.X[train_idx].max(axis=0)
        card = build_card(
            model=model,
            dataset=dataset,
            feature_names=FEATURE_NAMES,
            feature_lo=feature_lo,
            feature_hi=feature_hi,
            excess_threshold=threshold,
            power_tolerance=power_tolerance,
            trusted_fraction_val=0.0,  # patched below, needs the bundle
            errors={
                "vdd": _quantiles(vdd_err),
                "vth": _quantiles(vth_err),
                "ptot": _quantiles(ptot_err),
            },
        )
        bundle = SurrogateBundle(
            model=model,
            card=card,
            feature_lo=feature_lo,
            feature_hi=feature_hi,
            excess_threshold=threshold,
        )
        prediction = bundle.predict(val_feats)
        trusted_fraction = (
            prediction.n_trusted / prediction.size if prediction.size else 0.0
        )
        card["validation"]["trusted_fraction_val"] = float(trusted_fraction)
        # Error quantiles the card advertises are for *trusted* points —
        # the only ones a query ever receives from the model.
        mask = prediction.trusted
        card["validation"]["errors"] = {
            "vdd": _quantiles(vdd_err[mask]),
            "vth": _quantiles(vth_err[mask]),
            "ptot": _quantiles(ptot_err[mask]),
        }
        return TrainResult(
            bundle=bundle, dataset=dataset, dataset_from_cache=from_cache
        )


def evaluate_bundle(
    bundle: SurrogateBundle,
    spec: DatasetSpec | None = None,
    *,
    cache_dir: Path | str | None = None,
    use_dataset_cache: bool = True,
) -> dict:
    """Score a bundle on a fresh dataset (default: training seed + 1).

    Returns a JSON-ready report: gate statistics plus error quantiles on
    the trusted subset — the numbers ``repro surrogate eval`` prints and
    the README's measured-error table quotes.
    """
    if spec is None:
        trained = DatasetSpec.from_dict(bundle.card["dataset"]["spec"])
        spec = DatasetSpec.from_dict(
            {**trained.to_dict(), "seed": trained.seed + 1}
        )
    dataset, _ = load_or_build(
        spec, cache_dir=cache_dir, use_cache=use_dataset_cache
    )
    feasible = np.concatenate([dataset.train_indices, dataset.val_indices])
    feasible.sort()
    feats = dataset.features.take(feasible)
    prediction = bundle.predict(feats)
    mask = prediction.trusted
    vdd_err = _relative_error(
        prediction.vdd, dataset.table.columns["vdd"][feasible]
    )
    vth_err = _relative_error(
        prediction.vth, dataset.table.columns["vth"][feasible]
    )
    ptot_err = _relative_error(
        prediction.ptot, dataset.table.columns["ptot"][feasible]
    )
    return {
        "dataset": {"spec": spec.to_dict(), "key": spec.key},
        "points": int(prediction.size),
        "trusted": int(prediction.n_trusted),
        "flagged": int(prediction.n_flagged),
        "trusted_fraction": (
            float(prediction.n_trusted / prediction.size)
            if prediction.size
            else 0.0
        ),
        "errors_trusted": {
            "vdd": _quantiles(vdd_err[mask]),
            "vth": _quantiles(vth_err[mask]),
            "ptot": _quantiles(ptot_err[mask]),
        },
    }
