"""Training-data pipeline: sample → solve exactly → split → cache.

Ground truth comes from :func:`repro.solvers.batch_numerical.
solve_points` — the vectorized bit-identical port of the exact bounded
Brent search — so every label is the *true* constrained optimum, not a
linearised approximation.  That choice is what makes the gate's
second-order excess estimate (:func:`~repro.surrogate.features.
optimality_excess`) agree with the measured held-out error: both are
distances to the same exact optimum.  The result lands in a columnar
:class:`~repro.explore.columnar.ResultTable` over a seeded sample of
the design space:

* **architectures** — multiplicative log-uniform jitter of the demo
  RCA/Wallace bases over (N, a, LD, C, io_factor).  ``zeta_factor``
  stays fixed: it enters χ only through the ``LD·ζ_eff`` product, so
  jittering it would re-cover exactly the axis the depth jitter spans.
* **technologies** — the three published ST-CMOS09 anchors plus seeded
  draws along :func:`~repro.core.technology.flavour_line`, giving the
  categorical flavour axis a continuous, interpolatable encoding.
* **frequencies** — a log grid spanning the service's working range.

Everything downstream of the seed is deterministic: one
``numpy.random.default_rng(seed)`` stream drives the jitter, the flavour
draws and the train/validation permutation, in that order, which is what
makes ``repro surrogate train --seed N`` bit-reproducible.

Built datasets are cached as a single ``.npz`` keyed by the content hash
of (spec, schema, library version) — same spec, same bytes, no rebuild.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any

import numpy as np

from .. import __version__
from ..core.architecture import ArchitectureParameters
from ..core.technology import flavour, flavour_line
from ..explore.cache import content_hash
from ..explore.columnar import (
    BOOL_COLUMNS,
    FLOAT_COLUMNS,
    OPTIONAL_FLOAT_COLUMNS,
    STRING_COLUMNS,
    ResultTable,
)
from ..explore.scenario import FrequencyGrid, Scenario, demo_scenario
from ..solvers.batch_numerical import METHOD as EXACT_METHOD
from ..solvers.batch_numerical import solve_points
from .features import FeatureArrays, features_for_columns

__all__ = [
    "CACHE_DIR_ENV",
    "DATASET_SCHEMA_VERSION",
    "DatasetSpec",
    "SurrogateDataset",
    "build_dataset",
    "load_or_build",
    "surrogate_cache_dir",
]

#: Bump when the npz layout or the sampling procedure changes shape.
DATASET_SCHEMA_VERSION = 1

#: Environment override for the surrogate cache root (datasets and the
#: default bundle both live under it).
CACHE_DIR_ENV = "REPRO_SURROGATE_CACHE"


def surrogate_cache_dir() -> Path:
    """``$REPRO_SURROGATE_CACHE`` or ``~/.cache/repro/surrogate``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "surrogate"


@dataclass(frozen=True)
class DatasetSpec:
    """Declarative, hashable description of one training dataset."""

    seed: int = 0
    architectures: int = 24
    technologies: int = 12
    frequencies: int = 28
    frequency_start: float = 2e6
    frequency_stop: float = 1.28e8
    flavour_span: float = 1.2
    jitter: float = 0.45
    val_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.architectures < 1 or self.technologies < 1:
            raise ValueError("spec needs at least one architecture/technology")
        if self.frequencies < 2:
            raise ValueError("spec needs at least two frequency points")
        if not 0.0 < self.val_fraction < 1.0:
            raise ValueError(
                f"val_fraction must be in (0, 1), got {self.val_fraction}"
            )

    @property
    def size(self) -> int:
        return self.architectures * self.technologies * self.frequencies

    def to_dict(self) -> dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "DatasetSpec":
        return cls(**payload)

    @property
    def key(self) -> str:
        """Content hash keying the dataset cache entry."""
        return content_hash(
            {
                "spec": self.to_dict(),
                "schema": DATASET_SCHEMA_VERSION,
                "version": __version__,
            }
        )


def _sample_architectures(
    spec: DatasetSpec, rng: np.random.Generator
) -> tuple[ArchitectureParameters, ...]:
    bases = demo_scenario().architectures
    sampled = []
    for index in range(spec.architectures):
        base = bases[index % len(bases)]
        factor = np.exp(rng.uniform(-spec.jitter, spec.jitter, size=5))
        sampled.append(
            ArchitectureParameters(
                name=f"surrogate-sample-{index}",
                n_cells=float(base.n_cells * factor[0]),
                activity=float(base.activity * factor[1]),
                logical_depth=float(base.logical_depth * factor[2]),
                capacitance=float(base.capacitance * factor[3]),
                io_factor=float(base.io_factor * factor[4]),
                zeta_factor=base.zeta_factor,
            )
        )
    return tuple(sampled)


def _sample_technologies(spec: DatasetSpec, rng: np.random.Generator):
    anchors = [flavour("ULL"), flavour("LL"), flavour("HS")]
    anchors = anchors[: spec.technologies]
    extra = spec.technologies - len(anchors)
    positions = rng.uniform(-spec.flavour_span, spec.flavour_span, size=extra)
    return tuple(anchors) + tuple(flavour_line(float(t)) for t in positions)


@dataclass(frozen=True)
class SurrogateDataset:
    """An evaluated sample with its feature matrix and held-out split.

    ``train_indices``/``val_indices`` index *feasible* table rows only —
    infeasible candidates carry no optimum to regress on (the solver's
    gate, not the model, owns infeasibility at query time, via fallback).
    """

    spec: DatasetSpec
    table: ResultTable
    features: FeatureArrays
    train_indices: np.ndarray
    val_indices: np.ndarray

    @property
    def key(self) -> str:
        return self.spec.key

    @property
    def n_train(self) -> int:
        return len(self.train_indices)

    @property
    def n_val(self) -> int:
        return len(self.val_indices)

    @property
    def n_infeasible(self) -> int:
        return int(len(self.table) - self.n_train - self.n_val)

    def save(self, path: Path | str) -> Path:
        path = Path(path)
        arrays: dict[str, np.ndarray] = {
            "X": self.features.X,
            "acf": self.features.acf,
            "feat_n_cells": self.features.n_cells,
            "train_indices": self.train_indices,
            "val_indices": self.val_indices,
        }
        for name in STRING_COLUMNS:
            arrays[f"col_{name}"] = np.asarray(
                self.table.columns[name], dtype=np.str_
            )
        for name in FLOAT_COLUMNS + OPTIONAL_FLOAT_COLUMNS + BOOL_COLUMNS:
            arrays[f"col_{name}"] = self.table.columns[name]
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path,
            schema=np.int64(DATASET_SCHEMA_VERSION),
            spec_json=np.str_(json.dumps(self.spec.to_dict(), sort_keys=True)),
            **arrays,
        )
        return path

    @classmethod
    def load(cls, path: Path | str) -> "SurrogateDataset":
        with np.load(Path(path)) as data:
            if "schema" not in data or int(data["schema"]) != DATASET_SCHEMA_VERSION:
                raise ValueError(
                    f"{path}: not a surrogate dataset npz "
                    f"(schema {DATASET_SCHEMA_VERSION} expected)"
                )
            spec = DatasetSpec.from_dict(json.loads(str(data["spec_json"])))
            columns: dict[str, np.ndarray] = {}
            for name in STRING_COLUMNS:
                columns[name] = np.array(
                    data[f"col_{name}"].tolist(), dtype=object
                )
            for name in FLOAT_COLUMNS + OPTIONAL_FLOAT_COLUMNS + BOOL_COLUMNS:
                columns[name] = data[f"col_{name}"]
            features = FeatureArrays(
                X=data["X"],
                n_cells=data["feat_n_cells"],
                acf=data["acf"],
            )
            return cls(
                spec=spec,
                table=ResultTable(columns),
                features=features,
                train_indices=data["train_indices"],
                val_indices=data["val_indices"],
            )


def _exact_table(scenario: Scenario) -> ResultTable:
    """Solve every candidate exactly, straight into a ResultTable."""
    solution = solve_points(scenario.expand())
    columns = scenario.expand_columns()
    feasible = solution.feasible
    method = np.where(feasible, EXACT_METHOD, "").astype(object)
    return ResultTable(
        {
            "architecture": columns.arch_name,
            "technology": columns.tech_name,
            "method": method,
            "reason": solution.reason,
            "frequency": columns.frequency,
            "n_cells": columns.n_cells,
            "activity": columns.activity,
            "logical_depth": columns.logical_depth,
            "capacitance": columns.capacitance,
            "area": columns.area,
            "vdd": solution.vdd,
            "vth": solution.vth,
            "pdyn": solution.pdyn,
            "pstat": solution.pstat,
            "ptot": solution.ptot,
            "feasible": feasible,
        }
    )


def build_dataset(spec: DatasetSpec) -> SurrogateDataset:
    """Sample, solve exactly and split one dataset."""
    rng = np.random.default_rng(spec.seed)
    scenario = Scenario(
        name=f"surrogate-train-seed{spec.seed}",
        description="seeded surrogate training sample",
        architectures=_sample_architectures(spec, rng),
        technologies=_sample_technologies(spec, rng),
        frequencies=FrequencyGrid.logspace(
            spec.frequency_start, spec.frequency_stop, spec.frequencies
        ),
    )
    table = _exact_table(scenario)
    features = features_for_columns(scenario.expand_columns())
    feasible = np.flatnonzero(table.columns["feasible"])
    if len(feasible) < 2:
        raise ValueError(
            f"dataset spec produced only {len(feasible)} feasible points; "
            "widen the frequency range or lower the jitter"
        )
    permutation = rng.permutation(len(feasible))
    n_val = max(1, int(round(spec.val_fraction * len(feasible))))
    val = np.sort(feasible[permutation[:n_val]])
    train = np.sort(feasible[permutation[n_val:]])
    return SurrogateDataset(
        spec=spec,
        table=table,
        features=features,
        train_indices=train,
        val_indices=val,
    )


def load_or_build(
    spec: DatasetSpec,
    *,
    cache_dir: Path | str | None = None,
    use_cache: bool = True,
) -> tuple[SurrogateDataset, bool]:
    """The dataset for ``spec``, from cache when possible.

    Returns ``(dataset, from_cache)``.  A corrupt or stale cache entry is
    silently rebuilt — the content hash in the filename already rules out
    spec/schema/version mismatches.
    """
    root = Path(cache_dir) if cache_dir is not None else surrogate_cache_dir()
    path = root / "datasets" / f"{spec.key}.npz"
    if use_cache and path.exists():
        try:
            return SurrogateDataset.load(path), True
        except Exception:
            pass
    dataset = build_dataset(spec)
    if use_cache:
        try:
            dataset.save(path)
        except OSError:
            pass  # read-only cache root: serve from memory
    return dataset, False
