"""Learned surrogate solver subsystem.

Amortized optimization for the paper's Eq. 1–13 problem: a small
polynomial-ridge regressor (numpy baseline, optional sklearn fitter)
predicts the normalised optimal supply ``Vdd*/Vdd_nominal`` from five
sufficient features; threshold voltage and power then derive *exactly*
from Eq. 5 and Eq. 1, and an analytic uncertainty gate routes anything
out-of-range or off-optimum to the exact vectorized solver.  Registered
in the catalog as solver ``"surrogate"`` — usable by name through
:class:`~repro.study.Study`, ``/v1/optimize``, ``/v1/explore`` and jobs.

Layers: :mod:`.features` (encoding + exact decode physics),
:mod:`.model` (regressor), :mod:`.dataset` (seeded columnar training
data + cache), :mod:`.bundle` (persisted model + card + gate),
:mod:`.train` (fit/validate/calibrate) and :mod:`.solver` (the
registered :class:`SurrogateSolver`).
"""

from .bundle import (
    BUNDLE_SCHEMA_VERSION,
    PredictionArrays,
    SurrogateBundle,
    default_bundle_path,
)
from .dataset import (
    DATASET_SCHEMA_VERSION,
    DatasetSpec,
    SurrogateDataset,
    build_dataset,
    load_or_build,
    surrogate_cache_dir,
)
from .features import (
    FEATURE_NAMES,
    FeatureArrays,
    features_for_columns,
    features_for_points,
)
from .model import (
    PolynomialRidgeModel,
    available_backends,
    fit_polynomial_ridge,
    monomial_exponents,
    sklearn_available,
)
from .solver import SURROGATE_SOLVER, SurrogateSolver
from .train import TrainResult, evaluate_bundle, train_bundle

__all__ = [
    "BUNDLE_SCHEMA_VERSION",
    "DATASET_SCHEMA_VERSION",
    "DatasetSpec",
    "FEATURE_NAMES",
    "FeatureArrays",
    "PolynomialRidgeModel",
    "PredictionArrays",
    "SURROGATE_SOLVER",
    "SurrogateBundle",
    "SurrogateDataset",
    "SurrogateSolver",
    "TrainResult",
    "available_backends",
    "build_dataset",
    "default_bundle_path",
    "evaluate_bundle",
    "features_for_columns",
    "features_for_points",
    "fit_polynomial_ridge",
    "load_or_build",
    "monomial_exponents",
    "sklearn_available",
    "surrogate_cache_dir",
    "train_bundle",
]
