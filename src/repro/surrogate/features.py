"""Feature encoding for the learned surrogate — five sufficient scalars.

Along the exact Eq. 5 timing constraint ``Vth = Vdd − χ·Vdd^(1/α)`` the
total power of Eq. 1 factors as ``Ptot = N·Io_eff · p(v)`` with the
per-unit objective

    p(v) = r·v² + v·exp(−vth(v)/(n·Ut)),    vth(v) = v − χ·v^(1/α)

where ``v`` is the supply voltage, ``r ≡ a·C·f / Io_eff`` the dynamic/
static load ratio and ``Io_eff = Io·io_factor`` the per-cell leakage
current.  The *location* of the constrained optimum therefore depends on
exactly five scalars — χ (Eq. 6), r, α, ``n·Ut`` and the nominal supply
(which sets the search span) — regardless of how many architecture and
technology knobs produced them.  Encoding candidates down to this tuple
is what lets one small regressor generalise across unseen architectures
and technologies: any (arch, tech, f) combination landing inside the
trained feature ranges is in-distribution, whether or not its name ever
appeared in the training set.

The model predicts the single normalised output ``y = Vdd*/Vdd_nominal``;
``Vth*`` then derives *exactly* from Eq. 5 and the power split *exactly*
from Eq. 1, so every trusted answer is timing-feasible by construction
and its power error is second-order in the ``Vdd`` prediction error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.constants import EULER

__all__ = [
    "FEATURE_NAMES",
    "FeatureArrays",
    "constrained_vth",
    "features_for_columns",
    "features_for_points",
    "features_from_arrays",
    "optimality_excess",
    "power_split",
]

#: Column order of :attr:`FeatureArrays.X` — the model card records the
#: training min/max per entry so the range gate can reject extrapolation.
FEATURE_NAMES = ("log_chi", "log_load_ratio", "alpha", "n_ut", "vdd_nominal")


@dataclass(frozen=True)
class FeatureArrays:
    """Aligned per-point feature matrix plus the Eq. 1 scale factors.

    ``X`` is the (n, 5) model input in :data:`FEATURE_NAMES` order; the
    physics needed to decode a normalised prediction back into
    (Vdd*, Vth*, Pdyn, Pstat) is fully recoverable from ``X`` plus the
    two scale columns (``n_cells`` and ``acf = a·C·f``), which is what
    keeps dataset files down to three arrays.
    """

    X: np.ndarray
    n_cells: np.ndarray
    acf: np.ndarray

    def __post_init__(self) -> None:
        if self.X.ndim != 2 or self.X.shape[1] != len(FEATURE_NAMES):
            raise ValueError(
                f"feature matrix must be (n, {len(FEATURE_NAMES)}), "
                f"got {self.X.shape}"
            )
        if len(self.n_cells) != len(self.X) or len(self.acf) != len(self.X):
            raise ValueError("feature arrays must be aligned")

    @property
    def size(self) -> int:
        return len(self.X)

    # -- physics views (derived, never stored twice) --------------------
    @property
    def chi(self) -> np.ndarray:
        return np.exp(self.X[:, 0])

    @property
    def load_ratio(self) -> np.ndarray:
        return np.exp(self.X[:, 1])

    @property
    def alpha(self) -> np.ndarray:
        return self.X[:, 2]

    @property
    def inv_alpha(self) -> np.ndarray:
        return 1.0 / self.X[:, 2]

    @property
    def n_ut(self) -> np.ndarray:
        return self.X[:, 3]

    @property
    def vdd_nominal(self) -> np.ndarray:
        return self.X[:, 4]

    @property
    def io_eff(self) -> np.ndarray:
        """Per-cell leakage current ``Io·io_factor`` [A]."""
        return self.acf / self.load_ratio

    def take(self, indices: np.ndarray) -> "FeatureArrays":
        return FeatureArrays(
            X=self.X[indices],
            n_cells=self.n_cells[indices],
            acf=self.acf[indices],
        )


def features_from_arrays(
    n_cells,
    activity,
    logical_depth,
    capacitance,
    frequency,
    io_factor,
    zeta_factor,
    io,
    zeta,
    alpha,
    n_ut,
    vdd_nominal,
) -> FeatureArrays:
    """Encode aligned per-point arrays down to the five sufficient features.

    χ follows Eq. 6 with the architecture's ``zeta_factor`` folded into
    ``ζ`` and the *unscaled* ``Io`` in the denominator — the same
    convention as :func:`repro.explore.vectorized.chi_batch`;
    ``io_factor`` enters only through the static-power current.
    """
    n_cells = np.asarray(n_cells, dtype=float)
    frequency = np.asarray(frequency, dtype=float)
    alpha = np.asarray(alpha, dtype=float)
    n_ut = np.asarray(n_ut, dtype=float)
    denominator = np.asarray(io, dtype=float) * (EULER / n_ut) ** alpha
    chi = (
        frequency
        * np.asarray(logical_depth, dtype=float)
        * np.asarray(zeta, dtype=float)
        * np.asarray(zeta_factor, dtype=float)
        / denominator
    ) ** (1.0 / alpha)
    io_eff = np.asarray(io, dtype=float) * np.asarray(io_factor, dtype=float)
    acf = (
        np.asarray(activity, dtype=float)
        * np.asarray(capacitance, dtype=float)
        * frequency
    )
    load_ratio = acf / io_eff
    X = np.column_stack(
        [
            np.log(chi),
            np.log(load_ratio),
            alpha,
            n_ut,
            np.asarray(vdd_nominal, dtype=float),
        ]
    )
    return FeatureArrays(X=X, n_cells=n_cells, acf=acf)


def features_for_points(points: Sequence) -> FeatureArrays:
    """Features for a list of :class:`~repro.explore.scenario.DesignPoint`."""
    return features_from_arrays(
        n_cells=[p.architecture.n_cells for p in points],
        activity=[p.architecture.activity for p in points],
        logical_depth=[p.architecture.logical_depth for p in points],
        capacitance=[p.architecture.capacitance for p in points],
        frequency=[p.frequency for p in points],
        io_factor=[p.architecture.io_factor for p in points],
        zeta_factor=[p.architecture.zeta_factor for p in points],
        io=[p.technology.io for p in points],
        zeta=[p.technology.zeta for p in points],
        alpha=[p.technology.alpha for p in points],
        n_ut=[p.technology.n_ut for p in points],
        vdd_nominal=[p.technology.vdd_nominal for p in points],
    )


def features_for_columns(columns) -> FeatureArrays:
    """Features for an :class:`~repro.explore.columnar.ExpandedColumns` grid."""
    techs = columns.technologies
    index = columns.tech_index

    def per_tech(attribute: str) -> np.ndarray:
        values = np.array([getattr(t, attribute) for t in techs], dtype=float)
        return values[index]

    return features_from_arrays(
        n_cells=columns.n_cells,
        activity=columns.activity,
        logical_depth=columns.logical_depth,
        capacitance=columns.capacitance,
        frequency=columns.frequency,
        io_factor=columns.io_factor,
        zeta_factor=columns.zeta_factor,
        io=per_tech("io"),
        zeta=per_tech("zeta"),
        alpha=per_tech("alpha"),
        n_ut=per_tech("n_ut"),
        vdd_nominal=per_tech("vdd_nominal"),
    )


def constrained_vth(feats: FeatureArrays, vdd: np.ndarray) -> np.ndarray:
    """Exact Eq. 5 threshold along the timing constraint at ``vdd``."""
    with np.errstate(invalid="ignore"):
        return vdd - feats.chi * vdd**feats.inv_alpha


def power_split(
    feats: FeatureArrays, vdd: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(vth, pdyn, pstat, ptot) at ``vdd`` along the exact constraint.

    The same Eq. 5 + Eq. 1 chain the exact solvers evaluate, so a
    surrogate answer's power is exact *given its Vdd* — all prediction
    error lives in the (second-order) distance from the true optimum.
    """
    vth = constrained_vth(feats, vdd)
    with np.errstate(over="ignore", invalid="ignore"):
        pdyn = feats.n_cells * feats.acf * vdd**2
        pstat = feats.n_cells * feats.io_eff * vdd * np.exp(-vth / feats.n_ut)
    return vth, pdyn, pstat, pdyn + pstat


def optimality_excess(feats: FeatureArrays, vdd: np.ndarray) -> np.ndarray:
    """Estimated relative power excess above the true constrained optimum.

    A second-order optimality residual: with ``p`` the per-unit
    objective (module docstring), the estimate is ``p′(v)²/(2·p″(v)·p(v))``
    — the Taylor excess ``p(v) − p(v*)`` relative to ``p``, using the
    Newton step ``p′/p″`` as the distance to the optimum.  Both
    derivatives are analytic, so this is a cheap, fully calculable
    uncertainty signal (no ensemble, no second model); where the local
    curvature is non-positive (no nearby minimum — the prediction is
    nowhere near a valid optimum) the estimate is +inf.  On held-out
    data the measured excess tracks this estimate within a few percent,
    which is what lets the gate's threshold certify a power-error bound.
    """
    inv_alpha = feats.inv_alpha
    n_ut = feats.n_ut
    load_ratio = feats.load_ratio
    chi = feats.chi
    with np.errstate(over="ignore", invalid="ignore", divide="ignore"):
        vth = vdd - chi * vdd**inv_alpha
        leak = np.exp(-vth / n_ut)
        dvth = 1.0 - chi * inv_alpha * vdd ** (inv_alpha - 1.0)
        d2vth = -chi * inv_alpha * (inv_alpha - 1.0) * vdd ** (inv_alpha - 2.0)
        value = load_ratio * vdd**2 + vdd * leak
        slope = 2.0 * load_ratio * vdd + leak * (1.0 - vdd * dvth / n_ut)
        curvature = 2.0 * load_ratio + leak * (
            vdd * dvth**2 / n_ut**2 - 2.0 * dvth / n_ut - vdd * d2vth / n_ut
        )
        excess = slope**2 / (2.0 * curvature * value)
        return np.where(
            (curvature > 0.0) & (value > 0.0) & np.isfinite(excess),
            excess,
            np.inf,
        )
