"""Polynomial ridge regression — numpy baseline, optional sklearn fitter.

The baseline regressor is deliberately boring: standardise the five
features, expand to all monomials of total degree ≤ ``degree`` and solve
the ridge normal equations with one ``np.linalg.solve``.  On this
problem (a smooth scalar map on a low-dimensional box) that matches far
heavier models while staying stdlib+numpy, deterministic, and fast
enough to retrain from scratch in well under a second.

scikit-learn, when importable, is offered as an *alternative fitter*
only: it solves the identical penalised least-squares on the identical
design matrix and emits the same ``(exponents, weights)`` payload, so
persisted bundles are backend-agnostic — a bundle trained with sklearn
loads and predicts on a box that has never seen sklearn.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

__all__ = [
    "BACKENDS",
    "PolynomialRidgeModel",
    "available_backends",
    "fit_polynomial_ridge",
    "monomial_exponents",
    "sklearn_available",
]

#: Fitter backends, in preference order for ``available_backends``.
BACKENDS = ("numpy", "sklearn")

#: Features whose training standard deviation falls below this are held
#: constant in the data (e.g. ``n_ut`` on a single-temperature dataset);
#: their scale is pinned to 1 so standardisation never divides by zero.
_SCALE_FLOOR = 1e-12


def sklearn_available() -> bool:
    """True when the optional scikit-learn backend is importable."""
    try:
        import sklearn.linear_model  # noqa: F401
    except Exception:
        return False
    return True


def available_backends() -> tuple[str, ...]:
    """The fitter backends usable in this environment."""
    return tuple(
        b for b in BACKENDS if b != "sklearn" or sklearn_available()
    )


def monomial_exponents(n_features: int, degree: int) -> np.ndarray:
    """Exponent matrix of all monomials with total degree ≤ ``degree``.

    Deterministic order (degree-major, then lexicographic by feature
    combination), row 0 the intercept — the persisted bundle stores this
    matrix, so prediction never depends on regeneration order.
    """
    rows = []
    for total in range(degree + 1):
        for combo in itertools.combinations_with_replacement(
            range(n_features), total
        ):
            exponents = [0] * n_features
            for index in combo:
                exponents[index] += 1
            rows.append(exponents)
    return np.array(rows, dtype=np.int64)


#: Row-chunk size for design-matrix assembly: the broadcast temporary is
#: ``chunk × terms × features`` doubles, kept a few MB at degree 6.
_DESIGN_CHUNK = 1024


def _design_matrix(Z: np.ndarray, exponents: np.ndarray) -> np.ndarray:
    phi = np.empty((len(Z), len(exponents)))
    for start in range(0, len(Z), _DESIGN_CHUNK):
        stop = min(start + _DESIGN_CHUNK, len(Z))
        phi[start:stop] = np.prod(
            Z[start:stop, None, :] ** exponents[None, :, :], axis=2
        )
    return phi


@dataclass(frozen=True)
class PolynomialRidgeModel:
    """A fitted standardise→expand→linear pipeline (pure arrays)."""

    degree: int
    ridge_lambda: float
    backend: str
    mean: np.ndarray
    scale: np.ndarray
    exponents: np.ndarray
    weights: np.ndarray

    @property
    def n_terms(self) -> int:
        return len(self.weights)

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        Z = (X - self.mean) / self.scale
        return _design_matrix(Z, self.exponents) @ self.weights

    def to_payload(self) -> dict[str, np.ndarray]:
        """The array payload persisted in a bundle npz."""
        return {
            "mean": self.mean,
            "scale": self.scale,
            "exponents": self.exponents,
            "weights": self.weights,
        }

    @classmethod
    def from_payload(
        cls,
        payload: dict,
        *,
        degree: int,
        ridge_lambda: float,
        backend: str,
    ) -> "PolynomialRidgeModel":
        return cls(
            degree=int(degree),
            ridge_lambda=float(ridge_lambda),
            backend=str(backend),
            mean=np.asarray(payload["mean"], dtype=float),
            scale=np.asarray(payload["scale"], dtype=float),
            exponents=np.asarray(payload["exponents"], dtype=np.int64),
            weights=np.asarray(payload["weights"], dtype=float),
        )


def fit_polynomial_ridge(
    X: np.ndarray,
    y: np.ndarray,
    *,
    degree: int = 3,
    ridge_lambda: float = 1e-9,
    backend: str = "numpy",
) -> PolynomialRidgeModel:
    """Fit the polynomial ridge model on ``(X, y)``.

    ``ridge_lambda`` is the per-sample penalty (the normal equations use
    ``λ·n``); the intercept is never penalised.  ``backend="sklearn"``
    requires scikit-learn and produces the same payload format.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    if X.ndim != 2:
        raise ValueError(f"X must be 2-D, got shape {X.shape}")
    if len(X) != len(y):
        raise ValueError("X and y must be aligned")
    if len(X) == 0:
        raise ValueError("cannot fit on an empty dataset")
    if degree < 1:
        raise ValueError(f"degree must be >= 1, got {degree}")
    if ridge_lambda <= 0.0:
        raise ValueError(f"ridge_lambda must be > 0, got {ridge_lambda}")
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )

    mean = X.mean(axis=0)
    deviation = X.std(axis=0)
    scale = np.where(deviation > _SCALE_FLOOR, deviation, 1.0)
    exponents = monomial_exponents(X.shape[1], degree)
    phi = _design_matrix((X - mean) / scale, exponents)

    if backend == "sklearn":
        try:
            from sklearn.linear_model import Ridge
        except ImportError:
            raise RuntimeError(
                "backend='sklearn' requested but scikit-learn is not "
                "installed; use backend='numpy' (same model, same payload)"
            ) from None
        fitter = Ridge(alpha=ridge_lambda * len(y), fit_intercept=False)
        weights = np.asarray(fitter.fit(phi, y).coef_, dtype=float)
    else:
        penalty = np.eye(phi.shape[1]) * (ridge_lambda * len(y))
        penalty[0, 0] = 0.0  # intercept stays unpenalised
        weights = np.linalg.solve(phi.T @ phi + penalty, phi.T @ y)

    return PolynomialRidgeModel(
        degree=degree,
        ridge_lambda=ridge_lambda,
        backend=backend,
        mean=mean,
        scale=scale,
        exponents=exponents,
        weights=weights,
    )
