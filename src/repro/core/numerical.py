"""Full numerical optimisation of the total power (the paper's baseline).

The paper validates Eq. 13 against a "numerical calculation from
Eqs. (1)–(6) by calculating the total power for all reasonable Vdd/Vth
couples".  This module provides that reference in three strengths:

* :func:`numerical_optimum` — the exact constrained problem reduced to one
  dimension: ``Vth(Vdd)`` from the exact Eq. 5 (no linearisation), then a
  bounded scalar minimisation of Eq. 1 over ``Vdd``.  This is the default
  reference everywhere.
* :func:`grid_optimum` — the literal 2-D sweep over ``(Vdd, Vth)`` couples
  keeping only timing-feasible points.  Slower; used to cross-check the
  1-D reduction (the 2-D optimum must sit on the zero-slack boundary).
* :func:`numerical_optimum_linearized` — same 1-D scan but on the
  *linearised* constraint (Eq. 8), isolating the linearisation's
  contribution to the closed-form error (ablation A4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from .architecture import ArchitectureParameters
from .constraint import chi_for_architecture, vth_exact, vth_linearized
from .linearization import LinearFit, paper_fit
from .optimum import OperatingPoint, OptimizationResult
from .power_model import critical_path_delay, power_breakdown
from .technology import Technology

#: Search range for the supply voltage, as a multiple of the nominal supply.
DEFAULT_VDD_SPAN = (0.05, 2.0)


@dataclass(frozen=True)
class GridResult:
    """Outcome of the 2-D grid sweep (used by Figure 1 and cross-checks)."""

    result: OptimizationResult
    vdd_grid: np.ndarray
    vth_grid: np.ndarray
    ptot: np.ndarray
    feasible: np.ndarray


def _power_tech(arch: ArchitectureParameters, tech: Technology) -> Technology:
    """Technology with the circuit's *leakage* correction applied.

    ``io_factor`` models the per-cell average off-current of the circuit
    and must only affect Eq. 1's static term — never the delay model,
    whose ``Io`` is the characterised reference current inside χ (Eq. 6).
    """
    return tech.scaled(io_factor=arch.io_factor, name=tech.name)


def _delay_tech(arch: ArchitectureParameters, tech: Technology) -> Technology:
    """Technology with the circuit's *delay* correction applied.

    ``zeta_factor`` models the average critical-path stage relative to the
    characterised gate and must only affect Eq. 4/6 — not leakage.
    """
    return tech.scaled(zeta_factor=arch.zeta_factor, name=tech.name)


def constrained_total_power(
    arch: ArchitectureParameters,
    tech: Technology,
    frequency: float,
    vdd,
    chi_value: float | None = None,
):
    """Total power along the exact zero-slack constraint, as a function of Vdd.

    Vectorised over ``vdd``; this is the curve plotted in Figure 1 (one
    curve per activity value).  Returns ``(vth, pdyn, pstat, ptot)``.
    """
    if chi_value is None:
        chi_value = chi_for_architecture(arch, tech, frequency)
    circuit_tech = _power_tech(arch, tech)
    vth = vth_exact(vdd, chi_value, tech.alpha)
    pdyn, pstat, ptot = power_breakdown(
        arch.n_cells, arch.activity, arch.capacitance, vdd, vth, frequency, circuit_tech
    )
    return vth, pdyn, pstat, ptot


def numerical_optimum(
    arch: ArchitectureParameters,
    tech: Technology,
    frequency: float,
    chi_value: float | None = None,
    vdd_span: tuple[float, float] = DEFAULT_VDD_SPAN,
) -> OptimizationResult:
    """Exact numerical optimal working point (1-D reduction).

    Parameters
    ----------
    arch, tech, frequency:
        The problem instance.
    chi_value:
        Optional pre-computed constraint coefficient; calibrated-mode
        callers pass the value recovered from a published operating point.
    vdd_span:
        Search interval as multiples of ``tech.vdd_nominal``.

    Raises
    ------
    ValueError
        If the minimiser lands on a boundary of the search interval, which
        signals an infeasible or degenerate problem rather than a real
        optimum.
    """
    if chi_value is None:
        chi_value = chi_for_architecture(arch, tech, frequency)

    lo = vdd_span[0] * tech.vdd_nominal
    hi = vdd_span[1] * tech.vdd_nominal

    def objective(vdd: float) -> float:
        _, _, _, ptot = constrained_total_power(arch, tech, frequency, vdd, chi_value)
        return float(ptot)

    solution = optimize.minimize_scalar(
        objective, bounds=(lo, hi), method="bounded", options={"xatol": 1e-7}
    )
    vdd_opt = float(solution.x)
    interval = hi - lo
    if vdd_opt - lo < 1e-4 * interval or hi - vdd_opt < 1e-4 * interval:
        raise ValueError(
            f"numerical_optimum[{arch.name}]: optimum pinned at search "
            f"boundary Vdd={vdd_opt:.4f} V — problem infeasible or span too narrow"
        )

    vth, pdyn, pstat, _ = constrained_total_power(
        arch, tech, frequency, vdd_opt, chi_value
    )
    point = OperatingPoint(
        vdd=vdd_opt,
        vth=float(vth),
        pdyn=float(pdyn),
        pstat=float(pstat),
        method="numerical-1d",
    )
    return OptimizationResult(
        architecture=arch, technology=tech, frequency=frequency, point=point
    )


def numerical_optimum_linearized(
    arch: ArchitectureParameters,
    tech: Technology,
    frequency: float,
    chi_value: float | None = None,
    fit: LinearFit | None = None,
    vdd_span: tuple[float, float] = DEFAULT_VDD_SPAN,
) -> OptimizationResult:
    """Numerical optimum on the *linearised* constraint (Eq. 8).

    Differs from :func:`numerical_optimum` only in how ``Vth(Vdd)`` is
    computed; comparing the two isolates the Eq. 7 linearisation error from
    the stationarity approximations of Eqs. 9–13 (ablation A4).
    """
    if chi_value is None:
        chi_value = chi_for_architecture(arch, tech, frequency)
    if fit is None:
        fit = paper_fit(tech.alpha)
    circuit_tech = _power_tech(arch, tech)

    lo = vdd_span[0] * tech.vdd_nominal
    hi = vdd_span[1] * tech.vdd_nominal

    def objective(vdd: float) -> float:
        vth = vth_linearized(vdd, chi_value, fit)
        _, _, ptot = power_breakdown(
            arch.n_cells,
            arch.activity,
            arch.capacitance,
            vdd,
            vth,
            frequency,
            circuit_tech,
        )
        return float(ptot)

    solution = optimize.minimize_scalar(
        objective, bounds=(lo, hi), method="bounded", options={"xatol": 1e-7}
    )
    vdd_opt = float(solution.x)
    vth_opt = float(vth_linearized(vdd_opt, chi_value, fit))
    pdyn, pstat, _ = power_breakdown(
        arch.n_cells,
        arch.activity,
        arch.capacitance,
        vdd_opt,
        vth_opt,
        frequency,
        circuit_tech,
    )
    point = OperatingPoint(
        vdd=vdd_opt,
        vth=vth_opt,
        pdyn=float(pdyn),
        pstat=float(pstat),
        method="numerical-1d-linearized",
    )
    return OptimizationResult(
        architecture=arch, technology=tech, frequency=frequency, point=point
    )


def grid_optimum(
    arch: ArchitectureParameters,
    tech: Technology,
    frequency: float,
    vdd_points: int = 241,
    vth_points: int = 241,
    vdd_range: tuple[float, float] | None = None,
    vth_range: tuple[float, float] | None = None,
) -> GridResult:
    """Literal 2-D sweep over (Vdd, Vth) couples — the paper's wording.

    Every couple whose critical-path delay exceeds the clock period is
    marked infeasible (NaN power); the optimum is the cheapest feasible
    couple.  Because total power decreases towards the zero-slack boundary,
    the grid optimum converges to :func:`numerical_optimum` as the grid is
    refined — asserted in the integration tests.
    """
    if vdd_range is None:
        vdd_range = (0.1 * tech.vdd_nominal, 1.25 * tech.vdd_nominal)
    if vth_range is None:
        vth_range = (0.0, 0.6 * tech.vdd_nominal)
    power_tech = _power_tech(arch, tech)
    delay_tech = _delay_tech(arch, tech)

    vdd_axis = np.linspace(vdd_range[0], vdd_range[1], vdd_points)
    vth_axis = np.linspace(vth_range[0], vth_range[1], vth_points)
    vdd_grid, vth_grid = np.meshgrid(vdd_axis, vth_axis, indexing="ij")

    overdrive_ok = vdd_grid > vth_grid
    delay = np.full_like(vdd_grid, np.inf)
    delay[overdrive_ok] = critical_path_delay(
        delay_tech,
        arch.logical_depth,
        vdd_grid[overdrive_ok],
        vth_grid[overdrive_ok],
    )
    feasible = delay <= 1.0 / frequency

    pdyn, pstat, ptot = power_breakdown(
        arch.n_cells,
        arch.activity,
        arch.capacitance,
        vdd_grid,
        vth_grid,
        frequency,
        power_tech,
    )
    ptot = np.where(feasible, ptot, np.nan)
    if not feasible.any():
        raise ValueError(
            f"grid_optimum[{arch.name}]: no feasible (Vdd, Vth) couple in the "
            f"sweep window — widen vdd_range or lower the frequency"
        )

    flat_index = np.nanargmin(ptot)
    i, j = np.unravel_index(flat_index, ptot.shape)
    point = OperatingPoint(
        vdd=float(vdd_grid[i, j]),
        vth=float(vth_grid[i, j]),
        pdyn=float(pdyn[i, j]),
        pstat=float(pstat[i, j]),
        method="grid-2d",
    )
    result = OptimizationResult(
        architecture=arch, technology=tech, frequency=frequency, point=point
    )
    return GridResult(
        result=result, vdd_grid=vdd_grid, vth_grid=vth_grid, ptot=ptot, feasible=feasible
    )
