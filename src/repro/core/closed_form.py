"""Closed-form optimal working point — the paper's primary contribution.

This module implements the approximation chain of Section 3:

* Eq. 9  — the optimal per-cell leakage current;
* Eq. 10 — the optimal supply voltage ``Vdd*``;
* Eq. 8  — the matching threshold voltage ``Vth*``;
* Eq. 11 / Eq. 12 — intermediate power expressions;
* Eq. 13 — the headline closed-form total power at the optimum.

All formulas assume the linearised constraint (Eq. 8, coefficients from
:mod:`repro.core.linearization`) and, except Eq. 11, the high-supply
approximation ``Vdd ≫ n·Ut/(1−χA)``.  The approximation error of the
whole chain against the exact numerical optimum is the paper's headline
<3 % claim, reproduced in ``benchmarks/bench_table1.py`` and dissected
step by step in ``benchmarks/bench_ablation_approx_chain.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .architecture import ArchitectureParameters
from .constraint import chi_for_architecture, is_feasible_linearized
from .linearization import LinearFit, paper_fit
from .optimum import OperatingPoint, OptimizationResult
from .power_model import power_breakdown
from .technology import Technology


class InfeasibleConstraintError(ValueError):
    """Raised when ``χ·A >= 1``: the circuit cannot close timing.

    In the linearised model a unit supply increase buys ``χ·A`` volts of
    threshold reduction demand; at ``χ·A >= 1`` raising ``Vdd`` never
    catches up with the speed requirement and no optimal point exists.
    """


@dataclass(frozen=True)
class ClosedFormBreakdown:
    """Every intermediate quantity of the Section 3 derivation.

    Useful for the approximation-chain ablation and for teaching examples;
    plain users should call :func:`closed_form_optimum` instead.
    """

    chi: float
    fit: LinearFit
    one_minus_chi_a: float
    leakage_current: float
    vdd: float
    vth: float
    ptot_eq11: float
    ptot_eq12: float
    ptot_eq13: float


def _require_feasible(chi_value: float, fit: LinearFit, name: str) -> float:
    if not is_feasible_linearized(chi_value, fit):
        raise InfeasibleConstraintError(
            f"{name}: chi*A = {chi_value * fit.a:.3f} >= 1 — the architecture "
            f"cannot meet timing in this technology at this frequency"
        )
    return 1.0 - chi_value * fit.a


def optimal_leakage_current(
    activity: float,
    capacitance: float,
    frequency: float,
    n_ut: float,
    chi_value: float,
    fit: LinearFit,
) -> float:
    """Optimal per-cell leakage ``Io·exp(−Vth*/(n·Ut))`` [A] (Eq. 9).

    At the optimum the leakage current per cell is *architecture- and
    technology-balanced*: ``2·a·C·f·n·Ut/(1−χA)`` — proportional to the
    switched charge per cycle and nearly independent of ``Io`` itself.
    """
    margin = _require_feasible(chi_value, fit, "optimal_leakage_current")
    return 2.0 * activity * capacitance * frequency * n_ut / margin


def optimal_vdd(
    activity: float,
    capacitance: float,
    frequency: float,
    io: float,
    n_ut: float,
    chi_value: float,
    fit: LinearFit,
) -> float:
    """Optimal supply voltage ``Vdd*`` [V] (Eq. 10).

    ``io`` is the per-cell leakage current of the circuit (the circuit's
    ``io_factor`` already applied), matching the ``Io`` of Eq. 1.
    """
    margin = _require_feasible(chi_value, fit, "optimal_vdd")
    log_argument = io * margin / (2.0 * activity * capacitance * frequency * n_ut)
    if log_argument <= 1.0:
        raise InfeasibleConstraintError(
            f"optimal_vdd: ln argument {log_argument:.3e} <= 1 implies a "
            f"non-positive optimal threshold; the leakage/switching balance "
            f"is outside the model's validity range"
        )
    return (n_ut * math.log(log_argument) + chi_value * fit.b) / margin


def optimal_vth(io: float, leakage_current: float, n_ut: float) -> float:
    """Optimal effective threshold ``Vth*`` [V] by inverting Eq. 9.

    ``Vth* = n·Ut·ln(Io / S*)`` where ``S*`` is the Eq. 9 optimal leakage
    per cell.  By construction this equals the Eq. 8 value
    ``Vdd*(1−χA) − χB`` when ``Vdd*`` comes from Eq. 10; both forms are
    computed (and asserted equal) in the test-suite.
    """
    if io <= 0.0 or leakage_current <= 0.0:
        raise ValueError("io and leakage_current must be positive")
    return n_ut * math.log(io / leakage_current)


def ptot_eq11(
    arch: ArchitectureParameters,
    frequency: float,
    n_ut: float,
    vdd: float,
    chi_value: float,
    fit: LinearFit,
) -> float:
    """Total power from Eq. 11 [W]: exact in ``Vdd`` given Eq. 9's leakage."""
    margin = _require_feasible(chi_value, fit, "ptot_eq11")
    return (
        arch.n_cells
        * arch.activity
        * arch.capacitance
        * frequency
        * vdd
        * (vdd + 2.0 * n_ut / margin)
    )


def ptot_eq12(
    arch: ArchitectureParameters,
    frequency: float,
    n_ut: float,
    vdd: float,
    chi_value: float,
    fit: LinearFit,
) -> float:
    """Total power from Eq. 12 [W]: Eq. 11 completed to a square."""
    margin = _require_feasible(chi_value, fit, "ptot_eq12")
    return (
        arch.n_cells
        * arch.activity
        * arch.capacitance
        * frequency
        * (vdd + n_ut / margin) ** 2
    )


def ptot_eq13(
    arch: ArchitectureParameters,
    tech: Technology,
    frequency: float,
    chi_value: float | None = None,
    fit: LinearFit | None = None,
) -> float:
    """The headline closed-form optimal total power [W] (Eq. 13).

    ``Ptot* ≈ [N·a·C·f/(1−χA)²] · [n·Ut·(ln(Io(1−χA)/(2aCf·nUt)) + 1) + χB]²``

    Parameters default to the paper's setup: χ from Eq. 6 with the
    architecture's ``zeta_factor``, and the Eq. 7 fit over 0.3–1.0 V.
    """
    if fit is None:
        fit = paper_fit(tech.alpha)
    if chi_value is None:
        chi_value = chi_for_architecture(arch, tech, frequency)
    margin = _require_feasible(chi_value, fit, f"ptot_eq13[{arch.name}]")

    n_ut = tech.n_ut
    io = arch.effective_io(tech)
    acf = arch.activity * arch.capacitance * frequency
    log_argument = io * margin / (2.0 * acf * n_ut)
    if log_argument <= 0.0:
        raise InfeasibleConstraintError(
            f"ptot_eq13[{arch.name}]: non-positive ln argument {log_argument:.3e}"
        )
    bracket = n_ut * (math.log(log_argument) + 1.0) + chi_value * fit.b
    return arch.n_cells * acf / margin**2 * bracket**2


def ptot_eq13_adaptive(
    arch: ArchitectureParameters,
    tech: Technology,
    frequency: float,
    chi_value: float | None = None,
    max_iterations: int = 5,
) -> tuple[float, LinearFit]:
    """Eq. 13 with a self-consistent linearisation range (extension).

    The paper fits ``A``/``B`` once over 0.3–1.0 V and implicitly assumes
    every optimum lands inside that range — true for its thirteen
    circuits, false for e.g. very deep sequential designs whose optimum
    exceeds 1 V.  This variant iterates: evaluate Eq. 10's ``Vdd*`` with
    the current fit; if it falls outside the fitted range, refit over
    ``[0.3, 1.2·Vdd*]`` and repeat.  No numerical-solver information is
    used, so the result is still a closed-form prediction.

    Returns ``(ptot, fit)`` so callers can inspect the final range.
    """
    if chi_value is None:
        chi_value = chi_for_architecture(arch, tech, frequency)
    fit = paper_fit(tech.alpha)
    for _ in range(max_iterations):
        _require_feasible(chi_value, fit, f"eq13_adaptive[{arch.name}]")
        vdd = optimal_vdd(
            arch.activity,
            arch.capacitance,
            frequency,
            arch.effective_io(tech),
            tech.n_ut,
            chi_value,
            fit,
        )
        if vdd <= fit.vdd_max * 1.02:
            break
        from .linearization import fit_vdd_root

        fit = fit_vdd_root(tech.alpha, (0.3, 1.2 * vdd))
    return ptot_eq13(arch, tech, frequency, chi_value, fit), fit


def closed_form_breakdown(
    arch: ArchitectureParameters,
    tech: Technology,
    frequency: float,
    chi_value: float | None = None,
    fit: LinearFit | None = None,
) -> ClosedFormBreakdown:
    """Evaluate the whole Section 3 chain and return every intermediate.

    The returned ``vdd``/``vth`` come from Eqs. 10 and 8; the three power
    values show how each successive approximation (Eq. 11 → 12 → 13)
    shifts the estimate.
    """
    if fit is None:
        fit = paper_fit(tech.alpha)
    if chi_value is None:
        chi_value = chi_for_architecture(arch, tech, frequency)
    margin = _require_feasible(chi_value, fit, f"closed_form[{arch.name}]")

    n_ut = tech.n_ut
    io = arch.effective_io(tech)
    leakage = optimal_leakage_current(
        arch.activity, arch.capacitance, frequency, n_ut, chi_value, fit
    )
    vdd = optimal_vdd(
        arch.activity, arch.capacitance, frequency, io, n_ut, chi_value, fit
    )
    vth = vdd * margin - chi_value * fit.b  # Eq. 8 at Vdd*
    return ClosedFormBreakdown(
        chi=chi_value,
        fit=fit,
        one_minus_chi_a=margin,
        leakage_current=leakage,
        vdd=vdd,
        vth=vth,
        ptot_eq11=ptot_eq11(arch, frequency, n_ut, vdd, chi_value, fit),
        ptot_eq12=ptot_eq12(arch, frequency, n_ut, vdd, chi_value, fit),
        ptot_eq13=ptot_eq13(arch, tech, frequency, chi_value, fit),
    )


def closed_form_optimum(
    arch: ArchitectureParameters,
    tech: Technology,
    frequency: float,
    chi_value: float | None = None,
    fit: LinearFit | None = None,
) -> OptimizationResult:
    """Closed-form optimal working point as an :class:`OptimizationResult`.

    ``Vdd*`` comes from Eq. 10 and ``Vth*`` from Eq. 8; the dynamic/static
    split is evaluated with the exact Eq. 1 at that point, while
    ``point.ptot`` is *not* forced to the Eq. 13 value (use
    :func:`ptot_eq13` for the table column).  The small difference between
    the two is precisely the content of the approximation-chain ablation.
    """
    breakdown = closed_form_breakdown(arch, tech, frequency, chi_value, fit)
    scaled_tech = tech.scaled(io_factor=arch.io_factor, name=tech.name)
    pdyn, pstat, _ = power_breakdown(
        arch.n_cells,
        arch.activity,
        arch.capacitance,
        breakdown.vdd,
        breakdown.vth,
        frequency,
        scaled_tech,
    )
    point = OperatingPoint(
        vdd=breakdown.vdd,
        vth=breakdown.vth,
        pdyn=float(pdyn),
        pstat=float(pstat),
        method="closed-form",
    )
    return OptimizationResult(
        architecture=arch, technology=tech, frequency=frequency, point=point
    )
