"""Linearisation of ``Vdd**(1/alpha)`` (paper Eq. 7 and Figure 2).

The zero-slack constraint (Eq. 5) ties ``Vth`` to ``Vdd`` through the term
``Vdd**(1/alpha)``, which makes the power stationarity condition analytically
intractable.  The paper observes (Figure 2) that over a practical supply
range the curve is almost straight and replaces it by

    ``Vdd**(1/alpha) ≈ A·Vdd + B``                              (Eq. 7)

where ``A`` and ``B`` are fitted over the expected operating range
(0.3–1.0 V in the paper).  This module provides the fit, its error metrics,
and the sampled curves needed to regenerate Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: The fitting range used for every number in the paper (Section 4).
PAPER_FIT_RANGE = (0.3, 1.0)

#: The display range of Figure 2.
FIGURE2_RANGE = (0.3, 0.9)


@dataclass(frozen=True)
class LinearFit:
    """Result of fitting ``Vdd**(1/alpha) ≈ A·Vdd + B`` over a voltage range.

    Attributes
    ----------
    a, b:
        The fitted slope ``A`` and intercept ``B`` of Eq. 7.
    alpha:
        Alpha-power exponent the fit was computed for.
    vdd_min, vdd_max:
        Fitting range bounds [V].
    max_abs_error, rms_error:
        Absolute-error metrics of the fit inside the range [V].
    """

    a: float
    b: float
    alpha: float
    vdd_min: float
    vdd_max: float
    max_abs_error: float
    rms_error: float

    def __call__(self, vdd):
        """Evaluate the linear approximation ``A·Vdd + B``."""
        return self.a * np.asarray(vdd, dtype=float) + self.b

    def exact(self, vdd):
        """Evaluate the exact ``Vdd**(1/alpha)`` the fit approximates."""
        return np.power(np.asarray(vdd, dtype=float), 1.0 / self.alpha)

    def error(self, vdd):
        """Signed approximation error ``(A·Vdd + B) − Vdd**(1/alpha)``."""
        return self(vdd) - self.exact(vdd)


def fit_vdd_root(
    alpha: float,
    vdd_range: tuple[float, float] = PAPER_FIT_RANGE,
    samples: int = 512,
) -> LinearFit:
    """Fit Eq. 7's ``A`` and ``B`` by least squares over ``vdd_range``.

    Parameters
    ----------
    alpha:
        Alpha-power-law exponent (``1 <= alpha <= 2`` for real devices,
        although any positive value is accepted for sweeps).
    vdd_range:
        Inclusive ``(low, high)`` fitting range in volts.  The paper uses
        0.3–1.0 V for the Table 1/3/4 numbers and 0.3–0.9 V in Figure 2.
    samples:
        Number of uniformly spaced sample points used for the fit.

    Returns
    -------
    LinearFit
        Fit coefficients and error metrics.

    >>> fit = fit_vdd_root(1.86)
    >>> 0.6 < fit.a < 0.75 and 0.3 < fit.b < 0.4
    True
    """
    low, high = vdd_range
    if not 0.0 < low < high:
        raise ValueError(f"need 0 < low < high, got {vdd_range}")
    if alpha <= 0.0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if samples < 2:
        raise ValueError(f"need at least 2 samples, got {samples}")

    vdd = np.linspace(low, high, samples)
    target = np.power(vdd, 1.0 / alpha)
    design = np.column_stack([vdd, np.ones_like(vdd)])
    (a, b), *_ = np.linalg.lstsq(design, target, rcond=None)

    residual = (a * vdd + b) - target
    return LinearFit(
        a=float(a),
        b=float(b),
        alpha=float(alpha),
        vdd_min=float(low),
        vdd_max=float(high),
        max_abs_error=float(np.max(np.abs(residual))),
        rms_error=float(np.sqrt(np.mean(residual**2))),
    )


def paper_fit(alpha: float) -> LinearFit:
    """Eq. 7 fit over the paper's published 0.3–1.0 V range."""
    return fit_vdd_root(alpha, PAPER_FIT_RANGE)


def figure2_curves(
    alpha: float = 1.5,
    vdd_range: tuple[float, float] = FIGURE2_RANGE,
    samples: int = 61,
) -> dict[str, np.ndarray]:
    """Sample the two curves of Figure 2 (exact power law and its fit).

    Returns a dict with keys ``vdd``, ``exact``, ``linear`` and ``error``,
    each a numpy array of length ``samples``.  Figure 2 of the paper uses
    ``alpha = 1.5`` over 0.3–0.9 V.
    """
    fit = fit_vdd_root(alpha, vdd_range, samples=max(samples, 64))
    vdd = np.linspace(vdd_range[0], vdd_range[1], samples)
    return {
        "vdd": vdd,
        "exact": fit.exact(vdd),
        "linear": fit(vdd),
        "error": fit.error(vdd),
    }
