"""Sensitivity analysis and parameter sweeps around the optimal point.

Eq. 13 makes the optimal power an explicit function of the architecture
vector ``(N, a, C, LD)`` and the technology vector ``(Io, ζ, α, n)``.
This module quantifies *how strongly* each parameter matters:

* :func:`elasticity` — logarithmic derivatives ``d ln Ptot* / d ln x``
  (an elasticity of 1 means "10 % more x costs 10 % more power");
* :func:`sweep` — one-dimensional sweeps of any architecture or
  technology field, returning aligned numpy arrays ready for tabulation;
* :func:`frequency_sweep` — the Section 4 "sequential circuits only pay
  off at very low data frequency" experiment (ablation A3).

Everything uses the closed form by default (it is differentiable and
fast) but accepts ``solver="numerical"`` for verification.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from .architecture import ArchitectureParameters
from .closed_form import InfeasibleConstraintError, ptot_eq13
from .numerical import numerical_optimum
from .technology import Technology

#: Architecture fields that may be swept / differentiated.
ARCHITECTURE_FIELDS = ("n_cells", "activity", "logical_depth", "capacitance")

#: Technology fields that may be swept / differentiated.
TECHNOLOGY_FIELDS = ("io", "zeta", "alpha", "n")


def _solve(
    arch: ArchitectureParameters,
    tech: Technology,
    frequency: float,
    solver: str,
) -> float:
    if solver == "closed-form":
        return ptot_eq13(arch, tech, frequency)
    if solver == "numerical":
        return numerical_optimum(arch, tech, frequency).ptot
    raise ValueError(f"unknown solver {solver!r}; use 'closed-form' or 'numerical'")


def _with_field(
    arch: ArchitectureParameters, tech: Technology, field: str, value: float
) -> tuple[ArchitectureParameters, Technology]:
    if field in ARCHITECTURE_FIELDS:
        return arch.with_updates(**{field: value}), tech
    if field in TECHNOLOGY_FIELDS:
        return arch, replace(tech, **{field: value})
    known = ARCHITECTURE_FIELDS + TECHNOLOGY_FIELDS
    raise ValueError(f"unknown field {field!r}; known fields: {known}")


def _field_value(arch: ArchitectureParameters, tech: Technology, field: str) -> float:
    if field in ARCHITECTURE_FIELDS:
        return getattr(arch, field)
    if field in TECHNOLOGY_FIELDS:
        return getattr(tech, field)
    known = ARCHITECTURE_FIELDS + TECHNOLOGY_FIELDS
    raise ValueError(f"unknown field {field!r}; known fields: {known}")


def elasticity(
    arch: ArchitectureParameters,
    tech: Technology,
    frequency: float,
    field: str,
    relative_step: float = 1e-4,
    solver: str = "closed-form",
) -> float:
    """Elasticity ``d ln Ptot* / d ln field`` by central finite differences.

    >>> # activity enters Eq. 13 almost linearly (prefactor) minus a weak
    >>> # logarithmic correction, so its elasticity is slightly below 1.
    """
    base = _field_value(arch, tech, field)
    up_arch, up_tech = _with_field(arch, tech, field, base * (1.0 + relative_step))
    dn_arch, dn_tech = _with_field(arch, tech, field, base * (1.0 - relative_step))
    p_up = _solve(up_arch, up_tech, frequency, solver)
    p_dn = _solve(dn_arch, dn_tech, frequency, solver)
    # d ln P / d ln x with the exact log-step ln((1+s)/(1-s)).
    log_step = np.log1p(relative_step) - np.log1p(-relative_step)
    return float((np.log(p_up) - np.log(p_dn)) / log_step)


def elasticities(
    arch: ArchitectureParameters,
    tech: Technology,
    frequency: float,
    fields: tuple[str, ...] = ARCHITECTURE_FIELDS + TECHNOLOGY_FIELDS,
    solver: str = "closed-form",
) -> dict[str, float]:
    """Elasticity of the optimal power w.r.t. every requested field."""
    return {
        field: elasticity(arch, tech, frequency, field, solver=solver)
        for field in fields
    }


def sweep(
    arch: ArchitectureParameters,
    tech: Technology,
    frequency: float,
    field: str,
    values,
    solver: str = "closed-form",
) -> dict[str, np.ndarray]:
    """Sweep one field; returns ``{'values': ..., 'ptot': ...}`` arrays.

    Infeasible points (``χA >= 1``) yield NaN rather than aborting the
    sweep, so crossover plots can extend into the infeasible region.
    """
    values = np.asarray(list(values), dtype=float)
    powers = np.empty_like(values)
    for index, value in enumerate(values):
        swept_arch, swept_tech = _with_field(arch, tech, field, float(value))
        try:
            powers[index] = _solve(swept_arch, swept_tech, frequency, solver)
        except (InfeasibleConstraintError, ValueError):
            powers[index] = np.nan
    return {"values": values, "ptot": powers}


def frequency_sweep(
    architectures: list[ArchitectureParameters],
    tech: Technology,
    frequencies,
    solver: str = "closed-form",
) -> dict[str, np.ndarray]:
    """Optimal power of several architectures across a frequency range.

    Returns ``{'frequency': array, '<arch name>': array, ...}``; NaN marks
    frequencies an architecture cannot reach.  Used by the crossover
    ablation (sequential vs. parallel, DESIGN.md A3).
    """
    frequencies = np.asarray(list(frequencies), dtype=float)
    table: dict[str, np.ndarray] = {"frequency": frequencies}
    for arch in architectures:
        powers = np.empty_like(frequencies)
        for index, frequency in enumerate(frequencies):
            try:
                powers[index] = _solve(arch, tech, float(frequency), solver)
            except (InfeasibleConstraintError, ValueError):
                powers[index] = np.nan
        table[arch.name] = powers
    return table


def crossover_frequency(
    arch_a: ArchitectureParameters,
    arch_b: ArchitectureParameters,
    tech: Technology,
    f_low: float,
    f_high: float,
    solver: str = "closed-form",
    tolerance: float = 1e-3,
) -> float | None:
    """Frequency where two architectures' optimal powers cross, if any.

    Bisection on ``Ptot_a(f) − Ptot_b(f)`` over ``[f_low, f_high]``;
    returns None when the sign does not change on the interval (no
    crossover, or one side infeasible).
    """

    def difference(frequency: float) -> float:
        return _solve(arch_a, tech, frequency, solver) - _solve(
            arch_b, tech, frequency, solver
        )

    try:
        d_low, d_high = difference(f_low), difference(f_high)
    except (InfeasibleConstraintError, ValueError):
        return None
    if d_low == 0.0:
        return f_low
    if d_high == 0.0:
        return f_high
    if np.sign(d_low) == np.sign(d_high):
        return None

    lo, hi = f_low, f_high
    while (hi - lo) / hi > tolerance:
        mid = 0.5 * (lo + hi)
        try:
            d_mid = difference(mid)
        except (InfeasibleConstraintError, ValueError):
            return None
        if np.sign(d_mid) == np.sign(d_low):
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
