"""Optimal working point under practical voltage bounds (extension).

The paper assumes "Vdd and Vth can be freely (and precisely) modified".
Real processes cap the threshold voltage (no flavour offers arbitrarily
high Vth) and practical designs bound the supply.  Those caps change the
selection story qualitatively: with *free* Vth the optimum always
re-balances leakage against switching (Eq. 9) and a small-but-busy
circuit (the sequential multiplier) never beats a large-but-idle one —
but once Vth saturates at ``vth_max``, leakage becomes proportional to
cell count and the small circuit wins at low frequency, which is exactly
the regime the paper's Section 4 prose ("unless the circuits have to
work at a very low data frequency") appeals to.

:func:`bounded_optimum` minimises Eq. 1 over ``Vdd`` with

    ``Vth(Vdd) = min(Vdd − χ·Vdd^(1/α), vth_max)``

(the timing constraint still holds — a capped threshold only means
*positive slack*, never negative) and optional ``vdd_bounds`` clamps.
"""

from __future__ import annotations

import numpy as np
from scipy import optimize

from .architecture import ArchitectureParameters
from .constraint import chi_for_architecture, vth_exact
from .numerical import _power_tech
from .optimum import OperatingPoint, OptimizationResult
from .power_model import power_breakdown
from .technology import Technology


def bounded_constrained_power(
    arch: ArchitectureParameters,
    tech: Technology,
    frequency: float,
    vdd,
    vth_max: float | None = None,
    chi_value: float | None = None,
):
    """Power along the timing constraint with a threshold ceiling.

    Vectorised over ``vdd``; returns ``(vth, pdyn, pstat, ptot)`` where
    ``vth`` is the *applied* threshold (ceiling included).
    """
    if chi_value is None:
        chi_value = chi_for_architecture(arch, tech, frequency)
    vth = vth_exact(vdd, chi_value, tech.alpha)
    if vth_max is not None:
        vth = np.minimum(vth, vth_max)
    pdyn, pstat, ptot = power_breakdown(
        arch.n_cells,
        arch.activity,
        arch.capacitance,
        vdd,
        vth,
        frequency,
        _power_tech(arch, tech),
    )
    return vth, pdyn, pstat, ptot


def bounded_optimum(
    arch: ArchitectureParameters,
    tech: Technology,
    frequency: float,
    vth_max: float | None = None,
    vdd_bounds: tuple[float, float] | None = None,
    chi_value: float | None = None,
) -> OptimizationResult:
    """Optimal working point with practical voltage caps.

    Parameters
    ----------
    vth_max:
        Highest threshold the process can realise (e.g. the flavour's
        nominal Vth0 plus the available back-bias range).  None = the
        paper's unbounded assumption.
    vdd_bounds:
        Allowed supply window in volts; defaults to
        ``(0.05, 2.0) × vdd_nominal`` like the unbounded solver.

    With no caps this reduces exactly to
    :func:`repro.core.numerical.numerical_optimum` (tested).
    """
    if chi_value is None:
        chi_value = chi_for_architecture(arch, tech, frequency)
    if vdd_bounds is None:
        vdd_bounds = (0.05 * tech.vdd_nominal, 2.0 * tech.vdd_nominal)
    lo, hi = vdd_bounds
    if not 0.0 < lo < hi:
        raise ValueError(f"need 0 < lo < hi for vdd_bounds, got {vdd_bounds}")

    def objective(vdd: float) -> float:
        _, _, _, ptot = bounded_constrained_power(
            arch, tech, frequency, vdd, vth_max, chi_value
        )
        return float(ptot)

    solution = optimize.minimize_scalar(
        objective, bounds=(lo, hi), method="bounded", options={"xatol": 1e-7}
    )
    vdd_opt = float(solution.x)
    # Unlike the unbounded solver, landing on a *bound* is a legitimate
    # answer here (the cap is active); only NaN/inf results are errors.
    if not np.isfinite(objective(vdd_opt)):
        raise ValueError(
            f"bounded_optimum[{arch.name}]: no finite power in the supply window"
        )
    # A boundary optimum at the supply cap means the window binds.
    if hi - vdd_opt < 1e-6 * (hi - lo):
        vdd_opt = hi
    if vdd_opt - lo < 1e-6 * (hi - lo):
        vdd_opt = lo

    vth, pdyn, pstat, _ = bounded_constrained_power(
        arch, tech, frequency, vdd_opt, vth_max, chi_value
    )
    point = OperatingPoint(
        vdd=vdd_opt,
        vth=float(vth),
        pdyn=float(pdyn),
        pstat=float(pstat),
        method="numerical-1d-bounded",
    )
    return OptimizationResult(
        architecture=arch, technology=tech, frequency=frequency, point=point
    )


def vth_ceiling_is_active(
    arch: ArchitectureParameters,
    tech: Technology,
    frequency: float,
    vth_max: float,
) -> bool:
    """True when the cap binds at the bounded optimum.

    At high frequency the timing constraint keeps Vth below the cap and
    the bounded and unbounded optima coincide; at low frequency the cap
    becomes the binding constraint and leakage stops shrinking.
    """
    result = bounded_optimum(arch, tech, frequency, vth_max=vth_max)
    chi_value = chi_for_architecture(arch, tech, frequency)
    unconstrained_vth = float(vth_exact(result.point.vdd, chi_value, tech.alpha))
    return unconstrained_vth > vth_max - 1e-9
