"""Architecture-level circuit summaries (the inputs to Eq. 13).

The paper's whole methodology rests on reducing a gate-level circuit to a
handful of effective parameters: cell count ``N``, activity ``a``,
equivalent per-cell capacitance ``C``, effective logical depth ``LDeff`` and
(implicitly, through the averages-per-cell definition of Section 2) a
per-cell leakage current that may deviate from the technology's
characterised ``Io``.  :class:`ArchitectureParameters` is that summary.

Two deviations-from-``Technology`` knobs are provided because the paper
itself notes that *"architectures with different cells distributions could
present slightly different parameters even for the same technology"*:

* ``io_factor`` — the circuit's average per-cell leakage relative to the
  technology's characterised ``Io`` (a full-adder-heavy circuit leaks more
  per cell than an inverter);
* ``zeta_factor`` — the average critical-path stage delay coefficient
  relative to the characterised ``ζ``.

Both default to 1.0, which recovers the paper's plain Eq. 6 / Eq. 13.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .technology import Technology


@dataclass(frozen=True)
class ArchitectureParameters:
    """Effective parameters of one circuit implementation.

    Attributes
    ----------
    name:
        Human-readable identifier (e.g. ``"RCA hor.pipe2"``).
    n_cells:
        Cell count ``N`` of Eq. 1.
    activity:
        Average activity ``a`` per cell per *throughput* clock cycle,
        glitches included.  May exceed 1 for sequential circuits whose
        internal clock runs faster than the data clock (paper Section 4).
    logical_depth:
        Effective logical depth ``LDeff``: the number of characterised gate
        delays that must fit into one throughput period.  Parallelised
        circuits divide their internal depth by the replication factor;
        sequential circuits multiply theirs by the cycles per result.
    capacitance:
        Equivalent switched capacitance per cell ``C`` [F] (short-circuit
        power lumped in, per Section 2).
    area:
        Layout area [µm²]; informative only (Table 1 column).
    io_factor, zeta_factor:
        Per-circuit corrections to the technology's ``Io`` and ``ζ``
        (see module docstring).
    """

    name: str
    n_cells: float
    activity: float
    logical_depth: float
    capacitance: float
    area: float = 0.0
    io_factor: float = 1.0
    zeta_factor: float = 1.0

    def __post_init__(self) -> None:
        for attribute in ("n_cells", "activity", "logical_depth", "capacitance"):
            value = getattr(self, attribute)
            if value <= 0.0:
                raise ValueError(f"{attribute} must be positive, got {value}")
        for attribute in ("io_factor", "zeta_factor"):
            value = getattr(self, attribute)
            if value <= 0.0:
                raise ValueError(f"{attribute} must be positive, got {value}")
        if self.area < 0.0:
            raise ValueError(f"area must be non-negative, got {self.area}")

    def effective_io(self, tech: Technology) -> float:
        """Per-cell average leakage current for this circuit [A]."""
        return tech.io * self.io_factor

    def effective_zeta(self, tech: Technology) -> float:
        """Average critical-path stage delay coefficient for this circuit [F]."""
        return tech.zeta * self.zeta_factor

    def renamed(self, name: str) -> "ArchitectureParameters":
        """Copy with a different display name (used by transform helpers)."""
        return replace(self, name=name)

    def with_updates(self, **changes) -> "ArchitectureParameters":
        """Copy with arbitrary field updates (thin wrapper over ``replace``)."""
        return replace(self, **changes)

    def switched_capacitance(self) -> float:
        """Total switched capacitance per cycle ``N·a·C`` [F].

        This is the quantity dynamic power is proportional to and a useful
        scalar when comparing architectures at equal voltage.
        """
        return self.n_cells * self.activity * self.capacitance

    def describe(self) -> str:
        """One-line summary used by example scripts and reports."""
        return (
            f"{self.name}: N={self.n_cells:.0f}, a={self.activity:.4f}, "
            f"LDeff={self.logical_depth:g}, C={self.capacitance:.3e} F"
        )
