"""Energy-per-operation analysis and the minimum-energy point (extension).

The paper minimises *power at fixed frequency*.  A battery-powered system
asks the dual question: how much **energy per operation** does the
optimal working point cost, and does slowing down always help?

It does not — in either regime, and for two different reasons:

* **free Vth** (the paper's assumption): Eq. 10 makes the optimal supply
  grow like ``n·Ut·ln(1/f)`` as the clock slows (the balanced leakage of
  Eq. 9 shrinks with ``f``, so the threshold — and with it the supply —
  must climb).  Dynamic energy per op therefore *rises* logarithmically
  at low frequency, and an interior minimum-energy point (MEP) exists
  even with ideal threshold control;
* **capped Vth** (:mod:`repro.core.bounded`): once the ceiling binds,
  leakage stops shrinking and integrates over the ever-longer cycle —
  the low-frequency upturn becomes catastrophic (hundreds of pJ/op
  instead of a gentle logarithm) and the MEP sharpens into the classic
  sub-threshold-design picture.

These helpers expose both regimes; the benchmark ``bench_energy.py``
contrasts them quantitatively.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import optimize

from .architecture import ArchitectureParameters
from .bounded import bounded_optimum
from .optimum import OptimizationResult
from .technology import Technology


@dataclass(frozen=True)
class EnergyPoint:
    """Energy bookkeeping of one optimal working point."""

    frequency: float
    result: OptimizationResult

    @property
    def energy_per_op(self) -> float:
        """Total energy per operation ``Ptot*/f`` [J]."""
        return self.result.ptot / self.frequency

    @property
    def dynamic_energy_per_op(self) -> float:
        """Switching energy per operation [J]."""
        return self.result.point.pdyn / self.frequency

    @property
    def leakage_energy_per_op(self) -> float:
        """Leakage energy integrated over one operation [J]."""
        return self.result.point.pstat / self.frequency

    def describe(self) -> str:
        return (
            f"f={self.frequency / 1e6:g} MHz: {self.energy_per_op * 1e12:.2f} pJ/op "
            f"(dyn {self.dynamic_energy_per_op * 1e12:.2f}, "
            f"leak {self.leakage_energy_per_op * 1e12:.2f})"
        )


def energy_point(
    arch: ArchitectureParameters,
    tech: Technology,
    frequency: float,
    vth_max: float | None = None,
) -> EnergyPoint:
    """Energy per operation at the (optionally bounded) optimal point."""
    result = bounded_optimum(arch, tech, frequency, vth_max=vth_max)
    return EnergyPoint(frequency=frequency, result=result)


def energy_sweep(
    arch: ArchitectureParameters,
    tech: Technology,
    frequencies,
    vth_max: float | None = None,
) -> list[EnergyPoint]:
    """Energy per operation across a frequency range."""
    return [
        energy_point(arch, tech, float(frequency), vth_max=vth_max)
        for frequency in np.asarray(list(frequencies), dtype=float)
    ]


def minimum_energy_point(
    arch: ArchitectureParameters,
    tech: Technology,
    f_low: float,
    f_high: float,
    vth_max: float,
) -> EnergyPoint:
    """The frequency minimising energy per operation under a Vth ceiling.

    Scalar minimisation over ``log f`` (the MEP spans decades).  Raises
    ValueError when the minimum sits at the search boundary — either the
    window is too narrow or the ceiling never becomes active (in which
    case no interior MEP exists, as in the paper's unbounded model).
    """
    if not 0.0 < f_low < f_high:
        raise ValueError(f"need 0 < f_low < f_high, got {(f_low, f_high)}")

    def objective(log_frequency: float) -> float:
        frequency = math.exp(log_frequency)
        return energy_point(arch, tech, frequency, vth_max=vth_max).energy_per_op

    solution = optimize.minimize_scalar(
        objective,
        bounds=(math.log(f_low), math.log(f_high)),
        method="bounded",
        options={"xatol": 1e-4},
    )
    log_f = float(solution.x)
    span = math.log(f_high) - math.log(f_low)
    if log_f - math.log(f_low) < 1e-3 * span or math.log(f_high) - log_f < 1e-3 * span:
        raise ValueError(
            f"minimum_energy_point[{arch.name}]: minimum pinned at the "
            f"search boundary (f = {math.exp(log_f):.3g} Hz) — widen the "
            f"window or check that the Vth ceiling is reachable"
        )
    return energy_point(arch, tech, math.exp(log_f), vth_max=vth_max)
