"""Analytical core: the paper's model, its optimum, and selection tools.

This package is pure model code (numpy/scipy only, no netlist machinery)
implementing Sections 2–5 of Schuster et al., DATE 2006.
"""

from .architecture import ArchitectureParameters
from .bounded import (
    bounded_constrained_power,
    bounded_optimum,
    vth_ceiling_is_active,
)
from .calibration import PublishedRow, calibrate_row, calibrate_rows
from .closed_form import (
    ClosedFormBreakdown,
    InfeasibleConstraintError,
    closed_form_breakdown,
    closed_form_optimum,
    ptot_eq13,
    ptot_eq13_adaptive,
)
from .constants import DEFAULT_TEMPERATURE, UT_300K, thermal_voltage
from .energy import EnergyPoint, energy_point, energy_sweep, minimum_energy_point
from .constraint import (
    chi,
    chi_for_architecture,
    chi_from_operating_point,
    is_feasible_linearized,
    vth_exact,
    vth_linearized,
)
from .linearization import LinearFit, fit_vdd_root, paper_fit
from .numerical import (
    GridResult,
    constrained_total_power,
    grid_optimum,
    numerical_optimum,
    numerical_optimum_linearized,
)
from .optimum import OperatingPoint, OptimizationResult, approximation_error_percent
from .power_model import (
    critical_path_delay,
    dynamic_power,
    gate_delay,
    max_frequency,
    on_current,
    power_breakdown,
    static_power,
    total_power,
)
from .sensitivity import (
    crossover_frequency,
    elasticities,
    elasticity,
    frequency_sweep,
    sweep,
)
from .technology import (
    ST_CMOS09_FLAVOURS,
    ST_CMOS09_HS,
    ST_CMOS09_LL,
    ST_CMOS09_ULL,
    Technology,
    flavour,
    flavour_line,
)
from .transforms import (
    DIAGONAL_PIPELINE,
    HORIZONTAL_PIPELINE,
    PARALLELIZATION,
    SEQUENTIALIZATION,
    ParallelizationModel,
    PipelineModel,
    SequentializationModel,
    parallelize,
    pipeline,
    sequentialize,
)

#: Deprecated selection shims, resolved lazily (PEP 562) so that plain
#: ``import repro`` stays silent and only actual use of the old
#: selection API triggers repro.core.selection's DeprecationWarning.
_SELECTION_EXPORTS = (
    "Candidate",
    "best_architecture",
    "best_technology",
    "evaluate_candidates",
    "rank_architectures",
    "rank_technologies",
    "selection_matrix",
)


def __getattr__(name: str):
    if name in _SELECTION_EXPORTS:
        from . import selection

        return getattr(selection, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ArchitectureParameters",
    "ClosedFormBreakdown",
    "DEFAULT_TEMPERATURE",
    "DIAGONAL_PIPELINE",
    "EnergyPoint",
    "GridResult",
    "HORIZONTAL_PIPELINE",
    "InfeasibleConstraintError",
    "LinearFit",
    "OperatingPoint",
    "OptimizationResult",
    "PARALLELIZATION",
    "ParallelizationModel",
    "PipelineModel",
    "PublishedRow",
    "SEQUENTIALIZATION",
    "ST_CMOS09_FLAVOURS",
    "ST_CMOS09_HS",
    "ST_CMOS09_LL",
    "ST_CMOS09_ULL",
    "SequentializationModel",
    "Technology",
    "UT_300K",
    "approximation_error_percent",
    "bounded_constrained_power",
    "bounded_optimum",
    "calibrate_row",
    "calibrate_rows",
    "chi",
    "chi_for_architecture",
    "chi_from_operating_point",
    "closed_form_breakdown",
    "closed_form_optimum",
    "constrained_total_power",
    "critical_path_delay",
    "crossover_frequency",
    "dynamic_power",
    "elasticities",
    "elasticity",
    "energy_point",
    "energy_sweep",
    "fit_vdd_root",
    "flavour",
    "flavour_line",
    "frequency_sweep",
    "gate_delay",
    "grid_optimum",
    "is_feasible_linearized",
    "max_frequency",
    "minimum_energy_point",
    "numerical_optimum",
    "numerical_optimum_linearized",
    "on_current",
    "paper_fit",
    "parallelize",
    "pipeline",
    "power_breakdown",
    "ptot_eq13",
    "ptot_eq13_adaptive",
    "sequentialize",
    "static_power",
    "sweep",
    "thermal_voltage",
    "total_power",
    "vth_ceiling_is_active",
    "vth_exact",
    "vth_linearized",
]
