"""Result containers for optimal-working-point computations.

Both the numerical optimiser (:mod:`repro.core.numerical`) and the
closed-form solver (:mod:`repro.core.closed_form`) return
:class:`OperatingPoint` instances so downstream code (tables, benches,
selection utilities) can treat them interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass

from .architecture import ArchitectureParameters
from .technology import Technology


@dataclass(frozen=True)
class OperatingPoint:
    """A fully evaluated ``(Vdd, Vth)`` working point.

    Attributes
    ----------
    vdd, vth:
        Supply and *effective* threshold voltage [V].
    pdyn, pstat:
        Dynamic and static power at the point [W].
    method:
        Provenance tag, e.g. ``"numerical-1d"`` or ``"eq13"``.
    """

    vdd: float
    vth: float
    pdyn: float
    pstat: float
    method: str = ""

    @property
    def ptot(self) -> float:
        """Total power ``Pdyn + Pstat`` [W]."""
        return self.pdyn + self.pstat

    @property
    def dynamic_static_ratio(self) -> float:
        """``Pdyn/Pstat`` — the ratio annotated on the paper's Figure 1."""
        return self.pdyn / self.pstat

    @property
    def static_fraction(self) -> float:
        """Share of leakage in the total power, in [0, 1]."""
        return self.pstat / self.ptot

    def describe(self) -> str:
        """One-line summary in the units Table 1 uses (volts / microwatts)."""
        return (
            f"Vdd={self.vdd:.3f} V, Vth={self.vth:.3f} V, "
            f"Pdyn={self.pdyn * 1e6:.2f} uW, Pstat={self.pstat * 1e6:.2f} uW, "
            f"Ptot={self.ptot * 1e6:.2f} uW"
        )


@dataclass(frozen=True)
class OptimizationResult:
    """An :class:`OperatingPoint` bound to the problem it solves."""

    architecture: ArchitectureParameters
    technology: Technology
    frequency: float
    point: OperatingPoint

    @property
    def ptot(self) -> float:
        """Total power at the optimum [W] (shortcut to ``point.ptot``)."""
        return self.point.ptot

    def describe(self) -> str:
        """Human-readable one-liner used by examples and reports."""
        return (
            f"{self.architecture.name} @ {self.frequency / 1e6:g} MHz "
            f"on {self.technology.name}: {self.point.describe()}"
        )


def approximation_error_percent(reference_watts: float, approx_watts: float) -> float:
    """Approximation error in percent, with the paper's sign convention.

    Table 1 reports ``Err = (Ptot_numerical − Ptot_eq13)/Ptot_numerical``
    in percent, so an over-estimating Eq. 13 yields a *negative* error.
    """
    if reference_watts <= 0.0:
        raise ValueError(f"reference power must be positive, got {reference_watts}")
    return 100.0 * (reference_watts - approx_watts) / reference_watts
