"""Technology parameter sets (paper Section 2 and Table 2).

A :class:`Technology` bundles every process-dependent quantity the paper's
model needs:

* ``io`` — average off-current per characterised cell at ``Vgs = Vth`` [A]
  (the ``Io`` of Eqs. 1, 2 and 13);
* ``zeta`` — delay coefficient of Eq. 4 [F];
* ``alpha`` — alpha-power-law exponent of Eq. 2;
* ``n`` — weak-inversion slope factor of Eq. 1;
* ``vdd_nominal`` / ``vth0_nominal`` — the nominal operating point of the
  flavour (Table 2);
* ``eta`` — DIBL coefficient of Eq. 3 (``Vth = Vth0 − η·Vdd``);
* ``temperature`` — junction temperature used for ``Ut``.

The three ST Microelectronics CMOS09 (0.13 µm) flavours from Table 2 are
shipped as module-level constants: :data:`ST_CMOS09_LL`,
:data:`ST_CMOS09_HS` and :data:`ST_CMOS09_ULL`.

Table 2's ``ζ`` values are the published inverter-chain fits.  As
documented in DESIGN.md, they are *not* mutually consistent with the
Table 1 operating points under the paper's own Eq. 6, so the native
(netlist-driven) flow characterises its own ``ζ``; the published values
remain available for the calibrated reproduction and for Table 2 itself.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .constants import DEFAULT_TEMPERATURE, thermal_voltage


@dataclass(frozen=True)
class Technology:
    """Process parameters of one technology flavour (paper Table 2).

    Instances are immutable; derive variants with :meth:`scaled` or
    :func:`dataclasses.replace`.
    """

    name: str
    io: float
    zeta: float
    alpha: float
    n: float
    vdd_nominal: float
    vth0_nominal: float
    eta: float = 0.0
    temperature: float = DEFAULT_TEMPERATURE

    def __post_init__(self) -> None:
        for attribute in ("io", "zeta", "n", "vdd_nominal", "temperature"):
            value = getattr(self, attribute)
            if value <= 0.0:
                raise ValueError(f"{attribute} must be positive, got {value}")
        if not 1.0 <= self.alpha <= 2.0:
            raise ValueError(
                f"alpha must lie in [1, 2] (velocity-saturated short channel "
                f"to long-channel square law), got {self.alpha}"
            )
        if self.eta < 0.0:
            raise ValueError(f"eta (DIBL) must be non-negative, got {self.eta}")
        if self.vth0_nominal < 0.0:
            raise ValueError(
                f"vth0_nominal must be non-negative, got {self.vth0_nominal}"
            )

    @property
    def ut(self) -> float:
        """Thermal voltage ``kT/q`` at this technology's temperature [V]."""
        return thermal_voltage(self.temperature)

    @property
    def n_ut(self) -> float:
        """Sub-threshold slope voltage ``n·Ut`` [V] (appears all over Eq. 13)."""
        return self.n * self.ut

    def effective_vth(self, vth0: float, vdd: float) -> float:
        """Apply the DIBL shift of Eq. 3: ``Vth = Vth0 − η·Vdd``."""
        return vth0 - self.eta * vdd

    def zero_bias_vth(self, vth: float, vdd: float) -> float:
        """Invert Eq. 3: recover ``Vth0`` from an effective ``Vth`` at ``Vdd``."""
        return vth + self.eta * vdd

    def scaled(
        self,
        *,
        name: str | None = None,
        io_factor: float = 1.0,
        zeta_factor: float = 1.0,
        alpha_shift: float = 0.0,
        vth0_shift: float = 0.0,
    ) -> "Technology":
        """Return a derived flavour with multiplicatively/additively shifted knobs.

        Used by the technology-map ablation (DESIGN.md experiment A5) to
        explore the (Io, ζ, α) neighbourhood of a flavour.
        """
        return replace(
            self,
            name=name if name is not None else f"{self.name}-scaled",
            io=self.io * io_factor,
            zeta=self.zeta * zeta_factor,
            alpha=self.alpha + alpha_shift,
            vth0_nominal=self.vth0_nominal + vth0_shift,
        )

    def describe(self) -> str:
        """One-line human-readable summary (used by example scripts)."""
        return (
            f"{self.name}: Io={self.io:.3e} A, zeta={self.zeta:.3e} F, "
            f"alpha={self.alpha:.3f}, n={self.n:.3f}, "
            f"Vdd_nom={self.vdd_nominal:.2f} V, Vth0_nom={self.vth0_nominal:.3f} V"
        )


#: ST CMOS09 Low Leakage flavour (Table 2, middle row) — the paper's default.
ST_CMOS09_LL = Technology(
    name="ST-CMOS09-LL",
    io=3.34e-6,
    zeta=5.5e-12,
    alpha=1.86,
    n=1.33,
    vdd_nominal=1.2,
    vth0_nominal=0.354,
)

#: ST CMOS09 High Speed flavour (Table 2, bottom row).
ST_CMOS09_HS = Technology(
    name="ST-CMOS09-HS",
    io=7.08e-6,
    zeta=6.1e-12,
    alpha=1.58,
    n=1.33,
    vdd_nominal=1.2,
    vth0_nominal=0.328,
)

#: ST CMOS09 Ultra Low Leakage flavour (Table 2, top row).
ST_CMOS09_ULL = Technology(
    name="ST-CMOS09-ULL",
    io=2.11e-6,
    zeta=7.5e-12,
    alpha=1.95,
    n=1.33,
    vdd_nominal=1.2,
    vth0_nominal=0.466,
)

#: All published flavours keyed by their Table 2 label.
ST_CMOS09_FLAVOURS = {
    "ULL": ST_CMOS09_ULL,
    "LL": ST_CMOS09_LL,
    "HS": ST_CMOS09_HS,
}


def flavour(label: str) -> Technology:
    """Look up a technology by catalog name (Table 2 flavours builtin).

    The Table 2 short labels (``"LL"``, ``"HS"``, ``"ULL"``) are catalog
    aliases of the full flavour names, so both spellings work in any
    case, and technologies added by the user — programmatically or via a
    plugin pack — resolve here identically.

    >>> flavour("LL").alpha
    1.86
    """
    from ..catalog import CatalogKeyError, default_catalog

    try:
        return default_catalog().technologies.get(label)
    except CatalogKeyError as error:
        message = (
            f"unknown technology flavour {label!r}; "
            f"known: {', '.join(error.known)}"
        )
        if error.suggestions:
            quoted = " or ".join(repr(s) for s in error.suggestions)
            message += f" — did you mean {quoted}?"
        raise KeyError(message) from None


def flavour_line(t: float) -> Technology:
    """A continuous flavour axis through ULL (t=-1), LL (t=0) and HS (t=+1).

    Real flavours trade leakage, speed and velocity saturation *jointly*:
    moving towards low leakage raises ``ζ`` and ``Vth0`` while moving
    towards high speed lowers ``α``.  This helper interpolates the three
    published flavours (geometrically for ``Io``/``ζ``, linearly for
    ``α``/``Vth0``) and extrapolates beyond both ends, giving Section 5's
    "extreme flavours are penalised" claim a continuous axis to be tested
    on (DESIGN.md experiment A5).
    """
    import math

    if t <= 0.0:
        low, high, fraction = ST_CMOS09_ULL, ST_CMOS09_LL, t + 1.0
    else:
        low, high, fraction = ST_CMOS09_LL, ST_CMOS09_HS, t

    def geometric(a: float, b: float) -> float:
        return math.exp((1.0 - fraction) * math.log(a) + fraction * math.log(b))

    def linear(a: float, b: float) -> float:
        return (1.0 - fraction) * a + fraction * b

    alpha = min(max(linear(low.alpha, high.alpha), 1.0), 2.0)
    return Technology(
        name=f"ST-CMOS09-line({t:+.2f})",
        io=geometric(low.io, high.io),
        zeta=geometric(low.zeta, high.zeta),
        alpha=alpha,
        n=linear(low.n, high.n),
        vdd_nominal=1.2,
        vth0_nominal=linear(low.vth0_nominal, high.vth0_nominal),
    )
