"""The zero-slack timing constraint (paper Eqs. 5, 6 and 8).

At the optimal working point the critical path exactly fills the clock
period (``LD·t_gate = 1/f``): positive slack would allow a lower ``Vdd``
and negative slack is a broken circuit.  Substituting the delay model
(Eq. 4) and solving for the threshold voltage gives

    ``Vth(Vdd) = Vdd − χ·Vdd^(1/α)``                            (Eq. 5)

with the *constraint coefficient*

    ``χ = [f·LD·ζ / (Io·(e/(n·Ut))^α)]^(1/α)``                  (Eq. 6)

χ aggregates every speed-related quantity: it grows with frequency and
logical depth and shrinks for strong (high ``Io``, low ``ζ``)
technologies.  Feasibility demands ``χ`` small enough that a positive
``Vth`` exists somewhere in the supply range — and for the linearised form
(Eq. 8), ``χ·A < 1``.
"""

from __future__ import annotations

import numpy as np

from .architecture import ArchitectureParameters
from .constants import EULER
from .linearization import LinearFit, paper_fit
from .technology import Technology


def chi(
    tech: Technology,
    logical_depth: float,
    frequency: float,
    *,
    zeta_factor: float = 1.0,
) -> float:
    """Constraint coefficient χ of Eq. 6 [V^(1−1/α)].

    Parameters
    ----------
    tech:
        Technology flavour supplying ``Io``, ``ζ``, ``α`` and ``n·Ut``.
    logical_depth:
        Effective logical depth ``LDeff`` in characterised gate delays.
    frequency:
        Target throughput frequency [Hz].
    zeta_factor:
        Per-circuit correction to the characterised ``ζ``
        (see :class:`repro.core.architecture.ArchitectureParameters`).
    """
    if logical_depth <= 0.0:
        raise ValueError(f"logical_depth must be positive, got {logical_depth}")
    if frequency <= 0.0:
        raise ValueError(f"frequency must be positive, got {frequency}")
    zeta = tech.zeta * zeta_factor
    denominator = tech.io * (EULER / tech.n_ut) ** tech.alpha
    return float(
        (frequency * logical_depth * zeta / denominator) ** (1.0 / tech.alpha)
    )


def chi_for_architecture(
    arch: ArchitectureParameters, tech: Technology, frequency: float
) -> float:
    """χ for an architecture summary, honouring its ``zeta_factor``."""
    return chi(
        tech, arch.logical_depth, frequency, zeta_factor=arch.zeta_factor
    )


def chi_from_operating_point(vdd: float, vth: float, alpha: float) -> float:
    """Invert Eq. 5: recover χ from a known zero-slack ``(Vdd, Vth)`` pair.

    Used by the calibrated reproduction mode to extract each published
    row's effective constraint coefficient.
    """
    if vdd <= 0.0:
        raise ValueError(f"vdd must be positive, got {vdd}")
    if vth >= vdd:
        raise ValueError(f"need vth < vdd for positive overdrive, got {vth} >= {vdd}")
    return float((vdd - vth) / vdd ** (1.0 / alpha))


def vth_exact(vdd, chi_value: float, alpha: float):
    """Exact constrained threshold ``Vth = Vdd − χ·Vdd^(1/α)`` (Eq. 5)."""
    vdd = np.asarray(vdd, dtype=float)
    return vdd - chi_value * np.power(vdd, 1.0 / alpha)


def vth_linearized(vdd, chi_value: float, fit: LinearFit):
    """Linearised constrained threshold ``Vth ≈ Vdd(1−χA) − χB`` (Eq. 8)."""
    vdd = np.asarray(vdd, dtype=float)
    return vdd * (1.0 - chi_value * fit.a) - chi_value * fit.b


def is_feasible_linearized(chi_value: float, fit: LinearFit) -> bool:
    """Check the Eq. 8 feasibility condition ``χ·A < 1``.

    When ``χ·A >= 1`` the linearised threshold decreases (or is flat) with
    ``Vdd``: no supply increase can buy back the speed the constraint
    demands, and Eq. 13's prefactor ``1/(1−χA)²`` blows up.
    """
    return chi_value * fit.a < 1.0


def vdd_for_positive_vth(chi_value: float, alpha: float) -> float:
    """Smallest supply with non-negative constrained ``Vth`` (exact form).

    Solving ``Vdd = χ·Vdd^(1/α)`` gives ``Vdd = χ^(α/(α−1))`` for
    ``α > 1``; below this supply the constraint forces a negative threshold
    voltage.  For ``α == 1`` the constraint is supply-independent and the
    boundary is 0 (feasible iff ``χ < 1``).
    """
    if alpha <= 1.0:
        return 0.0
    return float(chi_value ** (alpha / (alpha - 1.0)))


def operating_point_consistency(
    arch: ArchitectureParameters,
    tech: Technology,
    frequency: float,
    vdd: float,
    vth: float,
) -> float:
    """Relative slack of ``(Vdd, Vth)`` against the timing constraint.

    Returns ``(1/f − LD·t_gate)·f``: 0 at zero slack, positive when the
    circuit is faster than required, negative when timing fails.  Handy
    for asserting that optimiser outputs actually sit on the constraint.
    """
    from .power_model import critical_path_delay

    scaled_tech = tech.scaled(zeta_factor=arch.zeta_factor, name=tech.name)
    delay = critical_path_delay(scaled_tech, arch.logical_depth, vdd, vth)
    return float((1.0 / frequency - delay) * frequency)


def default_fit(tech: Technology) -> LinearFit:
    """The paper's Eq. 7 fit (0.3–1.0 V) for this technology's α."""
    return paper_fit(tech.alpha)
