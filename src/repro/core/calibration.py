"""Recovering model inputs from published operating points (calibrated mode).

The paper derives each Table 1 row from data we do not have: the
synthesised ST netlists and their ModelSIM power annotations.  What *is*
published per row — the optimal ``(Vdd, Vth)`` and the ``(Pdyn, Pstat)``
split — over-determines the three unknown per-circuit parameters, so they
can be recovered exactly (DESIGN.md, Section 3):

* ``χ`` from the zero-slack constraint:  ``χ = (Vdd − Vth)/Vdd^(1/α)``;
* ``C`` from the dynamic power:          ``C = Pdyn/(N·a·Vdd²·f)``;
* per-cell ``Io`` from the static power: ``Io = Pstat/(N·Vdd·e^(−Vth/nUt))``.

The recovered values are expressed as an :class:`ArchitectureParameters`
whose ``io_factor``/``zeta_factor`` correct the technology's
inverter-referenced ``Io``/``ζ``, so *every* solver in the library
(closed form, 1-D numerical, 2-D grid) consumes them through the ordinary
API.  The published ``Ptot``, Eq. 13 value and error column then become
genuine predictions to validate against — they are never fed back in.
"""

from __future__ import annotations

from dataclasses import dataclass

import math

from .architecture import ArchitectureParameters
from .constraint import chi, chi_from_operating_point
from .technology import Technology


@dataclass(frozen=True)
class PublishedRow:
    """One row of the paper's Table 1 (or Tables 3/4, with N/a/LD joined).

    Power values in watts, voltages in volts, area in µm²; ``ptot_eq13``
    and ``eq13_error_percent`` are the paper's own closed-form column and
    its error, kept for comparison (not used in calibration).
    """

    name: str
    n_cells: int
    area: float
    activity: float
    logical_depth: float
    vdd: float
    vth: float
    pdyn: float
    pstat: float
    ptot: float
    ptot_eq13: float
    eq13_error_percent: float


def recover_capacitance(row: PublishedRow, frequency: float) -> float:
    """Per-cell equivalent capacitance implied by the published Pdyn [F]."""
    return row.pdyn / (row.n_cells * row.activity * row.vdd**2 * frequency)


def recover_io(row: PublishedRow, tech: Technology) -> float:
    """Per-cell leakage current implied by the published Pstat [A]."""
    return row.pstat / (row.n_cells * row.vdd * math.exp(-row.vth / tech.n_ut))


def recover_chi(row: PublishedRow, tech: Technology) -> float:
    """Constraint coefficient implied by the published (Vdd, Vth)."""
    return chi_from_operating_point(row.vdd, row.vth, tech.alpha)


def zeta_factor_for_chi(
    chi_target: float,
    tech: Technology,
    logical_depth: float,
    frequency: float,
) -> float:
    """ζ correction that makes Eq. 6 reproduce ``chi_target``.

    χ scales as ``ζ^(1/α)``, so the factor is ``(χ_target/χ_base)^α``.
    Applying it to ``ArchitectureParameters.zeta_factor`` lets all solvers
    recompute the calibrated χ through the ordinary Eq. 6 path.
    """
    chi_base = chi(tech, logical_depth, frequency)
    return (chi_target / chi_base) ** tech.alpha


def calibrate_row(
    row: PublishedRow, tech: Technology, frequency: float
) -> ArchitectureParameters:
    """Build the calibrated :class:`ArchitectureParameters` for one row."""
    chi_target = recover_chi(row, tech)
    capacitance = recover_capacitance(row, frequency)
    io_cell = recover_io(row, tech)
    return ArchitectureParameters(
        name=row.name,
        n_cells=row.n_cells,
        activity=row.activity,
        logical_depth=row.logical_depth,
        capacitance=capacitance,
        area=row.area,
        io_factor=io_cell / tech.io,
        zeta_factor=zeta_factor_for_chi(
            chi_target, tech, row.logical_depth, frequency
        ),
    )


def calibrate_rows(
    rows: list[PublishedRow], tech: Technology, frequency: float
) -> list[ArchitectureParameters]:
    """Calibrate a list of published rows against one technology."""
    return [calibrate_row(row, tech, frequency) for row in rows]


def stationarity_ratio(
    vdd: float, chi_value: float, alpha: float, n_ut: float
) -> float:
    """``Pstat/Pdyn`` implied by exact stationarity at a zero-slack optimum.

    Differentiating Eq. 1 along the exact constraint (Eq. 5) and setting
    the derivative to zero yields

        ``Pstat/Pdyn = 2 / (Vdd·Vth'(Vdd)/(n·Ut) − 1)``

    with ``Vth'(Vdd) = 1 − (χ/α)·Vdd^(1/α − 1)``.  Tables 3 and 4 publish
    only the total power, so this ratio is how the calibrated mode splits
    it (the split is diagnostic only; validation compares totals).
    """
    vth_slope = 1.0 - (chi_value / alpha) * vdd ** (1.0 / alpha - 1.0)
    denominator = vdd * vth_slope / n_ut - 1.0
    if denominator <= 0.0:
        raise ValueError(
            f"(Vdd={vdd}, chi={chi_value}) is not a stationary optimum: "
            f"denominator {denominator:.3f} <= 0"
        )
    return 2.0 / denominator


def calibrate_from_total(
    name: str,
    n_cells: int,
    activity: float,
    logical_depth: float,
    vdd: float,
    vth: float,
    ptot: float,
    tech: Technology,
    frequency: float,
    area: float = 0.0,
) -> ArchitectureParameters:
    """Calibrate a row that publishes only ``Ptot`` (paper Tables 3 and 4).

    ``(Vdd, Vth)`` give χ directly; the dynamic/static split is recovered
    from :func:`stationarity_ratio`, after which the Table 1 procedure
    applies unchanged.
    """
    chi_target = chi_from_operating_point(vdd, vth, tech.alpha)
    ratio = stationarity_ratio(vdd, chi_target, tech.alpha, tech.n_ut)
    pdyn = ptot / (1.0 + ratio)
    pstat = ptot - pdyn
    row = PublishedRow(
        name=name,
        n_cells=n_cells,
        area=area,
        activity=activity,
        logical_depth=logical_depth,
        vdd=vdd,
        vth=vth,
        pdyn=pdyn,
        pstat=pstat,
        ptot=ptot,
        ptot_eq13=float("nan"),
        eq13_error_percent=float("nan"),
    )
    return calibrate_row(row, tech, frequency)
