"""Parameter-level architecture transformations (paper Section 4).

Section 4 studies how pipelining, parallelisation and sequentialisation
move the Eq. 13 inputs ``(N, a, LDeff)``.  The netlist packages
(:mod:`repro.generators`) perform these transformations *structurally*;
this module models them at the parameter level so the consequences can be
explored analytically, which is exactly how the paper's discussion
proceeds ("knowing the effect of transforming an architecture … it is
directly possible to see if it will result in a higher or lower total
power using (13)").

The default coefficients are extracted from the paper's own Table 1 ratios
(RCA family), and every knob is exposed because the paper stresses that
these effects are circuit-dependent ("simple architectural transformations
can modify the parameters like a and LD in a complex, and difficult to
predict, manner").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .architecture import ArchitectureParameters


@dataclass(frozen=True)
class ParallelizationModel:
    """How k-way replication + multiplexing changes the Eq. 13 inputs.

    Replicating a circuit ``k`` times and distributing successive operands
    across the copies gives every copy ``k`` clock periods per result:

    * ``LDeff → LDeff/k + mux_depth`` — relaxed timing, plus the output
      multiplexer on the critical path;
    * ``N → k·N + mux_cells_per_output·outputs + control_cells`` — the
      replication overhead the paper blames for the Wallace-par4 loss;
    * ``a → a/k·(1 + activity_overhead)`` — the same total switching spread
      over ``k×`` more cells, plus mux/select toggling.

    Defaults reproduce the RCA column of Table 1 within a few percent
    (608→1256 cells, a 0.5056→0.2624, LD 61→30.5).
    """

    mux_cells_per_output: float = 1.25
    control_cells: float = 0.0
    mux_depth: float = 0.25
    activity_overhead: float = 0.04

    def apply(
        self, arch: ArchitectureParameters, k: int, n_outputs: int = 32
    ) -> ArchitectureParameters:
        """Return the k-way parallelised parameter set."""
        if k < 2:
            raise ValueError(f"parallelisation factor must be >= 2, got {k}")
        overhead_cells = self.mux_cells_per_output * n_outputs * (k - 1) / 1.0
        return arch.with_updates(
            name=f"{arch.name} par{k}",
            n_cells=k * arch.n_cells + overhead_cells + self.control_cells,
            activity=arch.activity / k * (1.0 + self.activity_overhead),
            logical_depth=arch.logical_depth / k + self.mux_depth,
        )


@dataclass(frozen=True)
class PipelineModel:
    """How register insertion changes the Eq. 13 inputs.

    ``depth_efficiency`` captures that cutting a circuit into ``s`` stages
    rarely divides the critical path by ``s`` (register setup/clk-to-q and
    unbalanced stages): ``LDeff → LDeff·stage_ratio`` with
    ``stage_ratio = (1/s)^depth_efficiency``.  Horizontal cuts in the RCA
    array give ``depth_efficiency ≈ 0.61`` (61→40→28); the deeper diagonal
    cuts give ``≈ 1.06`` (61→26→14) but raise activity because the spread
    of path delays grows (more glitches): ``a → a·activity_ratio(s)``.

    Defaults: horizontal style — glitch-*reducing* (`activity_gain` < 0,
    Table 1: 0.5056→0.3904); diagonal style — less glitch reduction and a
    shorter depth (0.5056→0.4064).
    """

    depth_efficiency: float
    activity_gain: float
    registers_per_cut: float = 64.0

    def apply(self, arch: ArchitectureParameters, stages: int) -> ArchitectureParameters:
        """Return the s-stage pipelined parameter set."""
        if stages < 2:
            raise ValueError(f"pipeline stage count must be >= 2, got {stages}")
        stage_ratio = (1.0 / stages) ** self.depth_efficiency
        cuts = stages - 1
        activity_ratio = (1.0 + self.activity_gain) ** math.log2(stages)
        return arch.with_updates(
            name=f"{arch.name} pipe{stages}",
            n_cells=arch.n_cells + self.registers_per_cut * cuts,
            activity=arch.activity * activity_ratio,
            logical_depth=arch.logical_depth * stage_ratio,
        )


@dataclass(frozen=True)
class SequentializationModel:
    """How folding a datapath over ``cycles`` clock ticks changes parameters.

    A sequential implementation reuses one operator for ``cycles``
    sub-operations per result, so with respect to the *throughput* clock:

    * ``LDeff → per_cycle_depth·cycles`` — the internal clock must run
      ``cycles×`` faster (paper: 16 × 14 = 224 for the basic sequential
      multiplier);
    * ``N → hardware_fraction·N`` — a fraction of the combinational
      hardware plus result/state registers;
    * ``a → a·activity_amplification·cycles / hardware_fraction / N_ratio``
      — every cell switches every *internal* cycle, which the paper's
      throughput-referenced activity counts ``cycles`` times (hence
      activities above 1 in Table 1).
    """

    hardware_fraction: float = 0.48
    per_cycle_depth: float = 14.0
    activity_per_cycle: float = 0.175

    def apply(self, arch: ArchitectureParameters, cycles: int) -> ArchitectureParameters:
        """Return the ``cycles``-per-result sequentialised parameter set."""
        if cycles < 2:
            raise ValueError(f"cycles per result must be >= 2, got {cycles}")
        return arch.with_updates(
            name=f"{arch.name} seq{cycles}",
            n_cells=arch.n_cells * self.hardware_fraction,
            activity=self.activity_per_cycle * cycles,
            logical_depth=self.per_cycle_depth * cycles,
        )


#: Horizontal-pipeline defaults fitted on Table 1 (RCA 61→40→28, a ↓).
HORIZONTAL_PIPELINE = PipelineModel(depth_efficiency=0.61, activity_gain=-0.228)

#: Diagonal-pipeline defaults fitted on Table 1 (RCA 61→26→14, a ↓ less).
DIAGONAL_PIPELINE = PipelineModel(depth_efficiency=1.06, activity_gain=-0.196)

#: Parallelisation defaults fitted on the RCA/Wallace rows of Table 1.
PARALLELIZATION = ParallelizationModel()

#: Sequentialisation defaults fitted on the Sequential row of Table 1.
SEQUENTIALIZATION = SequentializationModel()


def parallelize(
    arch: ArchitectureParameters,
    k: int,
    model: ParallelizationModel = PARALLELIZATION,
    n_outputs: int = 32,
) -> ArchitectureParameters:
    """k-way parallelisation with the default (Table-1-fitted) overheads."""
    return model.apply(arch, k, n_outputs=n_outputs)


def pipeline(
    arch: ArchitectureParameters,
    stages: int,
    style: str = "horizontal",
) -> ArchitectureParameters:
    """Pipeline into ``stages`` stages, ``style`` in {'horizontal', 'diagonal'}."""
    models = {"horizontal": HORIZONTAL_PIPELINE, "diagonal": DIAGONAL_PIPELINE}
    try:
        model = models[style]
    except KeyError:
        raise ValueError(
            f"unknown pipeline style {style!r}; expected one of {sorted(models)}"
        )
    transformed = model.apply(arch, stages)
    return transformed.renamed(f"{arch.name} {style[:4]}.pipe{stages}")


def sequentialize(
    arch: ArchitectureParameters,
    cycles: int,
    model: SequentializationModel = SEQUENTIALIZATION,
) -> ArchitectureParameters:
    """Fold into a ``cycles``-per-result sequential implementation."""
    return model.apply(arch, cycles)
