"""Architecture and technology selection utilities (paper Sections 4–5).

The paper's punchline is a *selection methodology*: evaluate Eq. 13 for
every candidate (architecture, technology) pair at the target frequency
and pick the minimum.  These helpers wrap that loop and keep infeasible
candidates (χA ≥ 1) in the report instead of silently dropping them,
because "this architecture cannot reach f in this technology" is itself a
selection-relevant answer.
"""

from __future__ import annotations

from dataclasses import dataclass

from .architecture import ArchitectureParameters
from .optimum import OptimizationResult
from .technology import Technology


@dataclass(frozen=True)
class Candidate:
    """One evaluated (architecture, technology) pair.

    ``result`` is None when the pair cannot close timing at the target
    frequency; ``reason`` then explains why.
    """

    architecture: ArchitectureParameters
    technology: Technology
    result: OptimizationResult | None
    reason: str = ""

    @property
    def feasible(self) -> bool:
        """True when an optimal working point exists."""
        return self.result is not None

    @property
    def ptot(self) -> float:
        """Optimal total power [W]; +inf for infeasible candidates."""
        return self.result.ptot if self.result is not None else float("inf")


def evaluate_candidates(
    architectures: list[ArchitectureParameters],
    technologies: list[Technology],
    frequency: float,
    jobs: int | None = 1,
) -> list[Candidate]:
    """Numerically evaluate every (architecture, technology) pair.

    The numerical solver is used (not Eq. 13) because selection is the
    end-user operation and should rest on the reference model; Eq. 13
    agreement is separately validated by the Table 1 experiments.

    The O(A×T) loop is delegated to the design-space exploration engine
    (:mod:`repro.explore.engine`), which chunks the scalar solves over a
    ``multiprocessing`` pool; pass ``jobs`` to parallelise (``None``
    uses every CPU, the default 1 keeps the historical serial path).
    """
    # Imported lazily: repro.explore depends on repro.core, so a
    # module-level import here would be circular.
    from ..explore.engine import evaluate_points
    from ..explore.scenario import DesignPoint

    points = [
        DesignPoint(architecture=arch, technology=tech, frequency=frequency)
        for tech in technologies
        for arch in architectures
    ]
    return [
        Candidate(
            architecture=outcome.point.architecture,
            technology=outcome.point.technology,
            result=outcome.result,
            reason=outcome.reason,
        )
        for outcome in evaluate_points(points, method="numerical", jobs=jobs)
    ]


def rank_architectures(
    architectures: list[ArchitectureParameters],
    tech: Technology,
    frequency: float,
) -> list[Candidate]:
    """Architectures sorted by optimal total power on one technology."""
    candidates = evaluate_candidates(architectures, [tech], frequency)
    return sorted(candidates, key=lambda candidate: candidate.ptot)


def best_architecture(
    architectures: list[ArchitectureParameters],
    tech: Technology,
    frequency: float,
) -> Candidate:
    """The cheapest feasible architecture on one technology.

    Raises ValueError when nothing is feasible, listing the reasons.
    """
    ranked = rank_architectures(architectures, tech, frequency)
    winner = ranked[0]
    if not winner.feasible:
        reasons = "; ".join(candidate.reason for candidate in ranked)
        raise ValueError(
            f"no architecture is feasible at {frequency / 1e6:g} MHz on "
            f"{tech.name}: {reasons}"
        )
    return winner


def rank_technologies(
    arch: ArchitectureParameters,
    technologies: list[Technology],
    frequency: float,
) -> list[Candidate]:
    """Technologies sorted by optimal total power for one architecture."""
    candidates = evaluate_candidates([arch], technologies, frequency)
    return sorted(candidates, key=lambda candidate: candidate.ptot)


def best_technology(
    arch: ArchitectureParameters,
    technologies: list[Technology],
    frequency: float,
) -> Candidate:
    """The cheapest feasible technology flavour for one architecture."""
    ranked = rank_technologies(arch, technologies, frequency)
    winner = ranked[0]
    if not winner.feasible:
        reasons = "; ".join(candidate.reason for candidate in ranked)
        raise ValueError(
            f"{arch.name} is infeasible at {frequency / 1e6:g} MHz on every "
            f"candidate technology: {reasons}"
        )
    return winner


def selection_matrix(
    architectures: list[ArchitectureParameters],
    technologies: list[Technology],
    frequency: float,
    jobs: int | None = 1,
) -> dict[tuple[str, str], Candidate]:
    """Full (architecture × technology) map keyed by ``(arch, tech)`` names."""
    candidates = evaluate_candidates(architectures, technologies, frequency, jobs=jobs)
    return {
        (candidate.architecture.name, candidate.technology.name): candidate
        for candidate in candidates
    }
