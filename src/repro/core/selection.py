"""Architecture and technology selection utilities (paper Sections 4–5).

.. deprecated::
    This module is a thin compatibility shim over :class:`repro.study.
    Study`, the unified facade every selection question now routes
    through (``Study(...).solver("numerical").run()``).  The helpers keep
    their historical signatures and numerics — ``evaluate_candidates``
    still returns :class:`Candidate` objects with infeasible pairs kept
    in the report, because "this architecture cannot reach f in this
    technology" is itself a selection-relevant answer — but new code
    should ask ``Study`` directly and work with its :class:`~repro.study.
    ResultSet`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from .architecture import ArchitectureParameters
from .optimum import OperatingPoint, OptimizationResult
from .technology import Technology

# The whole module is a deprecated shim; repro.core only resolves it
# lazily (PEP 562), so this fires for actual selection-API users and
# not for every `import repro`.
warnings.warn(
    "repro.core.selection is deprecated; use repro.Study "
    "(Study(...).solver('numerical').run()) instead",
    DeprecationWarning,
    stacklevel=2,
)

#: The provenance tag :func:`repro.core.numerical.numerical_optimum` has
#: always stamped on its operating points; the shim restores it when
#: rebuilding results from flat Study records so equality with a direct
#: solver call is preserved.
_NUMERICAL_METHOD_TAG = "numerical-1d"


@dataclass(frozen=True)
class Candidate:
    """One evaluated (architecture, technology) pair.

    ``result`` is None when the pair cannot close timing at the target
    frequency; ``reason`` then explains why.
    """

    architecture: ArchitectureParameters
    technology: Technology
    result: OptimizationResult | None
    reason: str = ""

    @property
    def feasible(self) -> bool:
        """True when an optimal working point exists."""
        return self.result is not None

    @property
    def ptot(self) -> float:
        """Optimal total power [W]; +inf for infeasible candidates."""
        return self.result.ptot if self.result is not None else float("inf")


def _warn_deprecated(name: str, replacement: str) -> None:
    """Per-helper deprecation warning attributed to the *caller's* frame.

    stacklevel 3 = this helper → the public selection function → the
    user's call site.
    """
    warnings.warn(
        f"repro.core.selection.{name} is deprecated; use {replacement}",
        DeprecationWarning,
        stacklevel=3,
    )


def _evaluate(
    architectures: list[ArchitectureParameters],
    technologies: list[Technology],
    frequency: float,
    jobs: int | None = 1,
) -> list[Candidate]:
    """The shared, non-warning evaluation core behind every helper."""
    # Historical contract: an empty candidate axis yields an empty
    # report, not an error (Study itself refuses to compile an empty
    # problem).
    if not architectures or not technologies:
        return []
    # Imported lazily: repro.study depends on repro.core, so a
    # module-level import here would be circular.
    from ..study import Study

    resultset = (
        Study("selection")
        .architectures(*architectures)
        .technologies(*technologies)
        .frequencies(frequency)
        .solver("numerical")
        .jobs(jobs)
        .run()
    )
    # ResultSet records follow Scenario.expand() order (architecture-
    # major); the historical contract here is technology-major.  The
    # flat records carry the exact solver floats, and the method tag is
    # restored to numerical_optimum's historical value, so the rebuilt
    # OptimizationResult compares equal to a direct solver call.
    n_technologies = len(technologies)
    candidates = []
    for t_index, tech in enumerate(technologies):
        for a_index, arch in enumerate(architectures):
            record = resultset[a_index * n_technologies + t_index]
            result = None
            if record.feasible:
                result = OptimizationResult(
                    architecture=arch,
                    technology=tech,
                    frequency=frequency,
                    point=OperatingPoint(
                        vdd=record.vdd,
                        vth=record.vth,
                        pdyn=record.pdyn,
                        pstat=record.pstat,
                        method=_NUMERICAL_METHOD_TAG,
                    ),
                )
            candidates.append(
                Candidate(
                    architecture=arch,
                    technology=tech,
                    result=result,
                    reason=record.reason,
                )
            )
    return candidates


def _rank(candidates: list[Candidate]) -> list[Candidate]:
    """Cheapest-first; +inf power sorts infeasible candidates last."""
    return sorted(candidates, key=lambda candidate: candidate.ptot)


def _require_feasible_winner(
    ranked: list[Candidate], message: str
) -> Candidate:
    """The cheapest candidate, or ValueError listing every reason."""
    winner = ranked[0]
    if not winner.feasible:
        reasons = "; ".join(candidate.reason for candidate in ranked)
        raise ValueError(f"{message}: {reasons}")
    return winner


def evaluate_candidates(
    architectures: list[ArchitectureParameters],
    technologies: list[Technology],
    frequency: float,
    jobs: int | None = 1,
) -> list[Candidate]:
    """Numerically evaluate every (architecture, technology) pair.

    .. deprecated:: use ``Study(...).solver("numerical").run()`` instead.

    The numerical solver is used (not Eq. 13) because selection is the
    end-user operation and should rest on the reference model; Eq. 13
    agreement is separately validated by the Table 1 experiments.

    The O(A×T) loop is delegated to the :class:`repro.study.Study`
    facade, which dispatches it through the exploration engine's
    parallel executor; pass ``jobs`` to parallelise (``None`` uses every
    CPU, the default 1 keeps the historical serial path).
    """
    _warn_deprecated(
        "evaluate_candidates",
        'repro.Study(...).solver("numerical").run()',
    )
    return _evaluate(architectures, technologies, frequency, jobs=jobs)


def rank_architectures(
    architectures: list[ArchitectureParameters],
    tech: Technology,
    frequency: float,
) -> list[Candidate]:
    """Architectures sorted by optimal total power on one technology.

    .. deprecated:: use ``Study(...).run().rank()`` instead.
    """
    _warn_deprecated("rank_architectures", "repro.Study(...).run().rank()")
    return _rank(_evaluate(architectures, [tech], frequency))


def best_architecture(
    architectures: list[ArchitectureParameters],
    tech: Technology,
    frequency: float,
) -> Candidate:
    """The cheapest feasible architecture on one technology.

    Raises ValueError when nothing is feasible, listing the reasons.

    .. deprecated:: use ``Study(...).run().best()`` instead.
    """
    _warn_deprecated("best_architecture", "repro.Study(...).run().best()")
    return _require_feasible_winner(
        _rank(_evaluate(architectures, [tech], frequency)),
        f"no architecture is feasible at {frequency / 1e6:g} MHz on "
        f"{tech.name}",
    )


def rank_technologies(
    arch: ArchitectureParameters,
    technologies: list[Technology],
    frequency: float,
) -> list[Candidate]:
    """Technologies sorted by optimal total power for one architecture.

    .. deprecated:: use ``Study(...).run().rank()`` instead.
    """
    _warn_deprecated("rank_technologies", "repro.Study(...).run().rank()")
    return _rank(_evaluate([arch], technologies, frequency))


def best_technology(
    arch: ArchitectureParameters,
    technologies: list[Technology],
    frequency: float,
) -> Candidate:
    """The cheapest feasible technology flavour for one architecture.

    .. deprecated:: use ``Study(...).run().best()`` instead.
    """
    _warn_deprecated("best_technology", "repro.Study(...).run().best()")
    return _require_feasible_winner(
        _rank(_evaluate([arch], technologies, frequency)),
        f"{arch.name} is infeasible at {frequency / 1e6:g} MHz on every "
        f"candidate technology",
    )


def selection_matrix(
    architectures: list[ArchitectureParameters],
    technologies: list[Technology],
    frequency: float,
    jobs: int | None = 1,
) -> dict[tuple[str, str], Candidate]:
    """Full (architecture × technology) map keyed by ``(arch, tech)`` names.

    .. deprecated:: use ``Study(...).run()`` and filter the records.
    """
    _warn_deprecated("selection_matrix", "repro.Study(...).run()")
    candidates = _evaluate(architectures, technologies, frequency, jobs=jobs)
    return {
        (candidate.architecture.name, candidate.technology.name): candidate
        for candidate in candidates
    }
