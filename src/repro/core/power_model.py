"""Fundamental power and delay equations (paper Section 2, Eqs. 1–4).

The model describes a synchronous CMOS circuit by five architectural
quantities — cell count ``N``, per-cell activity ``a``, per-cell equivalent
capacitance ``C`` [F], operating frequency ``f`` [Hz] and logical depth
``LD`` — plus the technology parameters of :class:`repro.core.technology.
Technology`.  Everything here is vectorised: voltages may be scalars or
numpy arrays.

Conventions
-----------
* ``vth`` arguments are the *effective* threshold voltage, i.e. after the
  DIBL shift of Eq. 3 has been applied.  Helpers taking ``vth0`` apply the
  shift themselves.
* Short-circuit power is lumped into ``C`` (paper Section 2) and gate
  tunnelling / junction / punch-through leakage are neglected, exactly as
  in the paper.
"""

from __future__ import annotations

import numpy as np

from .constants import EULER
from .technology import Technology


def dynamic_power(n_cells, activity, capacitance, vdd, frequency):
    """Dynamic (switching) power ``Pdyn = N·a·C·Vdd²·f`` [W] (Eq. 1, first term).

    ``activity`` is the average number of energy-equivalent transitions per
    cell and per clock cycle, as annotated by timing simulation; glitching
    raises it above the purely functional value and sequential circuits
    referenced to their (slower) throughput clock can exceed 1.
    """
    vdd = np.asarray(vdd, dtype=float)
    return n_cells * activity * capacitance * vdd**2 * frequency


def static_power(n_cells, io, vdd, vth, n_slope, ut):
    """Static (sub-threshold leakage) power [W] (Eq. 1, second term).

    ``Pstat = N·Vdd·Io·exp(−Vth/(n·Ut))`` with ``Io`` the average off-current
    per cell at ``Vgs = Vth``, which is why the exponent is referenced to the
    effective threshold voltage directly.
    """
    vdd = np.asarray(vdd, dtype=float)
    vth = np.asarray(vth, dtype=float)
    # Strongly negative Vth (deep in an optimiser's exploration range) may
    # overflow the exponential; +inf is the semantically correct answer.
    with np.errstate(over="ignore"):
        return n_cells * vdd * io * np.exp(-vth / (n_slope * ut))


def total_power(n_cells, activity, capacitance, vdd, vth, frequency, tech: Technology):
    """Total power ``Pdyn + Pstat`` [W] for one technology (Eq. 1)."""
    return dynamic_power(n_cells, activity, capacitance, vdd, frequency) + static_power(
        n_cells, tech.io, vdd, vth, tech.n, tech.ut
    )


def on_current(io, alpha, n_slope, ut, vdd, vth):
    """Transistor on-current from the modified alpha-power law (Eq. 2).

    ``Ion = Io·(e/(n·Ut))^α·(Vdd − Vth)^α``.  The gate overdrive
    ``Vdd − Vth`` must be positive; non-positive overdrive means the gate
    cannot switch and a domain error is raised for scalars (NaN for array
    entries) rather than silently returning a complex value.
    """
    overdrive = np.asarray(vdd, dtype=float) - np.asarray(vth, dtype=float)
    if overdrive.ndim == 0:
        if overdrive <= 0.0:
            raise ValueError(
                f"gate overdrive Vdd - Vth must be positive, got {float(overdrive):.4f} V"
            )
        return io * (EULER / (n_slope * ut)) ** alpha * float(overdrive) ** alpha
    overdrive = np.where(overdrive > 0.0, overdrive, np.nan)
    return io * (EULER / (n_slope * ut)) ** alpha * overdrive**alpha


def gate_delay(tech: Technology, vdd, vth):
    """Single-gate delay ``t_gate = ζ·Vdd/Ion`` [s] (Eq. 4)."""
    ion = on_current(tech.io, tech.alpha, tech.n, tech.ut, vdd, vth)
    return tech.zeta * np.asarray(vdd, dtype=float) / ion


def critical_path_delay(tech: Technology, logical_depth, vdd, vth):
    """Critical-path delay ``LD·t_gate`` [s] (left side of Eq. 5)."""
    return logical_depth * gate_delay(tech, vdd, vth)


def max_frequency(tech: Technology, logical_depth, vdd, vth):
    """Highest frequency the circuit closes timing at: ``1/(LD·t_gate)`` [Hz]."""
    return 1.0 / critical_path_delay(tech, logical_depth, vdd, vth)


def power_breakdown(n_cells, activity, capacitance, vdd, vth, frequency, tech: Technology):
    """Return ``(Pdyn, Pstat, Ptot)`` as a tuple [W].

    Convenience used by the experiment runners, which report the split the
    way Table 1 does.
    """
    pdyn = dynamic_power(n_cells, activity, capacitance, vdd, frequency)
    pstat = static_power(n_cells, tech.io, vdd, vth, tech.n, tech.ut)
    return pdyn, pstat, pdyn + pstat
