"""Physical constants and unit helpers shared by all power/delay models.

Everything in the library is expressed in SI units (volts, amperes, farads,
hertz, watts, seconds).  The only physics the paper's model needs is the
thermal voltage ``Ut = kT/q`` (Eq. 1 and 2 of the paper).
"""

from __future__ import annotations

import math

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380649e-23

#: Elementary charge [C].
ELEMENTARY_CHARGE = 1.602176634e-19

#: Default junction temperature [K] used throughout the paper's model.
DEFAULT_TEMPERATURE = 300.0

#: Euler's number, written ``e`` in the paper's Eq. 2.
EULER = math.e


def thermal_voltage(temperature: float = DEFAULT_TEMPERATURE) -> float:
    """Return the thermal voltage ``Ut = kT/q`` in volts.

    Parameters
    ----------
    temperature:
        Junction temperature in kelvin.  Must be positive.

    >>> round(thermal_voltage(300.0), 5)
    0.02585
    """
    if temperature <= 0.0:
        raise ValueError(f"temperature must be positive, got {temperature}")
    return BOLTZMANN * temperature / ELEMENTARY_CHARGE


#: Thermal voltage at the default temperature [V].
UT_300K = thermal_voltage(DEFAULT_TEMPERATURE)
