"""Stimulus generation for activity measurement.

The paper annotated activity through "timing annotated simulations of the
netlist in ModelSIM"; the stimulus statistics determine the measured
activity, so this module makes them explicit and reproducible:

* :func:`uniform_pairs` — independent uniform operands per cycle (the
  default: a multiplier in a DSP datapath sees essentially white data);
* :func:`correlated_pairs` — operands where each bit flips with a given
  probability per sample, modelling low-activity streams (slowly varying
  sensor words);
* :func:`sparse_pairs` — mostly-small operands exercising the low columns
  only.
"""

from __future__ import annotations

import random


def uniform_pairs(width: int, count: int, seed: int = 2006) -> list[tuple[int, int]]:
    """``count`` independent uniform operand pairs."""
    rng = random.Random(seed)
    top = (1 << width) - 1
    return [(rng.randint(0, top), rng.randint(0, top)) for _ in range(count)]


def correlated_pairs(
    width: int,
    count: int,
    flip_probability: float = 0.2,
    seed: int = 2006,
) -> list[tuple[int, int]]:
    """Random-walk operands: each bit flips with ``flip_probability``."""
    if not 0.0 <= flip_probability <= 1.0:
        raise ValueError(f"flip_probability must be in [0, 1], got {flip_probability}")
    rng = random.Random(seed)
    top = (1 << width) - 1
    a = rng.randint(0, top)
    b = rng.randint(0, top)
    pairs = []
    for _ in range(count):
        for bit in range(width):
            if rng.random() < flip_probability:
                a ^= 1 << bit
            if rng.random() < flip_probability:
                b ^= 1 << bit
        pairs.append((a, b))
    return pairs


def sparse_pairs(
    width: int,
    count: int,
    active_bits: int = 4,
    seed: int = 2006,
) -> list[tuple[int, int]]:
    """Small-magnitude operands confined to the ``active_bits`` low bits."""
    if not 1 <= active_bits <= width:
        raise ValueError(f"active_bits must be in [1, {width}], got {active_bits}")
    rng = random.Random(seed)
    top = (1 << active_bits) - 1
    return [(rng.randint(0, top), rng.randint(0, top)) for _ in range(count)]
