"""Activity extraction from timed simulation (the paper's ``a``).

Section 2 defines activity as "the number of switching cells in a clock
cycle over the total number of cells", annotated by timing simulation and
therefore *including glitches*.  Dynamic power bookkeeping makes the
normalisation precise: each output transition dissipates ``C·Vdd²/2``, so

    ``a = transitions / (2 · N · data_cycles)``

makes ``Pdyn = N·a·C·Vdd²·f`` exact when ``C`` is the transition-weighted
average cell capacitance (also computed here).  Sequential circuits are
referenced to the *data* clock — all internal cycles of a result window
count toward one data cycle — which is how their activity exceeds 1
(Table 1: 2.9152 for the basic add-shift multiplier).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..generators.base import MultiplierImplementation
from .simulator import EventDrivenSimulator
from .vectors import uniform_pairs


@dataclass(frozen=True)
class ActivityReport:
    """Measured switching statistics of one implementation."""

    name: str
    n_cells: int
    data_cycles: int
    transitions: int
    settled_transitions: int
    activity: float
    settled_activity: float
    effective_capacitance: float

    @property
    def glitch_ratio(self) -> float:
        """Total over functional transitions (1.0 = glitch-free)."""
        if self.settled_transitions == 0:
            return 1.0
        return self.transitions / self.settled_transitions

    @property
    def glitch_activity(self) -> float:
        """The activity share contributed by glitches alone."""
        return self.activity - self.settled_activity

    def describe(self) -> str:
        return (
            f"{self.name}: a={self.activity:.4f} "
            f"(functional {self.settled_activity:.4f}, glitch ratio "
            f"{self.glitch_ratio:.2f}), Ceff={self.effective_capacitance:.2e} F"
        )


def measure_activity(
    impl: MultiplierImplementation,
    operand_pairs: list[tuple[int, int]] | None = None,
    n_vectors: int = 200,
    seed: int = 2006,
    warmup_vectors: int = 4,
) -> ActivityReport:
    """Run timed simulation and extract the paper's activity parameters.

    Parameters
    ----------
    impl:
        A generated multiplier implementation.
    operand_pairs:
        Explicit stimulus; defaults to uniform random pairs.
    n_vectors:
        Number of operand pairs when generating the default stimulus.
    warmup_vectors:
        Leading pairs simulated without counting, so the power-up
        transient does not bias the statistics.
    """
    if operand_pairs is None:
        operand_pairs = uniform_pairs(impl.width, n_vectors, seed)
    if len(operand_pairs) <= warmup_vectors:
        raise ValueError(
            f"need more than {warmup_vectors} operand pairs, got {len(operand_pairs)}"
        )

    simulator = EventDrivenSimulator(impl.netlist)
    for index, (a, b) in enumerate(operand_pairs):
        counting = index >= warmup_vectors
        simulator.counting = counting
        for assignment in impl.operand_cycles(a, b):
            simulator.run_cycle(assignment)

    stats = simulator.stats
    data_cycles = stats.cycles // impl.cycles_per_result
    n_cells = impl.n_cells
    transitions = stats.total_transitions
    settled = stats.settled_transitions

    # Transition-weighted average capacitance: with this C, the Eq. 1
    # product N*a*C reproduces the simulated switched charge exactly.
    weighted = 0.0
    for instance in impl.netlist.cells:
        weighted += (
            stats.transitions_per_cell[instance.index]
            * instance.cell_type.capacitance
        )
    effective_capacitance = weighted / transitions if transitions else 0.0

    return ActivityReport(
        name=impl.name,
        n_cells=n_cells,
        data_cycles=data_cycles,
        transitions=transitions,
        settled_transitions=settled,
        activity=transitions / (2.0 * n_cells * data_cycles),
        settled_activity=settled / (2.0 * n_cells * data_cycles),
        effective_capacitance=effective_capacitance,
    )
