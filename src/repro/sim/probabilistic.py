"""Probabilistic (simulation-free) activity estimation.

Event-driven simulation gives the reference activity but costs a full
netlist simulation per stimulus.  This module implements the classic
static alternative — propagate *signal probabilities* (P(net = 1)) and
*transition densities* (expected toggles per cycle) through the
combinational netlist under a spatial/temporal independence assumption —
and quantifies where it breaks.

For a cell output ``f`` with independent inputs, one cycle of fresh
inputs toggles the output with probability ``2·p·(1−p)`` where
``p = P(f = 1)``; the density of an output is estimated with the Boolean
difference: ``D(f) = Σ_i P(∂f/∂x_i) · D(x_i)`` (Najm's transition
density), evaluated exactly per cell type by enumerating its truth table.

The estimator is exact on trees (fanout-free circuits) and optimistic on
reconvergent structures like multipliers, where correlations and glitches
push the true activity up — both behaviours are pinned down by tests
against the event-driven simulator.  Glitching is optionally approximated
by the cell library's arrival-spread heuristic (see
:func:`estimate_activity`'s ``glitch_factor``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..generators.base import MultiplierImplementation
from ..netlist.netlist import Netlist


@dataclass(frozen=True)
class ProbabilisticReport:
    """Static activity estimate for one netlist.

    ``activity`` is the Najm-density estimate (glitch-inclusive upper
    tendency: every non-simultaneous input transition propagates);
    ``settled_activity`` is the synchronous pairwise estimate (zero-delay
    lower tendency: only net cycle-boundary changes count).  The
    event-driven simulator's inertial result lives between the two.
    """

    name: str
    n_cells: int
    probabilities: dict[int, float]
    densities: dict[int, float]
    settled_densities: dict[int, float]
    activity: float
    settled_activity: float

    def describe(self) -> str:
        return (
            f"{self.name}: static activity estimate a={self.activity:.4f} "
            f"(settled {self.settled_activity:.4f})"
        )


def _cell_output_stats(
    cell_type, input_probabilities, input_densities
) -> list[tuple[float, float]]:
    """Exact (probability, density) per output via truth-table enumeration.

    Probability: sum over input minterms of P(minterm)·f(minterm).
    Density (Najm): for each input pin, the probability that the output
    is sensitised to it (Boolean difference) times that input's density.
    """
    n = cell_type.n_inputs
    if n == 0:
        value = cell_type.evaluate(())
        return [(float(bit), 0.0) for bit in value]

    minterm_cache = list(itertools.product((0, 1), repeat=n))
    outputs = [cell_type.evaluate(minterm) for minterm in minterm_cache]

    results = []
    for pin_out in range(cell_type.n_outputs):
        probability = 0.0
        sensitised = [0.0] * n
        for minterm, output in zip(minterm_cache, outputs):
            weight = 1.0
            for position, bit in enumerate(minterm):
                p = input_probabilities[position]
                weight *= p if bit else (1.0 - p)
            if output[pin_out]:
                probability += weight
            # Boolean difference wrt each input: does flipping it flip f?
            for position in range(n):
                flipped = list(minterm)
                flipped[position] ^= 1
                other = outputs[minterm_cache.index(tuple(flipped))]
                if other[pin_out] != output[pin_out]:
                    # Weight of the minterm *excluding* this input's
                    # factor (computed directly: the probability may be
                    # exactly 0/1 for constant-fed pins).
                    partial = 1.0
                    for index, bit in enumerate(minterm):
                        if index == position:
                            continue
                        p = input_probabilities[index]
                        partial *= p if bit else (1.0 - p)
                    # Each sensitised pair (m, m^e_i) is counted from both
                    # sides; halve at the end by counting each once here.
                    sensitised[position] += partial / 2.0
        density = sum(
            sensitised[position] * input_densities[position]
            for position in range(n)
        )
        results.append((probability, density))
    return results


def _cell_settled_toggle(
    cell_type, input_probabilities, input_toggles
) -> list[float]:
    """Exact synchronous toggle probability per output.

    Models one clock cycle as an independent (previous, next) pair per
    input with marginals ``p`` and toggle rate ``d``: the transition
    distribution is ``P(0→1) = P(1→0) = d/2``, ``P(1→1) = p − d/2``,
    ``P(0→0) = 1 − p − d/2``.  Enumerating all input transition pairs
    gives the probability that the output's settled value changes —
    which, unlike the Najm density, does *not* count simultaneous input
    transitions that cancel inside the cell (e.g. XOR of two toggling
    inputs).
    """
    n = cell_type.n_inputs
    if n == 0:
        return [0.0] * cell_type.n_outputs

    transition_probability = []
    for p, d in zip(input_probabilities, input_toggles):
        half = min(d / 2.0, p, 1.0 - p)  # keep the joint law well-formed
        transition_probability.append({
            (0, 0): max(1.0 - p - half, 0.0),
            (0, 1): half,
            (1, 0): half,
            (1, 1): max(p - half, 0.0),
        })

    toggles = [0.0] * cell_type.n_outputs
    for previous in itertools.product((0, 1), repeat=n):
        out_prev = cell_type.evaluate(previous)
        for current in itertools.product((0, 1), repeat=n):
            weight = 1.0
            for position in range(n):
                weight *= transition_probability[position][
                    (previous[position], current[position])
                ]
            if weight == 0.0:
                continue
            out_next = cell_type.evaluate(current)
            for pin in range(cell_type.n_outputs):
                if out_prev[pin] != out_next[pin]:
                    toggles[pin] += weight
    return toggles


def propagate(
    netlist: Netlist,
    input_probability: float = 0.5,
    input_density: float = 0.5,
) -> tuple[dict[int, float], dict[int, float], dict[int, float]]:
    """Propagate probabilities and both density flavours through the logic.

    Primary inputs and flip-flop outputs carry ``input_probability`` and
    ``input_density`` (a fresh uniform word toggles each bit with
    probability 1/2, i.e. density 0.5).  Returns
    ``(probabilities, najm_densities, settled_densities)``.
    """
    probabilities: dict[int, float] = {}
    densities: dict[int, float] = {}
    settled: dict[int, float] = {}
    for net in netlist.primary_inputs:
        probabilities[net] = input_probability
        densities[net] = input_density
        settled[net] = input_density
    for instance in netlist.cells:
        if instance.cell_type.sequential:
            probabilities[instance.outputs[0]] = input_probability
            densities[instance.outputs[0]] = input_density
            settled[instance.outputs[0]] = input_density

    for cell_index in netlist.combinational_order():
        instance = netlist.cells[cell_index]
        in_p = [probabilities[net] for net in instance.inputs]
        in_d = [densities[net] for net in instance.inputs]
        in_s = [settled[net] for net in instance.inputs]
        stats = _cell_output_stats(instance.cell_type, in_p, in_d)
        settled_toggles = _cell_settled_toggle(instance.cell_type, in_p, in_s)
        for pin, net in enumerate(instance.outputs):
            probabilities[net] = stats[pin][0]
            densities[net] = stats[pin][1]
            settled[net] = settled_toggles[pin]
    return probabilities, densities, settled


def estimate_activity(
    impl: MultiplierImplementation,
    input_density: float = 0.5,
) -> ProbabilisticReport:
    """Static activity estimate in the paper's normalisation.

    ``activity = Σ densities · cycles_per_result / (2 · N)`` per data
    cycle, mirroring the throughput-referenced definition (sequential
    circuits scale by their cycles per result).  Two flavours are
    returned: the Najm-density (glitch-inclusive) ``activity`` and the
    synchronous ``settled_activity``; the event-driven (inertial-delay)
    measurement falls between them.
    """
    probabilities, densities, settled = propagate(
        impl.netlist, input_density=input_density
    )
    najm_total = 0.0
    settled_total = 0.0
    for instance in impl.netlist.cells:
        for net in instance.outputs:
            najm_total += densities[net]
            settled_total += settled[net]
    scale = impl.cycles_per_result / (2.0 * impl.n_cells)
    return ProbabilisticReport(
        name=impl.name,
        n_cells=impl.n_cells,
        probabilities=probabilities,
        densities=densities,
        settled_densities=settled,
        activity=najm_total * scale,
        settled_activity=settled_total * scale,
    )
