"""Event-driven gate-level timing simulation (DESIGN.md S8).

This is the ModelSIM substitute: it propagates signal changes through the
netlist with per-cell transport delays, so unequal path arrival times
produce the spurious intermediate transitions (glitches) that dominate the
activity differences Section 4 discusses (diagonal vs. horizontal
pipelining).

Model:

* one clock domain; each internal clock cycle starts with a clock edge
  where every DFF/DFFE output assumes the value captured at the end of
  the previous cycle (clock-to-q delay applied), and primary-input
  changes are applied at time 0 of the cycle;
* combinational cells re-evaluate whenever an input-net value changes and
  schedule their new output value after the cell's per-output delay with
  **inertial semantics**: a re-evaluation cancels the net's still-pending
  event, so pulses narrower than the gate delay are filtered exactly as a
  real gate's output capacitance filters them (without this, an array
  multiplier's carry fabric amplifies glitch trains unboundedly and the
  measured activity loses all contact with the published values);
* every *delivered* change on a cell output counts one transition for
  that cell — the quantity the paper's activity ``a`` is built from;
* the settled value at the end of the cycle feeds the next clock edge's
  captures, and settled-value changes are tallied separately so the
  glitch share of the activity can be reported.

The simulator assumes the clock period exceeds the longest settle time
(zero-slack or better), which is exactly the operating condition the
paper's optimal working point enforces.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..netlist.netlist import Netlist


@dataclass
class SimulationStats:
    """Raw counters accumulated over a simulation run."""

    cycles: int = 0
    transitions_per_cell: list[int] = field(default_factory=list)
    settled_transitions_per_cell: list[int] = field(default_factory=list)

    @property
    def total_transitions(self) -> int:
        """All delivered output transitions (glitches included)."""
        return sum(self.transitions_per_cell)

    @property
    def settled_transitions(self) -> int:
        """Cycle-boundary value changes only (the glitch-free baseline)."""
        return sum(self.settled_transitions_per_cell)

    @property
    def glitch_transitions(self) -> int:
        """Transitions in excess of the settled (functional) ones."""
        return self.total_transitions - self.settled_transitions


class EventDrivenSimulator:
    """Timed simulation of one netlist with transition counting."""

    def __init__(self, netlist: Netlist):
        netlist.validate()
        self.netlist = netlist
        self._order = netlist.combinational_order()
        # net value store; index by net id.
        self.values = [0] * len(netlist.nets)
        self.state = {
            instance.index: 0
            for instance in netlist.cells
            if instance.cell_type.sequential
        }
        self.stats = SimulationStats(
            transitions_per_cell=[0] * len(netlist.cells),
            settled_transitions_per_cell=[0] * len(netlist.cells),
        )
        self._driver_of = {}
        for instance in netlist.cells:
            for net in instance.outputs:
                self._driver_of[net] = instance.index
        self._version = [0] * len(netlist.nets)
        self.counting = True
        self.settle_functional(input_values={net: 0 for net in netlist.primary_inputs})
        self.stats.cycles = 0

    # ------------------------------------------------------------------
    def settle_functional(self, input_values: dict[int, int]) -> None:
        """Zero-delay settle (used for reset/warm-up, counts nothing)."""
        for net, value in input_values.items():
            self.values[net] = value
        for instance in self.netlist.cells:
            if instance.cell_type.sequential:
                self.values[instance.outputs[0]] = self.state[instance.index]
        for cell_index in self._order:
            instance = self.netlist.cells[cell_index]
            inputs = tuple(self.values[net] for net in instance.inputs)
            for net, value in zip(instance.outputs, instance.cell_type.evaluate(inputs)):
                self.values[net] = value

    # ------------------------------------------------------------------
    def run_cycle(self, input_values: dict[int, int]) -> None:
        """Simulate one clock cycle with event timing.

        ``input_values`` are the primary-input levels for this cycle.
        """
        netlist = self.netlist
        queue: list[tuple[float, int, int, int, int]] = []
        sequence = 0  # tie-breaker keeps heap ordering deterministic
        # Inertial model: one pending transaction per net; a newer schedule
        # invalidates the older one via a per-net version stamp.
        version = self._version

        before_settle = None
        if self.counting:
            before_settle = list(self.values)

        def schedule(time: float, net: int, value: int) -> None:
            nonlocal sequence
            version[net] += 1
            heapq.heappush(queue, (time, sequence, net, value, version[net]))
            sequence += 1

        # 1. Clock edge: captured state appears at clock-to-q.
        for instance in netlist.cells:
            if not instance.cell_type.sequential:
                continue
            q_net = instance.outputs[0]
            new_value = self.state[instance.index]
            if self.values[q_net] != new_value:
                schedule(instance.cell_type.delay_units[0], q_net, new_value)

        # 2. Primary-input changes at time zero.
        for net, value in input_values.items():
            if self.values[net] != value:
                schedule(0.0, net, value)

        # 3. Inertial-delay event loop.
        while queue:
            time, _, net, value, stamp = heapq.heappop(queue)
            if stamp != version[net]:
                continue  # superseded: pulse narrower than the gate delay
            if self.values[net] == value:
                continue  # settles to the value it already has
            self.values[net] = value
            driver = self._driver_of.get(net)
            if driver is not None and self.counting:
                self.stats.transitions_per_cell[driver] += 1
            for consumer_index, _pin in netlist.nets[net].fanout:
                consumer = netlist.cells[consumer_index]
                if consumer.cell_type.sequential:
                    continue  # state sampled at the next edge
                inputs = tuple(self.values[n] for n in consumer.inputs)
                outputs = consumer.cell_type.evaluate(inputs)
                for pin, out_net in enumerate(consumer.outputs):
                    schedule(
                        time + consumer.cell_type.delay_units[pin],
                        out_net,
                        outputs[pin],
                    )

        # 4. Settled-value accounting (glitch-free baseline).
        if self.counting and before_settle is not None:
            for instance in netlist.cells:
                if instance.cell_type.sequential:
                    continue
                for net in instance.outputs:
                    if self.values[net] != before_settle[net]:
                        self.stats.settled_transitions_per_cell[instance.index] += 1
            for instance in netlist.cells:
                if instance.cell_type.sequential:
                    q_net = instance.outputs[0]
                    if self.values[q_net] != before_settle[q_net]:
                        self.stats.settled_transitions_per_cell[instance.index] += 1

        # 5. Capture the next state at the (implicit) end-of-cycle edge.
        for instance in netlist.cells:
            if not instance.cell_type.sequential:
                continue
            data = self.values[instance.inputs[0]]
            if instance.cell_type.name == "DFFE":
                enable = self.values[instance.inputs[1]]
                if enable:
                    self.state[instance.index] = data
            else:
                self.state[instance.index] = data

        if self.counting:
            self.stats.cycles += 1

    # ------------------------------------------------------------------
    def warm_up(self, cycles: int, input_values: dict[int, int]) -> None:
        """Run cycles without counting (drains the power-up transient)."""
        self.counting = False
        for _ in range(cycles):
            self.run_cycle(input_values)
        self.counting = True
