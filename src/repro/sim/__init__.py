"""Event-driven timing simulation and activity extraction (DESIGN.md S8)."""

from .activity import ActivityReport, measure_activity
from .parameters import extract_parameters
from .probabilistic import ProbabilisticReport, estimate_activity, propagate
from .simulator import EventDrivenSimulator, SimulationStats
from .vectors import correlated_pairs, sparse_pairs, uniform_pairs

__all__ = [
    "ActivityReport",
    "EventDrivenSimulator",
    "ProbabilisticReport",
    "SimulationStats",
    "correlated_pairs",
    "estimate_activity",
    "extract_parameters",
    "propagate",
    "measure_activity",
    "sparse_pairs",
    "uniform_pairs",
]
