"""Bridge from generated netlists to the paper's effective parameters.

This closes the native (end-to-end) flow: a generated multiplier plus a
characterised technology yields the :class:`ArchitectureParameters` that
Eq. 13 and the numerical optimiser consume —

* ``N``     — cell count of the netlist;
* ``a``     — timed-simulation activity (glitches included);
* ``C``     — transition-weighted average cell capacitance;
* ``LDeff`` — STA critical path × sequencing factors, in inverter units
  (so ``zeta_factor`` stays 1: the characterised ζ *is* the inverter ζ);
* ``io_factor`` — average per-cell leakage in inverter units, from the
  cell library's transistor counts.
"""

from __future__ import annotations

from ..core.architecture import ArchitectureParameters
from ..generators.base import MultiplierImplementation
from ..sta.analysis import effective_logical_depth
from .activity import ActivityReport, measure_activity


def extract_parameters(
    impl: MultiplierImplementation,
    activity_report: ActivityReport | None = None,
    n_vectors: int = 200,
    seed: int = 2006,
    name: str | None = None,
) -> ArchitectureParameters:
    """Derive the Eq. 13 inputs for a generated implementation.

    Pass a pre-computed ``activity_report`` to avoid re-simulating (the
    experiment runners measure once and reuse).
    """
    if activity_report is None:
        activity_report = measure_activity(impl, n_vectors=n_vectors, seed=seed)

    netlist = impl.netlist
    return ArchitectureParameters(
        name=name or impl.name,
        n_cells=netlist.n_cells,
        activity=activity_report.activity,
        logical_depth=effective_logical_depth(impl),
        capacitance=activity_report.effective_capacitance,
        area=netlist.area_um2,
        io_factor=netlist.average_leak_units,
        zeta_factor=1.0,
    )
