"""Extraction of the paper's reduced model from 'measured' device data.

Mirrors the authors' flow: fit Eq. 1's sub-threshold exponential and
Eq. 2's alpha-power law to inverter I–V data, then fit Eq. 4's delay
coefficient ``ζ`` on ring-oscillator delays (Section 5: "technology
parameters … obtained with ELDO simulations by fitting delays on inverter
chains ring oscillators").

Steps:

1. **weak inversion** — linear regression of ``ln I`` against ``Vgs`` well
   below threshold gives the slope factor ``n``;
2. **threshold + alpha** — for candidate thresholds, regress ``ln I``
   against ``ln(Vgs − Vth)`` in strong inversion; the ``Vth`` minimising
   the residual wins and its slope is ``α``;
3. **off-current** — ``Io`` is the weak-inversion extrapolation evaluated
   at the fitted ``Vth`` (the paper defines ``Io`` at ``Vgs = Vth``);
4. **delay coefficient** — least squares of measured stage delays against
   ``ζ·Vdd/Ion(Vdd)`` with ``Ion`` from the already-fitted parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.constants import EULER
from ..core.technology import Technology
from .spice import SyntheticDevice


@dataclass(frozen=True)
class DeviceFit:
    """Recovered reduced-model parameters and their fit residuals."""

    io: float
    n: float
    alpha: float
    vth: float
    subthreshold_residual: float
    alpha_residual: float


@dataclass(frozen=True)
class DelayFit:
    """Recovered Eq. 4 coefficient and its relative RMS residual."""

    zeta: float
    relative_rms_error: float


def fit_subthreshold(vgs: np.ndarray, current: np.ndarray, ut: float, vth_guess: float):
    """Weak-inversion fit; returns ``(n, intercept_fn, residual)``.

    ``intercept_fn(v)`` evaluates the fitted exponential at gate voltage
    ``v`` — used later to read off ``Io`` at the fitted threshold.
    """
    # Stay well below threshold: the weak/strong transition contaminates
    # the exponential within ~2 knee-widths of Vth.
    mask = vgs < vth_guess - 0.2
    if mask.sum() < 4:
        raise ValueError(
            f"need at least 4 sub-threshold samples below {vth_guess - 0.16:.2f} V"
        )
    x = vgs[mask]
    y = np.log(current[mask])
    design = np.column_stack([x, np.ones_like(x)])
    (slope, intercept), *_ = np.linalg.lstsq(design, y, rcond=None)
    residual = float(np.sqrt(np.mean((design @ [slope, intercept] - y) ** 2)))
    n = 1.0 / (slope * ut)

    def evaluate(v: float) -> float:
        return float(np.exp(slope * v + intercept))

    return float(n), evaluate, residual


def fit_alpha_power(vgs: np.ndarray, current: np.ndarray, vth_guess: float):
    """Strong-inversion fit; returns ``(alpha, vth, residual)``.

    Scans candidate thresholds around the guess and keeps the one whose
    ``ln I`` vs ``ln(Vgs − Vth)`` regression has the smallest residual.
    """
    best = None
    for vth in np.linspace(vth_guess - 0.15, vth_guess + 0.15, 61):
        mask = vgs > vth + 0.25
        if mask.sum() < 4:
            continue
        x = np.log(vgs[mask] - vth)
        y = np.log(current[mask])
        design = np.column_stack([x, np.ones_like(x)])
        (slope, intercept), *_ = np.linalg.lstsq(design, y, rcond=None)
        residual = float(np.sqrt(np.mean((design @ [slope, intercept] - y) ** 2)))
        if best is None or residual < best[2]:
            best = (float(slope), float(vth), residual)
    if best is None:
        raise ValueError("no candidate threshold leaves enough strong-inversion samples")
    return best


def fit_device(
    device: SyntheticDevice,
    vgs_range: tuple[float, float] = (0.05, 1.2),
    samples: int = 240,
    noise_relative: float = 0.01,
    seed: int = 9,
) -> DeviceFit:
    """Full I–V extraction for one device flavour."""
    vgs = np.linspace(vgs_range[0], vgs_range[1], samples)
    vgs, current = device.iv_curve(vgs, noise_relative=noise_relative, seed=seed)

    alpha, vth, alpha_residual = fit_alpha_power(vgs, current, device.vth0)
    n, weak_at, weak_residual = fit_subthreshold(vgs, current, device.ut, vth)
    io = weak_at(vth)
    return DeviceFit(
        io=io,
        n=n,
        alpha=alpha,
        vth=vth,
        subthreshold_residual=weak_residual,
        alpha_residual=alpha_residual,
    )


def on_current_model(fit: DeviceFit, ut: float, vdd: np.ndarray) -> np.ndarray:
    """Eq. 2 evaluated with fitted parameters at ``Vgs = Vdd``."""
    overdrive = np.maximum(vdd - fit.vth, 1e-6)
    return fit.io * (EULER / (fit.n * ut)) ** fit.alpha * overdrive**fit.alpha


def fit_delay_coefficient(
    device: SyntheticDevice,
    fit: DeviceFit,
    vdd_range: tuple[float, float] | None = None,
    samples: int = 40,
    noise_relative: float = 0.01,
    seed: int = 19,
) -> DelayFit:
    """Relative least-squares ``ζ`` from ring-oscillator delays (Eq. 4).

    The fit window starts well above threshold (Eq. 2 has no validity
    below it) and the residual is *relative*, so the millisecond-scale
    near-threshold delays cannot dominate the nanosecond-scale nominal
    ones.
    """
    if vdd_range is None:
        vdd_range = (max(fit.vth + 0.3, 0.5), 1.2)
    vdd = np.linspace(vdd_range[0], vdd_range[1], samples)
    vdd, delays = device.ring_oscillator_delays(
        vdd, noise_relative=noise_relative, seed=seed
    )
    basis = vdd / on_current_model(fit, device.ut, vdd)  # delay per unit zeta
    # Minimise sum(((zeta*basis - delay)/delay)^2).
    ratio = basis / delays
    zeta = float(np.sum(ratio) / np.sum(ratio**2))
    relative = (zeta * basis - delays) / delays
    return DelayFit(
        zeta=zeta, relative_rms_error=float(np.sqrt(np.mean(relative**2)))
    )


def characterize(device: SyntheticDevice, name: str | None = None) -> Technology:
    """Run the full extraction and package it as a :class:`Technology`."""
    device_fit = fit_device(device)
    delay_fit = fit_delay_coefficient(device, device_fit)
    return Technology(
        name=name or f"{device.name}-fit",
        io=device_fit.io,
        zeta=delay_fit.zeta,
        alpha=min(max(device_fit.alpha, 1.0), 2.0),
        n=device_fit.n,
        vdd_nominal=1.2,
        vth0_nominal=device_fit.vth,
        eta=device.eta,
        temperature=device.temperature,
    )
