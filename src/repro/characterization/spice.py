"""Synthetic transistor model — the stand-in for ELDO/SPICE decks.

The paper extracted its Table 2 parameters "with Spice simulations (ELDO
from Mentor Graphics) for inverter cells" and "by fitting delays on
inverter chains ring oscillators".  We have no ST device decks, so this
module provides an *analytic* device whose I–V curve is deliberately not
the paper's reduced model: a smooth EKV-flavoured interpolation

    ``I(Vgs) = Ispec · [α·n·Ut · softplus((Vgs − Vth)/(α·n·Ut))]^α``

which tends to ``exp((Vgs − Vth)/(n·Ut))`` in weak inversion (correct
sub-threshold slope) and to the alpha-power law ``(Vgs − Vth)^α`` in
strong inversion.  Fitting the paper's piecewise model (Eqs. 1–2) to
noisy samples of this smooth curve exercises the same extraction flow the
authors ran, and the recovered parameters land on the generating values
only approximately — as they would on silicon.

The native device flavours are scaled so the characterised technologies
keep Table 2's ratios between HS/LL/ULL while producing a ``ζ`` that
makes all thirteen generated netlists feasible at the paper's 31.25 MHz
(see DESIGN.md on the published-ζ inconsistency).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.constants import thermal_voltage


@dataclass(frozen=True)
class SyntheticDevice:
    """An analytic 'transistor' with a smooth weak-to-strong transition.

    Attributes
    ----------
    io:
        Target off-current at ``Vgs = Vth`` [A] (the Table 2 ``Io``).
    n:
        Weak-inversion slope factor.
    alpha:
        Strong-inversion power-law exponent.
    vth0:
        Zero-bias threshold voltage [V].
    c_load:
        Inverter-chain load used by the ring-oscillator "measurement" [F];
        this is what the fitted ``ζ`` mostly reflects.
    eta:
        DIBL coefficient (``Vth = Vth0 − η·Vdd``).
    temperature:
        Junction temperature [K].
    """

    name: str
    io: float
    n: float
    alpha: float
    vth0: float
    c_load: float
    eta: float = 0.0
    temperature: float = 300.0

    @property
    def ut(self) -> float:
        """Thermal voltage at the device temperature [V]."""
        return thermal_voltage(self.temperature)

    @property
    def _gamma(self) -> float:
        """Interpolation knee width ``α·n·Ut`` [V]."""
        return self.alpha * self.n * self.ut

    @property
    def _ispec(self) -> float:
        """Normalisation chosen so ``I(Vth) == io`` exactly."""
        return self.io / (self._gamma * math.log(2.0)) ** self.alpha

    def current(self, vgs, vds: float | None = None):
        """Drain current [A] for gate voltage(s) ``vgs`` (vectorised).

        ``vds`` (defaults to ``vgs``, the inverter switching condition)
        only matters through DIBL.
        """
        vgs = np.asarray(vgs, dtype=float)
        if vds is None:
            vds = vgs
        vth = self.vth0 - self.eta * np.asarray(vds, dtype=float)
        x = (vgs - vth) / self._gamma
        # log1p(exp(x)) computed stably on both tails.
        softplus = np.where(x > 30.0, x, np.log1p(np.exp(np.minimum(x, 30.0))))
        return self._ispec * (self._gamma * softplus) ** self.alpha

    def iv_curve(
        self,
        vgs_points,
        noise_relative: float = 0.01,
        seed: int = 9,
    ) -> tuple[np.ndarray, np.ndarray]:
        """A 'measured' I–V sweep with multiplicative log-normal noise."""
        rng = np.random.default_rng(seed)
        vgs = np.asarray(list(vgs_points), dtype=float)
        current = self.current(vgs)
        noise = rng.normal(0.0, noise_relative, size=vgs.shape)
        return vgs, current * np.exp(noise)

    def stage_delay(self, vdd) -> np.ndarray:
        """Inverter-chain stage delay ``C_load·Vdd/I(Vdd)`` [s]."""
        vdd = np.asarray(vdd, dtype=float)
        return self.c_load * vdd / self.current(vdd)

    def ring_oscillator_delays(
        self,
        vdd_points,
        noise_relative: float = 0.01,
        seed: int = 19,
    ) -> tuple[np.ndarray, np.ndarray]:
        """'Measured' per-stage delays over a supply sweep, with noise."""
        rng = np.random.default_rng(seed)
        vdd = np.asarray(list(vdd_points), dtype=float)
        delay = self.stage_delay(vdd)
        noise = rng.normal(0.0, noise_relative, size=vdd.shape)
        return vdd, delay * np.exp(noise)


#: Native device flavours.  Io/α/Vth0 follow Table 2; c_load keeps
#: Table 2's HS:LL:ULL ζ ratios at a magnitude where every generated
#: netlist (including the LDeff≈660 sequential multiplier) stays feasible
#: at 31.25 MHz.  The *fitted* ζ comes out ~15× larger than c_load
#: because Eq. 2's prefactor anchors the on-current differently than the
#: smooth device — exactly the kind of mismatch the paper's ζ is defined
#: to absorb ("a fitting parameter, which also includes the switched gate
#: capacitance").
SYNTH_DEVICES = {
    "LL": SyntheticDevice(
        name="synth-LL", io=3.34e-6, n=1.33, alpha=1.86, vth0=0.354,
        c_load=77e-15,
    ),
    "HS": SyntheticDevice(
        name="synth-HS", io=7.08e-6, n=1.33, alpha=1.58, vth0=0.328,
        c_load=85e-15,
    ),
    "ULL": SyntheticDevice(
        name="synth-ULL", io=2.11e-6, n=1.33, alpha=1.95, vth0=0.466,
        c_load=105e-15,
    ),
}


def device(label: str) -> SyntheticDevice:
    """Look up a synthetic device flavour by Table 2 label."""
    try:
        return SYNTH_DEVICES[label.upper()]
    except KeyError:
        known = ", ".join(sorted(SYNTH_DEVICES))
        raise KeyError(f"unknown device flavour {label!r}; known: {known}")
