"""Technology characterisation: synthetic SPICE + parameter extraction
(DESIGN.md S10)."""

from functools import lru_cache

from .fitting import (
    DelayFit,
    DeviceFit,
    characterize,
    fit_alpha_power,
    fit_delay_coefficient,
    fit_device,
    fit_subthreshold,
)
from .spice import SYNTH_DEVICES, SyntheticDevice, device


@lru_cache(maxsize=None)
def native_technology(label: str):
    """The characterised native flavour ('LL', 'HS' or 'ULL'), cached.

    This is what the end-to-end (netlist-driven) experiments run on: a
    :class:`~repro.core.technology.Technology` whose every parameter came
    out of our own extraction flow rather than the published Table 2.
    """
    return characterize(device(label), name=f"native-{label.upper()}")


__all__ = [
    "DelayFit",
    "DeviceFit",
    "SYNTH_DEVICES",
    "SyntheticDevice",
    "characterize",
    "device",
    "fit_alpha_power",
    "fit_delay_coefficient",
    "fit_device",
    "fit_subthreshold",
    "native_technology",
]
