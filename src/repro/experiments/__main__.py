"""Entry point: ``python -m repro.experiments`` runs the full battery."""

from .runner import run_all

run_all()
