"""Experiments F3/F4 — the pipelined-array structure figures.

Figures 3 and 4 are schematics of the 8-bit RCA multiplier with
horizontal and diagonal register insertion.  Their reproducible content
is structural, and that is what this experiment regenerates:

* register counts added by each cut style (the figures' flip-flop rows);
* per-stage logic depth (how evenly each style balances the pipeline);
* the measured activity/glitch consequence of the style — the reason
  Section 4 concludes the diagonal cut's shorter critical path is paid
  for in glitches.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..generators.array_mult import build_array_multiplier
from ..sim.activity import ActivityReport, measure_activity
from ..sta.analysis import analyze_timing
from .report import render_table


@dataclass(frozen=True)
class PipelineStructure:
    """Structural summary of one pipelined array variant."""

    name: str
    style: str | None
    n_stages: int
    n_cells: int
    n_registers: int
    registers_added: int
    critical_path: float
    mean_arrival_spread: float
    activity: float
    glitch_ratio: float


@dataclass(frozen=True)
class Figures34Result:
    """All variants of the comparison (basic + hor/diag × stage counts)."""

    width: int
    variants: list[PipelineStructure]

    def variant(self, name: str) -> PipelineStructure:
        for candidate in self.variants:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no variant named {name!r}")

    def render(self) -> str:
        headers = [
            "variant", "stages", "cells", "DFFs", "+regs", "crit.path",
            "arr.spread", "activity", "glitch",
        ]
        rows = [
            [
                variant.name,
                str(variant.n_stages),
                str(variant.n_cells),
                str(variant.n_registers),
                f"+{variant.registers_added}",
                f"{variant.critical_path:.1f}",
                f"{variant.mean_arrival_spread:.2f}",
                f"{variant.activity:.4f}",
                f"{variant.glitch_ratio:.2f}",
            ]
            for variant in self.variants
        ]
        return render_table(
            headers,
            rows,
            title=(
                f"Figures 3/4: register insertion in the {self.width}-bit "
                f"RCA array (horizontal vs diagonal cuts)"
            ),
        )


def _structure(
    width: int, n_stages: int, style: str | None, base_registers: int,
    n_vectors: int,
) -> PipelineStructure:
    impl = build_array_multiplier(width, n_stages=n_stages, style=style)
    timing = analyze_timing(impl.netlist)
    activity: ActivityReport = measure_activity(impl, n_vectors=n_vectors)
    registers = impl.netlist.cell_counts().get("DFF", 0)
    return PipelineStructure(
        name=impl.name,
        style=style,
        n_stages=n_stages,
        n_cells=impl.n_cells,
        n_registers=registers,
        registers_added=registers - base_registers,
        critical_path=timing.critical_path_length,
        mean_arrival_spread=timing.mean_arrival_spread,
        activity=activity.activity,
        glitch_ratio=activity.glitch_ratio,
    )


def run_figures34(width: int = 8, n_vectors: int = 120) -> Figures34Result:
    """Regenerate the structural comparison at the figures' 8-bit width."""
    base = build_array_multiplier(width)
    base_registers = base.netlist.cell_counts().get("DFF", 0)
    variants = [
        _structure(width, 1, None, base_registers, n_vectors),
        _structure(width, 2, "horizontal", base_registers, n_vectors),
        _structure(width, 2, "diagonal", base_registers, n_vectors),
        _structure(width, 4, "horizontal", base_registers, n_vectors),
        _structure(width, 4, "diagonal", base_registers, n_vectors),
    ]
    return Figures34Result(width=width, variants=variants)
