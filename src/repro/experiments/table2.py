"""Experiment T2 — regenerate Table 2 (technology parameters).

Table 2 lists the extracted ST CMOS09 parameters per flavour.  We cannot
re-run ELDO on ST decks, so the regeneration has two parts:

* the published values themselves (transcribed in ``paper_data``), and
* our own extraction flow run on the synthetic devices
  (:mod:`repro.characterization`), demonstrating the same procedure the
  authors describe and reporting how faithfully the fit recovers the
  generating parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..characterization import device, native_technology
from ..core.technology import Technology
from .paper_data import TABLE2
from .report import render_table


@dataclass(frozen=True)
class Table2Result:
    """Published and characterised parameter sets, per flavour."""

    fitted: dict[str, Technology]

    def render(self) -> str:
        headers = [
            "flavour", "source", "Vdd nom [V]", "Vth0 [V]", "Io [uA]",
            "zeta [pF]", "alpha",
        ]
        rows = []
        for label in ("ULL", "LL", "HS"):
            published = TABLE2[label]
            rows.append([
                label, "paper",
                f"{published['vdd_nominal']:.1f}",
                f"{published['vth0_nominal']:.3f}",
                f"{published['io'] * 1e6:.2f}",
                f"{published['zeta'] * 1e12:.1f}",
                f"{published['alpha']:.2f}",
            ])
            fitted = self.fitted[label]
            rows.append([
                label, "our fit",
                f"{fitted.vdd_nominal:.1f}",
                f"{fitted.vth0_nominal:.3f}",
                f"{fitted.io * 1e6:.2f}",
                f"{fitted.zeta * 1e12:.2f}",
                f"{fitted.alpha:.2f}",
            ])
        return render_table(
            headers, rows, title="Table 2: technology parameters (ST CMOS09)"
        )

    def ordering_checks(self) -> dict[str, bool]:
        """The relations Section 5 builds its argument on."""
        fitted = self.fitted
        return {
            "io: ULL < LL < HS": fitted["ULL"].io < fitted["LL"].io < fitted["HS"].io,
            "alpha: HS < LL < ULL": (
                fitted["HS"].alpha < fitted["LL"].alpha < fitted["ULL"].alpha
            ),
            "vth0: HS < LL < ULL": (
                fitted["HS"].vth0_nominal
                < fitted["LL"].vth0_nominal
                < fitted["ULL"].vth0_nominal
            ),
            "zeta: LL < ULL (slow flavour)": fitted["LL"].zeta < fitted["ULL"].zeta,
        }


def run_table2() -> Table2Result:
    """Characterise every synthetic flavour and package the comparison."""
    fitted = {label: native_technology(label) for label in ("ULL", "LL", "HS")}
    # Touch the devices so a missing flavour fails loudly here, not in render.
    for label in fitted:
        device(label)
    return Table2Result(fitted=fitted)
