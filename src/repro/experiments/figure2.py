"""Experiment F2 — regenerate Figure 2 (the Eq. 7 linearisation).

Figure 2 shows ``Vdd**(1/alpha)`` for α = 1.5 over 0.3–0.9 V together
with its linear approximation — the step that makes the closed form
(Eq. 13) possible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.linearization import LinearFit, figure2_curves, fit_vdd_root
from .paper_data import FIGURE2_ALPHA, FIGURE2_RANGE
from .report import ascii_plot, render_table


@dataclass(frozen=True)
class Figure2Result:
    """Sampled curves and the underlying fit."""

    alpha: float
    vdd: np.ndarray
    exact: np.ndarray
    linear: np.ndarray
    fit: LinearFit

    def render(self) -> str:
        chart = ascii_plot(
            {
                "Vdd^(1/alpha)": (self.vdd, self.exact),
                "A*Vdd + B": (self.vdd, self.linear),
            },
            title=f"Figure 2: linearisation of Vdd^(1/alpha), alpha = {self.alpha:g}",
            xlabel="Vdd [V]",
            ylabel="Vdd^(1/alpha)",
            height=16,
        )
        headers = ["alpha", "range [V]", "A", "B", "max |err|", "rms err"]
        rows = [[
            f"{self.alpha:g}",
            f"{self.fit.vdd_min:g}-{self.fit.vdd_max:g}",
            f"{self.fit.a:.4f}",
            f"{self.fit.b:.4f}",
            f"{self.fit.max_abs_error:.4f}",
            f"{self.fit.rms_error:.4f}",
        ]]
        return chart + "\n\n" + render_table(headers, rows, title="fit quality")


def run_figure2(
    alpha: float = FIGURE2_ALPHA,
    vdd_range: tuple[float, float] = FIGURE2_RANGE,
    samples: int = 73,
) -> Figure2Result:
    """Sample the exact and linearised curves over the figure's range."""
    curves = figure2_curves(alpha=alpha, vdd_range=vdd_range, samples=samples)
    fit = fit_vdd_root(alpha, vdd_range)
    return Figure2Result(
        alpha=alpha,
        vdd=curves["vdd"],
        exact=curves["exact"],
        linear=curves["linear"],
        fit=fit,
    )
