"""Run every experiment and print the paper's tables and figures.

``python -m repro.experiments`` executes the full battery: Tables 1–4 in
calibrated mode, Table 1 in native (netlist-driven) mode, and Figures 1–4.
Used to produce EXPERIMENTS.md and as the integration smoke test.
"""

from __future__ import annotations

import time

from .figure1 import run_figure1
from .figure2 import run_figure2
from .figures3_4 import run_figures34
from .table1 import compare_to_published, run_table1_calibrated, run_table1_native
from .table2 import run_table2
from .wallace_family import run_table3, run_table4


def run_all(native_vectors: int = 150, verbose: bool = True) -> dict[str, object]:
    """Execute every experiment; returns results keyed by experiment id."""
    results: dict[str, object] = {}

    def stage(name: str, worker):
        start = time.perf_counter()
        results[name] = worker()
        elapsed = time.perf_counter() - start
        if verbose:
            print(f"\n=== {name} ({elapsed:.1f} s) " + "=" * 30)
            rendered = getattr(results[name], "render", None)
            if rendered is not None:
                print(rendered())

    stage("table1-calibrated", run_table1_calibrated)
    if verbose:
        print()
        print(compare_to_published(results["table1-calibrated"]))
    stage("table1-native", lambda: run_table1_native(n_vectors=native_vectors))
    if verbose:
        print()
        print(compare_to_published(results["table1-native"]))
    stage("table2", run_table2)
    stage("table3", run_table3)
    stage("table4", run_table4)
    stage("figure1", run_figure1)
    stage("figure2", run_figure2)
    stage("figures3-4", run_figures34)
    return results


if __name__ == "__main__":  # pragma: no cover - manual entry point
    run_all()
