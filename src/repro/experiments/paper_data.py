"""Every number published in the paper, as structured data.

This module is the single source of truth for paper-vs-measured
comparisons: Table 1 (thirteen 16-bit multipliers on ST LL), Table 2
(technology flavours), Tables 3–4 (Wallace family on ULL/HS), the fitted
linearisation constants, and the evaluation frequency.

Nothing here is computed — transcription only.  Power values are stored in
watts (the paper prints microwatts), areas in µm².
"""

from __future__ import annotations

from ..core.calibration import PublishedRow

#: Throughput frequency of every table: 31.25 MHz data clock.
PAPER_FREQUENCY = 31.25e6

#: Linearisation constants published in Section 4 for the LL flavour
#: (alpha = 1.86, fit range 0.3-1.0 V).
PAPER_A = 0.671
PAPER_B = 0.347

#: Other Section 4 model constants.
PAPER_ALPHA_LL = 1.86
PAPER_N = 1.33
PAPER_VT0_NOMINAL = 0.354
PAPER_VDD_NOMINAL = 1.2

#: Table 1 — all values at the optimal working point, f = 31.25 MHz, ST LL.
#: Columns: name, N, area, a, LDeff, Vdd, Vth, Pdyn, Pstat, Ptot,
#: Eq.13 Ptot, Eq.13 error %.
TABLE1_ROWS = [
    PublishedRow("RCA",            608, 11038, 0.5056,  61.00, 0.478, 0.213, 154.86e-6,  36.57e-6, 191.44e-6, 191.09e-6,  0.182),
    PublishedRow("RCA parallel",  1256, 22223, 0.2624,  30.50, 0.395, 0.233, 117.20e-6,  30.37e-6, 147.57e-6, 150.29e-6, -1.844),
    PublishedRow("RCA parallel4", 2455, 43735, 0.1344,  15.75, 0.359, 0.256, 100.51e-6,  26.39e-6, 126.90e-6, 129.93e-6, -2.384),
    PublishedRow("RCA hor.pipe2",  672, 12458, 0.3904,  40.00, 0.423, 0.225, 100.51e-6,  25.27e-6, 125.78e-6, 127.25e-6, -1.166),
    PublishedRow("RCA hor.pipe4",  800, 15298, 0.2944,  28.00, 0.394, 0.238,  81.54e-6,  20.94e-6, 102.48e-6, 104.34e-6, -1.819),
    PublishedRow("RCA diagpipe2",  670, 12684, 0.4064,  26.00, 0.407, 0.224,  98.65e-6,  25.50e-6, 124.15e-6, 126.11e-6, -1.581),
    PublishedRow("RCA diagpipe4",  812, 15762, 0.3456,  14.00, 0.366, 0.233,  82.83e-6,  22.52e-6, 105.35e-6, 108.04e-6, -2.559),
    PublishedRow("Wallace",        729, 11928, 0.2976,  17.00, 0.372, 0.236,  56.69e-6,  15.17e-6,  71.86e-6,  73.56e-6, -2.376),
    PublishedRow("Wallace parallel", 1465, 23993, 0.1568, 8.00, 0.341, 0.256,  55.64e-6,  15.06e-6,  70.69e-6,  72.58e-6, -2.676),
    PublishedRow("Wallace par4",  2939, 47271, 0.0832,   4.75, 0.333, 0.277,  58.04e-6,  15.26e-6,  73.30e-6,  75.01e-6, -2.335),
    PublishedRow("Sequential",     290,  4954, 2.9152, 224.00, 0.824, 0.173, 1134.00e-6, 184.48e-6, 1318.48e-6, 1318.94e-6, -0.035),
    PublishedRow("Seq4_16",        351,  6132, 0.2464, 120.00, 0.711, 0.228, 184.69e-6,  31.59e-6, 216.29e-6, 212.62e-6,  1.696),
    PublishedRow("Seq parallel",   322,  7276, 1.3280, 168.00, 0.817, 0.192, 888.19e-6, 142.07e-6, 1030.26e-6, 1028.97e-6,  0.124),
]

#: Table 1 rows keyed by architecture name.
TABLE1_BY_NAME = {row.name: row for row in TABLE1_ROWS}

#: Table 2 — published technology parameters (Vdd nom, Vth0 nom, Io, zeta,
#: alpha). Io in amperes, zeta in farads.
TABLE2 = {
    "ULL": {"vdd_nominal": 1.2, "vth0_nominal": 0.466, "io": 2.11e-6, "zeta": 7.5e-12, "alpha": 1.95},
    "LL":  {"vdd_nominal": 1.2, "vth0_nominal": 0.354, "io": 3.34e-6, "zeta": 5.5e-12, "alpha": 1.86},
    "HS":  {"vdd_nominal": 1.2, "vth0_nominal": 0.328, "io": 7.08e-6, "zeta": 6.1e-12, "alpha": 1.58},
}


def _family_row(name, vdd, vth, ptot, ptot_eq13, err):
    """Compact constructor for the Tables 3/4 Wallace-family rows."""
    return {
        "name": name,
        "vdd": vdd,
        "vth": vth,
        "ptot": ptot,
        "ptot_eq13": ptot_eq13,
        "eq13_error_percent": err,
    }


#: Table 3 — Wallace family on ULL at 31.25 MHz (only Vdd/Vth/Ptot columns
#: are published; N/a/LD are the Table 1 architecture inputs).
TABLE3_ROWS = [
    _family_row("Wallace",          0.409, 0.231, 84.79e-6, 86.03e-6, -1.47),
    _family_row("Wallace parallel", 0.363, 0.253, 76.24e-6, 78.02e-6, -2.33),
    _family_row("Wallace par4",     0.360, 0.281, 80.61e-6, 82.21e-6, -1.98),
]

#: Table 4 — Wallace family on HS at 31.25 MHz.
TABLE4_ROWS = [
    _family_row("Wallace",          0.398, 0.328,  99.56e-6, 100.33e-6, -0.78),
    _family_row("Wallace parallel", 0.383, 0.349, 110.27e-6, 111.39e-6, -1.01),
    _family_row("Wallace par4",     0.390, 0.376, 118.89e-6, 119.99e-6, -0.93),
]

#: Map from Table 3/4 names to the Table 1 rows carrying (N, a, LDeff).
WALLACE_FAMILY = ["Wallace", "Wallace parallel", "Wallace par4"]

#: Figure 1 — activities of the three plotted curves (16-bit RCA
#: multiplier, STM 0.13 µm HCMOS9GPLL).
FIGURE1_ACTIVITIES = (1.0, 0.1, 0.01)

#: Figure 2 — alpha and display range of the linearisation plot.
FIGURE2_ALPHA = 1.5
FIGURE2_RANGE = (0.3, 0.9)

#: Headline claim of the abstract: |Eq.13 error| < 3 % on all 13 multipliers.
MAX_ABS_EQ13_ERROR_PERCENT = 3.0
