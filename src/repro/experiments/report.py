"""Plain-text rendering for tables and figures.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output aligned, diff-able and free of plotting
dependencies (figures render as ASCII charts).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Align ``rows`` under ``headers``; floats are pre-formatted by caller."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(headers[column]), *(len(row[column]) for row in cells))
        if cells
        else len(headers[column])
        for column in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells:
        lines.append("  ".join(value.rjust(w) for value, w in zip(row, widths)))
    return "\n".join(lines)


def microwatts(power_watts: float) -> str:
    """Format a power in microwatts with two decimals (Table 1 style)."""
    return f"{power_watts * 1e6:.2f}"


def ascii_plot(
    series: dict[str, tuple[np.ndarray, np.ndarray]],
    width: int = 72,
    height: int = 20,
    logy: bool = False,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render named (x, y) series as an ASCII chart.

    Each series gets a distinct marker; NaN points are skipped.  Good
    enough to eyeball the U-shaped Figure 1 curves and the Figure 2
    linearisation without matplotlib.
    """
    markers = "ox+*#@%&"
    all_x = np.concatenate([x for x, _ in series.values()])
    all_y = np.concatenate([y for _, y in series.values()])
    finite = np.isfinite(all_x) & np.isfinite(all_y)
    if logy:
        finite &= all_y > 0
    if not finite.any():
        raise ValueError("nothing to plot: no finite points")
    x_lo, x_hi = float(all_x[finite].min()), float(all_x[finite].max())
    y_values = np.log10(all_y[finite]) if logy else all_y[finite]
    y_lo, y_hi = float(y_values.min()), float(y_values.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (name, (xs, ys)) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for x, y in zip(xs, ys):
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            if logy:
                if y <= 0:
                    continue
                y = math.log10(y)
            column = int((x - x_lo) / (x_hi - x_lo) * (width - 1))
            row = int((y - y_lo) / (y_hi - y_lo) * (height - 1))
            grid[height - 1 - row][column] = marker

    lines = []
    if title:
        lines.append(title)
    y_top = f"{10**y_hi:.3g}" if logy else f"{y_hi:.3g}"
    y_bottom = f"{10**y_lo:.3g}" if logy else f"{y_lo:.3g}"
    lines.append(f"{ylabel} [{y_bottom} .. {y_top}]" + (" (log)" if logy else ""))
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append(f" {xlabel}: {x_lo:.3g} .. {x_hi:.3g}")
    legend = "   ".join(
        f"{markers[index % len(markers)]} {name}"
        for index, name in enumerate(series)
    )
    lines.append(" " + legend)
    return "\n".join(lines)
