"""Regeneration of every table and figure in the paper (DESIGN.md S11)."""

from .figure1 import Figure1Result, run_figure1
from .figure2 import Figure2Result, run_figure2
from .figures3_4 import Figures34Result, run_figures34
from .paper_data import (
    PAPER_FREQUENCY,
    TABLE1_BY_NAME,
    TABLE1_ROWS,
    TABLE2,
    TABLE3_ROWS,
    TABLE4_ROWS,
)
from .report import ascii_plot, microwatts, render_table
from .runner import run_all
from .table1 import (
    Table1Result,
    Table1Row,
    compare_to_published,
    run_table1_calibrated,
    run_table1_native,
)
from .table2 import Table2Result, run_table2
from .wallace_family import (
    WallaceFamilyResult,
    WallaceFamilyRow,
    run_table3,
    run_table4,
)

__all__ = [
    "Figure1Result",
    "Figure2Result",
    "Figures34Result",
    "PAPER_FREQUENCY",
    "TABLE1_BY_NAME",
    "TABLE1_ROWS",
    "TABLE2",
    "TABLE3_ROWS",
    "TABLE4_ROWS",
    "Table1Result",
    "Table1Row",
    "Table2Result",
    "WallaceFamilyResult",
    "WallaceFamilyRow",
    "ascii_plot",
    "compare_to_published",
    "microwatts",
    "render_table",
    "run_all",
    "run_figure1",
    "run_figure2",
    "run_figures34",
    "run_table1_calibrated",
    "run_table1_native",
    "run_table2",
    "run_table3",
    "run_table4",
]
