"""Experiment F1 — regenerate Figure 1.

Figure 1 plots total power against supply voltage along the zero-slack
constraint for a 16-bit RCA multiplier at three activities (a = 1, 0.1,
0.01), marks each curve's optimal working point, and annotates the
dynamic/static power ratio there.  It is the paper's motivating picture:
lower activity lowers the achievable power but pushes the optimum to a
*higher* Vdd and Vth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.architecture import ArchitectureParameters
from ..core.calibration import calibrate_row
from ..core.numerical import constrained_total_power, numerical_optimum
from ..core.optimum import OperatingPoint
from ..core.technology import ST_CMOS09_LL, Technology
from .paper_data import FIGURE1_ACTIVITIES, PAPER_FREQUENCY, TABLE1_BY_NAME
from .report import ascii_plot, render_table


@dataclass(frozen=True)
class Figure1Curve:
    """One activity's constrained power curve plus its optimum."""

    activity: float
    vdd: np.ndarray
    ptot: np.ndarray
    optimum: OperatingPoint

    @property
    def dynamic_static_ratio(self) -> float:
        """The Pdyn/Pstat annotation printed next to each cross mark."""
        return self.optimum.dynamic_static_ratio


@dataclass(frozen=True)
class Figure1Result:
    """All curves of the figure."""

    technology: Technology
    curves: list[Figure1Curve]

    def render(self) -> str:
        series = {
            f"a={curve.activity:g}": (curve.vdd, curve.ptot * 1e6)
            for curve in self.curves
        }
        chart = ascii_plot(
            series,
            logy=True,
            title=(
                "Figure 1: total power along the timing constraint "
                f"({self.technology.name}, 16-bit RCA multiplier)"
            ),
            xlabel="Vdd [V]",
            ylabel="Ptot [uW]",
        )
        headers = ["activity", "Vdd*", "Vth*", "Ptot* [uW]", "Pdyn/Pstat"]
        rows = [
            [
                f"{curve.activity:g}",
                f"{curve.optimum.vdd:.3f}",
                f"{curve.optimum.vth:.3f}",
                f"{curve.optimum.ptot * 1e6:.2f}",
                f"{curve.dynamic_static_ratio:.2f}",
            ]
            for curve in self.curves
        ]
        marks = render_table(headers, rows, title="optimal working points")
        return chart + "\n\n" + marks


def run_figure1(
    activities: tuple[float, ...] = FIGURE1_ACTIVITIES,
    tech: Technology = ST_CMOS09_LL,
    frequency: float = PAPER_FREQUENCY,
    vdd_points: int = 120,
) -> Figure1Result:
    """Sweep the constrained power curve for each activity.

    The circuit is the calibrated basic RCA multiplier with its activity
    overridden per curve, matching the figure's caption ("for different
    circuit activities").
    """
    base = calibrate_row(TABLE1_BY_NAME["RCA"], tech, frequency)
    curves = []
    for activity in activities:
        arch: ArchitectureParameters = base.with_updates(
            name=f"RCA a={activity:g}", activity=activity
        )
        optimum = numerical_optimum(arch, tech, frequency).point
        vdd = np.linspace(max(0.2, optimum.vdd - 0.25), optimum.vdd + 0.55, vdd_points)
        _, _, _, ptot = constrained_total_power(arch, tech, frequency, vdd)
        curves.append(
            Figure1Curve(
                activity=activity,
                vdd=vdd,
                ptot=np.asarray(ptot),
                optimum=optimum,
            )
        )
    return Figure1Result(technology=tech, curves=curves)
