"""Experiment T1 — regenerate the paper's Table 1 (two modes).

**Calibrated mode** (:func:`run_table1_calibrated`): per-architecture
inputs ``(χ, C, Io)`` are recovered from the published operating points
(see :mod:`repro.core.calibration`), after which every output column —
optimal ``(Vdd, Vth)``, the ``Pdyn/Pstat`` split, the numerical total,
the Eq. 13 total and the approximation error — is an actual model
prediction compared against the published value.

**Native mode** (:func:`run_table1_native`): nothing from the paper is
used.  The thirteen netlists are generated, functionally verified,
timing-analysed and simulated for activity; the characterised native
technology provides the device parameters.  This validates the paper's
*shape* claims end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..characterization import native_technology
from ..core.architecture import ArchitectureParameters
from ..core.calibration import calibrate_row
from ..core.closed_form import (
    InfeasibleConstraintError,
    ptot_eq13,
    ptot_eq13_adaptive,
)
from ..core.optimum import approximation_error_percent
from ..core.technology import ST_CMOS09_LL, Technology
from ..generators.registry import MULTIPLIER_NAMES, build_multiplier
from ..sim.activity import measure_activity
from ..sim.parameters import extract_parameters
from ..study import Study
from .paper_data import PAPER_FREQUENCY, TABLE1_BY_NAME, TABLE1_ROWS
from .report import microwatts, render_table


@dataclass(frozen=True)
class Table1Row:
    """One regenerated Table 1 row (powers in watts)."""

    name: str
    n_cells: float
    area: float
    activity: float
    logical_depth: float
    vdd: float
    vth: float
    pdyn: float
    pstat: float
    ptot: float
    ptot_eq13: float
    error_percent: float
    feasible: bool = True


@dataclass(frozen=True)
class Table1Result:
    """All regenerated rows plus the mode tag."""

    mode: str
    technology: Technology
    rows: list[Table1Row]

    def row(self, name: str) -> Table1Row:
        """Look up a row by architecture name."""
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(f"no row named {name!r}")

    def max_abs_error_percent(self) -> float:
        """Worst |Eq.13 vs numerical| error over feasible rows."""
        return max(
            abs(row.error_percent) for row in self.rows if row.feasible
        )

    def render(self) -> str:
        """Table 1-shaped text output."""
        headers = [
            "architecture", "N", "area", "a", "LDeff", "Vdd", "Vth",
            "Pdyn[uW]", "Pstat[uW]", "Ptot[uW]", "Eq13[uW]", "err%",
        ]
        rows = []
        for row in self.rows:
            if not row.feasible:
                rows.append(
                    [row.name, f"{row.n_cells:.0f}", f"{row.area:.0f}",
                     f"{row.activity:.4f}", f"{row.logical_depth:.2f}",
                     "-", "-", "-", "-", "infeasible", "-", "-"]
                )
                continue
            rows.append([
                row.name,
                f"{row.n_cells:.0f}",
                f"{row.area:.0f}",
                f"{row.activity:.4f}",
                f"{row.logical_depth:.2f}",
                f"{row.vdd:.3f}",
                f"{row.vth:.3f}",
                microwatts(row.pdyn),
                microwatts(row.pstat),
                microwatts(row.ptot),
                microwatts(row.ptot_eq13),
                f"{row.error_percent:+.3f}",
            ])
        return render_table(
            headers,
            rows,
            title=(
                f"Table 1 ({self.mode} mode, {self.technology.name}, "
                f"f = {PAPER_FREQUENCY / 1e6:g} MHz)"
            ),
        )


def _infeasible_row(arch: ArchitectureParameters) -> Table1Row:
    return Table1Row(
        name=arch.name, n_cells=arch.n_cells, area=arch.area,
        activity=arch.activity, logical_depth=arch.logical_depth,
        vdd=float("nan"), vth=float("nan"), pdyn=float("nan"),
        pstat=float("nan"), ptot=float("nan"), ptot_eq13=float("nan"),
        error_percent=float("nan"), feasible=False,
    )


def _solve_rows(
    archs: list[ArchitectureParameters],
    tech: Technology,
    frequency: float,
    adaptive_fit: bool = False,
) -> list[Table1Row]:
    """Solve every architecture in one Study run and package the rows.

    The numerical reference column comes from a single
    ``Study(...).solver("numerical")`` batch; the Eq. 13 column stays a
    per-row closed-form evaluation (it is a *prediction* being compared
    against that reference, not a solve path).  ``adaptive_fit`` switches
    Eq. 13 to the self-consistent linearisation range (used by native
    mode, whose deep sequential circuits push the optimum above the
    paper's 0.3-1.0 V window).
    """
    resultset = (
        Study("table1")
        .architectures(*archs)
        .technologies(tech)
        .frequencies(frequency)
        .solver("numerical")
        .jobs(1)
        .run()
    )
    rows = []
    for arch, record in zip(archs, resultset):
        if not record.feasible:
            rows.append(_infeasible_row(arch))
            continue
        try:
            if adaptive_fit:
                eq13, _ = ptot_eq13_adaptive(arch, tech, frequency)
            else:
                eq13 = ptot_eq13(arch, tech, frequency)
        except (InfeasibleConstraintError, ValueError):
            rows.append(_infeasible_row(arch))
            continue
        rows.append(
            Table1Row(
                name=arch.name,
                n_cells=arch.n_cells,
                area=arch.area,
                activity=arch.activity,
                logical_depth=arch.logical_depth,
                vdd=record.vdd,
                vth=record.vth,
                pdyn=record.pdyn,
                pstat=record.pstat,
                ptot=record.ptot,
                ptot_eq13=eq13,
                error_percent=approximation_error_percent(record.ptot, eq13),
            )
        )
    return rows


def run_table1_calibrated(
    tech: Technology = ST_CMOS09_LL,
    frequency: float = PAPER_FREQUENCY,
) -> Table1Result:
    """Regenerate Table 1 from the published (N, a, LDeff) + calibration."""
    archs = [
        calibrate_row(published, tech, frequency) for published in TABLE1_ROWS
    ]
    return Table1Result(
        mode="calibrated",
        technology=tech,
        rows=_solve_rows(archs, tech, frequency),
    )


def run_table1_native(
    n_vectors: int = 150,
    seed: int = 2006,
    tech: Technology | None = None,
    frequency: float = PAPER_FREQUENCY,
    names: list[str] | None = None,
) -> Table1Result:
    """Regenerate Table 1 with zero paper inputs (full netlist flow)."""
    if tech is None:
        tech = native_technology("LL")
    archs = []
    for name in names or MULTIPLIER_NAMES:
        impl = build_multiplier(name)
        activity = measure_activity(impl, n_vectors=n_vectors, seed=seed)
        archs.append(extract_parameters(impl, activity_report=activity, name=name))
    return Table1Result(
        mode="native",
        technology=tech,
        rows=_solve_rows(archs, tech, frequency, adaptive_fit=True),
    )


def compare_to_published(result: Table1Result) -> str:
    """Side-by-side of regenerated vs published Ptot (both modes)."""
    headers = ["architecture", "Ptot[uW]", "paper[uW]", "ratio"]
    rows = []
    for row in result.rows:
        published = TABLE1_BY_NAME[row.name]
        if not row.feasible:
            rows.append([row.name, "infeasible", microwatts(published.ptot), "-"])
            continue
        rows.append([
            row.name,
            microwatts(row.ptot),
            microwatts(published.ptot),
            f"{row.ptot / published.ptot:.3f}",
        ])
    return render_table(
        headers, rows, title=f"Table 1 {result.mode} vs published totals"
    )
