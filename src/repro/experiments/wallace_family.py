"""Experiments T3/T4 — Wallace family on the ULL and HS flavours.

Tables 3 and 4 re-evaluate the three Wallace multipliers on the two
extreme technology flavours.  Only ``(Vdd, Vth, Ptot)`` are published per
row; the architecture inputs ``(N, a, LDeff)`` are those of Table 1, and
the dynamic/static split is recovered from the stationarity condition
(:func:`repro.core.calibration.calibrate_from_total`).

The headline Section 5 claims validated here:

* Table 3 (ULL): parallelisation still helps (par < basic), par4 worse
  than par — and every ULL power exceeds its LL counterpart;
* Table 4 (HS): parallelisation *hurts* (basic < par < par4) because the
  leakage of the doubled cell count outweighs the relaxed timing;
* overall: LL < ULL < HS for this workload — the moderate flavour wins.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.calibration import calibrate_from_total
from ..core.closed_form import ptot_eq13
from ..core.optimum import approximation_error_percent
from ..core.technology import ST_CMOS09_HS, ST_CMOS09_ULL, Technology
from ..study import Study
from .paper_data import (
    PAPER_FREQUENCY,
    TABLE1_BY_NAME,
    TABLE3_ROWS,
    TABLE4_ROWS,
)
from .report import microwatts, render_table


@dataclass(frozen=True)
class WallaceFamilyRow:
    """One regenerated Table 3/4 row (powers in watts)."""

    name: str
    vdd: float
    vth: float
    ptot: float
    ptot_eq13: float
    error_percent: float
    published_vdd: float
    published_vth: float
    published_ptot: float


@dataclass(frozen=True)
class WallaceFamilyResult:
    """A regenerated Table 3 or Table 4."""

    table_name: str
    technology: Technology
    rows: list[WallaceFamilyRow]

    def row(self, name: str) -> WallaceFamilyRow:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(f"no row named {name!r}")

    def max_abs_error_percent(self) -> float:
        return max(abs(row.error_percent) for row in self.rows)

    def render(self) -> str:
        headers = [
            "architecture", "Vdd", "Vth", "Ptot[uW]", "Eq13[uW]", "err%",
            "paper Vdd", "paper Ptot[uW]",
        ]
        rows = [
            [
                row.name,
                f"{row.vdd:.3f}",
                f"{row.vth:.3f}",
                microwatts(row.ptot),
                microwatts(row.ptot_eq13),
                f"{row.error_percent:+.2f}",
                f"{row.published_vdd:.3f}",
                microwatts(row.published_ptot),
            ]
            for row in self.rows
        ]
        return render_table(
            headers,
            rows,
            title=(
                f"{self.table_name} — Wallace family on {self.technology.name} "
                f"(f = {PAPER_FREQUENCY / 1e6:g} MHz)"
            ),
        )


def _run_family(
    table_name: str, published_rows, tech: Technology
) -> WallaceFamilyResult:
    archs = []
    for published in published_rows:
        table1 = TABLE1_BY_NAME[published["name"]]
        archs.append(
            calibrate_from_total(
                name=published["name"],
                n_cells=table1.n_cells,
                activity=table1.activity,
                logical_depth=table1.logical_depth,
                vdd=published["vdd"],
                vth=published["vth"],
                ptot=published["ptot"],
                tech=tech,
                frequency=PAPER_FREQUENCY,
                area=table1.area,
            )
        )
    # One Study batch for the whole family; records align with ``archs``.
    resultset = (
        Study(table_name.lower().replace(" ", ""))
        .architectures(*archs)
        .technologies(tech)
        .frequencies(PAPER_FREQUENCY)
        .solver("numerical")
        .jobs(1)
        .run()
    )
    rows = []
    for published, arch, record in zip(published_rows, archs, resultset):
        if not record.feasible:
            # The Wallace family is feasible on every published flavour;
            # an infeasible calibration is a data error, not a result.
            raise ValueError(
                f"{table_name}: {record.architecture} infeasible — {record.reason}"
            )
        eq13 = ptot_eq13(arch, tech, PAPER_FREQUENCY)
        rows.append(
            WallaceFamilyRow(
                name=published["name"],
                vdd=record.vdd,
                vth=record.vth,
                ptot=record.ptot,
                ptot_eq13=eq13,
                error_percent=approximation_error_percent(record.ptot, eq13),
                published_vdd=published["vdd"],
                published_vth=published["vth"],
                published_ptot=published["ptot"],
            )
        )
    return WallaceFamilyResult(table_name=table_name, technology=tech, rows=rows)


def run_table3() -> WallaceFamilyResult:
    """Regenerate Table 3 (ULL flavour)."""
    return _run_family("Table 3", TABLE3_ROWS, ST_CMOS09_ULL)


def run_table4() -> WallaceFamilyResult:
    """Regenerate Table 4 (HS flavour)."""
    return _run_family("Table 4", TABLE4_ROWS, ST_CMOS09_HS)
