"""RCA array multiplier and its pipelined variants (paper Section 4, item 1).

The "Ripple Carry Array" multiplier is the classic carry-save array with a
final ripple-carry (vector-merge) adder: a grid of 1-bit adders whose
overall speed is limited by carry/sum propagation through the array — the
basic implementation's critical path walks diagonally through all rows and
then ripples along the final adder, giving the long logical depth Table 1
reports (LDeff 61).

Pipelined flavours insert register planes through the array:

* **horizontal** (Figure 3): cuts between adder rows;
* **diagonal** (Figure 4): cuts along constant ``row − column`` lines,
  which shortens the worst path more aggressively but leaves a larger
  spread of path lengths inside each stage — the structural cause of the
  extra glitching Section 4 blames for the diagonal version's higher
  activity.

Cell coordinates: partial product ``pp[i][j] = a[j] AND b[i]`` has weight
``i + j``; the carry-save cell at (row *i*, column *j*) combines
``pp[i][j]`` with row *i−1*'s sum from column *j+1* and carry from column
*j*.  Product bit *i* (*i < width*) falls out of column 0 of row *i*; the
final adder merges the surviving sum/carry vectors into the high half.
"""

from __future__ import annotations

from ..netlist.builder import Builder
from ..netlist.netlist import Netlist
from .base import MultiplierImplementation
from .pipeline import PipelineContext, diagonal_stage, horizontal_stage

#: Pipeline styles accepted by :func:`build_array_multiplier`.
PIPELINE_STYLES = ("horizontal", "diagonal")


def _stage_schedule(style: str | None, width: int, n_stages: int):
    """Return ``stage(i, j)`` for array cells and ``stage_final(c)`` for the
    vector-merge adder, according to the pipeline style."""
    if n_stages == 1 or style is None:
        return (lambda i, j: 0), (lambda c: 0)
    if style == "horizontal":
        # Array rows 0..width-1, final adder behaves as one more row.
        n_rows = width + 1
        return (
            lambda i, j: horizontal_stage(i, n_rows, n_stages),
            lambda c: horizontal_stage(width, n_rows, n_stages),
        )
    if style == "diagonal":
        # metric = i - j + (width-1) in [0, 2w-2] for array cells,
        # continued as (2w-1) + c through the final adder's carry chain.
        span = 3 * width - 2
        return (
            lambda i, j: diagonal_stage(i - j + width - 1, span, n_stages),
            lambda c: diagonal_stage(2 * width - 1 + c, span, n_stages),
        )
    raise ValueError(
        f"unknown pipeline style {style!r}; expected one of {PIPELINE_STYLES}"
    )


def array_core(
    builder: Builder,
    a: list[int],
    b: list[int],
    context: PipelineContext | None = None,
    stage_array=None,
    stage_final=None,
) -> list[int]:
    """The carry-save array + vector-merge datapath; returns product bits.

    ``a``/``b`` are registered operand buses already declared in the
    pipeline context (stage 0).  Without a context, a trivial single-stage
    one is created — this is the entry point the parallelised variants use
    to replicate the datapath.
    """
    width = len(a)
    if len(b) != width:
        raise ValueError(f"operand width mismatch: {width} vs {len(b)}")
    if context is None:
        context = PipelineContext(builder, 1)
        context.produce_bus(a, 0)
        context.produce_bus(b, 0)
    if stage_array is None or stage_final is None:
        stage_array, stage_final = _stage_schedule(None, width, context.n_stages)

    # Partial products: pp[i][j] = a[j] & b[i], scheduled with their row.
    pp = [
        [
            context.add_cell("AND2", [a[j], b[i]], stage_array(i, j))[0][0]
            for j in range(width)
        ]
        for i in range(width)
    ]

    # Row state: after processing row i, sum_row[j] = s(i, j) has weight
    # i+j and carry_row[j] = c(i, j) has weight i+j+1.  Row i's cell at
    # column j therefore consumes pp[i][j], s(i-1, j+1) and c(i-1, j),
    # all of weight i+j.
    def compress(operands: list[int], requested: int) -> tuple[int, int | None]:
        """HA/FA/wire depending on how many operands share this weight."""
        if len(operands) == 1:
            return operands[0], None
        if len(operands) == 2:
            (bit_sum, bit_carry), _ = context.add_cell("HA", operands, requested)
        else:
            (bit_sum, bit_carry), _ = context.add_cell("FA", operands, requested)
        return bit_sum, bit_carry

    sum_row: list[int | None] = list(pp[0])  # s(0, j) = pp[0][j]
    carry_row: list[int | None] = [None] * width
    product_bits: list[int] = [sum_row[0]]  # bit 0 = pp[0][0]

    for i in range(1, width):
        next_sums: list[int | None] = [None] * width
        next_carries: list[int | None] = [None] * width
        for j in range(width):
            operands = [pp[i][j]]
            if j + 1 < width and sum_row[j + 1] is not None:
                operands.append(sum_row[j + 1])
            if carry_row[j] is not None:
                operands.append(carry_row[j])
            next_sums[j], next_carries[j] = compress(operands, stage_array(i, j))
        product_bits.append(next_sums[0])
        sum_row, carry_row = next_sums, next_carries

    # Final vector-merge (ripple-carry) adder over the surviving
    # sum/carry vectors; the top carry (weight 2*width) is provably zero
    # for unsigned operands and left dangling.
    carry: int | None = None
    for c in range(width):
        operands = []
        if c + 1 < width and sum_row[c + 1] is not None:
            operands.append(sum_row[c + 1])
        if carry_row[c] is not None:
            operands.append(carry_row[c])
        if carry is not None:
            operands.append(carry)
        bit_sum, carry = compress(operands, stage_final(c))
        product_bits.append(bit_sum)

    return context.align_bus(product_bits, context.last_stage)


def build_array_multiplier(
    width: int = 16,
    n_stages: int = 1,
    style: str | None = None,
    name: str | None = None,
) -> MultiplierImplementation:
    """Generate the (optionally pipelined) RCA array multiplier.

    Parameters
    ----------
    width:
        Operand width in bits (the paper uses 16).
    n_stages:
        Pipeline stage count (1 = the basic combinational array).
    style:
        ``"horizontal"`` or ``"diagonal"`` register insertion; ignored for
        ``n_stages == 1``.

    Returns
    -------
    MultiplierImplementation
        Input-registered, output-registered netlist with a data latency of
        ``n_stages + 1`` clock cycles.
    """
    if width < 2:
        raise ValueError(f"width must be >= 2, got {width}")
    if n_stages > 1 and style not in PIPELINE_STYLES:
        raise ValueError(
            f"pipelined array needs style in {PIPELINE_STYLES}, got {style!r}"
        )

    if name is None:
        if n_stages == 1:
            name = f"rca{width}"
        else:
            name = f"rca{width}-{style[:4]}pipe{n_stages}"

    netlist = Netlist(name)
    builder = Builder(netlist)
    context = PipelineContext(builder, n_stages)
    stage_array, stage_final = _stage_schedule(style, width, n_stages)

    a_pins = netlist.add_input_bus("a", width)
    b_pins = netlist.add_input_bus("b", width)
    a = builder.register_bus(a_pins)
    b = builder.register_bus(b_pins)
    context.produce_bus(a, 0)
    context.produce_bus(b, 0)

    aligned = array_core(builder, a, b, context, stage_array, stage_final)
    outputs = builder.register_bus(aligned)
    netlist.set_outputs(outputs)
    netlist.freeze()

    return MultiplierImplementation(
        name=name,
        netlist=netlist,
        width=width,
        a_bus=tuple(a_pins),
        b_bus=tuple(b_pins),
        product_bus=tuple(outputs),
        cycles_per_result=1,
        ld_divisor=1.0,
        description=(
            f"carry-save array multiplier with ripple vector-merge adder, "
            f"{n_stages} stage(s)" + (f" ({style} cuts)" if n_stages > 1 else "")
        ),
    )
