"""Structural generators for the paper's thirteen multipliers (DESIGN.md S7)."""

from .adders import (
    carry_save_row,
    full_adder,
    half_adder,
    kogge_stone_adder,
    ripple_carry_adder,
    sklansky_adder,
)
from .array_mult import array_core, build_array_multiplier
from .base import MultiplierImplementation
from .parallel import build_parallel_multiplier
from .registry import (
    MULTIPLIER_FACTORIES,
    MULTIPLIER_NAMES,
    PAPER_WIDTH,
    build_all_multipliers,
    build_multiplier,
)
from .sequential import (
    build_parallel_sequential_multiplier,
    build_sequential_4x16_multiplier,
    build_sequential_multiplier,
)
from .wallace import build_wallace_multiplier, wallace_core

__all__ = [
    "MULTIPLIER_FACTORIES",
    "MULTIPLIER_NAMES",
    "MultiplierImplementation",
    "PAPER_WIDTH",
    "array_core",
    "build_all_multipliers",
    "build_array_multiplier",
    "build_multiplier",
    "build_parallel_multiplier",
    "build_parallel_sequential_multiplier",
    "build_sequential_4x16_multiplier",
    "build_sequential_multiplier",
    "build_wallace_multiplier",
    "carry_save_row",
    "full_adder",
    "half_adder",
    "kogge_stone_adder",
    "ripple_carry_adder",
    "sklansky_adder",
    "wallace_core",
]
