"""Wallace-tree multiplier (paper Section 4, item 2).

The Wallace structure adds all partial products with carry-save adders
arranged in parallel reduction levels, so path delays are far better
balanced than in the array multiplier and the logical depth collapses
from O(width) to O(log width) — Table 1's LDeff 17 vs. 61.  A two-operand
parallel-prefix adder (Sklansky) merges the final carry-save pair.

The reduction is the classic column-wise Wallace scheme: every level
compresses each weight column in groups of three (FA) and two (HA) until
no column holds more than two bits.
"""

from __future__ import annotations

from ..netlist.builder import Builder
from ..netlist.netlist import Netlist
from .adders import sklansky_adder
from .base import MultiplierImplementation


def wallace_reduce(builder: Builder, columns: list[list[int]]) -> list[list[int]]:
    """One Wallace reduction level over weight columns.

    Columns with three or more bits feed full adders (sum stays, carry
    moves up one weight); a leftover pair feeds a half adder; singles pass
    through untouched.
    """
    width = len(columns)
    result: list[list[int]] = [[] for _ in range(width + 1)]
    for weight, bits in enumerate(columns):
        index = 0
        while len(bits) - index >= 3:
            outputs = builder.netlist.add_cell("FA", bits[index : index + 3])
            result[weight].append(outputs[0])
            result[weight + 1].append(outputs[1])
            index += 3
        remaining = len(bits) - index
        if remaining == 2:
            outputs = builder.netlist.add_cell("HA", bits[index : index + 2])
            result[weight].append(outputs[0])
            result[weight + 1].append(outputs[1])
        elif remaining == 1:
            result[weight].append(bits[index])
    while result and not result[-1]:
        result.pop()
    return result


def wallace_core(builder: Builder, a: list[int], b: list[int]) -> list[int]:
    """Wallace reduction + Sklansky merge; returns the 2w product bits."""
    width = len(a)
    if len(b) != width:
        raise ValueError(f"operand width mismatch: {width} vs {len(b)}")

    # Partial-product columns by weight.
    columns: list[list[int]] = [[] for _ in range(2 * width)]
    for i in range(width):
        for j in range(width):
            columns[i + j].append(builder.gate("AND2", a[j], b[i]))

    while max(len(bits) for bits in columns) > 2:
        columns = wallace_reduce(builder, columns)

    # Merge the surviving carry-save pair with a parallel-prefix adder.
    zero = builder.const(0)
    operand_x = [bits[0] if len(bits) >= 1 else zero for bits in columns]
    operand_y = [bits[1] if len(bits) >= 2 else zero for bits in columns]
    operand_x += [zero] * (2 * width - len(operand_x))
    operand_y += [zero] * (2 * width - len(operand_y))
    sums, _carry_out = sklansky_adder(
        builder, operand_x[: 2 * width], operand_y[: 2 * width]
    )
    return sums


def build_wallace_multiplier(
    width: int = 16,
    name: str | None = None,
) -> MultiplierImplementation:
    """Generate the input/output-registered Wallace-tree multiplier."""
    if width < 2:
        raise ValueError(f"width must be >= 2, got {width}")
    if name is None:
        name = f"wallace{width}"

    netlist = Netlist(name)
    builder = Builder(netlist)

    a_pins = netlist.add_input_bus("a", width)
    b_pins = netlist.add_input_bus("b", width)
    a = builder.register_bus(a_pins)
    b = builder.register_bus(b_pins)

    outputs = builder.register_bus(wallace_core(builder, a, b))
    netlist.set_outputs(outputs)
    netlist.freeze()

    return MultiplierImplementation(
        name=name,
        netlist=netlist,
        width=width,
        a_bus=tuple(a_pins),
        b_bus=tuple(b_pins),
        product_bus=tuple(outputs),
        cycles_per_result=1,
        ld_divisor=1.0,
        description="Wallace CSA tree with Sklansky final adder",
    )
