"""Adder generators: ripple-carry, carry-save and Kogge-Stone prefix.

These are the arithmetic substrates every multiplier in the paper is
assembled from: the RCA array multiplier ripples carries (its speed
limit), the Wallace tree compresses partial products with carry-save
adders and needs a fast (logarithmic) final adder to reach its published
short logical depth, and the sequential multiplier reuses one
ripple-carry adder per cycle.
"""

from __future__ import annotations

from ..netlist.builder import Builder, Bus
from ..netlist.cells import FA, HA


def half_adder(builder: Builder, a: int, b: int) -> tuple[int, int]:
    """One HA cell; returns ``(sum, carry)`` nets."""
    outputs = builder.netlist.add_cell(HA, [a, b])
    return outputs[0], outputs[1]


def full_adder(builder: Builder, a: int, b: int, c: int) -> tuple[int, int]:
    """One FA cell; returns ``(sum, carry)`` nets."""
    outputs = builder.netlist.add_cell(FA, [a, b, c])
    return outputs[0], outputs[1]


def ripple_carry_adder(
    builder: Builder,
    bus_a: Bus,
    bus_b: Bus,
    carry_in: int | None = None,
) -> tuple[Bus, int]:
    """Ripple-carry adder; returns ``(sum_bus, carry_out)``.

    Operands must have equal width.  Bit 0 is a half adder when no carry
    input is supplied — the same cell-count optimisation synthesis does.
    """
    if len(bus_a) != len(bus_b):
        raise ValueError(f"width mismatch: {len(bus_a)} vs {len(bus_b)}")
    if not bus_a:
        raise ValueError("cannot build a zero-width adder")

    sums: Bus = []
    carry = carry_in
    for a, b in zip(bus_a, bus_b):
        if carry is None:
            bit_sum, carry = half_adder(builder, a, b)
        else:
            bit_sum, carry = full_adder(builder, a, b, carry)
        sums.append(bit_sum)
    return sums, carry


def carry_save_row(
    builder: Builder,
    bus_a: Bus,
    bus_b: Bus,
    bus_c: Bus,
) -> tuple[Bus, Bus]:
    """One 3:2 carry-save compression of three equal-width buses.

    Returns ``(sum_bus, carry_bus)`` where ``carry_bus`` has the same
    width but one-bit-higher significance (the caller shifts it).
    """
    if not len(bus_a) == len(bus_b) == len(bus_c):
        raise ValueError(
            f"width mismatch: {len(bus_a)}, {len(bus_b)}, {len(bus_c)}"
        )
    sums: Bus = []
    carries: Bus = []
    for a, b, c in zip(bus_a, bus_b, bus_c):
        bit_sum, bit_carry = full_adder(builder, a, b, c)
        sums.append(bit_sum)
        carries.append(bit_carry)
    return sums, carries


def sklansky_adder(builder: Builder, bus_a: Bus, bus_b: Bus) -> tuple[Bus, int]:
    """Sklansky (divide-and-conquer) parallel-prefix adder.

    Same ``O(log2 width)`` depth as Kogge-Stone but with roughly half the
    prefix nodes, at the cost of high fanout on the spine — which our
    fanout-free delay model does not penalise, making Sklansky the natural
    final adder for the Wallace multiplier's short logical depth.
    Returns ``(sum_bus, carry_out)``.
    """
    if len(bus_a) != len(bus_b):
        raise ValueError(f"width mismatch: {len(bus_a)} vs {len(bus_b)}")
    width = len(bus_a)
    if width == 0:
        raise ValueError("cannot build a zero-width adder")

    generate = [builder.gate("AND2", a, b) for a, b in zip(bus_a, bus_b)]
    propagate = [builder.gate("XOR2", a, b) for a, b in zip(bus_a, bus_b)]

    group_g = list(generate)
    group_p = list(propagate)
    span = 1
    while span < width:
        for i in range(width):
            # Combine with the block ending just below this 2*span block.
            if (i // span) % 2 == 1:
                low = (i // (2 * span)) * (2 * span) + span - 1
                carry_through = builder.gate("AND2", group_p[i], group_g[low])
                group_g[i] = builder.gate("OR2", group_g[i], carry_through)
                group_p[i] = builder.gate("AND2", group_p[i], group_p[low])
        span *= 2

    sums: Bus = [propagate[0]]
    for i in range(1, width):
        sums.append(builder.gate("XOR2", propagate[i], group_g[i - 1]))
    return sums, group_g[width - 1]


def kogge_stone_adder(builder: Builder, bus_a: Bus, bus_b: Bus) -> tuple[Bus, int]:
    """Kogge-Stone parallel-prefix adder; returns ``(sum_bus, carry_out)``.

    Depth is ``O(log2 width)`` instead of the ripple adder's ``O(width)``
    — this is what keeps the Wallace multiplier's logical depth short
    (Table 1: LDeff 17 vs. the array multiplier's 61).
    """
    if len(bus_a) != len(bus_b):
        raise ValueError(f"width mismatch: {len(bus_a)} vs {len(bus_b)}")
    width = len(bus_a)
    if width == 0:
        raise ValueError("cannot build a zero-width adder")

    generate = [builder.gate("AND2", a, b) for a, b in zip(bus_a, bus_b)]
    propagate = [builder.gate("XOR2", a, b) for a, b in zip(bus_a, bus_b)]

    # Prefix tree: after the last level, generate[i] is the carry out of
    # bit i (i.e. the carry *into* bit i+1).
    group_g = list(generate)
    group_p = list(propagate)
    distance = 1
    while distance < width:
        next_g = list(group_g)
        next_p = list(group_p)
        for i in range(distance, width):
            carry_through = builder.gate("AND2", group_p[i], group_g[i - distance])
            next_g[i] = builder.gate("OR2", group_g[i], carry_through)
            next_p[i] = builder.gate("AND2", group_p[i], group_p[i - distance])
        group_g, group_p = next_g, next_p
        distance *= 2

    sums: Bus = [propagate[0]]
    for i in range(1, width):
        sums.append(builder.gate("XOR2", propagate[i], group_g[i - 1]))
    return sums, group_g[width - 1]
