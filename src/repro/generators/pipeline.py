"""Constructive pipelining support (paper Figures 3 and 4).

The paper's pipelined multipliers insert register planes *inside* the
array — horizontally (cutting between adder rows, Figure 3) or diagonally
(cutting along constant ``row − column`` lines, Figure 4).  Rather than
retiming a finished netlist, our generators build the pipeline
constructively: every net is tagged with the pipeline stage that produces
it, and a consumer in a later stage fetches it through a shared chain of
DFFs (one per crossed boundary).  This is correct by construction for any
monotone stage assignment, and the assignment is *made* monotone by
fix-up: a cell can never be scheduled before one of its producers.

The register chains on operand broadcasts are exactly the extra flip-flop
columns visible in the paper's figures; they are why a 2-stage pipeline
costs ~64 extra cells (Table 1: 608 → 672).
"""

from __future__ import annotations

from ..netlist.builder import Builder, Bus


class PipelineContext:
    """Stage bookkeeping for constructive pipelining.

    Every net has a production stage.  ``fetch(net, stage)`` returns the
    value of ``net`` as observed ``stage − stage_of(net)`` clock edges
    later, materialising (and caching) the necessary DFF chain.
    """

    def __init__(self, builder: Builder, n_stages: int = 1):
        if n_stages < 1:
            raise ValueError(f"n_stages must be >= 1, got {n_stages}")
        self.builder = builder
        self.n_stages = n_stages
        self._stage_of: dict[int, int] = {}
        self._chains: dict[int, list[int]] = {}

    @property
    def last_stage(self) -> int:
        """Index of the final pipeline stage."""
        return self.n_stages - 1

    def produce(self, net: int, stage: int) -> None:
        """Declare that ``net`` is produced in ``stage``."""
        if not 0 <= stage < self.n_stages:
            raise ValueError(
                f"stage {stage} out of range for a {self.n_stages}-stage pipeline"
            )
        self._stage_of[net] = stage

    def produce_bus(self, bus: Bus, stage: int) -> None:
        """Declare a whole bus as produced in ``stage``."""
        for net in bus:
            self.produce(net, stage)

    def stage_of(self, net: int) -> int:
        """Production stage of a net (raises KeyError if undeclared)."""
        return self._stage_of[net]

    def fetch(self, net: int, stage: int) -> int:
        """The value of ``net`` as seen by a consumer in ``stage``.

        Inserts ``stage − stage_of(net)`` DFFs, sharing chains between
        consumers so a broadcast operand pays each boundary only once.
        """
        origin = self._stage_of[net]
        if stage < origin:
            raise ValueError(
                f"cannot fetch net {net} (stage {origin}) from earlier stage {stage}"
            )
        chain = self._chains.setdefault(net, [net])
        while len(chain) <= stage - origin:
            registered = self.builder.register(chain[-1])
            chain.append(registered)
        return chain[stage - origin]

    def add_cell(
        self,
        cell_name: str,
        inputs: list[int],
        requested_stage: int,
    ) -> tuple[list[int], int]:
        """Place a cell no earlier than its producers allow.

        Returns ``(output_nets, actual_stage)``.  The actual stage is the
        fix-up ``max(requested, max(producer stages))``, clipped to the
        final stage, which guarantees monotone stage assignments for any
        requested schedule.
        """
        actual = min(
            max([requested_stage] + [self._stage_of[net] for net in inputs]),
            self.last_stage,
        )
        aligned = [self.fetch(net, actual) for net in inputs]
        outputs = self.builder.netlist.add_cell(cell_name, aligned)
        for net in outputs:
            self.produce(net, actual)
        return outputs, actual

    def align_bus(self, bus: Bus, stage: int) -> Bus:
        """Fetch every bit of a bus at the given stage."""
        return [self.fetch(net, stage) for net in bus]


def horizontal_stage(row: int, n_rows: int, n_stages: int) -> int:
    """Figure 3 schedule: cut the array between adder rows."""
    return min(row * n_stages // n_rows, n_stages - 1)


def diagonal_stage(metric: int, metric_span: int, n_stages: int) -> int:
    """Figure 4 schedule: cut along constant ``row − column`` diagonals.

    ``metric`` is ``row − column + (width−1)`` for array cells, extended
    monotonically through the final adder; ``metric_span`` is its maximum
    value over the whole circuit.
    """
    return min(metric * n_stages // (metric_span + 1), n_stages - 1)
