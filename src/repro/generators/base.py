"""Common wrapper for generated multiplier implementations.

Every generator returns a :class:`MultiplierImplementation`, which bundles
the netlist with the scheduling metadata the simulator, verifier and
parameter-extraction code need:

* ``cycles_per_result`` — internal clock cycles consumed per operand pair
  (1 for combinational/pipelined/parallel designs, 16 for the basic
  add-shift multiplier, 4 for the 4×16 Wallace variant);
* ``results_per_fill`` — how many operand pairs are in flight (pipeline
  depth in data periods, used to compute verification latency);
* ``ld_divisor`` — how many data periods the critical path may stretch
  over (k for k-parallel designs: each replica sees a new operand every
  k-th cycle, which is exactly the timing relaxation Section 4 exploits);
* ``clock_multiplier`` — internal clock frequency relative to the data
  throughput clock (16 for the basic sequential multiplier, matching the
  paper's "internal clock running 16 times faster" remark).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..netlist.netlist import Netlist


@dataclass(frozen=True)
class MultiplierImplementation:
    """A generated multiplier netlist plus its scheduling metadata."""

    name: str
    netlist: Netlist
    width: int
    a_bus: tuple[int, ...]
    b_bus: tuple[int, ...]
    product_bus: tuple[int, ...]
    cycles_per_result: int = 1
    ld_divisor: float = 1.0
    description: str = ""

    def __post_init__(self) -> None:
        if len(self.a_bus) != self.width or len(self.b_bus) != self.width:
            raise ValueError(
                f"{self.name}: operand buses must be {self.width} bits wide"
            )
        if len(self.product_bus) != 2 * self.width:
            raise ValueError(
                f"{self.name}: product bus must be {2 * self.width} bits wide"
            )
        if self.cycles_per_result < 1:
            raise ValueError(
                f"{self.name}: cycles_per_result must be >= 1, "
                f"got {self.cycles_per_result}"
            )

    @property
    def clock_multiplier(self) -> int:
        """Internal clock rate relative to the data (throughput) clock."""
        return self.cycles_per_result

    @property
    def n_cells(self) -> int:
        """Cell count of the underlying netlist."""
        return self.netlist.n_cells

    def operand_cycles(self, a: int, b: int) -> list[dict[int, int]]:
        """Primary-input assignments for one operand pair.

        Returns one dict per internal clock cycle (length
        ``cycles_per_result``); operands are simply held stable, since all
        sequencing (counters, enables) is internal to the netlists.
        """
        mask = (1 << self.width) - 1
        if a & mask != a or b & mask != b:
            raise ValueError(
                f"operands must fit in {self.width} bits, got a={a}, b={b}"
            )
        assignment = {}
        for bit, net in enumerate(self.a_bus):
            assignment[net] = (a >> bit) & 1
        for bit, net in enumerate(self.b_bus):
            assignment[net] = (b >> bit) & 1
        return [dict(assignment) for _ in range(self.cycles_per_result)]

    def read_product(self, net_values: dict[int, int]) -> int:
        """Decode the product bus from a settled net-value map."""
        product = 0
        for bit, net in enumerate(self.product_bus):
            product |= (net_values[net] & 1) << bit
        return product

    def describe(self) -> str:
        """One-line summary used by examples and reports."""
        return (
            f"{self.name}: {self.n_cells} cells, width {self.width}, "
            f"{self.cycles_per_result} cycle(s)/result, "
            f"LD divisor {self.ld_divisor:g}"
        )
