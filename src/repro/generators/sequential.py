"""Sequential (add-and-shift) multipliers (paper Section 4, item 3).

The basic implementation computes a 16×16 product as sixteen add-shift
steps on a single 17-bit adder: very few cells, but the internal clock
must run 16× faster than the data clock to sustain throughput — which is
why its *effective* logical depth (referenced to the data clock) is
enormous (Table 1: LDeff 224 = 16 cycles × 14-gate adder chain) and its
throughput-referenced activity exceeds 1.

The ``4_16 Wallace`` variant retires four multiplier bits per cycle by
summing four partial products through a small carry-save tree, cutting
the cycles per result from 16 to 4.

The parallel variant interleaves two copies on alternate internal cycles
("simple replication and multiplexing of the basic version"), giving each
copy two internal clock periods per add-shift step — the timing
relaxation Section 4's parallelisation discussion is about.

All sequencing (cycle counter, load detection, operand capture, shifting,
result hand-off) is inside the netlists; the testbench only holds each
operand pair stable for ``cycles_per_result`` internal cycles.

Data-path invariant (basic version): after processing multiplier bit
``t``, the high accumulator ``PH`` equals the running partial product
shifted right by ``t+1`` and the low shift register ``PL`` holds its
``t+1`` finished low bits.  The result is therefore complete exactly at
the load edge, where the output registers capture it while ``PH``/``PL``
clear for the next operand pair.
"""

from __future__ import annotations

from ..netlist.builder import Builder, Bus
from ..netlist.netlist import Netlist
from .adders import carry_save_row, ripple_carry_adder
from .base import MultiplierImplementation
from .control import load_pulse, shift_register_with_load, toggle_flipflop


def _gated_accumulator(
    builder: Builder, next_bits: Bus, clear: int, enable: int | None
) -> Bus:
    """Registers taking ``next_bits`` each (enabled) cycle, clearing on ``clear``."""
    not_clear = builder.invert(clear)
    gated = [builder.gate("AND2", bit, not_clear) for bit in next_bits]
    return [builder.register(bit, enable=enable) for bit in gated]


def sequential_core(
    builder: Builder,
    a_pins: Bus,
    b_pins: Bus,
    width: int,
    enable: int | None = None,
    load_offset: int | None = None,
) -> Bus:
    """The add-shift datapath + control; returns the registered product bus.

    ``enable`` gates every state element (used by the interleaved parallel
    variant); ``load_offset`` staggers the operand-capture pulse inside
    the 16-cycle window so two copies can take turns.
    """
    load = load_pulse(builder, width, enable=enable, fire_at=load_offset)
    netlist = builder.netlist

    # Operand capture: A parallel-loads, B shifts one bit right per cycle.
    # (load is already ANDed with the enable inside load_pulse.)
    a_reg = [builder.register(pin, enable=load) for pin in a_pins]
    b_reg = shift_register_with_load(builder, list(b_pins), load, enable=enable)

    # Accumulator state (placeholders close the feedback loop).
    ph_state = [netlist.add_placeholder(f"ph[{bit}]") for bit in range(width + 1)]
    pl_state = [netlist.add_placeholder(f"pl[{bit}]") for bit in range(width)]

    # One add-shift step: T = PH + (A & b0); PH' = T >> 1.
    addend = builder.and_word(a_reg, b_reg[0])
    zero = builder.const(0)
    t_bits, t_carry = ripple_carry_adder(builder, ph_state, addend + [zero])
    t_full = t_bits + [t_carry]

    ph_next = [t_full[bit + 1] for bit in range(width + 1)]
    pl_next = [pl_state[bit + 1] for bit in range(width - 1)] + [t_full[0]]

    ph_regs = _gated_accumulator(builder, ph_next, load, enable)
    pl_regs = _gated_accumulator(builder, pl_next, load, enable)
    for placeholder, q in zip(ph_state, ph_regs):
        netlist.rewire(placeholder, q)
    for placeholder, q in zip(pl_state, pl_regs):
        netlist.rewire(placeholder, q)

    # Result hand-off: the would-be final {PH', PL'} captured at the load
    # edge (after the 16th add), while the accumulator clears.
    result_low = [pl_regs[bit + 1] for bit in range(width - 1)] + [t_full[0]]
    result_high = [t_full[bit + 1] for bit in range(width)]
    return [
        builder.register(bit, enable=load) for bit in result_low + result_high
    ]


def build_sequential_multiplier(
    width: int = 16,
    name: str | None = None,
) -> MultiplierImplementation:
    """The basic add-shift multiplier: ``width`` internal cycles per result."""
    if width < 2 or (width & (width - 1)) != 0:
        raise ValueError(f"width must be a power of two >= 2, got {width}")
    if name is None:
        name = f"seq{width}"

    netlist = Netlist(name)
    builder = Builder(netlist)
    a_pins = netlist.add_input_bus("a", width)
    b_pins = netlist.add_input_bus("b", width)
    outputs = sequential_core(builder, list(a_pins), list(b_pins), width)
    netlist.set_outputs(outputs)
    netlist.freeze()

    return MultiplierImplementation(
        name=name,
        netlist=netlist,
        width=width,
        a_bus=tuple(a_pins),
        b_bus=tuple(b_pins),
        product_bus=tuple(outputs),
        cycles_per_result=width,
        ld_divisor=1.0,
        description=(
            f"add-shift sequential multiplier, {width} internal cycles per "
            f"result (internal clock {width}x the data clock)"
        ),
    )


def build_parallel_sequential_multiplier(
    width: int = 16,
    name: str | None = None,
) -> MultiplierImplementation:
    """Two interleaved add-shift multipliers sharing one internal clock.

    Copy 0 advances on even cycles, copy 1 on odd cycles; their operand
    loads are staggered half a window apart so they serve alternating
    operand pairs.  Throughput stays one result per ``width`` cycles while
    every register-to-register path gets **two** internal periods to
    settle — ``ld_divisor = 2``.
    """
    if width < 4 or (width & (width - 1)) != 0:
        raise ValueError(f"width must be a power of two >= 4, got {width}")
    if name is None:
        name = f"seq{width}-par2"

    netlist = Netlist(name)
    builder = Builder(netlist)
    a_pins = netlist.add_input_bus("a", width)
    b_pins = netlist.add_input_bus("b", width)

    phase, not_phase = toggle_flipflop(builder)
    out0 = sequential_core(
        builder, list(a_pins), list(b_pins), width,
        enable=not_phase, load_offset=width - 1,
    )
    out1 = sequential_core(
        builder, list(a_pins), list(b_pins), width,
        enable=phase, load_offset=width // 2 - 1,
    )

    # Select whichever copy produced the most recent completed result:
    # both copies hold their result for a full window, and their windows
    # are staggered by half a window, so the copy that loaded least
    # recently is stale.  A set/reset bit tracks the latest loader.
    # Recreating the two load pulses here would duplicate counters, so we
    # track phase parity of the *result registers* instead: each copy's
    # outputs only change right after its own load; sampling happens once
    # per window (testbench samples the last cycle), by which time both
    # copies' captures for the window are long settled.  The correct
    # source alternates with the *pair index*, i.e. with the window
    # parity, tracked by one more toggle bit advanced once per window.
    window_toggle = load_pulse(builder, width)
    select_state = netlist.add_placeholder("result_select")
    select_next = builder.mux(select_state, builder.invert(select_state), window_toggle)
    select = builder.register(select_next)
    netlist.rewire(select_state, select)

    outputs = [
        builder.register(builder.mux(bit0, bit1, select))
        for bit0, bit1 in zip(out0, out1)
    ]
    netlist.set_outputs(outputs)
    netlist.freeze()

    return MultiplierImplementation(
        name=name,
        netlist=netlist,
        width=width,
        a_bus=tuple(a_pins),
        b_bus=tuple(b_pins),
        product_bus=tuple(outputs),
        cycles_per_result=width,
        ld_divisor=2.0,
        description=(
            "two interleaved add-shift multipliers on alternating internal "
            "cycles (2x timing relaxation at equal throughput)"
        ),
    )


def build_sequential_4x16_multiplier(
    width: int = 16,
    name: str | None = None,
) -> MultiplierImplementation:
    """The ``4_16 Wallace`` variant: four partial products per cycle.

    A 4×``width`` carry-save tree (two CSA levels) compresses the four
    partial products of the current multiplier nibble, a third CSA folds
    in the accumulator, and one carry-propagate add per cycle retires four
    product bits — 4 cycles per result instead of 16 (paper Section 4).
    """
    bits_per_cycle = 4
    if width % bits_per_cycle != 0:
        raise ValueError(f"width must be a multiple of 4, got {width}")
    cycles = width // bits_per_cycle
    if cycles & (cycles - 1) != 0 or cycles < 2:
        raise ValueError(f"width/4 must be a power of two >= 2, got {cycles}")
    if name is None:
        name = f"seq4_{width}"

    netlist = Netlist(name)
    builder = Builder(netlist)

    a_pins = netlist.add_input_bus("a", width)
    b_pins = netlist.add_input_bus("b", width)

    load = load_pulse(builder, cycles)
    a_reg = [builder.register(pin, enable=load) for pin in a_pins]
    b_reg = shift_register_with_load(
        builder, list(b_pins), load, shift_by=bits_per_cycle
    )

    acc_width = width + 1
    ph_state = [netlist.add_placeholder(f"ph[{bit}]") for bit in range(acc_width)]
    pl_state = [netlist.add_placeholder(f"pl[{bit}]") for bit in range(width)]

    zero = builder.const(0)
    work_width = width + bits_per_cycle + 1  # max weight in PH + A*nibble

    def widen(bus: Bus, offset: int) -> Bus:
        """Align a bus at ``offset`` and pad/truncate to the working width."""
        padded = [zero] * offset + list(bus)
        padded += [zero] * (work_width - len(padded))
        return padded[:work_width]

    rows = [
        widen(builder.and_word(a_reg, b_reg[m]), m) for m in range(bits_per_cycle)
    ]
    # Two CSA levels compress the four rows, a third folds in PH, and one
    # carry-propagate add retires the cycle.
    s1, c1 = carry_save_row(builder, rows[0], rows[1], rows[2])
    s2, c2 = carry_save_row(builder, s1, widen(c1, 1), rows[3])
    s3, c3 = carry_save_row(builder, s2, widen(c2, 1), widen(ph_state, 0))
    t_bits, t_carry = ripple_carry_adder(builder, s3, widen(c3, 1))
    t_full = t_bits + [t_carry]

    ph_next = [t_full[bit + bits_per_cycle] for bit in range(acc_width)]
    pl_next = [
        pl_state[bit + bits_per_cycle] for bit in range(width - bits_per_cycle)
    ] + [t_full[m] for m in range(bits_per_cycle)]

    ph_regs = _gated_accumulator(builder, ph_next, load, None)
    pl_regs = _gated_accumulator(builder, pl_next, load, None)
    for placeholder, q in zip(ph_state, ph_regs):
        netlist.rewire(placeholder, q)
    for placeholder, q in zip(pl_state, pl_regs):
        netlist.rewire(placeholder, q)

    result_low = [
        pl_regs[bit + bits_per_cycle] for bit in range(width - bits_per_cycle)
    ] + [t_full[m] for m in range(bits_per_cycle)]
    result_high = [t_full[bit + bits_per_cycle] for bit in range(width)]
    outputs = [
        builder.register(bit, enable=load) for bit in result_low + result_high
    ]
    netlist.set_outputs(outputs)
    netlist.freeze()

    return MultiplierImplementation(
        name=name,
        netlist=netlist,
        width=width,
        a_bus=tuple(a_pins),
        b_bus=tuple(b_pins),
        product_bus=tuple(outputs),
        cycles_per_result=cycles,
        ld_divisor=1.0,
        description=(
            f"4x{width} Wallace sequential multiplier, {cycles} internal "
            f"cycles per result"
        ),
    )
