"""Shared control-logic generators: counters, decoders, shift registers.

These small state machines implement the sequencing the paper's
sequential and parallelised multipliers need (load pulses, phase
interleaving, operand shifting).  They rely on the netlist's
placeholder/rewire mechanism to close register feedback loops.
"""

from __future__ import annotations

from ..netlist.builder import Builder, Bus


def modulo_counter(builder: Builder, n_cycles: int, enable: int | None = None) -> Bus:
    """Free-running modulo-``n_cycles`` binary counter; returns its Q bits.

    ``n_cycles`` must be a power of two (the counter wraps naturally).
    With ``enable``, the counter only advances on enabled cycles.
    """
    n_bits = (n_cycles - 1).bit_length()
    if 1 << n_bits != n_cycles or n_cycles < 2:
        raise ValueError(f"cycle count must be a power of two >= 2, got {n_cycles}")
    netlist = builder.netlist

    state = [netlist.add_placeholder(f"count[{bit}]") for bit in range(n_bits)]
    carry = builder.const(1)
    resolved: Bus = []
    for bit in range(n_bits):
        toggled = builder.gate("XOR2", state[bit], carry)
        if bit + 1 < n_bits:
            carry = builder.gate("AND2", state[bit], carry)
        q = builder.register(toggled, enable=enable)
        netlist.rewire(state[bit], q)
        resolved.append(q)
    return resolved


def equals_constant(builder: Builder, bits: Bus, value: int) -> int:
    """Decode ``bits == value`` with an AND tree over (possibly inverted) bits."""
    terms = []
    for position, bit in enumerate(bits):
        if (value >> position) & 1:
            terms.append(bit)
        else:
            terms.append(builder.invert(bit))
    decoded = terms[0]
    for term in terms[1:]:
        decoded = builder.gate("AND2", decoded, term)
    return decoded


def load_pulse(
    builder: Builder,
    n_cycles: int,
    enable: int | None = None,
    fire_at: int | None = None,
) -> int:
    """A pulse one cycle wide per ``n_cycles`` window (default: last cycle).

    ``fire_at`` offsets the pulse inside the window, which the interleaved
    sequential-parallel multiplier uses to stagger its two copies.
    """
    if fire_at is None:
        fire_at = n_cycles - 1
    count = modulo_counter(builder, n_cycles, enable=enable)
    pulse = equals_constant(builder, count, fire_at)
    if enable is not None:
        pulse = builder.gate("AND2", pulse, enable)
    return pulse


def shift_register_with_load(
    builder: Builder,
    data_in: Bus,
    load: int,
    shift_by: int = 1,
    enable: int | None = None,
) -> Bus:
    """Right-shifting register with parallel load; returns its Q bits.

    Bit 0 is the serial output.  With ``enable``, shifting/loading only
    happens on enabled cycles.
    """
    netlist = builder.netlist
    width = len(data_in)
    state = [netlist.add_placeholder(f"shift[{bit}]") for bit in range(width)]
    zero = builder.const(0)
    resolved: Bus = []
    for bit in range(width):
        above = state[bit + shift_by] if bit + shift_by < width else zero
        next_value = builder.mux(above, data_in[bit], load)
        q = builder.register(next_value, enable=enable)
        netlist.rewire(state[bit], q)
        resolved.append(q)
    return resolved


def toggle_flipflop(builder: Builder) -> tuple[int, int]:
    """A divide-by-two phase generator; returns ``(phase, not_phase)``.

    ``phase`` starts at 0 (all flip-flops power up to 0) and toggles every
    cycle — the interleaving signal for two-way parallel designs.
    """
    netlist = builder.netlist
    state = netlist.add_placeholder("phase")
    inverted = builder.invert(state)
    q = builder.register(inverted)
    netlist.rewire(state, q)
    # After rewiring, `inverted` computes NOT(q) combinationally, so it
    # doubles as the complementary phase output.
    return q, inverted
