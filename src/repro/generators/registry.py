"""The paper's thirteen 16-bit multipliers, by their Table 1 names.

Each entry is a zero-argument factory returning a verified-construction
:class:`~repro.generators.base.MultiplierImplementation`.  Names match the
Table 1 rows exactly so experiment code can join generated circuits with
published data.

The factories live in the model catalog's ``generator`` namespace (the
:data:`MULTIPLIER_FACTORIES` dict below is the builtin source the
catalog loader registers); :func:`build_multiplier` resolves through the
catalog, so user factories added with
``repro.catalog.default_catalog().generators.register(...)`` build by
name exactly like the Table 1 rows.
"""

from __future__ import annotations

from functools import partial
from typing import Callable

from .array_mult import array_core, build_array_multiplier
from .base import MultiplierImplementation
from .parallel import build_parallel_multiplier
from .sequential import (
    build_parallel_sequential_multiplier,
    build_sequential_4x16_multiplier,
    build_sequential_multiplier,
)
from .wallace import build_wallace_multiplier, wallace_core

#: Operand width used throughout the paper.
PAPER_WIDTH = 16


def _rca_parallel(k: int) -> MultiplierImplementation:
    return build_parallel_multiplier(
        core=lambda builder, a, b: array_core(builder, a, b),
        width=PAPER_WIDTH,
        k=k,
        name=f"rca{PAPER_WIDTH}-par{k}",
        description=f"{k}-way parallel carry-save array multiplier",
    )


def _wallace_parallel(k: int) -> MultiplierImplementation:
    return build_parallel_multiplier(
        core=wallace_core,
        width=PAPER_WIDTH,
        k=k,
        name=f"wallace{PAPER_WIDTH}-par{k}",
        description=f"{k}-way parallel Wallace multiplier",
    )


#: Factories for all thirteen Table 1 architectures, keyed by row name.
MULTIPLIER_FACTORIES: dict[str, Callable[[], MultiplierImplementation]] = {
    "RCA": partial(build_array_multiplier, PAPER_WIDTH),
    "RCA parallel": partial(_rca_parallel, 2),
    "RCA parallel4": partial(_rca_parallel, 4),
    "RCA hor.pipe2": partial(
        build_array_multiplier, PAPER_WIDTH, n_stages=2, style="horizontal"
    ),
    "RCA hor.pipe4": partial(
        build_array_multiplier, PAPER_WIDTH, n_stages=4, style="horizontal"
    ),
    "RCA diagpipe2": partial(
        build_array_multiplier, PAPER_WIDTH, n_stages=2, style="diagonal"
    ),
    "RCA diagpipe4": partial(
        build_array_multiplier, PAPER_WIDTH, n_stages=4, style="diagonal"
    ),
    "Wallace": partial(build_wallace_multiplier, PAPER_WIDTH),
    "Wallace parallel": partial(_wallace_parallel, 2),
    "Wallace par4": partial(_wallace_parallel, 4),
    "Sequential": partial(build_sequential_multiplier, PAPER_WIDTH),
    "Seq4_16": partial(build_sequential_4x16_multiplier, PAPER_WIDTH),
    "Seq parallel": partial(build_parallel_sequential_multiplier, PAPER_WIDTH),
}

#: Table 1 row order, for reports.
MULTIPLIER_NAMES = list(MULTIPLIER_FACTORIES)


def build_multiplier(name: str) -> MultiplierImplementation:
    """Build a registered multiplier by catalog name (Table 1 rows builtin).

    Lookup goes through the model catalog's ``generator`` namespace, so
    any spelling the catalog normaliser folds together works
    (``"wallace"`` builds the ``"Wallace"`` row) and user-registered
    generator factories are buildable by name too.

    >>> build_multiplier("Wallace").width
    16
    """
    from ..catalog import CatalogKeyError, default_catalog

    try:
        factory = default_catalog().generators.get(name)
    except CatalogKeyError as error:
        message = f"unknown multiplier {name!r}; known: {', '.join(error.known)}"
        if error.suggestions:
            quoted = " or ".join(repr(s) for s in error.suggestions)
            message += f" — did you mean {quoted}?"
        raise KeyError(message) from None
    implementation = factory()
    return implementation


def build_all_multipliers() -> dict[str, MultiplierImplementation]:
    """Build the full thirteen-architecture set (Table 1 order)."""
    return {name: build_multiplier(name) for name in MULTIPLIER_NAMES}
