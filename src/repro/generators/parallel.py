"""k-way parallelised multipliers (paper Section 4, "parallelization").

Parallelisation replicates a combinational multiplier core ``k`` times and
multiplexes the data across the copies: copy ``c`` captures a new operand
pair only when the phase counter equals ``c``, so every copy's
combinational logic has ``k`` clock periods to settle — "each multiplier
has additional clock cycles at its disposal relaxing timing constraints".
Throughput is unchanged (one result per cycle); the cost is ``k×`` the
cells plus the output multiplexers — the overhead that eventually cancels
the benefit for already-fast structures (the Wallace par4 case).

Implementation details that matter for power:

* operand capture uses enable flip-flops (DFFE), the cell-level equivalent
  of the clock gating a synthesis flow would infer, so an idle copy's
  inputs — and therefore its whole combinational cone — do not toggle;
  this is what makes the per-cell activity drop towards ``a/k``;
* the output side is a MUX2 tree selecting the copy whose k-cycle window
  just completed, followed by the usual output register plane.
"""

from __future__ import annotations

from typing import Callable

from ..netlist.builder import Builder, Bus
from ..netlist.netlist import Netlist
from .base import MultiplierImplementation
from .control import equals_constant, modulo_counter

#: A combinational multiplier datapath: (builder, a_bus, b_bus) -> product.
CoreFunction = Callable[[Builder, Bus, Bus], Bus]


def build_parallel_multiplier(
    core: CoreFunction,
    width: int,
    k: int,
    name: str,
    description: str = "",
) -> MultiplierImplementation:
    """Replicate ``core`` ``k`` times with interleaved operand capture.

    ``k`` must be a power of two (the phase counter wraps naturally).
    The returned implementation has ``ld_divisor = k``: its effective
    logical depth at a given throughput is the core depth divided by k.
    """
    if k < 2 or (k & (k - 1)) != 0:
        raise ValueError(f"parallelisation factor must be a power of two >= 2, got {k}")

    netlist = Netlist(name)
    builder = Builder(netlist)

    a_pins = netlist.add_input_bus("a", width)
    b_pins = netlist.add_input_bus("b", width)

    phase = modulo_counter(builder, k)
    products: list[Bus] = []
    for copy in range(k):
        capture = equals_constant(builder, phase, copy)
        a_copy = [builder.register(pin, enable=capture) for pin in a_pins]
        b_copy = [builder.register(pin, enable=capture) for pin in b_pins]
        products.append(core(builder, a_copy, b_copy))

    # Output side: during the cycle with phase == c, copy c's window is
    # ending (it captured k cycles ago), so route copy c to the output
    # registers.  A balanced MUX2 tree keyed on the phase bits does this
    # with log2(k) levels.
    def mux_tree(candidates: list[int], level: int) -> int:
        if len(candidates) == 1:
            return candidates[0]
        half = len(candidates) // 2
        low = mux_tree(candidates[:half], level + 1)
        high = mux_tree(candidates[half:], level + 1)
        # Select by the highest phase bit distinguishing the two halves.
        select_bit = phase[len(phase) - 1 - level]
        return builder.mux(low, high, select_bit)

    outputs = []
    for bit in range(2 * width):
        routed = mux_tree([products[copy][bit] for copy in range(k)], 0)
        outputs.append(builder.register(routed))
    netlist.set_outputs(outputs)
    netlist.freeze()

    return MultiplierImplementation(
        name=name,
        netlist=netlist,
        width=width,
        a_bus=tuple(a_pins),
        b_bus=tuple(b_pins),
        product_bus=tuple(outputs),
        cycles_per_result=1,
        ld_divisor=float(k),
        description=description or f"{k}-way parallel multiplier",
    )
