"""Batch solve paths: the PR 1 engine behind the :class:`Solver` contract.

These adapters route through :func:`repro.explore.engine.evaluate_points`
so every ``Study`` run — and anything else that dispatches through the
solver registry — gets the vectorized Eq. 9–13 kernel, the parallel
exact-numerical executor, and the built-in vectorized-vs-scalar parity
check for free.

``vectorized``
    The numpy closed-form kernel everywhere it is defined (the engine's
    ``method="closed-form"``); no scipy calls at all.
``numerical``
    The exact reference solver for every point, chunked over a
    ``multiprocessing`` pool (the engine's ``method="numerical"``).
``auto``
    The production policy: trust the vectorized kernel on the closed
    form's home turf and re-solve every flagged point — near the
    feasibility boundary ``1 − χA → 0``, near the Vth floor, outside the
    Eq. 7 fit range — with the exact numerical solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..explore.engine import PointOutcome, evaluate_points
from ..explore.scenario import DesignPoint
from .base import check_options

__all__ = ["EngineSolver", "AUTO_SOLVER", "NUMERICAL_SOLVER", "VECTORIZED_SOLVER"]


@dataclass(frozen=True)
class EngineSolver:
    """One :func:`evaluate_points` method exposed as a registry solver."""

    name: str
    summary: str
    engine_method: str

    def solve(
        self,
        points: Sequence[DesignPoint],
        jobs: int | None = None,
        **options,
    ) -> list[PointOutcome]:
        check_options(self.name, options, ("parity_check",))
        return evaluate_points(
            points, method=self.engine_method, jobs=jobs, **options
        )


VECTORIZED_SOLVER = EngineSolver(
    name="vectorized",
    summary="numpy Eq. 9-13 batch kernel wherever the closed form is defined",
    engine_method="closed-form",
)

NUMERICAL_SOLVER = EngineSolver(
    name="numerical",
    summary="exact numerical reference for every point (multiprocessing)",
    engine_method="numerical",
)

AUTO_SOLVER = EngineSolver(
    name="auto",
    summary="vectorized kernel + exact-numerical fallback near the boundary",
    engine_method="auto",
)
