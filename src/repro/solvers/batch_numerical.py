"""Vectorized exact-numerical optimisation of the 1-D Vdd problem.

:func:`repro.core.numerical.numerical_optimum` reduces the constrained
power minimisation to one dimension — ``Vth(Vdd)`` from the exact Eq. 5
(no linearisation), then a bounded scalar minimisation of Eq. 1 over
``Vdd`` — and solves it with one scipy ``minimize_scalar`` call per
point.  That per-point call is exactly what dominates a large
``method="auto"`` sweep once the vectorized closed form has handled the
interior: every flagged point (near the feasibility boundary, near the
Vth floor, outside the Eq. 7 fit range) pays a millisecond of scipy
machinery for microseconds of arithmetic, and the engine fans the calls
over a multiprocessing pool just to claw some of that back.

This module solves the *same* 1-D problem for the whole flagged set at
once.  :func:`_fminbound_batch` is a faithful lockstep port of scipy's
``_minimize_scalar_bounded`` (bounded Brent: golden-section with
parabolic acceleration): every point carries the full solver state
``(a, b, xf, fulc, nfc, …)`` as one slot of a numpy array, each loop
iteration performs the identical accept/reject logic with ``np.where``
masks, and converged points freeze while the rest keep stepping.  The
objective is evaluated once per iteration for the whole set — a handful
of array operations instead of thousands of Python calls.

Because the port replays scipy's arithmetic operation-for-operation on
the same IEEE doubles, the returned ``Vdd`` is *bit-identical* to what
``numerical_optimum`` computes, point for point — including the
boundary-pinned infeasible cases, whose "optimum pinned at search
boundary" reason strings therefore match the scalar solver's verbatim.
The final power split evaluates the exact Eq. 5 + Eq. 1 chain with the
scalar path's operation order, so feasible results are bit-identical
too (the test-suite asserts 1e-9 relative, and byte-equality holds in
practice).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.constants import EULER
from ..core.constraint import chi_for_architecture
from ..core.numerical import DEFAULT_VDD_SPAN

__all__ = [
    "BOUNDARY_MARGIN",
    "MAX_ITERATIONS",
    "XATOL",
    "BatchNumericalSolution",
    "BatchNumericalTask",
    "solve_batch",
    "solve_points",
    "task_for_points",
]

#: Absolute ``Vdd`` tolerance of the bounded search — the exact value
#: :func:`repro.core.numerical.numerical_optimum` passes to scipy.
XATOL = 1e-7

#: Iteration cap, matching scipy's ``maxiter`` default for the bounded
#: method.  The lockstep loop runs until the slowest point converges;
#: golden-section contraction bounds that at ~45 iterations for this
#: problem's intervals and tolerance.
MAX_ITERATIONS = 500

#: Fraction of the search interval treated as "pinned at the boundary" —
#: the same margin :func:`repro.core.numerical.numerical_optimum` uses
#: to reject degenerate optima as infeasible.
BOUNDARY_MARGIN = 1e-4

#: Method tag for operating points this solver produces — the same 1-D
#: reduction the scalar solver tags, found by the same (vectorized)
#: search, so downstream consumers cannot tell the dispatcher changed.
METHOD = "numerical-1d"

#: The scalar solver's exception message, reproduced verbatim so
#: ``method="auto"`` reports byte-identical infeasibility reasons
#: whether a point was solved here or by the scipy reference.
_PINNED_REASON = (
    "numerical_optimum[{name}]: optimum pinned at search boundary "
    "Vdd={vdd:.4f} V — problem infeasible or span too narrow"
)


@dataclass(frozen=True)
class BatchNumericalTask:
    """The flagged set as column arrays (one entry per point, aligned).

    ``chi`` is the Eq. 6 constraint coefficient (the architecture's
    ``zeta_factor`` already applied), ``io_power`` the per-cell leakage
    current of Eq. 1 (``tech.io · io_factor``), ``n_ut`` the
    sub-threshold slope voltage and ``inv_alpha`` is ``1/α`` — the only
    form the exact constraint needs.
    """

    name: np.ndarray
    n_cells: np.ndarray
    activity: np.ndarray
    capacitance: np.ndarray
    frequency: np.ndarray
    chi: np.ndarray
    io_power: np.ndarray
    inv_alpha: np.ndarray
    n_ut: np.ndarray
    vdd_lo: np.ndarray
    vdd_hi: np.ndarray

    @property
    def size(self) -> int:
        return len(self.frequency)


@dataclass(frozen=True)
class BatchNumericalSolution:
    """Per-point outcome arrays, aligned with the task.

    ``feasible`` rows carry the exact operating point (NaN elsewhere);
    infeasible rows carry the scalar solver's verbatim ``reason``.
    """

    vdd: np.ndarray
    vth: np.ndarray
    pdyn: np.ndarray
    pstat: np.ndarray
    ptot: np.ndarray
    feasible: np.ndarray
    reason: np.ndarray

    @property
    def size(self) -> int:
        return len(self.vdd)


def chi_denominator(tech) -> float:
    """The Eq. 6 denominator ``Io·(e/(n·Ut))^α`` as the scalar path computes it."""
    return tech.io * (EULER / tech.n_ut) ** tech.alpha


def exact_chi(
    logical_depth: np.ndarray,
    frequency: np.ndarray,
    zeta_effective: np.ndarray,
    denominator: np.ndarray,
    inv_alpha: np.ndarray,
) -> np.ndarray:
    """Per-point χ, bit-identical to :func:`repro.core.constraint.chi`.

    The base ``f·LD·ζ/denominator`` is pure elementwise multiply/divide
    — correctly rounded, so the vectorized value equals the scalar one
    to the last bit.  The final power, however, goes through numpy's
    SIMD ``pow`` on arrays, which may differ from scalar libm ``pow``
    by 1 ULP; since the fallback solver's claim is bit-parity with the
    scalar reference, the exponentiation runs on python floats.
    """
    base = frequency * logical_depth * zeta_effective / denominator
    return np.array(
        [b**e for b, e in zip(base.tolist(), inv_alpha.tolist())],
        dtype=float,
    )


def task_for_points(
    points: Sequence,
    chi: np.ndarray | None = None,
    vdd_span: tuple[float, float] = DEFAULT_VDD_SPAN,
) -> BatchNumericalTask:
    """Column arrays for a list of :class:`~repro.explore.scenario.DesignPoint`.

    ``chi`` may be passed pre-computed (the batch kernel already has it
    for every flagged point); otherwise it is derived per point with the
    scalar helper.
    """
    if chi is None:
        chi = np.array(
            [
                chi_for_architecture(p.architecture, p.technology, p.frequency)
                for p in points
            ],
            dtype=float,
        )
    else:
        chi = np.asarray(chi, dtype=float)
    nominal = np.array([p.technology.vdd_nominal for p in points], dtype=float)
    return BatchNumericalTask(
        name=np.array([p.architecture.name for p in points], dtype=object),
        n_cells=np.array(
            [p.architecture.n_cells for p in points], dtype=float
        ),
        activity=np.array(
            [p.architecture.activity for p in points], dtype=float
        ),
        capacitance=np.array(
            [p.architecture.capacitance for p in points], dtype=float
        ),
        frequency=np.array([p.frequency for p in points], dtype=float),
        chi=chi,
        io_power=np.array(
            [p.technology.io * p.architecture.io_factor for p in points],
            dtype=float,
        ),
        inv_alpha=np.array(
            [1.0 / p.technology.alpha for p in points], dtype=float
        ),
        n_ut=np.array([p.technology.n_ut for p in points], dtype=float),
        vdd_lo=vdd_span[0] * nominal,
        vdd_hi=vdd_span[1] * nominal,
    )


def _power_split(
    task: BatchNumericalTask, vdd: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(vth, pdyn, pstat, ptot) at ``vdd``, along the exact constraint.

    Operation order replicates the scalar chain exactly —
    ``vth_exact`` then ``power_breakdown`` with the leakage-corrected
    technology — so values are bit-identical at equal ``vdd``.

    The ``vdd**inv_alpha`` here intentionally goes through numpy's
    ufunc ``pow`` (unlike :func:`exact_chi`): the scalar reference
    computes ``Vth`` via ``np.power`` too, and numpy's ufunc rounds
    identically for 0-d and n-d operands while *differing* from
    python/libm ``pow`` by 1 ULP on some inputs.  χ, by contrast, is
    computed with python floats on the scalar path — each side of the
    chain must match the rounding of its scalar counterpart.
    """
    vth = vdd - task.chi * vdd**task.inv_alpha
    with np.errstate(over="ignore", invalid="ignore"):
        pdyn = (
            task.n_cells
            * task.activity
            * task.capacitance
            * vdd**2
            * task.frequency
        )
        pstat = task.n_cells * vdd * task.io_power * np.exp(-vth / task.n_ut)
    return vth, pdyn, pstat, pdyn + pstat


def _objective(task: BatchNumericalTask, vdd: np.ndarray) -> np.ndarray:
    return _power_split(task, vdd)[3]


def _fminbound_batch(
    task: BatchNumericalTask, xatol: float = XATOL, maxiter: int = MAX_ITERATIONS
) -> np.ndarray:
    """Lockstep vectorized port of scipy's ``_minimize_scalar_bounded``.

    One numpy slot per point carries the scalar algorithm's full state;
    each loop iteration applies the identical golden/parabolic logic
    through boolean masks and evaluates the objective once for the
    whole set.  Converged points freeze (their state stops updating)
    while the rest continue, so the trajectory of every individual
    point — and therefore the returned ``xf`` — is bit-identical to the
    scalar search.
    """
    n = task.size
    sqrt_eps = math.sqrt(2.2e-16)
    golden_mean = 0.5 * (3.0 - math.sqrt(5.0))

    a = task.vdd_lo.astype(float, copy=True)
    b = task.vdd_hi.astype(float, copy=True)
    fulc = a + golden_mean * (b - a)
    nfc = fulc.copy()
    xf = fulc.copy()
    rat = np.zeros(n)
    e = np.zeros(n)
    fx = _objective(task, xf)
    num = np.ones(n, dtype=np.intp)
    ffulc = fx.copy()
    fnfc = fx.copy()
    xm = 0.5 * (a + b)
    tol1 = sqrt_eps * np.abs(xf) + xatol / 3.0
    tol2 = 2.0 * tol1

    with np.errstate(invalid="ignore"):
        active = np.abs(xf - xm) > (tol2 - 0.5 * (b - a))
    while active.any():
        with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
            use_parabola = active & (np.abs(e) > tol1)
            r = (xf - nfc) * (fx - ffulc)
            q = (xf - fulc) * (fx - fnfc)
            p = (xf - fulc) * q - (xf - nfc) * r
            q = 2.0 * (q - r)
            p = np.where(q > 0.0, -p, p)
            q = np.abs(q)
            r = e  # the *previous* step length gates acceptability
            e = np.where(use_parabola, rat, e)
            accept = (
                use_parabola
                & (np.abs(p) < np.abs(0.5 * q * r))
                & (p > q * (a - xf))
                & (p < q * (b - xf))
            )
            rat = np.where(accept, p / q, rat)
            x_parabola = xf + rat
            near_edge = accept & (
                ((x_parabola - a) < tol2) | ((b - x_parabola) < tol2)
            )
            si = np.sign(xm - xf) + ((xm - xf) == 0)
            rat = np.where(near_edge, tol1 * si, rat)

            golden = active & ~accept
            e_golden = np.where(xf >= xm, a - xf, b - xf)
            e = np.where(golden, e_golden, e)
            rat = np.where(golden, golden_mean * e_golden, rat)

            si = np.sign(rat) + (rat == 0)
            x = np.where(
                active, xf + si * np.maximum(np.abs(rat), tol1), xf
            )
            fu = _objective(task, x)
            num += active

            improved = active & (fu <= fx)
            a = np.where(improved & (x >= xf), xf, a)
            b = np.where(improved & (x < xf), xf, b)
            fulc = np.where(improved, nfc, fulc)
            ffulc = np.where(improved, fnfc, ffulc)
            nfc = np.where(improved, xf, nfc)
            fnfc = np.where(improved, fx, fnfc)

            worse = active & ~improved
            a = np.where(worse & (x < xf), x, a)
            b = np.where(worse & (x >= xf), x, b)
            shift_both = worse & ((fu <= fnfc) | (nfc == xf))
            shift_fulc = (
                worse
                & ~shift_both
                & ((fu <= ffulc) | (fulc == xf) | (fulc == nfc))
            )
            fulc = np.where(shift_both, nfc, np.where(shift_fulc, x, fulc))
            ffulc = np.where(
                shift_both, fnfc, np.where(shift_fulc, fu, ffulc)
            )
            nfc = np.where(shift_both, x, nfc)
            fnfc = np.where(shift_both, fu, fnfc)

            xf = np.where(improved, x, xf)
            fx = np.where(improved, fu, fx)

            xm = np.where(active, 0.5 * (a + b), xm)
            tol1 = np.where(
                active, sqrt_eps * np.abs(xf) + xatol / 3.0, tol1
            )
            tol2 = 2.0 * tol1
            active &= (np.abs(xf - xm) > (tol2 - 0.5 * (b - a))) & (
                num < maxiter
            )
    return xf


def solve_batch(task: BatchNumericalTask) -> BatchNumericalSolution:
    """Solve every task point at once; see the module docstring."""
    n = task.size
    if n == 0:
        empty = np.array([], dtype=float)
        return BatchNumericalSolution(
            vdd=empty,
            vth=empty.copy(),
            pdyn=empty.copy(),
            pstat=empty.copy(),
            ptot=empty.copy(),
            feasible=np.array([], dtype=bool),
            reason=np.array([], dtype=object),
        )

    vdd = _fminbound_batch(task)
    interval = task.vdd_hi - task.vdd_lo
    # The scalar solver treats a boundary-pinned minimiser as
    # infeasibility (the bounded search cannot certify an optimum there).
    with np.errstate(invalid="ignore"):
        feasible = ~(
            (vdd - task.vdd_lo < BOUNDARY_MARGIN * interval)
            | (task.vdd_hi - vdd < BOUNDARY_MARGIN * interval)
        )

    reason = np.empty(n, dtype=object)
    reason.fill("")
    for index in np.flatnonzero(~feasible).tolist():
        reason[index] = _PINNED_REASON.format(
            name=task.name[index], vdd=vdd[index]
        )

    vth, pdyn, pstat, ptot = _power_split(task, vdd)
    nan = np.nan
    return BatchNumericalSolution(
        vdd=np.where(feasible, vdd, nan),
        vth=np.where(feasible, vth, nan),
        pdyn=np.where(feasible, pdyn, nan),
        pstat=np.where(feasible, pstat, nan),
        ptot=np.where(feasible, ptot, nan),
        feasible=feasible,
        reason=reason,
    )


def solve_points(
    points: Sequence, chi: np.ndarray | None = None
) -> BatchNumericalSolution:
    """Convenience: :func:`task_for_points` + :func:`solve_batch`."""
    return solve_batch(task_for_points(points, chi=chi))
