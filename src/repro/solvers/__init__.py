"""Unified solver registry (the dispatch layer under :class:`repro.study.Study`).

One protocol, one registry, six built-in entries:

=============== =============================================================
``closed_form`` scalar Section 3 chain (Eqs. 9/10/8), one point at a time
``linearized``  numerical optimum on the linearised constraint (ablation A4)
``numerical``   exact numerical reference, parallel over a process pool
``vectorized``  numpy Eq. 9–13 batch kernel, no scipy calls
``bounded``     exact optimum under practical Vth/Vdd caps
``auto``        vectorized kernel with exact-numerical fallback at the edges
=============== =============================================================

All of them honour the same contract (see :mod:`repro.solvers.base`):
``solve(points, jobs=None, **options)`` returns one
:class:`~repro.explore.engine.PointOutcome` per design point, in order,
with infeasibility reported as data rather than raised.  Register your
own with :func:`register_solver` and it becomes addressable from
``Study(...).solver("your-name")`` and the CLI immediately.

:mod:`repro.solvers.batch_numerical` is not a registry entry but the
vectorized kernel underneath ``auto``'s exact-numerical fallback: a
lockstep numpy port of the bounded scipy search that solves the whole
flagged set at once, bit-identical to ``numerical_optimum`` — the
per-point scipy pool now serves only the ``numerical`` reference
method.
"""

from .base import Solver, SolverError, check_options
from .batch import AUTO_SOLVER, EngineSolver, NUMERICAL_SOLVER, VECTORIZED_SOLVER
from .batch_numerical import (
    BatchNumericalSolution,
    BatchNumericalTask,
    solve_batch,
    task_for_points,
)
from .registry import (
    available_solvers,
    get_solver,
    register_solver,
    solver_summaries,
    unregister_solver,
)
from .scalar import (
    BOUNDED_SOLVER,
    CLOSED_FORM_SOLVER,
    LINEARIZED_SOLVER,
    NUMERICAL_SCALAR_SOLVER,
    ScalarSolver,
)

__all__ = [
    "AUTO_SOLVER",
    "BOUNDED_SOLVER",
    "BatchNumericalSolution",
    "BatchNumericalTask",
    "CLOSED_FORM_SOLVER",
    "EngineSolver",
    "LINEARIZED_SOLVER",
    "NUMERICAL_SCALAR_SOLVER",
    "NUMERICAL_SOLVER",
    "ScalarSolver",
    "Solver",
    "SolverError",
    "VECTORIZED_SOLVER",
    "available_solvers",
    "check_options",
    "get_solver",
    "register_solver",
    "solve_batch",
    "solver_summaries",
    "task_for_points",
    "unregister_solver",
]

# The built-in solvers are registered by the catalog's builtin loader
# (repro.catalog.builtin.register_builtins) the first time any lookup
# touches the catalog — importing this package stays registration-free,
# which keeps the repro.solvers ⇄ repro.catalog import graph acyclic.
