"""Name → :class:`Solver` registry — a thin wrapper over the model catalog.

Historically this module owned its own dict; it is now a facade over the
``solver`` namespace of :data:`repro.catalog.registry.DEFAULT_CATALOG`,
so solvers share the catalog's normalisation (case and ``-``/``_``
folding), provenance metadata and did-you-mean errors with every other
entity kind, and ``repro list --json`` / ``GET /v1/catalog`` enumerate
them for free.  The historical API is unchanged: third-party code adds
a solver with :func:`register_solver` and immediately drives it through
``Study`` and the CLI.
"""

from __future__ import annotations

from .base import Solver, SolverError

__all__ = [
    "available_solvers",
    "get_solver",
    "register_solver",
    "solver_summaries",
    "unregister_solver",
]


def _solvers():
    """The catalog's solver namespace (imported lazily; keeps cycles out)."""
    from ..catalog import default_catalog

    return default_catalog().solvers


def register_solver(
    solver: Solver, overwrite: bool = False, provenance: str = "user"
) -> Solver:
    """Add ``solver`` under ``solver.name``; returns it for chaining.

    The stored key is normalised exactly like :func:`get_solver`'s
    lookups, so a solver registered as ``"my-solver"`` resolves as
    ``"my-solver"``, ``"my_solver"`` or ``"MY-SOLVER"`` alike.
    Registering an already-taken name raises unless ``overwrite=True`` —
    silent replacement is how two modules end up fighting over a name.
    """
    name = getattr(solver, "name", "")
    if not name or not isinstance(name, str):
        raise SolverError(f"solver {solver!r} has no usable .name")
    try:
        _solvers().register(
            name,
            solver,
            summary=getattr(solver, "summary", ""),
            provenance=provenance,
            overwrite=overwrite,
        )
    except ValueError as error:
        raise SolverError(str(error)) from None
    return solver


def unregister_solver(name: str) -> None:
    """Remove a registered solver (mainly for tests)."""
    _solvers().unregister(name)


def get_solver(name: str | Solver) -> Solver:
    """Look up a solver by name (a :class:`Solver` passes through).

    Accepts ``-``/``_`` spelling interchangeably (``"closed-form"`` and
    ``"closed_form"`` name the same solver).
    """
    if not isinstance(name, str):
        return name
    from .. import obs
    from ..catalog import CatalogKeyError

    obs.inc("solver.lookups")
    try:
        return _solvers().get(name)
    except CatalogKeyError as error:
        raise SolverError(str(error)) from None


def available_solvers() -> tuple[str, ...]:
    """Registered solver names (normalised), sorted."""
    return tuple(entry.key for entry in _solvers().entries())


def solver_summaries() -> dict[str, str]:
    """``{name: one-line summary}`` for CLI/API listings."""
    return _solvers().summaries()
