"""Name → :class:`Solver` registry.

The registry is the single dispatch point of the :class:`repro.study.
Study` facade and the CLI: every solve path — the paper's closed form,
the linearised-constraint variant, the exact numerical reference, the
vectorized batch kernel, the bounded extension and the ``"auto"`` policy
— registers here under a stable name.  Third-party code can add its own
solver (a different device model, a surrogate, a remote service) with
:func:`register_solver` and immediately drive it through ``Study`` and
the CLI without touching either.
"""

from __future__ import annotations

from .base import Solver, SolverError

__all__ = [
    "available_solvers",
    "get_solver",
    "register_solver",
    "solver_summaries",
    "unregister_solver",
]

_REGISTRY: dict[str, Solver] = {}


def _normalise(name: str) -> str:
    """The canonical registry key: ``-``/``_`` and case are equivalent."""
    return name.replace("-", "_").lower()


def register_solver(solver: Solver, overwrite: bool = False) -> Solver:
    """Add ``solver`` under ``solver.name``; returns it for chaining.

    The stored key is normalised exactly like :func:`get_solver`'s
    lookups, so a solver registered as ``"my-solver"`` resolves as
    ``"my-solver"``, ``"my_solver"`` or ``"MY-SOLVER"`` alike.
    Registering an already-taken name raises unless ``overwrite=True`` —
    silent replacement is how two modules end up fighting over a name.
    """
    name = getattr(solver, "name", "")
    if not name or not isinstance(name, str):
        raise SolverError(f"solver {solver!r} has no usable .name")
    key = _normalise(name)
    if not overwrite and key in _REGISTRY:
        raise SolverError(
            f"solver name {name!r} is already registered; "
            f"pass overwrite=True to replace it"
        )
    _REGISTRY[key] = solver
    return solver


def unregister_solver(name: str) -> None:
    """Remove a registered solver (mainly for tests)."""
    _REGISTRY.pop(_normalise(name), None)


def get_solver(name: str | Solver) -> Solver:
    """Look up a solver by name (a :class:`Solver` passes through).

    Accepts ``-``/``_`` spelling interchangeably (``"closed-form"`` and
    ``"closed_form"`` name the same solver).
    """
    if not isinstance(name, str):
        return name
    try:
        return _REGISTRY[_normalise(name)]
    except KeyError:
        known = ", ".join(available_solvers())
        raise SolverError(f"unknown solver {name!r}; known: {known}") from None


def available_solvers() -> tuple[str, ...]:
    """Registered solver names, sorted."""
    return tuple(sorted(_REGISTRY))


def solver_summaries() -> dict[str, str]:
    """``{name: one-line summary}`` for CLI/API listings."""
    return {
        name: getattr(_REGISTRY[name], "summary", "")
        for name in available_solvers()
    }
