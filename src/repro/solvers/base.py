"""The :class:`Solver` protocol — one signature for every solve path.

Historically the repository answered "which (Vdd, Vth) minimises total
power at frequency f?" through five functions with five shapes:
``closed_form_optimum`` and ``numerical_optimum`` (scalar, raising on
infeasibility), ``numerical_optimum_linearized`` and ``bounded_optimum``
(scalar with extra knobs), and the explore engine's ``evaluate_points``
(batch, infeasibility-as-data).  A :class:`Solver` normalises all of them
to one contract:

    ``solve(points, jobs=None, **options) -> list[PointOutcome]``

* ``points`` is any sequence of :class:`repro.explore.scenario.
  DesignPoint`; the returned list is aligned with it, one outcome per
  point, in order.
* Infeasibility is **data, not an exception**: an infeasible point comes
  back as a :class:`repro.explore.engine.PointOutcome` with ``result``
  None and a human-readable ``reason``.
* ``jobs`` is a parallelism *hint*; purely scalar solvers may ignore it.
* ``options`` are solver-specific keywords (e.g. ``vth_max`` for the
  bounded solver); solvers must reject unknown options loudly.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

from ..explore.engine import PointOutcome
from ..explore.scenario import DesignPoint

__all__ = ["Solver", "SolverError"]


class SolverError(ValueError):
    """Raised for solver-level misuse (unknown name, bad options)."""


@runtime_checkable
class Solver(Protocol):
    """Anything that evaluates design points under the uniform contract.

    Implementations carry a ``name`` (the registry key) and a one-line
    ``summary`` used by CLI/API listings.
    """

    name: str
    summary: str

    def solve(
        self,
        points: Sequence[DesignPoint],
        jobs: int | None = None,
        **options,
    ) -> list[PointOutcome]:
        """Evaluate every point; outcomes align with ``points``."""
        ...


def check_options(solver_name: str, options, allowed: tuple[str, ...]) -> None:
    """Reject option typos instead of silently ignoring them."""
    unknown = sorted(set(options) - set(allowed))
    if unknown:
        allowed_text = ", ".join(allowed) if allowed else "none"
        raise SolverError(
            f"solver {solver_name!r} got unknown option(s) "
            f"{', '.join(unknown)}; allowed: {allowed_text}"
        )
