"""Scalar solve paths wrapped into the uniform :class:`Solver` contract.

Each of these wraps one of the repository's historical one-point-at-a-
time entry points.  The wrapped function keeps its exact numerics — the
solver only normalises the *shape*: a sequence of design points in, an
aligned list of :class:`PointOutcome` out, infeasibility carried as a
reason string instead of an exception.

``closed_form``
    Eqs. 9/10/8 via :func:`repro.core.closed_form.closed_form_optimum`
    (the paper's Section 3 chain, scalar).
``linearized``
    Numerical optimum on the *linearised* constraint
    (:func:`repro.core.numerical.numerical_optimum_linearized`), the
    ablation-A4 path.
``bounded``
    Practical voltage caps (:func:`repro.core.bounded.bounded_optimum`);
    options ``vth_max`` and ``vdd_bounds``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core.bounded import bounded_optimum
from ..core.closed_form import InfeasibleConstraintError, closed_form_optimum
from ..core.numerical import numerical_optimum, numerical_optimum_linearized
from ..core.optimum import OptimizationResult
from ..explore.engine import PointOutcome
from ..explore.scenario import DesignPoint
from .base import check_options

__all__ = [
    "ScalarSolver",
    "BOUNDED_SOLVER",
    "CLOSED_FORM_SOLVER",
    "LINEARIZED_SOLVER",
    "NUMERICAL_SCALAR_SOLVER",
]


@dataclass(frozen=True)
class ScalarSolver:
    """A per-point solve function lifted to the batch solver contract.

    ``fn(arch, tech, frequency, **options)`` must return an
    :class:`OptimizationResult` or raise ``InfeasibleConstraintError`` /
    ``ValueError`` for infeasible problems (the contract every
    ``repro.core`` optimiser already honours).  ``jobs`` is accepted for
    signature uniformity and ignored — these paths are scalar by nature;
    use the ``numerical`` or ``auto`` registry entries for parallel and
    vectorized evaluation.
    """

    name: str
    summary: str
    fn: Callable[..., OptimizationResult]
    allowed_options: tuple[str, ...] = ()
    defaults: dict = field(default_factory=dict)

    def solve(
        self,
        points: Sequence[DesignPoint],
        jobs: int | None = None,
        **options,
    ) -> list[PointOutcome]:
        check_options(self.name, options, self.allowed_options)
        merged = {**self.defaults, **options}
        outcomes = []
        for point in points:
            try:
                result = self.fn(
                    point.architecture, point.technology, point.frequency, **merged
                )
            except (InfeasibleConstraintError, ValueError) as error:
                outcomes.append(
                    PointOutcome(
                        point=point, result=None, reason=str(error), method=self.name
                    )
                )
            else:
                outcomes.append(
                    PointOutcome(point=point, result=result, method=self.name)
                )
        return outcomes


CLOSED_FORM_SOLVER = ScalarSolver(
    name="closed_form",
    summary="paper Eqs. 9/10/8 closed-form chain, one point at a time",
    fn=closed_form_optimum,
    allowed_options=("chi_value", "fit"),
)

LINEARIZED_SOLVER = ScalarSolver(
    name="linearized",
    summary="numerical optimum on the linearised Eq. 8 constraint (ablation A4)",
    fn=numerical_optimum_linearized,
    allowed_options=("chi_value", "fit", "vdd_span"),
)

BOUNDED_SOLVER = ScalarSolver(
    name="bounded",
    summary="exact optimum under practical Vth/Vdd caps (vth_max, vdd_bounds)",
    fn=bounded_optimum,
    allowed_options=("vth_max", "vdd_bounds", "chi_value"),
)

#: The reference solver in scalar form.  The registry's ``numerical``
#: entry routes through the parallel executor instead; this instance
#: exists for callers that want the guaranteed-serial, in-process path.
NUMERICAL_SCALAR_SOLVER = ScalarSolver(
    name="numerical_scalar",
    summary="exact numerical reference, guaranteed in-process serial loop",
    fn=numerical_optimum,
    allowed_options=("chi_value", "vdd_span"),
)
