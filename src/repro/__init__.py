"""repro — reproduction of Schuster et al., DATE 2006.

*Architectural and Technology Influence on the Optimal Total Power
Consumption.*

The library answers one question in many ways: **given a circuit that must
run at frequency f, what supply/threshold pair minimises its total
(dynamic + static) power, and how do architecture and technology choices
move that minimum?**

Quick start::

    from repro import ST_CMOS09_LL, ArchitectureParameters, numerical_optimum

    wallace = ArchitectureParameters(
        name="wallace16", n_cells=729, activity=0.2976,
        logical_depth=17, capacitance=70e-15,
    )
    result = numerical_optimum(wallace, ST_CMOS09_LL, frequency=31.25e6)
    print(result.describe())

Sub-packages
------------
``repro.core``
    The paper's analytical model (Eqs. 1–13), numerical reference
    optimiser, architecture transforms, selection and sensitivity tools.
``repro.explore``
    Design-space exploration engine: declarative scenarios, vectorized
    Eq. 13 batch evaluation, parallel exact-numerical fallback, result
    caching and Pareto analysis.
``repro.netlist`` / ``repro.generators``
    Standard-cell library, netlist graphs and structural generators for
    the paper's thirteen 16-bit multipliers.
``repro.sim`` / ``repro.sta``
    Event-driven gate-level timing simulation (activity and glitch
    extraction) and static timing analysis (logical depth).
``repro.characterization``
    Synthetic-SPICE technology characterisation (Io, ζ, α, n fits).
``repro.experiments``
    Regeneration of every table and figure of the paper.
"""

from .core import *  # noqa: F401,F403 -- the core namespace is the public API
from .core import __all__ as _core_all

__version__ = "1.0.0"
__all__ = list(_core_all) + ["__version__"]
