"""repro — reproduction of Schuster et al., DATE 2006.

*Architectural and Technology Influence on the Optimal Total Power
Consumption.*

The library answers one question in many ways: **given a circuit that must
run at frequency f, what supply/threshold pair minimises its total
(dynamic + static) power, and how do architecture and technology choices
move that minimum?**

The one public door to that question is :class:`Study` — a fluent
builder that compiles to an exploration scenario, dispatches through the
solver registry (``"auto"`` rides the vectorized Eq. 9–13 kernel with
exact-numerical fallback), and returns a uniform :class:`ResultSet`::

    from repro import ArchitectureParameters, Study

    wallace = ArchitectureParameters(
        name="wallace16", n_cells=729, activity=0.2976,
        logical_depth=17, capacitance=70e-15,
        io_factor=18.0, zeta_factor=0.2,
    )
    answer = (
        Study("quickstart")
        .architectures(wallace)
        .technologies("ULL", "LL", "HS")
        .frequencies(31.25e6)
        .run()
    )
    print(answer.best().describe())
    print(answer.table(top=5))

Swap ``.solver("numerical")`` for the exact scipy reference,
``.solver("bounded", vth_max=0.45)`` for practical voltage caps, or
``.frequency_range(2e6, 64e6, 42)`` + ``.transforms(...)`` +
``.cached()`` for a thousand-candidate cached sweep — same four lines.
The scalar entry points (``numerical_optimum``, ``closed_form_optimum``,
``evaluate_candidates``, …) remain available for paper-fidelity work and
as the numerics underneath the solvers.

Sub-packages
------------
``repro.core``
    The paper's analytical model (Eqs. 1–13), numerical reference
    optimiser, architecture transforms, selection shims and sensitivity
    tools.
``repro.catalog``
    The unified model catalog: five namespaces (technology,
    architecture, solver, transform, generator) behind one registry API
    with provenance metadata and JSON/TOML plugin packs, so user-defined
    entities are addressable by name everywhere objects are.
``repro.solvers``
    The :class:`Solver` protocol and registry unifying the five solve
    paths (closed form, linearized, numerical, vectorized, bounded) plus
    the ``"auto"`` policy behind one signature.
``repro.explore``
    Design-space exploration engine: declarative scenarios, vectorized
    Eq. 13 batch evaluation, parallel exact-numerical fallback, result
    caching and Pareto analysis.
``repro.netlist`` / ``repro.generators``
    Standard-cell library, netlist graphs and structural generators for
    the paper's thirteen 16-bit multipliers.
``repro.sim`` / ``repro.sta``
    Event-driven gate-level timing simulation (activity and glitch
    extraction) and static timing analysis (logical depth).
``repro.characterization``
    Synthetic-SPICE technology characterisation (Io, ζ, α, n fits).
``repro.experiments``
    Regeneration of every table and figure of the paper (all through
    ``Study`` batches).
"""

from importlib import metadata as _metadata

#: Fallback for source checkouts that were never pip-installed (the
#: tier-1 ``PYTHONPATH=src`` workflow); keep in sync with pyproject.toml.
_FALLBACK_VERSION = "1.7.0"

try:  # installed: the single source of truth is the package metadata
    __version__ = _metadata.version("repro")
except _metadata.PackageNotFoundError:  # pragma: no cover - env-dependent
    __version__ = _FALLBACK_VERSION

from .core import *  # noqa: F401,F403,E402 -- the core namespace is the public API
from .core import __all__ as _core_all  # noqa: E402
from .core import _SELECTION_EXPORTS  # noqa: E402

# The model catalog: one registry for technologies, architectures,
# solvers, transforms and generators, plus the plugin-pack loader.
from . import catalog  # noqa: F401,E402

# Telemetry (spans, metrics, exporters) — stdlib-only, no-op until
# enabled via repro.obs.enable() / REPRO_TELEMETRY=1 / --profile.
from . import obs  # noqa: F401,E402
from .catalog import default_catalog, load_pack  # noqa: E402

# NOTE: the name ``explore`` is intentionally *not* from-imported: the
# subpackage module is callable (see repro/explore/__init__.py), so
# ``from repro import explore; explore(scenario)`` works while
# ``repro.explore.Scenario`` keeps normal module semantics.
from . import explore  # noqa: F401,E402
from .explore import (  # noqa: E402
    ExplorationResult,
    FrequencyGrid,
    Scenario,
    TransformStep,
    demo_scenario,
    pareto_frontier,
)
# The cache tiers are light (stdlib + explore.cache) and load eagerly;
# ServiceClient would drag in the whole HTTP server/client stack, so it
# resolves lazily below (PEP 562) — `from repro import ServiceClient`
# still works, but `import repro` alone stays service-free.
from .service import MemoryCache, TieredCache  # noqa: E402
from .solvers import (  # noqa: E402
    Solver,
    SolverError,
    available_solvers,
    get_solver,
    register_solver,
)
from .study import Record, ResultSet, Study  # noqa: E402

# NOTE: the deprecated selection shims (_SELECTION_EXPORTS) resolve via
# __getattr__ but stay out of __all__ on purpose: `from repro import *`
# must not import the deprecated module (or trip its DeprecationWarning).
__all__ = list(_core_all) + [
    "ExplorationResult",
    "FrequencyGrid",
    "MemoryCache",
    "Record",
    "ResultSet",
    "Scenario",
    "ServiceClient",
    "Solver",
    "SolverError",
    "Study",
    "TieredCache",
    "TransformStep",
    "available_solvers",
    "catalog",
    "default_catalog",
    "demo_scenario",
    "explore",
    "get_solver",
    "load_pack",
    "obs",
    "pareto_frontier",
    "register_solver",
    "__version__",
]


def __getattr__(name: str):
    if name == "ServiceClient":
        from .service.client import ServiceClient

        return ServiceClient
    if name in _SELECTION_EXPORTS:
        # Deprecated selection shims: resolved lazily so the module-
        # level DeprecationWarning in repro.core.selection fires only
        # for actual users of the old API.
        from . import core

        return getattr(core, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
