"""Parallel execution of exact-numerical evaluations.

The vectorized kernel covers the closed-form interior; the points it
flags (near the feasibility boundary, near the Vth floor, outside the
Eq. 7 fit range) and the ``method="numerical"`` path still need one
scipy ``minimize_scalar`` call each.  This module fans those scalar
calls out over a ``multiprocessing`` pool with chunking, falling back to
an in-process loop for small batches (or single-CPU hosts) where pool
start-up would dominate.

Every evaluation returns ``(OptimizationResult | None, reason)`` — the
same "keep infeasible candidates with their reason" contract
:mod:`repro.core.selection` has always exposed.
"""

from __future__ import annotations

import multiprocessing
import os

from ..core.closed_form import InfeasibleConstraintError
from ..core.numerical import numerical_optimum
from ..core.optimum import OptimizationResult

#: Below this many points a pool is never worth starting.
PARALLEL_THRESHOLD = 16

#: Default chunk size handed to ``Pool.map`` (each task is ~ms-scale, so
#: chunking amortises the IPC round-trips).
DEFAULT_CHUNK_SIZE = 8


def resolve_jobs(jobs: int | None, n_tasks: int) -> int:
    """Effective worker count: explicit > CPU count, capped by the load."""
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return max(1, min(jobs, n_tasks))


def solve_point(task) -> tuple[OptimizationResult | None, str]:
    """Exact numerical optimum for one (arch, tech, frequency) task.

    Module-level (picklable) so it can cross the process boundary.
    Infeasibility is data, not an exception: the reason string travels
    back instead.
    """
    arch, tech, frequency = task
    try:
        result = numerical_optimum(arch, tech, frequency)
    except (InfeasibleConstraintError, ValueError) as error:
        return None, str(error)
    return result, ""


def run_numerical(
    points,
    jobs: int | None = None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
) -> list[tuple[OptimizationResult | None, str]]:
    """Evaluate ``numerical_optimum`` for every design point, in order.

    Parameters
    ----------
    points:
        Iterable of :class:`~.scenario.DesignPoint`.
    jobs:
        Worker processes; ``None`` uses the CPU count, 1 forces the
        serial in-process path.
    chunk_size:
        Tasks per pool dispatch.
    """
    tasks = [(p.architecture, p.technology, p.frequency) for p in points]
    # Grids with repeated candidates (duplicate architectures, repeated
    # frequencies, merged scenarios) solve each unique task once and fan
    # the result back out — the dataclasses are frozen/hashable, so the
    # (architecture, technology, frequency) tuple is its own key.
    position_of: dict[tuple, int] = {}
    unique_tasks: list[tuple] = []
    positions: list[int] = []
    for task in tasks:
        position = position_of.get(task)
        if position is None:
            position = len(unique_tasks)
            position_of[task] = position
            unique_tasks.append(task)
        positions.append(position)

    jobs = resolve_jobs(jobs, len(unique_tasks))
    if jobs <= 1 or len(unique_tasks) < PARALLEL_THRESHOLD:
        unique_results = [solve_point(task) for task in unique_tasks]
    else:
        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        with context.Pool(processes=jobs) as pool:
            unique_results = pool.map(
                solve_point, unique_tasks, chunksize=chunk_size
            )
    return [unique_results[position] for position in positions]
