"""Vectorised Eq. 9–13 closed-form evaluation over candidate grids.

:func:`closed_form_batch` replays the Section 3 approximation chain
(:mod:`repro.core.closed_form`) with numpy broadcasting so an entire
(architecture × frequency) grid on one technology is evaluated in a
handful of array operations — no per-point scipy calls.  The arithmetic
mirrors the scalar path operation-for-operation, so on feasible interior
points the batch values agree with :func:`repro.core.closed_form.
closed_form_optimum` to machine precision (asserted by the engine's
parity check and by the test-suite at 1e-9 relative).

The closed form is only trusted where its assumptions hold.  Each point
is classified:

* ``feasible`` — ``1 − χA > 0`` and the Eq. 10 ln-argument exceeds 1
  (equivalently ``Vth* > 0``);
* ``needs_fallback`` — feasible, but close enough to the infeasibility
  boundary, the Vth floor, or outside the Eq. 7 fit range that the
  engine re-evaluates the point with the exact numerical solver.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.constants import EULER
from ..core.linearization import LinearFit, paper_fit
from ..core.power_model import dynamic_power, static_power
from ..core.technology import Technology

#: Points with ``1 − χA`` below this margin are re-solved numerically:
#: the Eq. 13 prefactor ``1/(1−χA)²`` amplifies the linearisation error
#: as the feasibility boundary is approached.
FALLBACK_MARGIN = 0.05

#: Tolerated overshoot of the Eq. 7 fit range before falling back (the
#: same 2 % slack :func:`repro.core.closed_form.ptot_eq13_adaptive`
#: uses before refitting).
FIT_RANGE_TOLERANCE = 1.02

#: Points whose optimal threshold drops below this many multiples of
#: ``n·Ut`` sit near the Vth floor where the weak-inversion model is
#: doubtful; they are re-solved numerically.
VTH_FLOOR_NUT = 0.25


@dataclass(frozen=True)
class BatchResult:
    """Vectorised closed-form evaluation of one candidate grid.

    All arrays share one broadcast shape.  Non-finite entries mark
    infeasible points (``feasible`` is False there).
    """

    vdd: np.ndarray
    vth: np.ndarray
    pdyn: np.ndarray
    pstat: np.ndarray
    ptot: np.ndarray
    ptot_eq13: np.ndarray
    chi: np.ndarray
    margin: np.ndarray
    log_argument: np.ndarray
    feasible: np.ndarray
    needs_fallback: np.ndarray
    fit: LinearFit

    @property
    def size(self) -> int:
        return int(self.ptot.size)

    @property
    def n_feasible(self) -> int:
        return int(np.count_nonzero(self.feasible))

    @property
    def n_fallback(self) -> int:
        return int(np.count_nonzero(self.needs_fallback))


def chi_batch(
    tech: Technology,
    logical_depth,
    frequency,
    zeta_factor=1.0,
) -> np.ndarray:
    """Constraint coefficient χ of Eq. 6, broadcasting over all inputs.

    Mirrors :func:`repro.core.constraint.chi` (same operation order) for
    one technology with array-valued depth/frequency/zeta-factor.
    """
    logical_depth = np.asarray(logical_depth, dtype=float)
    frequency = np.asarray(frequency, dtype=float)
    zeta = tech.zeta * np.asarray(zeta_factor, dtype=float)
    denominator = tech.io * (EULER / tech.n_ut) ** tech.alpha
    return (frequency * logical_depth * zeta / denominator) ** (1.0 / tech.alpha)


def closed_form_batch(
    tech: Technology,
    n_cells,
    activity,
    logical_depth,
    capacitance,
    frequency,
    io_factor=1.0,
    zeta_factor=1.0,
    fit: LinearFit | None = None,
) -> BatchResult:
    """Evaluate the Eq. 9–13 chain over a grid of candidates at once.

    Every architecture/frequency argument may be a scalar or an array;
    all are broadcast together.  The technology (and therefore the
    Eq. 7 fit, which depends only on ``α``) is fixed per call — the
    engine groups candidate grids by technology before dispatching here.
    """
    if fit is None:
        fit = paper_fit(tech.alpha)

    (n_cells, activity, logical_depth, capacitance, frequency, io_factor,
     zeta_factor) = np.broadcast_arrays(
        *(np.asarray(value, dtype=float) for value in (
            n_cells, activity, logical_depth, capacitance, frequency,
            io_factor, zeta_factor,
        ))
    )

    n_ut = tech.n_ut
    chi = chi_batch(tech, logical_depth, frequency, zeta_factor)
    margin = 1.0 - chi * fit.a
    io = tech.io * io_factor
    acf = activity * capacitance * frequency

    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        log_argument = np.where(
            margin > 0.0, io * margin / (2.0 * acf * n_ut), np.nan
        )
        feasible = (margin > 0.0) & (log_argument > 1.0)

        log_term = np.log(np.where(feasible, log_argument, np.nan))
        # Eq. 10 / Eq. 8 exactly as the scalar closed_form_breakdown
        # computes them.
        vdd = (n_ut * log_term + chi * fit.b) / margin
        vth = vdd * margin - chi * fit.b
        # Eq. 13, same grouping as repro.core.closed_form.ptot_eq13.
        bracket = n_ut * (log_term + 1.0) + chi * fit.b
        ptot_eq13 = n_cells * acf / margin**2 * bracket**2
        # Exact Eq. 1 split at (Vdd*, Vth*) — the quantity
        # closed_form_optimum reports as the operating point's power.
        pdyn = dynamic_power(n_cells, activity, capacitance, vdd, frequency)
        pstat = static_power(n_cells, io, vdd, vth, tech.n, tech.ut)
        ptot = pdyn + pstat

    nan = np.nan
    vdd = np.where(feasible, vdd, nan)
    vth = np.where(feasible, vth, nan)
    pdyn = np.where(feasible, pdyn, nan)
    pstat = np.where(feasible, pstat, nan)
    ptot = np.where(feasible, ptot, nan)
    ptot_eq13 = np.where(feasible, ptot_eq13, nan)

    with np.errstate(invalid="ignore"):
        needs_fallback = feasible & (
            (margin < FALLBACK_MARGIN)
            | (vdd > fit.vdd_max * FIT_RANGE_TOLERANCE)
            | (vdd < fit.vdd_min)
            | (log_argument < float(np.exp(VTH_FLOOR_NUT)))
        )

    return BatchResult(
        vdd=vdd,
        vth=vth,
        pdyn=pdyn,
        pstat=pstat,
        ptot=ptot,
        ptot_eq13=ptot_eq13,
        chi=chi,
        margin=margin,
        log_argument=log_argument,
        feasible=feasible,
        needs_fallback=needs_fallback,
        fit=fit,
    )


#: The ``closed_form_batch`` keyword for each per-point input column.
BATCH_INPUTS = (
    "n_cells",
    "activity",
    "logical_depth",
    "capacitance",
    "frequency",
    "io_factor",
    "zeta_factor",
)


def batch_arrays_for_points(points) -> dict[str, np.ndarray]:
    """Column arrays for a list of :class:`~.scenario.DesignPoint`.

    The object-path bridge from point lists to array-land: one flat
    array per Eq. 13 input, aligned with ``points``.  The columnar
    path uses :func:`batch_arrays_for_columns` instead and never
    materialises the objects.
    """
    return {
        "n_cells": np.array([p.architecture.n_cells for p in points]),
        "activity": np.array([p.architecture.activity for p in points]),
        "logical_depth": np.array(
            [p.architecture.logical_depth for p in points]
        ),
        "capacitance": np.array([p.architecture.capacitance for p in points]),
        "frequency": np.array([p.frequency for p in points]),
        "io_factor": np.array([p.architecture.io_factor for p in points]),
        "zeta_factor": np.array([p.architecture.zeta_factor for p in points]),
    }


def batch_arrays_for_columns(columns, indices) -> dict[str, np.ndarray]:
    """The kernel's input slice for a subset of an expanded columnar grid.

    ``columns`` is an :class:`~repro.explore.columnar.ExpandedColumns`;
    ``indices`` selects the rows of one technology group.  Pure fancy
    indexing — no per-point Python work.
    """
    return {
        name: getattr(columns, name)[indices] for name in BATCH_INPUTS
    }
