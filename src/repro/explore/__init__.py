"""Design-space exploration engine (ROADMAP: batching, caching, scale).

The paper's Sections 4–5 methodology — evaluate the Eq. 13 closed-form
optimum for every (architecture, technology, frequency) candidate and
pick the minimum — is a *batch* problem, but :mod:`repro.core.selection`
evaluates it one scipy call at a time.  This package turns the
one-at-a-time optimizer into a batch service:

``scenario``
    Declarative :class:`Scenario` sweep specification (architectures ×
    transform chains × technologies × frequency grid) with dict/JSON
    round-trip and a stable content hash.
``columnar``
    Structure-of-arrays spine: :class:`ResultTable` (one numpy array
    per result column, lazy per-row ``PointResult`` views) and the
    array-native scenario expansion the batch path runs on.
``vectorized``
    Numpy kernel evaluating the Eq. 9–13 closed-form chain over whole
    candidate grids at once — no per-point scipy calls.
``executor``
    ``multiprocessing``-based parallel runner for the ``numerical``
    reference method (one scipy call per point, on purpose); the auto
    fallback is vectorized and no longer touches it.
``cache``
    Content-hash → JSON-on-disk result cache; repeated sweeps are free.
``engine``
    Orchestration: expand, vectorize, fall back, cache.
``analysis``
    Pareto frontier over (power, frequency, area-proxy), ranking and a
    tabular report.
"""

import sys as _sys
from types import ModuleType as _ModuleType

from .analysis import pareto_frontier, rank_points, report
from .cache import ResultCache, content_hash
from .columnar import ExpandedColumns, ResultRows, ResultTable, expand_columns
from .engine import (
    EvaluationStats,
    ExplorationResult,
    PointOutcome,
    PointResult,
    evaluate_points,
    evaluate_table,
    explore,
)
from .executor import run_numerical
from .scenario import (
    DesignPoint,
    FrequencyGrid,
    Scenario,
    TransformStep,
    demo_scenario,
    parallelize_step,
    pipeline_step,
    sequentialize_step,
)
from .vectorized import BatchResult, chi_batch, closed_form_batch

__all__ = [
    "BatchResult",
    "DesignPoint",
    "EvaluationStats",
    "ExpandedColumns",
    "ExplorationResult",
    "FrequencyGrid",
    "PointOutcome",
    "PointResult",
    "ResultCache",
    "ResultRows",
    "ResultTable",
    "Scenario",
    "TransformStep",
    "chi_batch",
    "closed_form_batch",
    "content_hash",
    "demo_scenario",
    "evaluate_points",
    "evaluate_table",
    "expand_columns",
    "explore",
    "parallelize_step",
    "pareto_frontier",
    "pipeline_step",
    "rank_points",
    "report",
    "run_numerical",
    "sequentialize_step",
]


class _ExploreModule(_ModuleType):
    """Make the subpackage itself callable as :func:`engine.explore`.

    ``repro`` re-exports the engine entry point at the top level, but the
    name ``explore`` is also this subpackage's binding on the parent
    package — a plain function export would shadow the module and break
    ``repro.explore.Scenario`` attribute access.  A callable module keeps
    both contracts: ``from repro import explore; explore(scenario)`` and
    ``import repro; repro.explore.Scenario``.
    """

    def __call__(self, *args, **kwargs):
        return explore(*args, **kwargs)


_sys.modules[__name__].__class__ = _ExploreModule
