"""Analysis of evaluated design spaces: ranking, Pareto front, report.

The paper's selection answer is a single argmin (cheapest feasible
candidate at the target frequency); a swept design space supports a
richer one.  :func:`pareto_frontier` keeps every candidate not dominated
on (optimal power ↓, frequency ↑, area-proxy ↓) — the set a designer
actually chooses from when the clock target or the floorplan is still
negotiable — and :func:`report` renders the ranking as the kind of
fixed-width table the rest of this repository uses for paper artefacts.

Every helper here operates on the columnar
:class:`~.columnar.ResultTable` matrix directly when given one (or a
:class:`~.columnar.ResultRows` view, or an ``ExplorationResult`` /
``ResultSet`` whose records are such a view): objective columns are
sliced out of the table, the domination test is a vectorized sweep
instead of the historical O(n²) Python loop, and rows materialise only
where the caller actually reads them (the report's top-k, a ranked
list).  Plain ``PointResult`` lists keep working through the same
functions.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .columnar import ResultRows, ResultTable
from .engine import PointResult

#: Default objectives: (attribute, sense).  ``min`` is cheaper-is-better,
#: ``max`` is more-is-better.
DEFAULT_OBJECTIVES: tuple[tuple[str, str], ...] = (
    ("ptot_or_inf", "min"),
    ("frequency", "max"),
    ("area_proxy", "min"),
)


def _as_table(points) -> ResultTable | None:
    """The columnar table behind ``points``, if there is one."""
    if isinstance(points, ResultTable):
        return points
    if isinstance(points, ResultRows):
        return points.table
    records = getattr(points, "records", None)
    if isinstance(records, ResultRows):
        return records.table
    return None


def _objective_values(
    points, table: ResultTable | None, attribute: str
) -> np.ndarray:
    if table is not None:
        try:
            return np.asarray(table.column(attribute), dtype=float)
        except KeyError:
            # Custom objective attribute: fall back to per-row access.
            points = table.rows()
    return np.array(
        [float(getattr(p, attribute)) for p in points], dtype=float
    )


def _objective_matrix(
    points,
    objectives: Sequence[tuple[str, str]],
    table: ResultTable | None = None,
) -> np.ndarray:
    """(n_points × n_objectives) matrix with every column minimised."""
    columns = []
    for attribute, sense in objectives:
        if sense not in ("min", "max"):
            raise ValueError(f"objective sense must be min/max, got {sense!r}")
        values = _objective_values(points, table, attribute)
        columns.append(values if sense == "min" else -values)
    return np.column_stack(columns)


def _nondominated_mask(costs: np.ndarray) -> np.ndarray:
    """Non-dominated mask over a minimised cost matrix, vectorized.

    A point is dominated when some other point is no worse on every
    column and strictly better on at least one; exact duplicates never
    dominate each other (both stay efficient, matching the historical
    pairwise test).  Duplicates are collapsed first, then the classic
    shrinking sweep runs on the unique rows: each surviving row removes
    everything it strictly dominates in one vectorized comparison, so
    the cost is O(front × n) instead of O(n²).
    """
    n = len(costs)
    if n == 0:
        return np.zeros(0, dtype=bool)
    unique, inverse = np.unique(costs, axis=0, return_inverse=True)
    # On unique rows, "all(<=) and any(<)" collapses to "all(<=) and
    # not identical", so the strict test below is exact.
    survivors = np.arange(len(unique))
    costs_left = unique
    cursor = 0
    while cursor < len(costs_left):
        keep = np.any(costs_left < costs_left[cursor], axis=1)
        keep[cursor] = True
        survivors = survivors[keep]
        costs_left = costs_left[keep]
        cursor = int(np.count_nonzero(keep[:cursor])) + 1
    efficient_unique = np.zeros(len(unique), dtype=bool)
    efficient_unique[survivors] = True
    return efficient_unique[inverse]


def _ranked_indices(
    points,
    table: ResultTable | None,
    key: Callable[[PointResult], float] | None,
) -> np.ndarray:
    """Indices of ``points`` sorted cheapest-first (stable, +inf last)."""
    if key is None and table is not None:
        return np.argsort(table.column("ptot_or_inf"), kind="stable")
    if key is None:
        key = lambda p: p.ptot_or_inf  # noqa: E731
    order = sorted(range(len(points)), key=lambda i: key(points[i]))
    return np.asarray(order, dtype=np.intp)


def rank_points(
    points: Sequence[PointResult],
    key: Callable[[PointResult], float] | None = None,
) -> list[PointResult]:
    """Candidates sorted cheapest-first; infeasible ones last.

    Mirrors :func:`repro.core.selection.rank_architectures`' convention
    (+inf power sorts infeasible candidates to the tail) at design-space
    scale.  Table-backed inputs rank by column argsort (stable, so tie
    order matches the historical sort) and materialise rows in ranked
    order; plain lists sort as before.
    """
    table = _as_table(points)
    if table is not None and key is None:
        order = _ranked_indices(points, table, None)
        return [table.row(int(i)) for i in order]
    if key is None:
        key = lambda p: p.ptot_or_inf  # noqa: E731
    return sorted(points, key=key)


def pareto_mask(
    points: Sequence[PointResult],
    objectives: Sequence[tuple[str, str]] = DEFAULT_OBJECTIVES,
) -> np.ndarray:
    """Boolean mask of non-dominated feasible points, aligned with input.

    A point dominates another when it is no worse on every objective and
    strictly better on at least one.  Infeasible points never make the
    front (and never dominate anything).
    """
    table = _as_table(points)
    if table is not None:
        feasible = np.asarray(table.feasible, dtype=bool)
    else:
        feasible = np.array([p.feasible for p in points], dtype=bool)
    mask = np.zeros(len(feasible), dtype=bool)
    feasible_indices = np.flatnonzero(feasible)
    if not feasible_indices.size:
        return mask
    if table is not None:
        values = _objective_matrix(
            points, objectives, table=table
        )[feasible_indices]
    else:
        values = _objective_matrix(
            [points[i] for i in feasible_indices], objectives
        )
    mask[feasible_indices] = _nondominated_mask(values)
    return mask


def pareto_frontier(
    points: Sequence[PointResult],
    objectives: Sequence[tuple[str, str]] = DEFAULT_OBJECTIVES,
) -> list[PointResult]:
    """The non-dominated feasible candidates, cheapest-first."""
    mask = pareto_mask(points, objectives)
    table = _as_table(points)
    if table is not None:
        front = table.take(np.flatnonzero(mask))
        return rank_points(front.rows())
    return rank_points([p for p, keep in zip(points, mask) if keep])


def report(
    points: Sequence[PointResult],
    top: int = 15,
    objectives: Sequence[tuple[str, str]] = DEFAULT_OBJECTIVES,
) -> str:
    """Fixed-width ranking table with Pareto membership marks.

    Shows the ``top`` cheapest candidates plus a one-line summary of the
    frontier and of the infeasible tail.  Works index-wise, so a
    table-backed input materialises only the ``top`` printed rows.
    """
    table = _as_table(points)
    mask = pareto_mask(points, objectives)
    order = _ranked_indices(points, table, None)
    if table is not None:
        n_points = len(table)
        n_feasible = table.n_feasible
        row_at = table.row
    else:
        n_points = len(points)
        n_feasible = sum(1 for p in points if p.feasible)
        row_at = lambda i: points[i]  # noqa: E731

    header = (
        f"{'#':>3} {'P':1} {'architecture':<24} {'technology':<14} "
        f"{'f [MHz]':>8} {'Vdd [V]':>8} {'Vth [V]':>8} {'Ptot [uW]':>10} "
        f"{'method':<22}"
    )
    lines = [header, "-" * len(header)]
    for position, index in enumerate(order[:top].tolist(), start=1):
        point = row_at(index)
        marker = "*" if mask[index] else " "
        if point.feasible:
            lines.append(
                f"{position:>3} {marker:1} {point.architecture:<24.24} "
                f"{point.technology:<14.14} {point.frequency / 1e6:>8.2f} "
                f"{point.vdd:>8.3f} {point.vth:>8.3f} "
                f"{point.ptot * 1e6:>10.2f} {point.method:<22}"
            )
        else:
            lines.append(
                f"{position:>3} {marker:1} {point.architecture:<24.24} "
                f"{point.technology:<14.14} {point.frequency / 1e6:>8.2f} "
                f"{'—':>8} {'—':>8} {'inf':>10} infeasible"
            )
    lines.append("-" * len(header))
    lines.append(
        f"{n_points} candidates: {n_feasible} feasible, "
        f"{n_points - n_feasible} infeasible, "
        f"{int(np.count_nonzero(mask))} on the Pareto frontier "
        f"(P column, objectives: "
        + ", ".join(f"{attr} {sense}" for attr, sense in objectives)
        + ")"
    )
    return "\n".join(lines)
