"""Analysis of evaluated design spaces: ranking, Pareto front, report.

The paper's selection answer is a single argmin (cheapest feasible
candidate at the target frequency); a swept design space supports a
richer one.  :func:`pareto_frontier` keeps every candidate not dominated
on (optimal power ↓, frequency ↑, area-proxy ↓) — the set a designer
actually chooses from when the clock target or the floorplan is still
negotiable — and :func:`report` renders the ranking as the kind of
fixed-width table the rest of this repository uses for paper artefacts.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .engine import PointResult

#: Default objectives: (attribute, sense).  ``min`` is cheaper-is-better,
#: ``max`` is more-is-better.
DEFAULT_OBJECTIVES: tuple[tuple[str, str], ...] = (
    ("ptot_or_inf", "min"),
    ("frequency", "max"),
    ("area_proxy", "min"),
)


def rank_points(
    points: Sequence[PointResult],
    key: Callable[[PointResult], float] | None = None,
) -> list[PointResult]:
    """Candidates sorted cheapest-first; infeasible ones last.

    Mirrors :func:`repro.core.selection.rank_architectures`' convention
    (+inf power sorts infeasible candidates to the tail) at design-space
    scale.
    """
    if key is None:
        key = lambda p: p.ptot_or_inf  # noqa: E731
    return sorted(points, key=key)


def _objective_matrix(
    points: Sequence[PointResult],
    objectives: Sequence[tuple[str, str]],
) -> np.ndarray:
    """(n_points × n_objectives) matrix with every column minimised."""
    columns = []
    for attribute, sense in objectives:
        if sense not in ("min", "max"):
            raise ValueError(f"objective sense must be min/max, got {sense!r}")
        values = np.array(
            [float(getattr(p, attribute)) for p in points], dtype=float
        )
        columns.append(values if sense == "min" else -values)
    return np.column_stack(columns)


def pareto_mask(
    points: Sequence[PointResult],
    objectives: Sequence[tuple[str, str]] = DEFAULT_OBJECTIVES,
) -> np.ndarray:
    """Boolean mask of non-dominated feasible points, aligned with input.

    A point dominates another when it is no worse on every objective and
    strictly better on at least one.  Infeasible points never make the
    front (and never dominate anything).
    """
    mask = np.zeros(len(points), dtype=bool)
    feasible_indices = [i for i, p in enumerate(points) if p.feasible]
    if not feasible_indices:
        return mask
    values = _objective_matrix(
        [points[i] for i in feasible_indices], objectives
    )
    efficient = np.ones(len(feasible_indices), dtype=bool)
    for row in range(len(feasible_indices)):
        if not efficient[row]:
            continue
        dominated = np.all(values >= values[row], axis=1) & np.any(
            values > values[row], axis=1
        )
        efficient &= ~dominated
    for position, index in enumerate(feasible_indices):
        mask[index] = efficient[position]
    return mask


def pareto_frontier(
    points: Sequence[PointResult],
    objectives: Sequence[tuple[str, str]] = DEFAULT_OBJECTIVES,
) -> list[PointResult]:
    """The non-dominated feasible candidates, cheapest-first."""
    mask = pareto_mask(points, objectives)
    return rank_points([p for p, keep in zip(points, mask) if keep])


def report(
    points: Sequence[PointResult],
    top: int = 15,
    objectives: Sequence[tuple[str, str]] = DEFAULT_OBJECTIVES,
) -> str:
    """Fixed-width ranking table with Pareto membership marks.

    Shows the ``top`` cheapest candidates plus a one-line summary of the
    frontier and of the infeasible tail.
    """
    mask = pareto_mask(points, objectives)
    on_front = {id(p) for p, keep in zip(points, mask) if keep}
    ranked = rank_points(points)
    n_feasible = sum(1 for p in points if p.feasible)

    header = (
        f"{'#':>3} {'P':1} {'architecture':<24} {'technology':<14} "
        f"{'f [MHz]':>8} {'Vdd [V]':>8} {'Vth [V]':>8} {'Ptot [uW]':>10} "
        f"{'method':<22}"
    )
    lines = [header, "-" * len(header)]
    for position, point in enumerate(ranked[:top], start=1):
        marker = "*" if id(point) in on_front else " "
        if point.feasible:
            lines.append(
                f"{position:>3} {marker:1} {point.architecture:<24.24} "
                f"{point.technology:<14.14} {point.frequency / 1e6:>8.2f} "
                f"{point.vdd:>8.3f} {point.vth:>8.3f} "
                f"{point.ptot * 1e6:>10.2f} {point.method:<22}"
            )
        else:
            lines.append(
                f"{position:>3} {marker:1} {point.architecture:<24.24} "
                f"{point.technology:<14.14} {point.frequency / 1e6:>8.2f} "
                f"{'—':>8} {'—':>8} {'inf':>10} infeasible"
            )
    lines.append("-" * len(header))
    lines.append(
        f"{len(points)} candidates: {n_feasible} feasible, "
        f"{len(points) - n_feasible} infeasible, "
        f"{len(on_front)} on the Pareto frontier "
        f"(P column, objectives: "
        + ", ".join(f"{attr} {sense}" for attr, sense in objectives)
        + ")"
    )
    return "\n".join(lines)
