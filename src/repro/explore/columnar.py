"""Structure-of-arrays results: the columnar spine of the explore engine.

A 100k-point sweep through the object pipeline pays for every point
three times: a :class:`~.scenario.DesignPoint` on expansion, a
``PointOutcome`` after evaluation and a ``PointResult`` for analysis and
serialisation — none of which do arithmetic.  :class:`ResultTable` keeps
the whole evaluated sweep as one numpy array per ``PointResult`` column
instead, so the engine, the Pareto ranking, the cache payload and the
NDJSON stream all operate on contiguous arrays, and per-row objects are
materialised only when a caller actually indexes one
(:class:`ResultRows` is the lazy, list-compatible view).

:func:`expand_columns` is the matching front door: it materialises a
:class:`~.scenario.Scenario`'s cartesian candidate grid directly as
column arrays (``np.repeat``/``np.tile`` over the small per-axis value
lists), skipping the per-point ``DesignPoint`` list entirely on the
batch path.

Numeric record fields live in float64 columns — the type the
``PointResult`` schema declares.  Integer-typed inputs (an architecture
built with ``n_cells=608``) therefore serialise as ``608.0`` where the
pre-columnar object path leaked the ``int`` through; values are
unchanged, only the JSON spelling of integral constants moves.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterator, Mapping, Sequence

import numpy as np

from ..core.architecture import ArchitectureParameters
from ..core.technology import Technology
from .scenario import DesignPoint, Scenario

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .engine import PointOutcome, PointResult

__all__ = [
    "ExpandedColumns",
    "ResultRows",
    "ResultTable",
    "expand_columns",
]

#: String-valued ``PointResult`` columns (kept as numpy object arrays so
#: fancy indexing and equality masks work; elements are plain ``str``).
STRING_COLUMNS = ("architecture", "technology", "method", "reason")

#: Always-present float columns (the Eq. 13 inputs plus the area proxy).
FLOAT_COLUMNS = (
    "frequency",
    "n_cells",
    "activity",
    "logical_depth",
    "capacitance",
    "area",
)

#: Operating-point columns that are ``None`` on infeasible rows; stored
#: as float64 with NaN standing in for the missing value.
OPTIONAL_FLOAT_COLUMNS = ("vdd", "vth", "pdyn", "pstat", "ptot")

BOOL_COLUMNS = ("feasible",)

#: Layout version of :meth:`ResultTable.save_npz` files.
NPZ_SCHEMA_VERSION = 1


def _record_cls() -> "type[PointResult]":
    # Late import: engine imports this module at top level, so the
    # reverse edge must resolve through sys.modules at call time.
    from .engine import PointResult

    return PointResult


def _field_names() -> tuple[str, ...]:
    return _record_cls()._FIELD_NAMES


class ResultTable:
    """One evaluated sweep as structure-of-arrays, row-aligned.

    ``columns`` maps every ``PointResult`` field name to a numpy array
    of equal length: object arrays of ``str`` for the string columns,
    float64 for the numeric ones (NaN marking ``None`` in the optional
    operating-point columns) and bool for ``feasible``.  The table is
    the native output of the columnar engine and the native input of
    the analysis helpers, the cache payload and the NDJSON stream;
    :meth:`rows` provides the backward-compatible lazy list of
    ``PointResult`` views.
    """

    __slots__ = ("columns",)

    def __init__(self, columns: Mapping[str, np.ndarray]) -> None:
        names = _field_names()
        missing = sorted(set(names) - set(columns))
        if missing:
            raise ValueError(f"result table is missing columns: {missing}")
        lengths = {name: len(columns[name]) for name in names}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"ragged result table columns: {lengths}")
        self.columns = {name: columns[name] for name in names}

    # -- basic container -----------------------------------------------------
    def __len__(self) -> int:
        return len(self.columns["feasible"])

    @property
    def feasible(self) -> np.ndarray:
        return self.columns["feasible"]

    def column(self, name: str) -> np.ndarray:
        """A column by field name, or one of the derived analysis columns.

        ``ptot_or_inf`` (total power with +inf on infeasible rows) and
        ``area_proxy`` (layout area, falling back to the cell count)
        mirror the identically named ``PointResult`` properties.
        """
        if name == "ptot_or_inf":
            ptot = self.columns["ptot"]
            with np.errstate(invalid="ignore"):
                return np.where(np.isnan(ptot), np.inf, ptot)
        if name == "area_proxy":
            area = self.columns["area"]
            return np.where(area > 0.0, area, self.columns["n_cells"])
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(
                f"unknown result column {name!r}; known: "
                f"{', '.join(self.columns)} plus ptot_or_inf, area_proxy"
            ) from None

    # -- row views ------------------------------------------------------------
    def row(self, index: int) -> "PointResult":
        """Materialise one row as a ``PointResult`` (a fresh object per call)."""
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(f"row {index} out of range for {n}-row table")
        c = self.columns

        def optional(name: str) -> float | None:
            value = c[name][index]
            return None if math.isnan(value) else float(value)

        return _record_cls()(
            architecture=c["architecture"][index],
            technology=c["technology"][index],
            frequency=float(c["frequency"][index]),
            n_cells=float(c["n_cells"][index]),
            activity=float(c["activity"][index]),
            logical_depth=float(c["logical_depth"][index]),
            capacitance=float(c["capacitance"][index]),
            area=float(c["area"][index]),
            feasible=bool(c["feasible"][index]),
            method=c["method"][index],
            vdd=optional("vdd"),
            vth=optional("vth"),
            pdyn=optional("pdyn"),
            pstat=optional("pstat"),
            ptot=optional("ptot"),
            reason=c["reason"][index],
        )

    def rows(self) -> "ResultRows":
        """The lazy, list-compatible sequence of per-row views."""
        return ResultRows(self)

    def take(self, indices) -> "ResultTable":
        """A new table of the selected rows (fancy-indexing every column)."""
        indices = np.asarray(indices)
        return ResultTable(
            {name: array[indices] for name, array in self.columns.items()}
        )

    # -- analysis helpers ----------------------------------------------------
    @property
    def n_feasible(self) -> int:
        return int(np.count_nonzero(self.columns["feasible"]))

    def best_index(self) -> int | None:
        """Row index of the cheapest feasible candidate (None if none)."""
        ptot = self.column("ptot_or_inf")
        if not len(ptot) or not self.columns["feasible"].any():
            return None
        return int(np.argmin(ptot))

    # -- serialisation --------------------------------------------------------
    def _python_columns(self) -> dict[str, list]:
        """Every column as a plain python list, ``None`` replacing NaN."""
        out: dict[str, list] = {}
        for name in _field_names():
            array = self.columns[name]
            values = array.tolist()
            if name in OPTIONAL_FLOAT_COLUMNS:
                for index in np.flatnonzero(np.isnan(array)).tolist():
                    values[index] = None
            out[name] = values
        return out

    def to_dicts(self) -> list[dict[str, Any]]:
        """One JSON-ready dict per row, keys in ``PointResult`` field order.

        Column-wise: the per-row path (materialise a ``PointResult``,
        ``getattr`` sixteen fields) costs ~10x more than zipping the
        sixteen column lists once.
        """
        names = _field_names()
        columns = self._python_columns()
        return [
            dict(zip(names, values))
            for values in zip(*(columns[name] for name in names))
        ]

    def to_payload_columns(self) -> dict[str, list]:
        """The compact columnar cache payload (field name → value list)."""
        return self._python_columns()

    def iter_ndjson_chunks(
        self, chunk_rows: int = 2048, kind: str = "record"
    ) -> Iterator[str]:
        """NDJSON record lines in multi-row chunks (no trailing newline).

        Each yielded string holds up to ``chunk_rows`` newline-joined
        ``{"kind": "record", ...}`` documents serialised straight from
        the column lists — byte-identical to ``json.dumps(record.
        to_dict(), sort_keys=True)`` per row, without materialising the
        rows.
        """
        names = _field_names()
        columns = self._python_columns()
        column_lists = [columns[name] for name in names]
        dumps = json.dumps
        n = len(self)
        for start in range(0, n, chunk_rows):
            stop = min(start + chunk_rows, n)
            rows = zip(*(values[start:stop] for values in column_lists))
            yield "\n".join(
                dumps({"kind": kind, **dict(zip(names, row))}, sort_keys=True)
                for row in rows
            )

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_records(cls, records: Sequence["PointResult"]) -> "ResultTable":
        records = list(records)
        columns: dict[str, np.ndarray] = {}
        for name in STRING_COLUMNS:
            columns[name] = np.array(
                [getattr(r, name) for r in records], dtype=object
            )
        for name in FLOAT_COLUMNS:
            columns[name] = np.array(
                [getattr(r, name) for r in records], dtype=float
            )
        for name in OPTIONAL_FLOAT_COLUMNS:
            columns[name] = np.array(
                [
                    np.nan if getattr(r, name) is None else getattr(r, name)
                    for r in records
                ],
                dtype=float,
            )
        columns["feasible"] = np.array(
            [r.feasible for r in records], dtype=bool
        )
        return cls(columns)

    @classmethod
    def from_outcomes(cls, outcomes: Sequence["PointOutcome"]) -> "ResultTable":
        record = _record_cls()
        return cls.from_records([record.from_outcome(o) for o in outcomes])

    @classmethod
    def from_payload_columns(cls, payload: Mapping[str, list]) -> "ResultTable":
        """Rebuild from a field-name → value-list mapping, validating shape.

        Raises ``ValueError`` on a missing column or ragged lengths so a
        corrupt cache entry surfaces as one well-typed error the engine
        can quarantine on, rather than a KeyError / broadcast error from
        deep inside numpy.
        """
        missing = [
            name for name in _field_names() if name not in payload
        ]
        if missing:
            raise ValueError(
                f"cache payload missing columns: {', '.join(missing)}"
            )
        lengths = {name: len(payload[name]) for name in _field_names()}
        if len(set(lengths.values())) > 1:
            raise ValueError(
                f"cache payload columns are ragged: {lengths}"
            )
        columns: dict[str, np.ndarray] = {}
        for name in STRING_COLUMNS:
            columns[name] = np.array(payload[name], dtype=object)
        for name in FLOAT_COLUMNS:
            columns[name] = np.array(payload[name], dtype=float)
        for name in OPTIONAL_FLOAT_COLUMNS:
            columns[name] = np.array(
                [np.nan if value is None else value for value in payload[name]],
                dtype=float,
            )
        columns["feasible"] = np.array(payload["feasible"], dtype=bool)
        return cls(columns)

    @classmethod
    def from_cache_payload(cls, payload: Mapping[str, Any]) -> "ResultTable":
        """Rebuild a table from a cache entry, old row-wise schema included.

        New entries store ``"columns"`` (one list per field); entries
        written before the columnar pipeline store ``"points"`` (engine)
        or ``"records"`` (Study registry path) as lists of row dicts.
        Both shapes load to identical tables.
        """
        if "columns" in payload:
            return cls.from_payload_columns(payload["columns"])
        rows = payload.get("points")
        if rows is None:
            rows = payload.get("records", [])
        record = _record_cls()
        return cls.from_records([record.from_dict(row) for row in rows])

    def save_npz(self, path) -> "Path":
        """Write the table to one compressed ``.npz``, column per entry.

        The binary twin of :meth:`to_payload_columns`: no JSON encode
        cost, floats stay bit-exact (NaN marks infeasible), strings are
        stored as fixed-width unicode arrays.  A ``__schema__`` entry
        versions the layout for :meth:`load_npz`.
        """
        from pathlib import Path

        path = Path(path)
        arrays: dict[str, np.ndarray] = {
            name: np.asarray(self.columns[name], dtype=np.str_)
            for name in STRING_COLUMNS
        }
        for name in FLOAT_COLUMNS + OPTIONAL_FLOAT_COLUMNS + BOOL_COLUMNS:
            arrays[name] = self.columns[name]
        np.savez_compressed(
            path, __schema__=np.int64(NPZ_SCHEMA_VERSION), **arrays
        )
        return path

    @classmethod
    def load_npz(cls, path) -> "ResultTable":
        """Round-trip partner of :meth:`save_npz` (bit-exact floats)."""
        from pathlib import Path

        with np.load(Path(path)) as data:
            if "__schema__" not in data:
                raise ValueError(
                    f"{path}: not a ResultTable npz (missing __schema__)"
                )
            if int(data["__schema__"]) != NPZ_SCHEMA_VERSION:
                raise ValueError(
                    f"{path}: unsupported ResultTable npz schema "
                    f"{int(data['__schema__'])} (expected {NPZ_SCHEMA_VERSION})"
                )
            missing = [
                name
                for name in STRING_COLUMNS
                + FLOAT_COLUMNS
                + OPTIONAL_FLOAT_COLUMNS
                + BOOL_COLUMNS
                if name not in data
            ]
            if missing:
                raise ValueError(f"{path}: missing columns {missing}")
            columns: dict[str, np.ndarray] = {
                name: np.array(data[name].tolist(), dtype=object)
                for name in STRING_COLUMNS
            }
            for name in FLOAT_COLUMNS + OPTIONAL_FLOAT_COLUMNS:
                columns[name] = np.asarray(data[name], dtype=float)
            columns["feasible"] = np.asarray(data["feasible"], dtype=bool)
        return cls(columns)


class ResultRows(Sequence):
    """Lazy list of ``PointResult`` views over a :class:`ResultTable`.

    Indexing materialises one row and memoises it, so repeated access
    to the same index returns the same object (list-identity semantics
    for consumers that compare rows by ``is``); untouched rows cost
    nothing.  Equality compares by value against other row views and
    plain lists, so ``result.points == cached.points`` keeps working
    across the columnar rewrite.
    """

    __slots__ = ("table", "_materialised")

    def __init__(self, table: ResultTable) -> None:
        self.table = table
        self._materialised: list | None = None

    def __len__(self) -> int:
        return len(self.table)

    def _row(self, index: int) -> "PointResult":
        n = len(self)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError(f"row {index} out of range for {n}-row view")
        if self._materialised is None:
            self._materialised = [None] * n
        row = self._materialised[index]
        if row is None:
            row = self.table.row(index)
            self._materialised[index] = row
        return row

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self._row(i) for i in range(*index.indices(len(self)))]
        return self._row(index)

    def __iter__(self) -> Iterator["PointResult"]:
        return (self._row(i) for i in range(len(self)))

    def __eq__(self, other) -> bool:
        if isinstance(other, ResultRows):
            if other.table is self.table:
                return True
            other = list(other)
        if isinstance(other, (list, tuple)):
            return len(other) == len(self) and list(self) == list(other)
        return NotImplemented

    __hash__ = None  # mutable-backed, list-like: unhashable on purpose

    def __repr__(self) -> str:
        return f"ResultRows({len(self)} rows)"


@dataclass(frozen=True)
class ExpandedColumns:
    """A scenario's candidate grid as column arrays, expansion-ordered.

    ``arch_index``/``tech_index`` point into the (small) derived
    architecture and technology tuples; every per-point model input is
    pre-broadcast to one flat float array so the batch kernel and the
    fallback solver index straight into them.  Row ``i`` corresponds
    exactly to ``scenario.expand()[i]``.
    """

    architectures: tuple[ArchitectureParameters, ...]
    technologies: tuple[Technology, ...]
    arch_index: np.ndarray
    tech_index: np.ndarray
    arch_name: np.ndarray
    tech_name: np.ndarray
    frequency: np.ndarray
    n_cells: np.ndarray
    activity: np.ndarray
    logical_depth: np.ndarray
    capacitance: np.ndarray
    area: np.ndarray
    io_factor: np.ndarray
    zeta_factor: np.ndarray

    @property
    def n(self) -> int:
        return len(self.frequency)

    def design_point(self, index: int) -> DesignPoint:
        """Materialise one candidate as an object (parity checks, rescue)."""
        return DesignPoint(
            architecture=self.architectures[int(self.arch_index[index])],
            technology=self.technologies[int(self.tech_index[index])],
            frequency=float(self.frequency[index]),
        )


def expand_columns(scenario: Scenario) -> ExpandedColumns:
    """Materialise a scenario's cartesian grid straight to column arrays.

    Same candidate order as :meth:`Scenario.expand` (architecture-major,
    then technology, then frequency) without building the per-point
    object list: each per-architecture scalar is repeated over the
    technology × frequency block, the frequency grid is tiled across
    the rest.
    """
    architectures = tuple(scenario.derived_architectures())
    technologies = tuple(scenario.technologies)
    frequencies = np.array(tuple(scenario.frequencies), dtype=float)
    n_arch, n_tech, n_freq = (
        len(architectures),
        len(technologies),
        len(frequencies),
    )
    block = n_tech * n_freq

    def per_architecture(attribute: str) -> np.ndarray:
        values = np.array(
            [getattr(arch, attribute) for arch in architectures], dtype=float
        )
        return np.repeat(values, block)

    return ExpandedColumns(
        architectures=architectures,
        technologies=technologies,
        arch_index=np.repeat(np.arange(n_arch), block),
        tech_index=np.tile(np.repeat(np.arange(n_tech), n_freq), n_arch),
        arch_name=np.repeat(
            np.array([arch.name for arch in architectures], dtype=object),
            block,
        ),
        tech_name=np.tile(
            np.repeat(
                np.array([tech.name for tech in technologies], dtype=object),
                n_freq,
            ),
            n_arch,
        ),
        frequency=np.tile(frequencies, n_arch * n_tech),
        n_cells=per_architecture("n_cells"),
        activity=per_architecture("activity"),
        logical_depth=per_architecture("logical_depth"),
        capacitance=per_architecture("capacitance"),
        area=per_architecture("area"),
        io_factor=per_architecture("io_factor"),
        zeta_factor=per_architecture("zeta_factor"),
    )
