"""Content-addressed on-disk result cache for exploration sweeps.

A sweep is keyed by the SHA-256 of its canonical-JSON payload (scenario
definition + evaluation method + cache schema version), so re-running
the same scenario is a single file read and *any* change to the sweep —
one frequency, one transform parameter — moves to a fresh key.  Entries
are plain JSON files: inspectable, diffable, and safe to delete.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any

from .. import obs
from ..resilience import faults

#: Bump whenever cached *results* could change — payload layout, model
#: equations, fallback thresholds — so old entries miss instead of
#: silently serving stale numbers.  The engine additionally folds the
#: package version and the kernel's fallback constants into the key.
#: v2: columnar payload ("columns": one list per PointResult field)
#: replaces the row-wise "points"/"records" lists.  Readers accept both
#: layouts (ResultTable.from_cache_payload), so v1 entries still *load*;
#: the bump (plus the version folded into the key) means engine lookups
#: deliberately miss them after an upgrade instead of trusting them.
CACHE_SCHEMA_VERSION = 2

#: Environment override for the default cache location.
CACHE_DIR_ENV = "REPRO_EXPLORE_CACHE"


def canonical_json(payload: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def content_hash(payload: Any) -> str:
    """SHA-256 hex digest of the canonical JSON of ``payload``."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def default_cache_dir() -> Path:
    """``$REPRO_EXPLORE_CACHE`` or ``~/.cache/repro/explore``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro" / "explore"


class ResultCache:
    """JSON-file-per-entry cache keyed by content hash."""

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = Path(directory) if directory else default_cache_dir()

    def path_for(self, key: str) -> Path:
        """Where the entry for ``key`` lives (whether or not it exists)."""
        return self.directory / f"{key}.json"

    def quarantine_path_for(self, key: str) -> Path:
        """Where a quarantined entry for ``key`` is moved aside to."""
        return self.directory / f"{key}.quarantined"

    def quarantine(self, key: str) -> bool:
        """Move the entry for ``key`` aside so the next get recomputes.

        Used when an entry turns out corrupt — torn JSON here, or a
        payload the engine could not parse back into a table.  The file
        is kept (renamed ``.quarantined``) for post-mortem rather than
        deleted; returns True when something was actually moved.
        """
        path = self.path_for(key)
        try:
            os.replace(path, self.quarantine_path_for(key))
        except OSError:
            return False
        obs.inc("cache.disk.quarantined")
        return True

    def get(self, key: str) -> dict | None:
        """The stored payload, or None on miss / quarantined entry.

        A present-but-unreadable entry (torn write, disk error) is
        quarantined — moved aside and recounted — instead of staying in
        place to poison the key forever.
        """
        path = self.path_for(key)
        try:
            with path.open("r", encoding="utf-8") as handle:
                text = handle.read()
            if faults.active():
                text = faults.mangle("cache.read", text)
            payload = json.loads(text)
        except FileNotFoundError:
            obs.inc("cache.disk.misses")
            return None
        except (OSError, json.JSONDecodeError, faults.FaultError):
            self.quarantine(key)
            obs.inc("cache.disk.misses")
            return None
        obs.inc("cache.disk.hits")
        return payload

    def put(self, key: str, payload: dict) -> Path:
        """Atomically store ``payload`` under ``key``; returns the path.

        Write-to-temp-then-rename so a crashed run never leaves a
        half-written (and therefore poisoned) entry behind.
        """
        faults.check("cache.write")
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        descriptor, temp_name = tempfile.mkstemp(
            dir=self.directory, suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        obs.inc("cache.disk.puts")
        return path

    def entries(self) -> list[Path]:
        """Paths of every stored entry (empty when the dir is absent)."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("*.json"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def stats(self) -> dict[str, Any]:
        """Entry count and total size — `repro cache stats` / `/v1/cache/stats`."""
        total_bytes = 0
        entries = self.entries()
        for path in entries:
            try:
                total_bytes += path.stat().st_size
            except OSError:
                pass
        quarantined = (
            len(list(self.directory.glob("*.quarantined")))
            if self.directory.is_dir()
            else 0
        )
        return {
            "directory": str(self.directory),
            "entries": len(entries),
            "total_bytes": total_bytes,
            "quarantined": quarantined,
        }

    def prune(self, max_entries: int) -> int:
        """Keep the ``max_entries`` newest entries; returns the number removed.

        Age is mtime (puts rewrite the file, so a refreshed entry counts
        as new).  Bounds an unbounded sweep cache without nuking it.
        """
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")

        def _mtime(path: Path) -> float:
            try:
                return path.stat().st_mtime
            except OSError:
                return 0.0

        entries = sorted(self.entries(), key=_mtime, reverse=True)
        removed = 0
        for path in entries[max_entries:]:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
