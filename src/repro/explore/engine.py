"""Orchestration: expand a scenario, vectorize, fall back, cache.

The batch core is columnar end to end: :func:`explore` expands a
scenario straight to column arrays (:func:`~.columnar.expand_columns`),
runs the vectorized Eq. 9–13 kernel per technology group, solves every
flagged point with the vectorized exact-numerical solver
(:mod:`repro.solvers.batch_numerical` — a lockstep port of the bounded
scipy search, bit-identical results without per-point scipy calls), and
assembles the outcome by array masking into a
:class:`~.columnar.ResultTable`.  Per-row ``PointResult`` objects are
lazy views, materialised only when a caller indexes one.

:func:`evaluate_points` keeps the historical object contract — a list
of :class:`PointOutcome` aligned with the input ``DesignPoint`` list —
for the solver registry and direct callers; its fallback rides the same
vectorized solver.  The multiprocessing pool survives exclusively
behind ``method="numerical"``, the reference path that runs scipy on
every point on purpose.

A parity check compares sampled vectorized results against the scalar
closed form on every run, so a drift between the two implementations
cannot pass silently.  :func:`explore` wraps the core with the scenario
spec and the on-disk result cache: hash the sweep definition, return
the stored result on a hit (old row-wise entries load transparently),
evaluate and store the compact columnar payload on a miss.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, ClassVar, Mapping, Sequence

import numpy as np

from .. import obs
from ..resilience import current_deadline, faults
from ..core.closed_form import closed_form_optimum
from ..core.numerical import DEFAULT_VDD_SPAN
from ..core.optimum import OperatingPoint, OptimizationResult
from ..core.technology import Technology
from . import executor as executor_module
from ..service.memcache import TieredCache, as_cache
from .cache import CACHE_SCHEMA_VERSION, ResultCache, content_hash
from .columnar import ExpandedColumns, ResultTable, expand_columns
from .scenario import DesignPoint, Scenario
from .vectorized import (
    batch_arrays_for_columns,
    batch_arrays_for_points,
    closed_form_batch,
)

#: Method tag on vectorized operating points.
VECTORIZED_METHOD = "vectorized-closed-form"

#: Method tag on points the auto policy re-solved exactly.
FALLBACK_METHOD = "numerical-fallback"

#: Relative tolerance of the engine's built-in vectorized-vs-scalar
#: parity check (the arithmetic is identical, so real agreement is at
#: machine precision; 1e-9 leaves room for operation-order noise only).
PARITY_RTOL = 1e-9

#: How many vectorized points each run spot-checks against the scalar
#: closed form.
PARITY_SAMPLES = 3

EVALUATION_METHODS = ("auto", "closed-form", "numerical")

#: Kernel sub-chunk size used *only when a deadline is active*: small
#: enough that a breached budget is noticed within a fraction of a
#: second of kernel work, large enough that splitting a technology
#: group costs under the bench gate's 2% (smaller chunks lose batch
#: amortisation in the vectorized kernel, not just the check itself).
#: With no deadline the kernel runs each technology group in one shot,
#: exactly as before — byte-identical results, zero overhead.
DEADLINE_CHUNK_ROWS = 65536


@dataclass(frozen=True)
class PointOutcome:
    """Evaluation outcome for one design point.

    ``result`` is None when the point is infeasible; ``reason`` then
    explains why (same contract as :class:`repro.core.selection.
    Candidate`).  ``method`` records which path produced the value.
    """

    point: DesignPoint
    result: OptimizationResult | None
    reason: str = ""
    method: str = ""

    @property
    def feasible(self) -> bool:
        return self.result is not None


@dataclass(frozen=True)
class PointResult:
    """Flat, JSON-serialisable record of one evaluated candidate.

    This is what the analysis helpers consume and what one row of the
    columnar :class:`~.columnar.ResultTable` materialises to: the
    architecture summary is inlined (names plus the Eq. 13 inputs and
    the area proxy) so a cached sweep is self-contained.
    """

    architecture: str
    technology: str
    frequency: float
    n_cells: float
    activity: float
    logical_depth: float
    capacitance: float
    area: float
    feasible: bool
    method: str
    vdd: float | None = None
    vth: float | None = None
    pdyn: float | None = None
    pstat: float | None = None
    ptot: float | None = None
    reason: str = ""

    @property
    def ptot_or_inf(self) -> float:
        """Total power, with +inf standing in for infeasible points."""
        return self.ptot if self.ptot is not None else float("inf")

    @property
    def area_proxy(self) -> float:
        """Layout area when known, otherwise the cell count.

        The paper's Table 1 reports area per architecture; parameter-only
        sweeps may not have it, and ``N`` tracks it closely (Table 1's
        area/cell spread across the thirteen multipliers is ~20 %).
        """
        return self.area if self.area > 0.0 else self.n_cells

    @classmethod
    def from_outcome(cls, outcome: PointOutcome) -> "PointResult":
        point = outcome.point
        arch = point.architecture
        common = dict(
            architecture=arch.name,
            technology=point.technology.name,
            frequency=point.frequency,
            n_cells=arch.n_cells,
            activity=arch.activity,
            logical_depth=arch.logical_depth,
            capacitance=arch.capacitance,
            area=arch.area,
            method=outcome.method,
            reason=outcome.reason,
        )
        if outcome.result is None:
            return cls(feasible=False, **common)
        op = outcome.result.point
        return cls(
            feasible=True,
            vdd=op.vdd,
            vth=op.vth,
            pdyn=op.pdyn,
            pstat=op.pstat,
            ptot=op.ptot,
            **common,
        )

    # Populated once after the class body: record (de)serialisation is
    # the serving layer's hot path (every response converts thousands of
    # records), and per-call dataclasses.asdict/fields introspection
    # costs more than the conversion itself.
    _FIELD_NAMES: ClassVar[tuple[str, ...]] = ()

    def to_dict(self) -> dict[str, Any]:
        return {name: getattr(self, name) for name in self._FIELD_NAMES}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PointResult":
        known = cls._FIELD_NAMES
        return cls(**{k: v for k, v in payload.items() if k in known})

    def describe(self) -> str:
        if not self.feasible:
            return (
                f"{self.architecture} on {self.technology} "
                f"@ {self.frequency / 1e6:g} MHz: infeasible ({self.reason})"
            )
        return (
            f"{self.architecture} on {self.technology} "
            f"@ {self.frequency / 1e6:g} MHz: Ptot={self.ptot * 1e6:.2f} uW "
            f"(Vdd={self.vdd:.3f} V, Vth={self.vth:.3f} V)"
        )


PointResult._FIELD_NAMES = tuple(f.name for f in fields(PointResult))


@dataclass(frozen=True)
class EvaluationStats:
    """Where the work went in one sweep.

    ``phases`` maps engine phase names (``expand``, ``kernel``,
    ``fallback``, ``analysis``, ``cache_read``, ``cache_write``) to wall
    seconds — the per-sweep breakdown behind ``--profile``, the service
    ``stats`` payload and the benchmark snapshots.  It is empty for
    stats built by callers that did not time phases (old cache entries,
    hand-rolled tallies); consumers must treat missing keys as "not
    measured", not zero.
    """

    n_candidates: int
    n_feasible: int
    n_vectorized: int
    n_fallback: int
    elapsed_seconds: float
    phases: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "n_candidates": self.n_candidates,
            "n_feasible": self.n_feasible,
            "n_vectorized": self.n_vectorized,
            "n_fallback": self.n_fallback,
            "elapsed_seconds": self.elapsed_seconds,
            "phases": dict(self.phases),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EvaluationStats":
        return cls(**payload)

    @classmethod
    def from_outcomes(
        cls,
        outcomes: Sequence["PointOutcome"],
        elapsed_seconds: float,
        phases: Mapping[str, float] | None = None,
    ) -> "EvaluationStats":
        """Tally one evaluated batch (shared by ``explore`` and ``Study``)."""
        return cls(
            n_candidates=len(outcomes),
            n_feasible=sum(1 for o in outcomes if o.feasible),
            n_vectorized=sum(
                1 for o in outcomes if o.method == VECTORIZED_METHOD
            ),
            n_fallback=sum(
                1
                for o in outcomes
                if o.method in (FALLBACK_METHOD, "numerical")
            ),
            elapsed_seconds=elapsed_seconds,
            phases=dict(phases or {}),
        )

    @classmethod
    def from_table(
        cls,
        table: ResultTable,
        elapsed_seconds: float,
        phases: Mapping[str, float] | None = None,
    ) -> "EvaluationStats":
        """Tally a columnar sweep without materialising any rows."""
        method = table.column("method")
        return cls(
            n_candidates=len(table),
            n_feasible=table.n_feasible,
            n_vectorized=int(np.count_nonzero(method == VECTORIZED_METHOD)),
            n_fallback=int(
                np.count_nonzero(
                    (method == FALLBACK_METHOD) | (method == "numerical")
                )
            ),
            elapsed_seconds=elapsed_seconds,
            phases=dict(phases or {}),
        )

    def describe(self) -> str:
        rate = self.n_candidates / self.elapsed_seconds if self.elapsed_seconds else float("inf")
        return (
            f"{self.n_candidates} candidates ({self.n_feasible} feasible) in "
            f"{self.elapsed_seconds:.3f} s ({rate:,.0f}/s; "
            f"{self.n_vectorized} vectorized, {self.n_fallback} exact-numerical)"
        )


@dataclass
class ExplorationResult:
    """A fully evaluated scenario plus provenance.

    ``points`` is a lazy, list-compatible view over the columnar
    ``table`` (one ``PointResult`` materialised per index access);
    ``table`` carries the structure-of-arrays representation the
    analysis, caching and serving layers operate on directly.
    """

    scenario: Scenario
    method: str
    points: Sequence[PointResult]
    stats: EvaluationStats
    cache_hit: bool = False
    cache_key: str = ""
    cache_path: Path | None = None
    parity_checked: bool = False
    table: ResultTable | None = field(default=None, repr=False, compare=False)

    @property
    def feasible_points(self) -> list[PointResult]:
        return [p for p in self.points if p.feasible]

    @property
    def best(self) -> PointResult | None:
        """Cheapest feasible candidate, or None when nothing closes timing."""
        if self.table is not None:
            index = self.table.best_index()
            return None if index is None else self.table.row(index)
        feasible = self.feasible_points
        if not feasible:
            return None
        return min(feasible, key=lambda p: p.ptot_or_inf)

    def describe(self) -> str:
        source = "cache hit" if self.cache_hit else "evaluated"
        lines = [
            f"scenario {self.scenario.name!r} [{self.method}] — {source}",
            f"  {self.stats.describe()}",
        ]
        best = self.best
        if best is not None:
            lines.append(f"  best: {best.describe()}")
        return "\n".join(lines)


def _group_indices_by_technology(
    points: Sequence[DesignPoint],
) -> dict[Technology, list[int]]:
    groups: dict[Technology, list[int]] = {}
    for index, point in enumerate(points):
        groups.setdefault(point.technology, []).append(index)
    return groups


def _vectorized_outcome(point: DesignPoint, batch, position: int) -> PointOutcome:
    operating_point = OperatingPoint(
        vdd=float(batch.vdd[position]),
        vth=float(batch.vth[position]),
        pdyn=float(batch.pdyn[position]),
        pstat=float(batch.pstat[position]),
        method=VECTORIZED_METHOD,
    )
    result = OptimizationResult(
        architecture=point.architecture,
        technology=point.technology,
        frequency=point.frequency,
        point=operating_point,
    )
    return PointOutcome(
        point=point, result=result, method=VECTORIZED_METHOD
    )


def _closed_form_reason_values(
    name: str, margin: float, log_argument: float
) -> str:
    """Reason string mirroring the scalar chain's exception messages."""
    if margin <= 0.0:
        chi_a = 1.0 - margin
        return (
            f"{name}: chi*A = {chi_a:.3f} >= 1 — the architecture cannot "
            f"meet timing in this technology at this frequency"
        )
    return (
        f"{name}: ln argument {log_argument:.3e} <= 1 "
        f"implies a non-positive optimal threshold"
    )


def _closed_form_reason(point: DesignPoint, batch, position: int) -> str:
    return _closed_form_reason_values(
        point.architecture.name,
        float(batch.margin[position]),
        float(batch.log_argument[position]),
    )


def _check_parity(points, batch, positions, indices) -> None:
    """Spot-check vectorized values against the scalar closed form.

    ``positions`` index into the batch arrays, ``indices`` into the
    original point list; both are aligned.  ``points`` may be a list of
    :class:`DesignPoint` or anything indexable that yields them (the
    columnar path passes a materialising shim).  Raises ``RuntimeError``
    on drift — this is an internal-consistency invariant, not user
    error.
    """
    if not len(positions):
        return
    picks = sorted({0, len(positions) // 2, len(positions) - 1})
    for pick in picks[:PARITY_SAMPLES]:
        position, index = positions[pick], indices[pick]
        point = points[index]
        scalar = closed_form_optimum(
            point.architecture, point.technology, point.frequency
        )
        vector_ptot = float(batch.ptot[position])
        drift = abs(vector_ptot - scalar.ptot) / scalar.ptot
        if not np.isfinite(vector_ptot) or drift > PARITY_RTOL:
            raise RuntimeError(
                f"vectorized/scalar parity violation at {point.describe()}: "
                f"batch Ptot={vector_ptot!r} vs closed form {scalar.ptot!r} "
                f"(rel. drift {drift:.3e} > {PARITY_RTOL:g})"
            )


class _ColumnPoints:
    """Indexable shim materialising :class:`DesignPoint` on demand.

    Lets the columnar path share :func:`_check_parity` (which touches
    only the few sampled indices) without expanding the object list.
    """

    __slots__ = ("columns",)

    def __init__(self, columns: ExpandedColumns) -> None:
        self.columns = columns

    def __getitem__(self, index: int) -> DesignPoint:
        return self.columns.design_point(index)


def _fallback_task(columns: ExpandedColumns, indices: np.ndarray):
    """Batch-numerical task for the flagged subset of a columnar grid.

    χ is recomputed with :func:`~repro.solvers.batch_numerical.
    exact_chi` rather than reused from the kernel: the kernel's array
    ``pow`` may differ from scalar libm by 1 ULP, and the fallback
    solver's contract is bit-parity with the scalar reference.
    """
    from ..solvers.batch_numerical import (
        BatchNumericalTask,
        chi_denominator,
        exact_chi,
    )

    technologies = columns.technologies
    tech_io = np.array([t.io for t in technologies], dtype=float)
    tech_zeta = np.array([t.zeta for t in technologies], dtype=float)
    tech_inv_alpha = np.array(
        [1.0 / t.alpha for t in technologies], dtype=float
    )
    tech_n_ut = np.array([t.n_ut for t in technologies], dtype=float)
    tech_nominal = np.array(
        [t.vdd_nominal for t in technologies], dtype=float
    )
    tech_denominator = np.array(
        [chi_denominator(t) for t in technologies], dtype=float
    )
    tech_index = columns.tech_index[indices]
    inv_alpha = tech_inv_alpha[tech_index]
    return BatchNumericalTask(
        name=columns.arch_name[indices],
        n_cells=columns.n_cells[indices],
        activity=columns.activity[indices],
        capacitance=columns.capacitance[indices],
        frequency=columns.frequency[indices],
        chi=exact_chi(
            columns.logical_depth[indices],
            columns.frequency[indices],
            tech_zeta[tech_index] * columns.zeta_factor[indices],
            tech_denominator[tech_index],
            inv_alpha,
        ),
        io_power=tech_io[tech_index] * columns.io_factor[indices],
        inv_alpha=inv_alpha,
        n_ut=tech_n_ut[tech_index],
        vdd_lo=DEFAULT_VDD_SPAN[0] * tech_nominal[tech_index],
        vdd_hi=DEFAULT_VDD_SPAN[1] * tech_nominal[tech_index],
    )


def _evaluate_columns(
    columns: ExpandedColumns,
    method: str,
    parity_check: bool,
    timer: "obs.PhaseTimer | None" = None,
) -> ResultTable:
    """The columnar batch core for ``auto`` and ``closed-form``.

    One vectorized kernel call per technology group, one vectorized
    exact-numerical solve for the whole flagged set, results assembled
    by mask assignment into the table's column arrays — no per-point
    Python objects anywhere on this path.  ``timer`` accumulates the
    ``kernel`` and ``fallback`` phase durations (and mirrors them as
    spans when a tracer is active).
    """
    timer = timer if timer is not None else obs.PhaseTimer("engine")
    deadline = current_deadline()
    rows_done = 0
    n = columns.n
    vdd = np.full(n, np.nan)
    vth = np.full(n, np.nan)
    pdyn = np.full(n, np.nan)
    pstat = np.full(n, np.nan)
    ptot = np.full(n, np.nan)
    feasible = np.zeros(n, dtype=bool)
    method_column = np.empty(n, dtype=object)
    method_column.fill(VECTORIZED_METHOD)
    reason = np.empty(n, dtype=object)
    reason.fill("")
    flagged = np.zeros(n, dtype=bool)

    with timer.phase("kernel"):
        for tech_position, tech in enumerate(columns.technologies):
            indices = np.flatnonzero(columns.tech_index == tech_position)
            if not indices.size:
                continue
            if deadline is None:
                # No deadline: one shot per technology group, the exact
                # pre-resilience path (byte-identical, zero overhead).
                chunks = (indices,)
            else:
                chunks = tuple(
                    indices[start : start + DEADLINE_CHUNK_ROWS]
                    for start in range(0, indices.size, DEADLINE_CHUNK_ROWS)
                )
            for part in chunks:
                if deadline is not None:
                    deadline.check(
                        "engine.kernel", rows_done=rows_done, rows_total=n
                    )
                batch = closed_form_batch(
                    tech, **batch_arrays_for_columns(columns, part)
                )
                trusted = batch.feasible & ~batch.needs_fallback
                keep = batch.feasible if method == "closed-form" else trusted
                kept = part[keep]
                vdd[kept] = batch.vdd[keep]
                vth[kept] = batch.vth[keep]
                pdyn[kept] = batch.pdyn[keep]
                pstat[kept] = batch.pstat[keep]
                ptot[kept] = batch.ptot[keep]
                feasible[kept] = True
                if method == "closed-form":
                    for position, index in zip(
                        np.flatnonzero(~batch.feasible).tolist(),
                        part[~batch.feasible].tolist(),
                    ):
                        reason[index] = _closed_form_reason_values(
                            columns.arch_name[index],
                            float(batch.margin[position]),
                            float(batch.log_argument[position]),
                        )
                else:
                    flagged[part[~trusted]] = True
                if parity_check:
                    _check_parity(
                        _ColumnPoints(columns),
                        batch,
                        np.flatnonzero(trusted),
                        part[trusted],
                    )
                rows_done += int(part.size)

    if flagged.any():
        from ..solvers.batch_numerical import solve_batch

        flagged_indices = np.flatnonzero(flagged)
        if deadline is not None:
            deadline.check(
                "engine.fallback",
                rows_done=rows_done,
                rows_total=n,
                fallback_points=int(flagged_indices.size),
            )
        with timer.phase("fallback", points=int(flagged_indices.size)):
            solution = solve_batch(_fallback_task(columns, flagged_indices))
        vdd[flagged_indices] = solution.vdd
        vth[flagged_indices] = solution.vth
        pdyn[flagged_indices] = solution.pdyn
        pstat[flagged_indices] = solution.pstat
        ptot[flagged_indices] = solution.ptot
        feasible[flagged_indices] = solution.feasible
        method_column[flagged_indices] = FALLBACK_METHOD
        reason[flagged_indices] = solution.reason

    return ResultTable(
        {
            "architecture": columns.arch_name,
            "technology": columns.tech_name,
            "frequency": columns.frequency,
            "n_cells": columns.n_cells,
            "activity": columns.activity,
            "logical_depth": columns.logical_depth,
            "capacitance": columns.capacitance,
            "area": columns.area,
            "feasible": feasible,
            "method": method_column,
            "vdd": vdd,
            "vth": vth,
            "pdyn": pdyn,
            "pstat": pstat,
            "ptot": ptot,
            "reason": reason,
        }
    )


def evaluate_points(
    points: Sequence[DesignPoint],
    method: str = "auto",
    jobs: int | None = None,
    parity_check: bool = True,
) -> list[PointOutcome]:
    """Evaluate every design point; outcomes align with ``points``.

    Methods
    -------
    ``"auto"``
        Vectorized closed form for the trusted interior; vectorized
        exact-numerical solve for flagged and infeasible points (no
        scipy calls, no process pool).
    ``"closed-form"``
        Vectorized closed form everywhere it is defined; no scipy calls.
    ``"numerical"``
        The reference solver for every point — one scipy call each,
        chunked over the multiprocessing pool.
    """
    if method not in EVALUATION_METHODS:
        raise ValueError(
            f"unknown method {method!r}; expected one of {EVALUATION_METHODS}"
        )
    points = list(points)
    outcomes: list[PointOutcome | None] = [None] * len(points)

    if method == "numerical":
        for index, (result, reason) in enumerate(
            executor_module.run_numerical(points, jobs=jobs)
        ):
            outcomes[index] = PointOutcome(
                point=points[index],
                result=result,
                reason=reason,
                method="numerical",
            )
        return outcomes  # type: ignore[return-value]

    fallback_indices: list[int] = []
    for tech, indices in _group_indices_by_technology(points).items():
        group = [points[i] for i in indices]
        batch = closed_form_batch(tech, **batch_arrays_for_points(group))
        vectorized_positions: list[int] = []
        vectorized_indices: list[int] = []
        for position, index in enumerate(indices):
            trusted = bool(batch.feasible[position]) and not bool(
                batch.needs_fallback[position]
            )
            if trusted or (method == "closed-form" and batch.feasible[position]):
                outcomes[index] = _vectorized_outcome(
                    points[index], batch, position
                )
                if trusted:
                    vectorized_positions.append(position)
                    vectorized_indices.append(index)
            elif method == "closed-form":
                outcomes[index] = PointOutcome(
                    point=points[index],
                    result=None,
                    reason=_closed_form_reason(points[index], batch, position),
                    method=VECTORIZED_METHOD,
                )
            else:
                fallback_indices.append(index)
        if parity_check:
            _check_parity(points, batch, vectorized_positions, vectorized_indices)

    if fallback_indices:
        from ..solvers.batch_numerical import (
            METHOD as BATCH_METHOD,
            solve_points,
        )

        fallback_points = [points[i] for i in fallback_indices]
        solution = solve_points(fallback_points)
        for position, index in enumerate(fallback_indices):
            point = points[index]
            if solution.feasible[position]:
                operating_point = OperatingPoint(
                    vdd=float(solution.vdd[position]),
                    vth=float(solution.vth[position]),
                    pdyn=float(solution.pdyn[position]),
                    pstat=float(solution.pstat[position]),
                    method=BATCH_METHOD,
                )
                result = OptimizationResult(
                    architecture=point.architecture,
                    technology=point.technology,
                    frequency=point.frequency,
                    point=operating_point,
                )
                reason = ""
            else:
                result = None
                reason = solution.reason[position]
            outcomes[index] = PointOutcome(
                point=point,
                result=result,
                reason=reason,
                method=FALLBACK_METHOD,
            )
    return outcomes  # type: ignore[return-value]


def evaluate_table(
    scenario: Scenario,
    method: str = "auto",
    jobs: int | None = None,
    parity_check: bool = True,
    timer: "obs.PhaseTimer | None" = None,
) -> ResultTable:
    """Evaluate a scenario straight to a columnar :class:`ResultTable`.

    The batch front door: ``auto`` and ``closed-form`` never build a
    per-point object; ``numerical`` (the scipy-per-point reference)
    still expands to ``DesignPoint`` objects for the pool and converts
    once at the end.  Pass an :class:`~repro.obs.PhaseTimer` to collect
    the per-phase wall-time breakdown (``expand``, ``kernel``,
    ``fallback``; the numerical path records ``expand``, ``solve``,
    ``assemble``).
    """
    if method not in EVALUATION_METHODS:
        raise ValueError(
            f"unknown method {method!r}; expected one of {EVALUATION_METHODS}"
        )
    timer = timer if timer is not None else obs.PhaseTimer("engine")
    if method == "numerical":
        with timer.phase("expand"):
            points = scenario.expand()
        with timer.phase("solve"):
            outcomes = evaluate_points(
                points, method=method, jobs=jobs, parity_check=parity_check
            )
        with timer.phase("assemble"):
            return ResultTable.from_outcomes(outcomes)
    with timer.phase("expand"):
        columns = expand_columns(scenario)
    return _evaluate_columns(
        columns, method=method, parity_check=parity_check, timer=timer
    )


def cache_key_payload(scenario: Scenario) -> dict[str, Any]:
    """Everything a cached sweep's numbers depend on, minus the solve path.

    Shared by this engine's cache key and :class:`repro.study.Study`'s
    registry-path key (each adds its own solve-path discriminator), so a
    future invalidation input — a new kernel threshold, a schema bump —
    is added once and moves every key.  The payload covers the sweep
    itself, the payload schema, the package version (a proxy for
    model-equation changes) and the kernel's fallback thresholds, so a
    release that moves any of them misses the old entries instead of
    serving stale results.
    """
    from .. import __version__
    from .vectorized import FALLBACK_MARGIN, FIT_RANGE_TOLERANCE, VTH_FLOOR_NUT

    return {
        "scenario": scenario.to_dict(),
        "schema": CACHE_SCHEMA_VERSION,
        "version": __version__,
        "fallback": [FALLBACK_MARGIN, FIT_RANGE_TOLERANCE, VTH_FLOOR_NUT],
    }


def _cache_key(scenario: Scenario, method: str) -> str:
    return content_hash({**cache_key_payload(scenario), "method": method})


def explore(
    scenario: Scenario,
    method: str = "auto",
    jobs: int | None = None,
    cache: TieredCache | ResultCache | str | Path | None = None,
    use_cache: bool = True,
    parity_check: bool = True,
) -> ExplorationResult:
    """Evaluate a scenario end to end, through the tiered result cache.

    Parameters
    ----------
    scenario:
        The sweep definition.
    method:
        ``"auto"`` (default), ``"closed-form"`` or ``"numerical"``.
    jobs:
        Worker processes for the ``"numerical"`` reference method (the
        auto fallback is vectorized and needs none).
    cache:
        A :class:`~repro.service.memcache.TieredCache`, a bare
        :class:`ResultCache`, a directory for one, or None for the
        default location.  Everything but a ready-made tiered cache
        gains the process-global in-memory LRU tier, so repeated sweeps
        within one process (the CLI, a notebook, the service) skip even
        the disk read.
    use_cache:
        When False, neither reads nor writes the cache.
    parity_check:
        Forwarded to the evaluation core.
    """
    timer = obs.PhaseTimer("engine")
    with obs.span("engine.explore", method=method):
        cache = as_cache(cache)
        key = _cache_key(scenario, method)

        if use_cache:
            with timer.phase("cache_read"):
                stored = cache.get(key)
            if stored is not None:
                try:
                    table = ResultTable.from_cache_payload(stored)
                    stats = EvaluationStats.from_dict(stored["stats"])
                except (KeyError, ValueError, TypeError):
                    # The entry parsed as JSON but is not a result we
                    # can trust: quarantine it and recompute, the same
                    # contract as a torn file.
                    quarantine = getattr(cache, "quarantine", None)
                    if quarantine is not None:
                        quarantine(key)
                    stored = None
                else:
                    obs.inc(
                        "engine.runs", method=method, outcome="cache_hit"
                    )
                    return ExplorationResult(
                        scenario=scenario,
                        method=method,
                        points=table.rows(),
                        stats=stats,
                        cache_hit=True,
                        cache_key=key,
                        cache_path=cache.path_for(key),
                        parity_checked=bool(
                            stored.get("parity_checked", False)
                        ),
                        table=table,
                    )

        started = time.perf_counter()
        table = evaluate_table(
            scenario, method=method, jobs=jobs, parity_check=parity_check,
            timer=timer,
        )
        elapsed = time.perf_counter() - started

        with timer.phase("analysis"):
            stats = EvaluationStats.from_table(
                table, elapsed, phases=timer.phases
            )
        cache_path = None
        if use_cache:
            with timer.phase("cache_write"):
                try:
                    cache_path = cache.put(
                        key,
                        {
                            "schema": CACHE_SCHEMA_VERSION,
                            "method": method,
                            "scenario": scenario.to_dict(),
                            "stats": stats.to_dict(),
                            "parity_checked": parity_check
                            and method != "numerical",
                            "columns": table.to_payload_columns(),
                        },
                    )
                except (OSError, faults.FaultError):
                    # A failed cache write must not fail the sweep: the
                    # result is already computed and correct.
                    obs.inc("cache.disk.write_errors")
                    cache_path = None
        # The returned stats carry the complete phase map (including
        # cache_write, which the stored payload necessarily cannot).
        stats = replace(stats, phases=dict(timer.phases))
        obs.inc("engine.runs", method=method, outcome="computed")
        obs.inc("engine.points_evaluated", stats.n_candidates)
        obs.inc("engine.kernel_seconds", timer.phases.get("kernel", 0.0))
        if stats.n_fallback:
            obs.inc("engine.fallback_points", stats.n_fallback)
        return ExplorationResult(
            scenario=scenario,
            method=method,
            points=table.rows(),
            stats=stats,
            cache_hit=False,
            cache_key=key,
            cache_path=cache_path,
            parity_checked=parity_check and method != "numerical",
            table=table,
        )
