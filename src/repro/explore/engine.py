"""Orchestration: expand a scenario, vectorize, fall back, cache.

:func:`evaluate_points` is the batch core — it groups a candidate list
by technology, runs the vectorized Eq. 9–13 kernel per group, and sends
only the points the kernel distrusts (plus every closed-form-infeasible
point, so the reported reason comes from the reference solver) through
the parallel exact-numerical executor.  A parity check compares sampled
vectorized results against the scalar closed form on every run, so a
drift between the two implementations cannot pass silently.

:func:`explore` wraps that core with the scenario spec and the on-disk
result cache: hash the sweep definition, return the stored result on a
hit, evaluate and store on a miss.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Any, ClassVar, Mapping, Sequence

import numpy as np

from ..core.closed_form import closed_form_optimum
from ..core.optimum import OperatingPoint, OptimizationResult
from ..core.technology import Technology
from . import executor as executor_module
from ..service.memcache import TieredCache, as_cache
from .cache import CACHE_SCHEMA_VERSION, ResultCache, content_hash
from .scenario import DesignPoint, Scenario
from .vectorized import batch_arrays_for_points, closed_form_batch

#: Method tag on vectorized operating points.
VECTORIZED_METHOD = "vectorized-closed-form"

#: Relative tolerance of the engine's built-in vectorized-vs-scalar
#: parity check (the arithmetic is identical, so real agreement is at
#: machine precision; 1e-9 leaves room for operation-order noise only).
PARITY_RTOL = 1e-9

#: How many vectorized points each run spot-checks against the scalar
#: closed form.
PARITY_SAMPLES = 3

EVALUATION_METHODS = ("auto", "closed-form", "numerical")


@dataclass(frozen=True)
class PointOutcome:
    """Evaluation outcome for one design point.

    ``result`` is None when the point is infeasible; ``reason`` then
    explains why (same contract as :class:`repro.core.selection.
    Candidate`).  ``method`` records which path produced the value.
    """

    point: DesignPoint
    result: OptimizationResult | None
    reason: str = ""
    method: str = ""

    @property
    def feasible(self) -> bool:
        return self.result is not None


@dataclass(frozen=True)
class PointResult:
    """Flat, JSON-serialisable record of one evaluated candidate.

    This is what the cache stores and the analysis helpers consume: the
    architecture summary is inlined (names plus the Eq. 13 inputs and
    the area proxy) so a cached sweep is self-contained.
    """

    architecture: str
    technology: str
    frequency: float
    n_cells: float
    activity: float
    logical_depth: float
    capacitance: float
    area: float
    feasible: bool
    method: str
    vdd: float | None = None
    vth: float | None = None
    pdyn: float | None = None
    pstat: float | None = None
    ptot: float | None = None
    reason: str = ""

    @property
    def ptot_or_inf(self) -> float:
        """Total power, with +inf standing in for infeasible points."""
        return self.ptot if self.ptot is not None else float("inf")

    @property
    def area_proxy(self) -> float:
        """Layout area when known, otherwise the cell count.

        The paper's Table 1 reports area per architecture; parameter-only
        sweeps may not have it, and ``N`` tracks it closely (Table 1's
        area/cell spread across the thirteen multipliers is ~20 %).
        """
        return self.area if self.area > 0.0 else self.n_cells

    @classmethod
    def from_outcome(cls, outcome: PointOutcome) -> "PointResult":
        point = outcome.point
        arch = point.architecture
        common = dict(
            architecture=arch.name,
            technology=point.technology.name,
            frequency=point.frequency,
            n_cells=arch.n_cells,
            activity=arch.activity,
            logical_depth=arch.logical_depth,
            capacitance=arch.capacitance,
            area=arch.area,
            method=outcome.method,
            reason=outcome.reason,
        )
        if outcome.result is None:
            return cls(feasible=False, **common)
        op = outcome.result.point
        return cls(
            feasible=True,
            vdd=op.vdd,
            vth=op.vth,
            pdyn=op.pdyn,
            pstat=op.pstat,
            ptot=op.ptot,
            **common,
        )

    # Populated once after the class body: record (de)serialisation is
    # the serving layer's hot path (every response converts thousands of
    # records), and per-call dataclasses.asdict/fields introspection
    # costs more than the conversion itself.
    _FIELD_NAMES: ClassVar[tuple[str, ...]] = ()

    def to_dict(self) -> dict[str, Any]:
        return {name: getattr(self, name) for name in self._FIELD_NAMES}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PointResult":
        known = cls._FIELD_NAMES
        return cls(**{k: v for k, v in payload.items() if k in known})

    def describe(self) -> str:
        if not self.feasible:
            return (
                f"{self.architecture} on {self.technology} "
                f"@ {self.frequency / 1e6:g} MHz: infeasible ({self.reason})"
            )
        return (
            f"{self.architecture} on {self.technology} "
            f"@ {self.frequency / 1e6:g} MHz: Ptot={self.ptot * 1e6:.2f} uW "
            f"(Vdd={self.vdd:.3f} V, Vth={self.vth:.3f} V)"
        )


PointResult._FIELD_NAMES = tuple(f.name for f in fields(PointResult))


@dataclass(frozen=True)
class EvaluationStats:
    """Where the work went in one sweep."""

    n_candidates: int
    n_feasible: int
    n_vectorized: int
    n_fallback: int
    elapsed_seconds: float

    def to_dict(self) -> dict[str, Any]:
        from dataclasses import asdict

        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "EvaluationStats":
        return cls(**payload)

    @classmethod
    def from_outcomes(
        cls, outcomes: Sequence["PointOutcome"], elapsed_seconds: float
    ) -> "EvaluationStats":
        """Tally one evaluated batch (shared by ``explore`` and ``Study``)."""
        return cls(
            n_candidates=len(outcomes),
            n_feasible=sum(1 for o in outcomes if o.feasible),
            n_vectorized=sum(
                1 for o in outcomes if o.method == VECTORIZED_METHOD
            ),
            n_fallback=sum(
                1
                for o in outcomes
                if o.method in ("numerical-fallback", "numerical")
            ),
            elapsed_seconds=elapsed_seconds,
        )

    def describe(self) -> str:
        rate = self.n_candidates / self.elapsed_seconds if self.elapsed_seconds else float("inf")
        return (
            f"{self.n_candidates} candidates ({self.n_feasible} feasible) in "
            f"{self.elapsed_seconds:.3f} s ({rate:,.0f}/s; "
            f"{self.n_vectorized} vectorized, {self.n_fallback} exact-numerical)"
        )


@dataclass
class ExplorationResult:
    """A fully evaluated scenario plus provenance."""

    scenario: Scenario
    method: str
    points: list[PointResult]
    stats: EvaluationStats
    cache_hit: bool = False
    cache_key: str = ""
    cache_path: Path | None = None
    parity_checked: bool = False

    @property
    def feasible_points(self) -> list[PointResult]:
        return [p for p in self.points if p.feasible]

    @property
    def best(self) -> PointResult | None:
        """Cheapest feasible candidate, or None when nothing closes timing."""
        feasible = self.feasible_points
        if not feasible:
            return None
        return min(feasible, key=lambda p: p.ptot_or_inf)

    def describe(self) -> str:
        source = "cache hit" if self.cache_hit else "evaluated"
        lines = [
            f"scenario {self.scenario.name!r} [{self.method}] — {source}",
            f"  {self.stats.describe()}",
        ]
        best = self.best
        if best is not None:
            lines.append(f"  best: {best.describe()}")
        return "\n".join(lines)


def _group_indices_by_technology(
    points: Sequence[DesignPoint],
) -> dict[Technology, list[int]]:
    groups: dict[Technology, list[int]] = {}
    for index, point in enumerate(points):
        groups.setdefault(point.technology, []).append(index)
    return groups


def _vectorized_outcome(point: DesignPoint, batch, position: int) -> PointOutcome:
    operating_point = OperatingPoint(
        vdd=float(batch.vdd[position]),
        vth=float(batch.vth[position]),
        pdyn=float(batch.pdyn[position]),
        pstat=float(batch.pstat[position]),
        method=VECTORIZED_METHOD,
    )
    result = OptimizationResult(
        architecture=point.architecture,
        technology=point.technology,
        frequency=point.frequency,
        point=operating_point,
    )
    return PointOutcome(
        point=point, result=result, method=VECTORIZED_METHOD
    )


def _closed_form_reason(point: DesignPoint, batch, position: int) -> str:
    """Reason string mirroring the scalar chain's exception messages."""
    name = point.architecture.name
    margin = float(batch.margin[position])
    if margin <= 0.0:
        chi_a = 1.0 - margin
        return (
            f"{name}: chi*A = {chi_a:.3f} >= 1 — the architecture cannot "
            f"meet timing in this technology at this frequency"
        )
    return (
        f"{name}: ln argument {float(batch.log_argument[position]):.3e} <= 1 "
        f"implies a non-positive optimal threshold"
    )


def _check_parity(
    points: Sequence[DesignPoint],
    batch,
    positions: Sequence[int],
    indices: Sequence[int],
) -> None:
    """Spot-check vectorized values against the scalar closed form.

    ``positions`` index into the batch arrays, ``indices`` into the
    original point list; both are aligned.  Raises ``RuntimeError`` on
    drift — this is an internal-consistency invariant, not user error.
    """
    if not positions:
        return
    picks = sorted({0, len(positions) // 2, len(positions) - 1})
    for pick in picks[:PARITY_SAMPLES]:
        position, index = positions[pick], indices[pick]
        point = points[index]
        scalar = closed_form_optimum(
            point.architecture, point.technology, point.frequency
        )
        vector_ptot = float(batch.ptot[position])
        drift = abs(vector_ptot - scalar.ptot) / scalar.ptot
        if not np.isfinite(vector_ptot) or drift > PARITY_RTOL:
            raise RuntimeError(
                f"vectorized/scalar parity violation at {point.describe()}: "
                f"batch Ptot={vector_ptot!r} vs closed form {scalar.ptot!r} "
                f"(rel. drift {drift:.3e} > {PARITY_RTOL:g})"
            )


def evaluate_points(
    points: Sequence[DesignPoint],
    method: str = "auto",
    jobs: int | None = None,
    parity_check: bool = True,
) -> list[PointOutcome]:
    """Evaluate every design point; outcomes align with ``points``.

    Methods
    -------
    ``"auto"``
        Vectorized closed form for the trusted interior; exact numerical
        solve (parallel, chunked) for flagged and infeasible points.
    ``"closed-form"``
        Vectorized closed form everywhere it is defined; no scipy calls.
    ``"numerical"``
        The reference solver for every point — the historical
        ``evaluate_candidates`` behaviour, now parallel.
    """
    if method not in EVALUATION_METHODS:
        raise ValueError(
            f"unknown method {method!r}; expected one of {EVALUATION_METHODS}"
        )
    points = list(points)
    outcomes: list[PointOutcome | None] = [None] * len(points)

    if method == "numerical":
        for index, (result, reason) in enumerate(
            executor_module.run_numerical(points, jobs=jobs)
        ):
            outcomes[index] = PointOutcome(
                point=points[index],
                result=result,
                reason=reason,
                method="numerical",
            )
        return outcomes  # type: ignore[return-value]

    fallback_indices: list[int] = []
    for tech, indices in _group_indices_by_technology(points).items():
        group = [points[i] for i in indices]
        batch = closed_form_batch(tech, **batch_arrays_for_points(group))
        vectorized_positions: list[int] = []
        vectorized_indices: list[int] = []
        for position, index in enumerate(indices):
            trusted = bool(batch.feasible[position]) and not bool(
                batch.needs_fallback[position]
            )
            if trusted or (method == "closed-form" and batch.feasible[position]):
                outcomes[index] = _vectorized_outcome(
                    points[index], batch, position
                )
                if trusted:
                    vectorized_positions.append(position)
                    vectorized_indices.append(index)
            elif method == "closed-form":
                outcomes[index] = PointOutcome(
                    point=points[index],
                    result=None,
                    reason=_closed_form_reason(points[index], batch, position),
                    method=VECTORIZED_METHOD,
                )
            else:
                fallback_indices.append(index)
        if parity_check:
            _check_parity(points, batch, vectorized_positions, vectorized_indices)

    if fallback_indices:
        fallback_points = [points[i] for i in fallback_indices]
        for index, (result, reason) in zip(
            fallback_indices,
            executor_module.run_numerical(fallback_points, jobs=jobs),
        ):
            outcomes[index] = PointOutcome(
                point=points[index],
                result=result,
                reason=reason,
                method="numerical-fallback",
            )
    return outcomes  # type: ignore[return-value]


def cache_key_payload(scenario: Scenario) -> dict[str, Any]:
    """Everything a cached sweep's numbers depend on, minus the solve path.

    Shared by this engine's cache key and :class:`repro.study.Study`'s
    registry-path key (each adds its own solve-path discriminator), so a
    future invalidation input — a new kernel threshold, a schema bump —
    is added once and moves every key.  The payload covers the sweep
    itself, the payload schema, the package version (a proxy for
    model-equation changes) and the kernel's fallback thresholds, so a
    release that moves any of them misses the old entries instead of
    serving stale results.
    """
    from .. import __version__
    from .vectorized import FALLBACK_MARGIN, FIT_RANGE_TOLERANCE, VTH_FLOOR_NUT

    return {
        "scenario": scenario.to_dict(),
        "schema": CACHE_SCHEMA_VERSION,
        "version": __version__,
        "fallback": [FALLBACK_MARGIN, FIT_RANGE_TOLERANCE, VTH_FLOOR_NUT],
    }


def _cache_key(scenario: Scenario, method: str) -> str:
    return content_hash({**cache_key_payload(scenario), "method": method})


def explore(
    scenario: Scenario,
    method: str = "auto",
    jobs: int | None = None,
    cache: TieredCache | ResultCache | str | Path | None = None,
    use_cache: bool = True,
    parity_check: bool = True,
) -> ExplorationResult:
    """Evaluate a scenario end to end, through the tiered result cache.

    Parameters
    ----------
    scenario:
        The sweep definition.
    method:
        ``"auto"`` (default), ``"closed-form"`` or ``"numerical"``.
    jobs:
        Worker processes for the exact-numerical points.
    cache:
        A :class:`~repro.service.memcache.TieredCache`, a bare
        :class:`ResultCache`, a directory for one, or None for the
        default location.  Everything but a ready-made tiered cache
        gains the process-global in-memory LRU tier, so repeated sweeps
        within one process (the CLI, a notebook, the service) skip even
        the disk read.
    use_cache:
        When False, neither reads nor writes the cache.
    parity_check:
        Forwarded to :func:`evaluate_points`.
    """
    cache = as_cache(cache)
    key = _cache_key(scenario, method)

    if use_cache:
        stored = cache.get(key)
        if stored is not None:
            return ExplorationResult(
                scenario=scenario,
                method=method,
                points=[PointResult.from_dict(p) for p in stored["points"]],
                stats=EvaluationStats.from_dict(stored["stats"]),
                cache_hit=True,
                cache_key=key,
                cache_path=cache.path_for(key),
                parity_checked=bool(stored.get("parity_checked", False)),
            )

    started = time.perf_counter()
    outcomes = evaluate_points(
        scenario.expand(), method=method, jobs=jobs, parity_check=parity_check
    )
    elapsed = time.perf_counter() - started

    point_results = [PointResult.from_outcome(o) for o in outcomes]
    stats = EvaluationStats.from_outcomes(outcomes, elapsed)
    cache_path = None
    if use_cache:
        cache_path = cache.put(
            key,
            {
                "schema": CACHE_SCHEMA_VERSION,
                "method": method,
                "scenario": scenario.to_dict(),
                "stats": stats.to_dict(),
                "parity_checked": parity_check and method != "numerical",
                "points": [p.to_dict() for p in point_results],
            },
        )
    return ExplorationResult(
        scenario=scenario,
        method=method,
        points=point_results,
        stats=stats,
        cache_hit=False,
        cache_key=key,
        cache_path=cache_path,
        parity_checked=parity_check and method != "numerical",
    )
